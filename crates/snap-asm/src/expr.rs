//! Constant-expression parsing and evaluation.
//!
//! Operand expressions support integer literals, symbols (labels and
//! `.equ` constants), unary minus, and the binary operators
//! `* / + - << >> & ^ |` with conventional precedence. Evaluation is
//! deferred to the assembler's second pass, when every label address is
//! known.

use crate::error::AsmError;
use crate::lexer::Token;
use std::collections::BTreeMap;

/// A parsed constant expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Symbol reference (label or constant).
    Sym(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// Binary operators, in increasing precedence tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `&`
    And,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
}

impl BinOp {
    fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::Xor => 2,
            BinOp::And => 3,
            BinOp::Shl | BinOp::Shr => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul => 6,
        }
    }

    fn from_token(token: &Token) -> Option<BinOp> {
        match token {
            Token::Pipe => Some(BinOp::Or),
            Token::Caret => Some(BinOp::Xor),
            Token::Amp => Some(BinOp::And),
            Token::Shl => Some(BinOp::Shl),
            Token::Shr => Some(BinOp::Shr),
            Token::Plus => Some(BinOp::Add),
            Token::Minus => Some(BinOp::Sub),
            Token::Star => Some(BinOp::Mul),
            _ => None,
        }
    }
}

/// A token cursor over one operand's tokens.
pub struct Cursor<'a> {
    tokens: &'a [Token],
    pos: usize,
    module: &'a str,
    line: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over `tokens` with diagnostics location.
    pub fn new(tokens: &'a [Token], module: &'a str, line: usize) -> Cursor<'a> {
        Cursor {
            tokens,
            pos: 0,
            module,
            line,
        }
    }

    /// The next token without consuming it.
    pub fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    /// Consume and return the next token.
    #[allow(clippy::should_implement_trait)] // a cursor, not an Iterator
    pub fn next(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// `true` when all tokens are consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Create a located error.
    pub fn error(&self, message: impl Into<String>) -> AsmError {
        AsmError::new(self.module, self.line, message)
    }

    /// Parse a full expression (precedence climbing).
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] on malformed expressions.
    pub fn parse_expr(&mut self) -> Result<Expr, AsmError> {
        self.parse_binary(0)
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, AsmError> {
        let mut lhs = self.parse_unary()?;
        while let Some(op) = self.peek().and_then(BinOp::from_token) {
            if op.precedence() < min_prec {
                break;
            }
            self.next();
            let rhs = self.parse_binary(op.precedence() + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, AsmError> {
        match self.next() {
            Some(Token::Minus) => Ok(Expr::Neg(Box::new(self.parse_unary()?))),
            Some(Token::Plus) => self.parse_unary(),
            Some(Token::Number(n)) => Ok(Expr::Num(*n)),
            Some(Token::Ident(name)) => Ok(Expr::Sym(name.clone())),
            Some(Token::LParen) => {
                let inner = self.parse_binary(0)?;
                match self.next() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(self.error("expected `)`")),
                }
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

impl Expr {
    /// Evaluate against a symbol table.
    ///
    /// # Errors
    ///
    /// Returns an error naming any undefined symbol.
    pub fn eval(
        &self,
        symbols: &BTreeMap<String, i64>,
        module: &str,
        line: usize,
    ) -> Result<i64, AsmError> {
        match self {
            Expr::Num(n) => Ok(*n),
            Expr::Sym(name) => symbols
                .get(name)
                .copied()
                .ok_or_else(|| AsmError::new(module, line, format!("undefined symbol `{name}`"))),
            Expr::Neg(inner) => Ok(inner.eval(symbols, module, line)?.wrapping_neg()),
            Expr::Bin(op, a, b) => {
                let a = a.eval(symbols, module, line)?;
                let b = b.eval(symbols, module, line)?;
                Ok(match op {
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::And => a & b,
                    BinOp::Shl => a.wrapping_shl(b as u32),
                    BinOp::Shr => a.wrapping_shr(b as u32),
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                })
            }
        }
    }

    /// Evaluate and narrow to a 16-bit word. Values in `-32768..=65535`
    /// are accepted; negatives wrap to two's complement.
    ///
    /// # Errors
    ///
    /// Returns an error for undefined symbols or out-of-range values.
    pub fn eval_word(
        &self,
        symbols: &BTreeMap<String, i64>,
        module: &str,
        line: usize,
    ) -> Result<u16, AsmError> {
        let v = self.eval(symbols, module, line)?;
        if !(-32768..=65535).contains(&v) {
            return Err(AsmError::new(
                module,
                line,
                format!("value {v} does not fit in 16 bits"),
            ));
        }
        Ok(v as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn eval(src: &str) -> i64 {
        let toks = tokenize("<t>", 1, src).unwrap();
        let mut c = Cursor::new(&toks, "<t>", 1);
        let e = c.parse_expr().unwrap();
        assert!(c.at_end(), "trailing tokens in {src:?}");
        e.eval(&BTreeMap::new(), "<t>", 1).unwrap()
    }

    #[test]
    fn precedence() {
        assert_eq!(eval("1+2*3"), 7);
        assert_eq!(eval("(1+2)*3"), 9);
        assert_eq!(eval("1|2&3"), 3);
        assert_eq!(eval("1<<4+1"), 1 << 5); // + binds tighter than <<
        assert_eq!(eval("0xff & 0x0f | 0x30"), 0x3f);
        assert_eq!(eval("6-2-1"), 3); // left associative
    }

    #[test]
    fn unary_minus() {
        assert_eq!(eval("-5+8"), 3);
        assert_eq!(eval("--4"), 4);
        assert_eq!(eval("2*-3"), -6);
    }

    #[test]
    fn symbols_resolve() {
        let toks = tokenize("<t>", 1, "base + 2*4").unwrap();
        let mut c = Cursor::new(&toks, "<t>", 1);
        let e = c.parse_expr().unwrap();
        let mut sym = BTreeMap::new();
        sym.insert("base".to_string(), 0x100);
        assert_eq!(e.eval(&sym, "<t>", 1).unwrap(), 0x108);
    }

    #[test]
    fn undefined_symbol_is_error() {
        let toks = tokenize("<t>", 4, "missing").unwrap();
        let mut c = Cursor::new(&toks, "<t>", 4);
        let e = c.parse_expr().unwrap();
        let err = e.eval(&BTreeMap::new(), "<t>", 4).unwrap_err();
        assert!(err.to_string().contains("undefined symbol `missing`"));
    }

    #[test]
    fn word_narrowing() {
        let sym = BTreeMap::new();
        let fit = |v: i64| Expr::Num(v).eval_word(&sym, "<t>", 1);
        assert_eq!(fit(65535).unwrap(), 0xffff);
        assert_eq!(fit(-1).unwrap(), 0xffff);
        assert_eq!(fit(-32768).unwrap(), 0x8000);
        assert!(fit(65536).is_err());
        assert!(fit(-32769).is_err());
    }

    #[test]
    fn malformed_expressions() {
        for bad in ["+", "(1", "1*", ""] {
            let toks = tokenize("<t>", 1, bad).unwrap();
            let mut c = Cursor::new(&toks, "<t>", 1);
            assert!(c.parse_expr().is_err(), "{bad:?} should fail");
        }
    }
}
