//! The two-pass assembler and linker.
//!
//! Pass 1 parses every module, assigns section addresses and collects
//! the symbol table (labels and `.equ` constants). Pass 2 evaluates
//! operand expressions against the complete table and encodes
//! instructions. Linking is concatenative: all modules share one symbol
//! namespace and the two section location counters, exactly like the
//! single-address-space firmware images SNAP nodes boot from.

use crate::error::AsmError;
use crate::expr::{Cursor, Expr};
use crate::lexer::{tokenize, Token};
use crate::program::{Program, Segment};
use snap_isa::{Addr, AluImmOp, AluOp, BranchCond, Instruction, Reg, ShiftOp, Word};
use std::collections::{BTreeMap, BTreeSet};

/// Which memory bank a section assembles into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// A parsed operand.
#[derive(Debug, Clone, PartialEq)]
enum Operand {
    Reg(Reg),
    Expr(Expr),
    Mem { offset: Expr, base: Reg },
}

impl Operand {
    fn describe(&self) -> &'static str {
        match self {
            Operand::Reg(_) => "register",
            Operand::Expr(_) => "expression",
            Operand::Mem { .. } => "memory operand",
        }
    }
}

/// A pass-2 work item.
#[derive(Debug)]
enum Payload {
    Instr {
        mnemonic: String,
        operands: Vec<Operand>,
    },
    Words(Vec<Expr>),
    Ascii(String),
    Space(usize),
}

#[derive(Debug)]
struct Item {
    module: String,
    line: usize,
    section: Section,
    addr: Addr,
    payload: Payload,
    /// Lint ids suppressed on this source line (`; lint:allow(id, ...)`).
    allowed_lints: Vec<String>,
}

/// The multi-module assembler ("linker" in the paper's toolchain).
///
/// # Example
///
/// ```
/// use snap_asm::Assembler;
///
/// let mut asm = Assembler::new();
/// asm.add_module("lib.s", ".equ LED_ON, 1");
/// asm.add_module("main.s", "li r1, LED_ON\nhalt");
/// let program = asm.link().unwrap();
/// assert_eq!(program.imem_image().len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    modules: Vec<(String, String)>,
}

/// Assemble a single source string.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut asm = Assembler::new();
    asm.add_module("<input>", source);
    asm.link()
}

/// Assemble several `(name, source)` modules into one program.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered.
pub fn assemble_modules(modules: &[(&str, &str)]) -> Result<Program, AsmError> {
    let mut asm = Assembler::new();
    for (name, src) in modules {
        asm.add_module(*name, *src);
    }
    asm.link()
}

impl Assembler {
    /// An assembler with no modules.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Append a module; modules are laid out in insertion order.
    pub fn add_module(&mut self, name: impl Into<String>, source: impl Into<String>) -> &mut Self {
        self.modules.push((name.into(), source.into()));
        self
    }

    /// Run both passes and produce the linked [`Program`].
    ///
    /// # Errors
    ///
    /// Returns the first [`AsmError`] encountered.
    pub fn link(&self) -> Result<Program, AsmError> {
        let mut symbols: BTreeMap<String, i64> = BTreeMap::new();
        let mut code_symbols: BTreeSet<String> = BTreeSet::new();
        let mut data_symbols: BTreeSet<String> = BTreeSet::new();
        let mut items: Vec<Item> = Vec::new();
        let mut lc_text: Addr = 0;
        let mut lc_data: Addr = 0;

        // ---- pass 1 ----
        for (module, source) in &self.modules {
            let mut section = Section::Text;
            for (line, raw_line) in preprocess(module, source)? {
                let tokens = tokenize(module, line, &raw_line)?;
                let mut rest: &[Token] = &tokens;

                // Leading labels.
                while let [Token::Ident(name), Token::Colon, tail @ ..] = rest {
                    if name.starts_with('.') {
                        break;
                    }
                    let lc = match section {
                        Section::Text => lc_text,
                        Section::Data => lc_data,
                    };
                    define(&mut symbols, module, line, name, lc as i64)?;
                    if section == Section::Text {
                        code_symbols.insert(name.to_string());
                    } else {
                        data_symbols.insert(name.to_string());
                    }
                    rest = tail;
                }
                if rest.is_empty() {
                    continue;
                }

                let lc = match section {
                    Section::Text => &mut lc_text,
                    Section::Data => &mut lc_data,
                };
                match rest {
                    [Token::Ident(d), tail @ ..] if d.starts_with('.') => {
                        match d.as_str() {
                            ".text" => {
                                expect_empty(tail, module, line)?;
                                section = Section::Text;
                            }
                            ".data" => {
                                expect_empty(tail, module, line)?;
                                section = Section::Data;
                            }
                            ".org" => {
                                let v = eval_now(tail, &symbols, module, line)?;
                                *lc = in_addr_range(v, module, line)?;
                            }
                            ".equ" => {
                                let (name, expr_tokens) = split_equ(tail, module, line)?;
                                let v = eval_now(expr_tokens, &symbols, module, line)?;
                                define(&mut symbols, module, line, name, v)?;
                            }
                            ".word" => {
                                let exprs = parse_expr_list(tail, module, line)?;
                                let n = exprs.len();
                                items.push(Item {
                                    module: module.clone(),
                                    line,
                                    section,
                                    addr: *lc,
                                    payload: Payload::Words(exprs),
                                    allowed_lints: Vec::new(),
                                });
                                *lc = bump(*lc, n, module, line)?;
                            }
                            ".space" => {
                                let n = eval_now(tail, &symbols, module, line)?;
                                if n < 0 {
                                    return Err(AsmError::new(
                                        module,
                                        line,
                                        ".space size is negative",
                                    ));
                                }
                                items.push(Item {
                                    module: module.clone(),
                                    line,
                                    section,
                                    addr: *lc,
                                    payload: Payload::Space(n as usize),
                                    allowed_lints: Vec::new(),
                                });
                                *lc = bump(*lc, n as usize, module, line)?;
                            }
                            ".ascii" => match tail {
                                [Token::Str(s)] => {
                                    let n = s.chars().count();
                                    items.push(Item {
                                        module: module.clone(),
                                        line,
                                        section,
                                        addr: *lc,
                                        payload: Payload::Ascii(s.clone()),
                                        allowed_lints: Vec::new(),
                                    });
                                    *lc = bump(*lc, n, module, line)?;
                                }
                                _ => {
                                    return Err(AsmError::new(
                                        module,
                                        line,
                                        ".ascii expects one string",
                                    ))
                                }
                            },
                            ".global" | ".globl" => {} // all symbols are global
                            other => {
                                return Err(AsmError::new(
                                    module,
                                    line,
                                    format!("unknown directive `{other}`"),
                                ))
                            }
                        }
                    }
                    [Token::Ident(mnemonic), tail @ ..] => {
                        let size = mnemonic_size(mnemonic).ok_or_else(|| {
                            AsmError::new(module, line, format!("unknown mnemonic `{mnemonic}`"))
                        })?;
                        let operands = parse_operands(tail, module, line)?;
                        items.push(Item {
                            module: module.clone(),
                            line,
                            section,
                            addr: *lc,
                            payload: Payload::Instr {
                                mnemonic: mnemonic.clone(),
                                operands,
                            },
                            allowed_lints: lint_allows(&raw_line),
                        });
                        *lc = bump(*lc, size, module, line)?;
                    }
                    _ => {
                        return Err(AsmError::new(
                            module,
                            line,
                            "expected label, directive or instruction",
                        ))
                    }
                }
            }
        }

        // ---- pass 2 ----
        let mut text_writes: Vec<(Addr, Word)> = Vec::new();
        let mut data_writes: Vec<(Addr, Word)> = Vec::new();
        let mut lines: BTreeMap<Addr, crate::program::SourceLine> = BTreeMap::new();
        for item in &items {
            let out = match item.section {
                Section::Text => &mut text_writes,
                Section::Data => &mut data_writes,
            };
            let mut addr = item.addr;
            let mut emit = |w: Word, addr: &mut Addr| {
                out.push((*addr, w));
                *addr = addr.wrapping_add(1);
            };
            match &item.payload {
                Payload::Words(exprs) => {
                    for e in exprs {
                        let w = e.eval_word(&symbols, &item.module, item.line)?;
                        emit(w, &mut addr);
                    }
                }
                Payload::Ascii(s) => {
                    for ch in s.chars() {
                        emit(ch as u16, &mut addr);
                    }
                }
                Payload::Space(n) => {
                    for _ in 0..*n {
                        emit(0, &mut addr);
                    }
                }
                Payload::Instr { mnemonic, operands } => {
                    let ins =
                        build_instruction(mnemonic, operands, &symbols, &item.module, item.line)?;
                    if Some(ins.word_count()) != mnemonic_size(mnemonic) {
                        return Err(AsmError::new(
                            &item.module,
                            item.line,
                            format!(
                                "`{mnemonic}` encoded to {} words but was laid out as {:?}",
                                ins.word_count(),
                                mnemonic_size(mnemonic)
                            ),
                        ));
                    }
                    lines.insert(
                        item.addr,
                        crate::program::SourceLine {
                            module: item.module.clone(),
                            line: item.line,
                            allowed_lints: item.allowed_lints.clone(),
                        },
                    );
                    for w in ins.encode() {
                        emit(w, &mut addr);
                    }
                }
            }
        }

        let imem = coalesce(text_writes, "imem")?;
        let dmem = coalesce(data_writes, "dmem")?;
        Program::new(imem, dmem, symbols, code_symbols, data_symbols, lines)
    }
}

/// Extract the lint ids named in a `lint:allow(id, ...)` marker on the
/// line, if any. The marker conventionally lives in a trailing comment
/// (`; lint:allow(dead-store)`), but we scan the raw line so it also
/// works after `#` or `//` comment styles.
fn lint_allows(raw_line: &str) -> Vec<String> {
    let Some(pos) = raw_line.find("lint:allow(") else {
        return Vec::new();
    };
    let rest = &raw_line[pos + "lint:allow(".len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// A module-local assembler macro.
struct Macro {
    params: Vec<String>,
    /// `(definition line, text)` body lines.
    body: Vec<(usize, String)>,
}

/// Expand `.macro`/`.endm` definitions and their invocations. Macro
/// bodies substitute `\param` occurrences and `\@` (a unique counter
/// per expansion, for local labels). Returns `(source line, text)`
/// pairs so diagnostics keep pointing at real source lines (expanded
/// lines report the macro body's line).
fn preprocess(module: &str, source: &str) -> Result<Vec<(usize, String)>, AsmError> {
    let mut macros: BTreeMap<String, Macro> = BTreeMap::new();
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut current: Option<(String, Macro)> = None;

    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim_start();
        if let Some(rest) = trimmed.strip_prefix(".macro") {
            if current.is_some() {
                return Err(AsmError::new(module, line, "nested .macro definitions"));
            }
            let mut parts = rest.split([' ', '\t', ',']).filter(|p| !p.is_empty());
            let Some(name) = parts.next() else {
                return Err(AsmError::new(module, line, ".macro needs a name"));
            };
            if mnemonic_size(name).is_some() {
                return Err(AsmError::new(
                    module,
                    line,
                    format!("macro `{name}` shadows an instruction"),
                ));
            }
            let params: Vec<String> = parts.map(str::to_string).collect();
            current = Some((
                name.to_string(),
                Macro {
                    params,
                    body: Vec::new(),
                },
            ));
            continue;
        }
        if trimmed.starts_with(".endm") {
            let Some((name, mac)) = current.take() else {
                return Err(AsmError::new(module, line, ".endm without .macro"));
            };
            if macros.insert(name.clone(), mac).is_some() {
                return Err(AsmError::new(
                    module,
                    line,
                    format!("macro `{name}` defined twice"),
                ));
            }
            continue;
        }
        if let Some((_, mac)) = current.as_mut() {
            mac.body.push((line, raw.to_string()));
            continue;
        }
        // Invocation? First word names a macro.
        let first_word = trimmed.split([' ', '\t']).next().unwrap_or("");
        if let Some(mac) = macros.get(first_word) {
            let args_text = trimmed[first_word.len()..].trim();
            let args: Vec<&str> = if args_text.is_empty() {
                Vec::new()
            } else {
                args_text.split(',').map(str::trim).collect()
            };
            if args.len() != mac.params.len() {
                return Err(AsmError::new(
                    module,
                    line,
                    format!(
                        "macro `{first_word}` takes {} arguments, got {}",
                        mac.params.len(),
                        args.len()
                    ),
                ));
            }
            let unique = out.len(); // expansion counter for \@
            for (body_line, text) in &mac.body {
                let mut expanded = text.clone();
                for (param, arg) in mac.params.iter().zip(&args) {
                    expanded = expanded.replace(&format!("\\{param}"), arg);
                }
                expanded = expanded.replace("\\@", &format!("__m{unique}"));
                if expanded.contains('\\') {
                    return Err(AsmError::new(
                        module,
                        *body_line,
                        format!("unresolved macro parameter in `{}`", expanded.trim()),
                    ));
                }
                out.push((*body_line, expanded));
            }
            continue;
        }
        out.push((line, raw.to_string()));
    }
    if current.is_some() {
        return Err(AsmError::new(
            module,
            source.lines().count(),
            "unterminated .macro",
        ));
    }
    Ok(out)
}

fn define(
    symbols: &mut BTreeMap<String, i64>,
    module: &str,
    line: usize,
    name: &str,
    value: i64,
) -> Result<(), AsmError> {
    if reg_by_name(name).is_some() {
        return Err(AsmError::new(
            module,
            line,
            format!("`{name}` is a register name"),
        ));
    }
    if symbols.insert(name.to_string(), value).is_some() {
        return Err(AsmError::new(
            module,
            line,
            format!("duplicate symbol `{name}`"),
        ));
    }
    Ok(())
}

fn expect_empty(tokens: &[Token], module: &str, line: usize) -> Result<(), AsmError> {
    if tokens.is_empty() {
        Ok(())
    } else {
        Err(AsmError::new(module, line, "unexpected operands"))
    }
}

fn eval_now(
    tokens: &[Token],
    symbols: &BTreeMap<String, i64>,
    module: &str,
    line: usize,
) -> Result<i64, AsmError> {
    let mut c = Cursor::new(tokens, module, line);
    let e = c.parse_expr()?;
    if !c.at_end() {
        return Err(c.error("trailing tokens after expression"));
    }
    e.eval(symbols, module, line)
}

fn split_equ<'a>(
    tokens: &'a [Token],
    module: &str,
    line: usize,
) -> Result<(&'a str, &'a [Token]), AsmError> {
    match tokens {
        [Token::Ident(name), Token::Comma, rest @ ..] if !rest.is_empty() => Ok((name, rest)),
        _ => Err(AsmError::new(
            module,
            line,
            ".equ expects `name, expression`",
        )),
    }
}

fn in_addr_range(v: i64, module: &str, line: usize) -> Result<Addr, AsmError> {
    if (0..=0xffff).contains(&v) {
        Ok(v as Addr)
    } else {
        Err(AsmError::new(
            module,
            line,
            format!("address {v} out of range"),
        ))
    }
}

fn bump(lc: Addr, by: usize, module: &str, line: usize) -> Result<Addr, AsmError> {
    let next = lc as usize + by;
    in_addr_range(next as i64, module, line)
}

fn coalesce(mut writes: Vec<(Addr, Word)>, bank: &str) -> Result<Vec<Segment>, AsmError> {
    writes.sort_by_key(|&(a, _)| a);
    for pair in writes.windows(2) {
        if pair[0].0 == pair[1].0 {
            return Err(AsmError::new(
                "<link>",
                0,
                format!("{bank} address {:#05x} written twice", pair[0].0),
            ));
        }
    }
    let mut segments: Vec<Segment> = Vec::new();
    for (addr, word) in writes {
        match segments.last_mut() {
            Some(seg) if seg.end() == addr as usize => seg.words.push(word),
            _ => segments.push(Segment {
                base: addr,
                words: vec![word],
            }),
        }
    }
    Ok(segments)
}

/// Register name or alias.
fn reg_by_name(name: &str) -> Option<Reg> {
    match name {
        "sp" | "SP" => Some(Reg::R13),
        "ra" | "RA" => Some(Reg::R14),
        _ => Reg::parse(name).ok(),
    }
}

fn parse_operands(tokens: &[Token], module: &str, line: usize) -> Result<Vec<Operand>, AsmError> {
    let mut operands = Vec::new();
    if tokens.is_empty() {
        return Ok(operands);
    }
    for chunk in split_top_level_commas(tokens) {
        operands.push(parse_operand(chunk, module, line)?);
    }
    Ok(operands)
}

fn split_top_level_commas(tokens: &[Token]) -> Vec<&[Token]> {
    let mut chunks = Vec::new();
    let mut start = 0;
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        match t {
            Token::LParen => depth += 1,
            Token::RParen => depth = depth.saturating_sub(1),
            Token::Comma if depth == 0 => {
                chunks.push(&tokens[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    chunks.push(&tokens[start..]);
    chunks
}

fn parse_operand(tokens: &[Token], module: &str, line: usize) -> Result<Operand, AsmError> {
    // A bare register name.
    if let [Token::Ident(name)] = tokens {
        if let Some(r) = reg_by_name(name) {
            return Ok(Operand::Reg(r));
        }
    }
    // `expr ( reg )` is a memory operand; a bare expression otherwise.
    let mut c = Cursor::new(tokens, module, line);
    let expr = c.parse_expr()?;
    match c.next() {
        None => Ok(Operand::Expr(expr)),
        Some(Token::LParen) => {
            let base = match c.next() {
                Some(Token::Ident(name)) => reg_by_name(name).ok_or_else(|| {
                    AsmError::new(module, line, format!("`{name}` is not a register"))
                }),
                _ => Err(AsmError::new(module, line, "expected base register")),
            }?;
            match (c.next(), c.at_end()) {
                (Some(Token::RParen), true) => Ok(Operand::Mem { offset: expr, base }),
                _ => Err(AsmError::new(module, line, "malformed memory operand")),
            }
        }
        Some(t) => Err(AsmError::new(
            module,
            line,
            format!("unexpected token {t:?} in operand"),
        )),
    }
}

/// Instruction size in words, by mnemonic. `None` for unknown mnemonics.
fn mnemonic_size(m: &str) -> Option<usize> {
    Some(match m {
        "add" | "addc" | "sub" | "subc" | "and" | "or" | "xor" | "not" | "mov" | "neg" | "slt"
        | "sltu" | "sll" | "srl" | "sra" | "rol" | "ror" | "slli" | "srli" | "srai" | "roli"
        | "rori" | "jr" | "jalr" | "schedhi" | "schedlo" | "cancel" | "rand" | "seed" | "done"
        | "setaddr" | "nop" | "halt" | "swev" | "ret" => 1,
        "addi" | "subi" | "andi" | "ori" | "xori" | "li" | "slti" | "sltiu" | "lw" | "sw"
        | "ilw" | "isw" | "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" | "bgt" | "ble"
        | "bgtu" | "bleu" | "beqz" | "bnez" | "jmp" | "jal" | "bfs" | "call" => 2,
        _ => return None,
    })
}

fn build_instruction(
    mnemonic: &str,
    operands: &[Operand],
    symbols: &BTreeMap<String, i64>,
    module: &str,
    line: usize,
) -> Result<Instruction, AsmError> {
    let fail = |msg: String| AsmError::new(module, line, msg);
    let signature = || -> String {
        operands
            .iter()
            .map(Operand::describe)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let bad_operands = || {
        fail(format!(
            "invalid operands for `{mnemonic}`: ({})",
            signature()
        ))
    };

    let word = |e: &Expr| e.eval_word(symbols, module, line);

    let alu_reg = |op: AluOp| match operands {
        [Operand::Reg(rd), Operand::Reg(rs)] => Ok(Instruction::AluReg {
            op,
            rd: *rd,
            rs: *rs,
        }),
        _ => Err(bad_operands()),
    };
    let alu_imm = |op: AluImmOp| match operands {
        [Operand::Reg(rd), Operand::Expr(e)] => Ok(Instruction::AluImm {
            op,
            rd: *rd,
            imm: word(e)?,
        }),
        _ => Err(bad_operands()),
    };
    let shift_reg = |op: ShiftOp| match operands {
        [Operand::Reg(rd), Operand::Reg(rs)] => Ok(Instruction::ShiftReg {
            op,
            rd: *rd,
            rs: *rs,
        }),
        _ => Err(bad_operands()),
    };
    let shift_imm = |op: ShiftOp| match operands {
        [Operand::Reg(rd), Operand::Expr(e)] => {
            let amount = word(e)?;
            if amount > 15 {
                return Err(fail(format!("shift amount {amount} exceeds 15")));
            }
            Ok(Instruction::ShiftImm {
                op,
                rd: *rd,
                amount: amount as u8,
            })
        }
        _ => Err(bad_operands()),
    };
    let mem = |imem: bool, store: bool| match operands {
        [Operand::Reg(r), Operand::Mem { offset, base }] => {
            let offset = word(offset)?;
            Ok(match (imem, store) {
                (false, false) => Instruction::Load {
                    rd: *r,
                    base: *base,
                    offset,
                },
                (false, true) => Instruction::Store {
                    rs: *r,
                    base: *base,
                    offset,
                },
                (true, false) => Instruction::ImemLoad {
                    rd: *r,
                    base: *base,
                    offset,
                },
                (true, true) => Instruction::ImemStore {
                    rs: *r,
                    base: *base,
                    offset,
                },
            })
        }
        _ => Err(bad_operands()),
    };
    let branch = |cond: BranchCond, swap: bool| match operands {
        [Operand::Reg(ra), Operand::Reg(rb), Operand::Expr(t)] => {
            let (ra, rb) = if swap { (*rb, *ra) } else { (*ra, *rb) };
            Ok(Instruction::Branch {
                cond,
                ra,
                rb,
                target: word(t)?,
            })
        }
        _ => Err(bad_operands()),
    };
    let branch_z = |cond: BranchCond| match operands {
        [Operand::Reg(ra), Operand::Expr(t)] => Ok(Instruction::Branch {
            cond,
            ra: *ra,
            rb: Reg::R0,
            target: word(t)?,
        }),
        _ => Err(bad_operands()),
    };

    match mnemonic {
        "add" => alu_reg(AluOp::Add),
        "addc" => alu_reg(AluOp::Addc),
        "sub" => alu_reg(AluOp::Sub),
        "subc" => alu_reg(AluOp::Subc),
        "and" => alu_reg(AluOp::And),
        "or" => alu_reg(AluOp::Or),
        "xor" => alu_reg(AluOp::Xor),
        "not" => alu_reg(AluOp::Not),
        "mov" => alu_reg(AluOp::Mov),
        "neg" => alu_reg(AluOp::Neg),
        "slt" => alu_reg(AluOp::Slt),
        "sltu" => alu_reg(AluOp::Sltu),
        "addi" => alu_imm(AluImmOp::Addi),
        "subi" => alu_imm(AluImmOp::Subi),
        "andi" => alu_imm(AluImmOp::Andi),
        "ori" => alu_imm(AluImmOp::Ori),
        "xori" => alu_imm(AluImmOp::Xori),
        "li" => alu_imm(AluImmOp::Li),
        "slti" => alu_imm(AluImmOp::Slti),
        "sltiu" => alu_imm(AluImmOp::Sltiu),
        "sll" => shift_reg(ShiftOp::Sll),
        "srl" => shift_reg(ShiftOp::Srl),
        "sra" => shift_reg(ShiftOp::Sra),
        "rol" => shift_reg(ShiftOp::Rol),
        "ror" => shift_reg(ShiftOp::Ror),
        "slli" => shift_imm(ShiftOp::Sll),
        "srli" => shift_imm(ShiftOp::Srl),
        "srai" => shift_imm(ShiftOp::Sra),
        "roli" => shift_imm(ShiftOp::Rol),
        "rori" => shift_imm(ShiftOp::Ror),
        "lw" => mem(false, false),
        "sw" => mem(false, true),
        "ilw" => mem(true, false),
        "isw" => mem(true, true),
        "beq" => branch(BranchCond::Eq, false),
        "bne" => branch(BranchCond::Ne, false),
        "blt" => branch(BranchCond::Lt, false),
        "bge" => branch(BranchCond::Ge, false),
        "bltu" => branch(BranchCond::Ltu, false),
        "bgeu" => branch(BranchCond::Geu, false),
        "bgt" => branch(BranchCond::Lt, true),
        "ble" => branch(BranchCond::Ge, true),
        "bgtu" => branch(BranchCond::Ltu, true),
        "bleu" => branch(BranchCond::Geu, true),
        "beqz" => branch_z(BranchCond::Eqz),
        "bnez" => branch_z(BranchCond::Nez),
        "jmp" => match operands {
            [Operand::Expr(t)] => Ok(Instruction::Jmp { target: word(t)? }),
            _ => Err(bad_operands()),
        },
        "jal" => match operands {
            [Operand::Reg(rd), Operand::Expr(t)] => Ok(Instruction::Jal {
                rd: *rd,
                target: word(t)?,
            }),
            _ => Err(bad_operands()),
        },
        "call" => match operands {
            [Operand::Expr(t)] => Ok(Instruction::Jal {
                rd: Reg::R14,
                target: word(t)?,
            }),
            _ => Err(bad_operands()),
        },
        "jr" => match operands {
            [Operand::Reg(rs)] => Ok(Instruction::Jr { rs: *rs }),
            _ => Err(bad_operands()),
        },
        "ret" => match operands {
            [] => Ok(Instruction::Jr { rs: Reg::R14 }),
            _ => Err(bad_operands()),
        },
        "jalr" => match operands {
            [Operand::Reg(rd), Operand::Reg(rs)] => Ok(Instruction::Jalr { rd: *rd, rs: *rs }),
            _ => Err(bad_operands()),
        },
        "schedhi" => match operands {
            [Operand::Reg(rt), Operand::Reg(rv)] => Ok(Instruction::SchedHi { rt: *rt, rv: *rv }),
            _ => Err(bad_operands()),
        },
        "schedlo" => match operands {
            [Operand::Reg(rt), Operand::Reg(rv)] => Ok(Instruction::SchedLo { rt: *rt, rv: *rv }),
            _ => Err(bad_operands()),
        },
        "cancel" => match operands {
            [Operand::Reg(rt)] => Ok(Instruction::Cancel { rt: *rt }),
            _ => Err(bad_operands()),
        },
        "bfs" => match operands {
            [Operand::Reg(rd), Operand::Reg(rs), Operand::Expr(mask)] => Ok(Instruction::Bfs {
                rd: *rd,
                rs: *rs,
                mask: word(mask)?,
            }),
            _ => Err(bad_operands()),
        },
        "rand" => match operands {
            [Operand::Reg(rd)] => Ok(Instruction::Rand { rd: *rd }),
            _ => Err(bad_operands()),
        },
        "seed" => match operands {
            [Operand::Reg(rs)] => Ok(Instruction::Seed { rs: *rs }),
            _ => Err(bad_operands()),
        },
        "setaddr" => match operands {
            [Operand::Reg(rev), Operand::Reg(raddr)] => Ok(Instruction::SetAddr {
                rev: *rev,
                raddr: *raddr,
            }),
            _ => Err(bad_operands()),
        },
        "swev" => match operands {
            [Operand::Reg(rn)] => Ok(Instruction::SwEvent { rn: *rn }),
            _ => Err(bad_operands()),
        },
        "done" => match operands {
            [] => Ok(Instruction::Done),
            _ => Err(bad_operands()),
        },
        "nop" => match operands {
            [] => Ok(Instruction::Nop),
            _ => Err(bad_operands()),
        },
        "halt" => match operands {
            [] => Ok(Instruction::Halt),
            _ => Err(bad_operands()),
        },
        other => Err(fail(format!("unknown mnemonic `{other}`"))),
    }
}

fn parse_expr_list(tokens: &[Token], module: &str, line: usize) -> Result<Vec<Expr>, AsmError> {
    let mut exprs = Vec::new();
    for chunk in split_top_level_commas(tokens) {
        let mut c = Cursor::new(chunk, module, line);
        let e = c.parse_expr()?;
        if !c.at_end() {
            return Err(c.error("trailing tokens after expression"));
        }
        exprs.push(e);
    }
    Ok(exprs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_program_layout() {
        let p = assemble(
            r"
            start:
                li   r1, 5      ; 2 words at 0
                add  r1, r2     ; 1 word  at 2
            loop:
                bnez r1, loop   ; 2 words at 3
                halt            ; 1 word  at 5
            ",
        )
        .unwrap();
        assert_eq!(p.symbol("start"), Some(0));
        assert_eq!(p.symbol("loop"), Some(3));
        assert_eq!(p.imem_image().len(), 6);
    }

    #[test]
    fn source_lines_and_lint_allow_markers() {
        let p = assemble(
            "    li   r1, 5\n    mov  r2, r1   ; lint:allow(dead-store, read-never-written)\n    halt\n",
        )
        .unwrap();
        // Only instruction start addresses have entries (li is 2 words).
        let li = p.source_line(0).unwrap();
        assert_eq!((li.module.as_str(), li.line), ("<input>", 1));
        assert!(li.allowed_lints.is_empty());
        assert!(p.source_line(1).is_none());
        let mov = p.source_line(2).unwrap();
        assert_eq!(mov.line, 2);
        assert_eq!(mov.allowed_lints, ["dead-store", "read-never-written"]);
        assert_eq!(p.source_line(3).unwrap().line, 3);
    }

    #[test]
    fn malformed_lint_allow_is_ignored() {
        assert!(lint_allows("add r1, r2 ; lint:allow(").is_empty());
        assert!(lint_allows("add r1, r2 ; lint:allow()").is_empty());
        assert_eq!(lint_allows("x # lint:allow( a ,, b )"), ["a", "b"]);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble(
            r"
                jmp  fwd
            back:
                halt
            fwd:
                jmp  back
            ",
        )
        .unwrap();
        let img = p.imem_image();
        // jmp fwd: immediate is word 1 -> fwd = 3
        assert_eq!(img[1], 3);
        // jmp back at 3: immediate at word 4 -> back = 2
        assert_eq!(img[4], 2);
    }

    #[test]
    fn equ_and_expressions() {
        let p = assemble(
            r"
            .equ BASE, 0x40
            .equ FLAG, 1 << 3
                li r1, BASE + FLAG
                halt
            ",
        )
        .unwrap();
        assert_eq!(p.imem_image()[1], 0x48);
    }

    #[test]
    fn data_section_and_word_directive() {
        let p = assemble(
            r#"
            .data
            table:
                .word 1, 2, 3
            msg:
                .ascii "ok"
            .text
                lw r1, 0(r2)
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.symbol("table"), Some(0));
        assert_eq!(p.symbol("msg"), Some(3));
        assert_eq!(p.dmem_image(), vec![1, 2, 3, 'o' as u16, 'k' as u16]);
        assert_eq!(p.imem_image().len(), 3);
    }

    #[test]
    fn org_moves_location_counter() {
        let p = assemble(
            r"
                nop
            .org 0x20
            handler:
                done
            ",
        )
        .unwrap();
        assert_eq!(p.symbol("handler"), Some(0x20));
        let img = p.imem_image();
        assert_eq!(img.len(), 0x21);
        assert_eq!(img[1], 0); // gap zero-filled
    }

    #[test]
    fn space_reserves_zeroed_words() {
        let p = assemble(".data\nbuf: .space 4\nafter: .word 9").unwrap();
        assert_eq!(p.symbol("after"), Some(4));
        assert_eq!(p.dmem_image(), vec![0, 0, 0, 0, 9]);
    }

    #[test]
    fn memory_operands_and_aliases() {
        let p = assemble(
            r"
                lw  r1, 2(sp)
                sw  r1, 3(ra)
                halt
            ",
        )
        .unwrap();
        let img = p.imem_image();
        let i0 = Instruction::decode(img[0], Some(img[1])).unwrap();
        assert_eq!(
            i0,
            Instruction::Load {
                rd: Reg::R1,
                base: Reg::R13,
                offset: 2
            }
        );
        let i1 = Instruction::decode(img[2], Some(img[3])).unwrap();
        assert_eq!(
            i1,
            Instruction::Store {
                rs: Reg::R1,
                base: Reg::R14,
                offset: 3
            }
        );
    }

    #[test]
    fn call_ret_pseudo() {
        let p = assemble(
            r"
                call f
                halt
            f:  ret
            ",
        )
        .unwrap();
        let img = p.imem_image();
        assert_eq!(
            Instruction::decode(img[0], Some(img[1])).unwrap(),
            Instruction::Jal {
                rd: Reg::R14,
                target: 3
            }
        );
        assert_eq!(
            Instruction::decode(img[3], None).unwrap(),
            Instruction::Jr { rs: Reg::R14 }
        );
    }

    #[test]
    fn swapped_branch_pseudos() {
        let p = assemble("x: bgt r1, r2, x\n ble r3, r4, x").unwrap();
        let img = p.imem_image();
        assert_eq!(
            Instruction::decode(img[0], Some(img[1])).unwrap(),
            Instruction::Branch {
                cond: BranchCond::Lt,
                ra: Reg::R2,
                rb: Reg::R1,
                target: 0
            }
        );
        assert_eq!(
            Instruction::decode(img[2], Some(img[3])).unwrap(),
            Instruction::Branch {
                cond: BranchCond::Ge,
                ra: Reg::R4,
                rb: Reg::R3,
                target: 0
            }
        );
    }

    #[test]
    fn multi_module_link_shares_symbols() {
        let p = assemble_modules(&[
            ("defs.s", ".equ MAGIC, 0xbeef"),
            ("main.s", "entry: li r1, MAGIC\n jmp lib_fn\n"),
            ("lib.s", "lib_fn: halt"),
        ])
        .unwrap();
        assert_eq!(p.imem_image()[1], 0xbeef);
        assert_eq!(p.symbol("lib_fn"), Some(4));
    }

    #[test]
    fn duplicate_label_is_error() {
        let err = assemble("a: nop\na: nop").unwrap_err();
        assert!(err.to_string().contains("duplicate symbol `a`"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_mnemonic_is_error() {
        let err = assemble("frobnicate r1").unwrap_err();
        assert!(err.to_string().contains("unknown mnemonic"));
    }

    #[test]
    fn wrong_operand_kinds_are_errors() {
        for bad in [
            "add r1, 5",
            "li 5, r1",
            "lw r1, r2",
            "jmp r1",
            "done r1",
            "slli r1, 16",
        ] {
            assert!(assemble(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn undefined_symbol_reports_line() {
        let err = assemble("nop\n li r1, nowhere").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn register_name_cannot_be_symbol() {
        assert!(assemble("r1: nop").is_err());
        assert!(assemble(".equ sp, 5").is_err());
    }

    #[test]
    fn label_with_instruction_on_same_line() {
        let p = assemble("a: b: nop\n jmp b").unwrap();
        assert_eq!(p.symbol("a"), Some(0));
        assert_eq!(p.symbol("b"), Some(0));
    }

    #[test]
    fn macros_expand_with_parameters() {
        let p = assemble(
            r"
            .macro LED val
                li   r4, 0x4000 | \val
                mov  r15, r4
            .endm
                LED 1
                LED 0
                halt
            ",
        )
        .unwrap();
        // Each expansion: li (2 words) + mov (1 word); two expansions + halt.
        assert_eq!(p.imem_image().len(), 7);
        assert_eq!(p.imem_image()[1], 0x4001);
        assert_eq!(p.imem_image()[4], 0x4000);
    }

    #[test]
    fn macro_local_labels_are_unique_per_expansion() {
        let p = assemble(
            r"
            .macro SPIN n
                li   r3, \n
            loop\@:
                subi r3, 1
                bnez r3, loop\@
            .endm
                SPIN 5
                SPIN 7
                halt
            ",
        )
        .unwrap();
        // Two expansions each define their own loop label: no duplicate
        // symbol error, and both exist.
        let labels: Vec<&String> = p
            .symbols()
            .keys()
            .filter(|k| k.starts_with("loop__m"))
            .collect();
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn macro_errors() {
        assert!(assemble(".macro add x\n.endm")
            .unwrap_err()
            .to_string()
            .contains("shadows"));
        assert!(assemble(".endm")
            .unwrap_err()
            .to_string()
            .contains(".endm without"));
        assert!(assemble(".macro m x\nli r1, \\x")
            .unwrap_err()
            .to_string()
            .contains("unterminated"));
        let err = assemble(".macro m a, b\nli \\a, \\b\n.endm\nm r1").unwrap_err();
        assert!(err.to_string().contains("takes 2 arguments"), "{err}");
        let err = assemble(".macro m\nli r1, \\oops\n.endm\nm").unwrap_err();
        assert!(
            err.to_string().contains("unresolved macro parameter"),
            "{err}"
        );
    }

    #[test]
    fn negative_immediates_wrap() {
        let p = assemble("li r1, -2\nhalt").unwrap();
        assert_eq!(p.imem_image()[1], 0xfffe);
    }
}
