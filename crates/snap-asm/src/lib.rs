//! # snap-asm — assembler, linker and disassembler for the SNAP ISA
//!
//! The paper's toolchain was "a complete custom assembler/linker
//! tool-chain" plus a port of the `lcc` C compiler (§4.2). This crate is
//! the assembler/linker half (the compiler lives in `snapcc`).
//!
//! ## Assembly language
//!
//! * One statement per line; comments start with `;`, `#` or `//`.
//! * Labels end with `:` and may share a line with an instruction.
//! * Mnemonics are those of [`snap_isa::Instruction`] plus the pseudo
//!   instructions `call` (→ `jal r14`), `ret` (→ `jr r14`) and the
//!   swapped-operand branches `bgt`/`ble`/`bgtu`/`bleu`.
//! * Registers are `r0`–`r15` with aliases `sp` = `r13`, `ra` = `r14`.
//! * Operands take full constant expressions: decimal/hex/binary/char
//!   literals, symbols, `+ - * & | ^ << >>` and parentheses.
//! * Directives: `.text` / `.data` select the IMEM or DMEM section,
//!   `.org <addr>` sets the location counter, `.word e, e, ...` emits
//!   words, `.space n` reserves zeroed words, `.ascii "s"` emits one
//!   character per word, `.equ name, expr` defines a constant, and
//!   `.global name` is accepted (and ignored — all symbols are global).
//! * Macros: `.macro name p1, p2` … `.endm` define module-local macros;
//!   bodies reference parameters as `\p1` and get a per-expansion
//!   unique suffix via `\@` for local labels.
//!
//! ## Example
//!
//! ```
//! use snap_asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!         .equ  ANSWER, 6*7
//!     start:
//!         li    r1, ANSWER
//!         halt
//!     "#,
//! ).unwrap();
//! assert_eq!(program.symbol("start"), Some(0));
//! assert_eq!(program.imem_image().len(), 3); // li (2 words) + halt
//! ```

#![warn(missing_docs)]

pub mod assembler;
pub mod disasm;
pub mod error;
pub mod expr;
pub mod lexer;
pub mod program;

pub use assembler::{assemble, assemble_modules, Assembler};
pub use disasm::{disassemble, DisasmLine};
pub use error::AsmError;
pub use program::{Program, Segment, SourceLine};
