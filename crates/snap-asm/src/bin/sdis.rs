//! `sdis` — the SNAP disassembler, as a command-line tool.
//!
//! ```text
//! sdis [--base ADDR] FILE.bin
//! ```
//!
//! Reads a little-endian 16-bit word image (as written by `sasm -o`)
//! and prints a listing.

use snap_asm::disassemble;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut base: u16 = 0;
    let mut input: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--base" => {
                let Some(v) = args.next() else {
                    eprintln!("sdis: --base requires a value");
                    return ExitCode::FAILURE;
                };
                let parsed = if let Some(hex) = v.strip_prefix("0x") {
                    u16::from_str_radix(hex, 16)
                } else {
                    v.parse()
                };
                match parsed {
                    Ok(b) => base = b,
                    Err(_) => {
                        eprintln!("sdis: bad base address `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: sdis [--base ADDR] FILE.bin");
                return ExitCode::SUCCESS;
            }
            other => input = Some(other.to_string()),
        }
    }
    let Some(path) = input else {
        eprintln!("sdis: no input file (try --help)");
        return ExitCode::FAILURE;
    };
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("sdis: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if bytes.len() % 2 != 0 {
        eprintln!("sdis: {path}: odd byte count (not a word image)");
        return ExitCode::FAILURE;
    }
    let words: Vec<u16> = bytes
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect();
    for line in disassemble(base, &words) {
        println!("{line}");
    }
    ExitCode::SUCCESS
}
