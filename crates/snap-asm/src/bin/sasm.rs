//! `sasm` — the SNAP assembler, as a command-line tool.
//!
//! ```text
//! sasm [--listing] [--symbols] [-o OUT.bin] FILE.s [FILE2.s ...]
//! ```
//!
//! Assembles and links the given modules in order. With `-o`, writes the
//! flattened IMEM image as little-endian 16-bit words (a DMEM image is
//! written to `OUT.dmem` when the program has a data section). With
//! `--listing`, prints a disassembly listing; with `--symbols`, the
//! symbol table.

use snap_asm::{disassemble, Assembler};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut listing = false;
    let mut symbols = false;
    let mut out: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listing" => listing = true,
            "--symbols" => symbols = true,
            "-o" => match args.next() {
                Some(path) => out = Some(path),
                None => {
                    eprintln!("sasm: -o requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: sasm [--listing] [--symbols] [-o OUT.bin] FILE.s ...");
                return ExitCode::SUCCESS;
            }
            other => inputs.push(other.to_string()),
        }
    }
    if inputs.is_empty() {
        eprintln!("sasm: no input files (try --help)");
        return ExitCode::FAILURE;
    }

    let mut asm = Assembler::new();
    for path in &inputs {
        match std::fs::read_to_string(path) {
            Ok(source) => {
                asm.add_module(path.clone(), source);
            }
            Err(e) => {
                eprintln!("sasm: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let program = match asm.link() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sasm: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "assembled {} module(s): {} code bytes, {} data words",
        inputs.len(),
        program.code_bytes(),
        program.dmem_image().len()
    );
    if symbols {
        println!("\nsymbols:");
        for (name, value) in program.symbols() {
            println!("  {name:<24} {value:#06x}");
        }
    }
    if listing {
        println!("\nlisting:");
        for line in disassemble(0, &program.imem_image()) {
            println!("  {line}");
        }
    }
    if let Some(path) = out {
        let image = program.imem_image();
        let bytes: Vec<u8> = image.iter().flat_map(|w| w.to_le_bytes()).collect();
        if let Err(e) = std::fs::write(&path, bytes) {
            eprintln!("sasm: {path}: {e}");
            return ExitCode::FAILURE;
        }
        let dmem = program.dmem_image();
        if !dmem.is_empty() {
            let dpath = format!("{path}.dmem");
            let bytes: Vec<u8> = dmem.iter().flat_map(|w| w.to_le_bytes()).collect();
            if let Err(e) = std::fs::write(&dpath, bytes) {
                eprintln!("sasm: {dpath}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
