//! Assembler diagnostics.

use std::fmt;

/// An assembly error, located by module name and 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// Module (source) name, `"<input>"` for single-source assembly.
    pub module: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl AsmError {
    /// An error at a specific line.
    pub fn new(module: impl Into<String>, line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            module: module.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.module, self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = AsmError::new("mac.s", 17, "unknown mnemonic `frob`");
        assert_eq!(e.to_string(), "mac.s:17: unknown mnemonic `frob`");
    }
}
