//! Assembled program images.

use crate::error::AsmError;
use snap_isa::{Addr, Word, MEM_WORDS};
use std::collections::BTreeMap;

/// A contiguous run of words at a fixed base address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Base word address.
    pub base: Addr,
    /// The words.
    pub words: Vec<Word>,
}

impl Segment {
    /// One-past-the-end address.
    pub fn end(&self) -> usize {
        self.base as usize + self.words.len()
    }
}

/// A fully assembled and linked program: IMEM and DMEM segments plus the
/// symbol table.
#[derive(Debug, Clone, Default)]
pub struct Program {
    imem: Vec<Segment>,
    dmem: Vec<Segment>,
    symbols: BTreeMap<String, i64>,
}

impl Program {
    pub(crate) fn new(
        imem: Vec<Segment>,
        dmem: Vec<Segment>,
        symbols: BTreeMap<String, i64>,
    ) -> Result<Program, AsmError> {
        check_overlap(&imem, "imem")?;
        check_overlap(&dmem, "dmem")?;
        Ok(Program {
            imem,
            dmem,
            symbols,
        })
    }

    /// IMEM segments, sorted by base address.
    pub fn imem_segments(&self) -> &[Segment] {
        &self.imem
    }

    /// DMEM segments, sorted by base address.
    pub fn dmem_segments(&self) -> &[Segment] {
        &self.dmem
    }

    /// Look up a symbol's value (label address or `.equ` constant).
    pub fn symbol(&self, name: &str) -> Option<Addr> {
        self.symbols.get(name).map(|&v| v as Addr)
    }

    /// The full symbol table.
    pub fn symbols(&self) -> &BTreeMap<String, i64> {
        &self.symbols
    }

    /// Flattened IMEM image from address 0 to the highest used word,
    /// zero-filled between segments.
    pub fn imem_image(&self) -> Vec<Word> {
        flatten(&self.imem)
    }

    /// Flattened DMEM image (see [`Program::imem_image`]).
    pub fn dmem_image(&self) -> Vec<Word> {
        flatten(&self.dmem)
    }

    /// Total IMEM words actually emitted (code size; the paper reports
    /// handler code sizes in bytes — multiply by two).
    pub fn imem_words_used(&self) -> usize {
        self.imem.iter().map(|s| s.words.len()).sum()
    }

    /// Code size in bytes, as the paper reports it.
    pub fn code_bytes(&self) -> usize {
        self.imem_words_used() * 2
    }
}

fn flatten(segments: &[Segment]) -> Vec<Word> {
    let len = segments.iter().map(Segment::end).max().unwrap_or(0);
    let mut image = vec![0; len];
    for seg in segments {
        image[seg.base as usize..seg.end()].copy_from_slice(&seg.words);
    }
    image
}

fn check_overlap(segments: &[Segment], bank: &str) -> Result<(), AsmError> {
    let mut sorted: Vec<&Segment> = segments.iter().collect();
    sorted.sort_by_key(|s| s.base);
    for pair in sorted.windows(2) {
        if pair[0].end() > pair[1].base as usize {
            return Err(AsmError::new(
                "<link>",
                0,
                format!(
                    "{bank} segments overlap: [{:#05x}..{:#05x}) and [{:#05x}..)",
                    pair[0].base,
                    pair[0].end(),
                    pair[1].base
                ),
            ));
        }
    }
    if let Some(last) = sorted.last() {
        if last.end() > MEM_WORDS {
            return Err(AsmError::new(
                "<link>",
                0,
                format!(
                    "{bank} image ends at {:#x}, beyond the 4KB bank",
                    last.end()
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(base: Addr, words: &[Word]) -> Segment {
        Segment {
            base,
            words: words.to_vec(),
        }
    }

    #[test]
    fn flatten_zero_fills_gaps() {
        let p = Program::new(vec![seg(0, &[1, 2]), seg(5, &[9])], vec![], BTreeMap::new()).unwrap();
        assert_eq!(p.imem_image(), vec![1, 2, 0, 0, 0, 9]);
        assert_eq!(p.imem_words_used(), 3);
        assert_eq!(p.code_bytes(), 6);
    }

    #[test]
    fn overlap_is_rejected() {
        let err = Program::new(
            vec![seg(0, &[1, 2, 3]), seg(2, &[9])],
            vec![],
            BTreeMap::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("overlap"));
    }

    #[test]
    fn beyond_bank_is_rejected() {
        let err = Program::new(vec![seg(2047, &[1, 2])], vec![], BTreeMap::new()).unwrap_err();
        assert!(err.to_string().contains("beyond"));
    }

    #[test]
    fn empty_program() {
        let p = Program::default();
        assert!(p.imem_image().is_empty());
        assert_eq!(p.symbol("x"), None);
    }
}
