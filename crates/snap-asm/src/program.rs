//! Assembled program images.

use crate::error::AsmError;
use snap_isa::{Addr, Word, MEM_WORDS};
use std::collections::{BTreeMap, BTreeSet};

/// A contiguous run of words at a fixed base address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Base word address.
    pub base: Addr,
    /// The words.
    pub words: Vec<Word>,
}

impl Segment {
    /// One-past-the-end address.
    pub fn end(&self) -> usize {
        self.base as usize + self.words.len()
    }
}

/// Source-level provenance of one assembled instruction: where it came
/// from and which lints the author suppressed on that line with a
/// `; lint:allow(id, ...)` comment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceLine {
    /// Module (file) name the instruction was assembled from.
    pub module: String,
    /// 1-based line number within the module.
    pub line: usize,
    /// Lint ids listed in a `lint:allow(...)` comment on the line.
    pub allowed_lints: Vec<String>,
}

/// A fully assembled and linked program: IMEM and DMEM segments plus the
/// symbol table.
#[derive(Debug, Clone, Default)]
pub struct Program {
    imem: Vec<Segment>,
    dmem: Vec<Segment>,
    symbols: BTreeMap<String, i64>,
    code_symbols: BTreeSet<String>,
    data_symbols: BTreeSet<String>,
    lines: BTreeMap<Addr, SourceLine>,
}

impl Program {
    pub(crate) fn new(
        imem: Vec<Segment>,
        dmem: Vec<Segment>,
        symbols: BTreeMap<String, i64>,
        code_symbols: BTreeSet<String>,
        data_symbols: BTreeSet<String>,
        lines: BTreeMap<Addr, SourceLine>,
    ) -> Result<Program, AsmError> {
        check_overlap(&imem, "imem")?;
        check_overlap(&dmem, "dmem")?;
        Ok(Program {
            imem,
            dmem,
            symbols,
            code_symbols,
            data_symbols,
            lines,
        })
    }

    /// IMEM segments, sorted by base address.
    pub fn imem_segments(&self) -> &[Segment] {
        &self.imem
    }

    /// DMEM segments, sorted by base address.
    pub fn dmem_segments(&self) -> &[Segment] {
        &self.dmem
    }

    /// Look up a symbol's value (label address or `.equ` constant).
    pub fn symbol(&self, name: &str) -> Option<Addr> {
        self.symbols.get(name).map(|&v| v as Addr)
    }

    /// The full symbol table.
    pub fn symbols(&self) -> &BTreeMap<String, i64> {
        &self.symbols
    }

    /// True when `name` was defined as a label in a `.text` section,
    /// i.e. its value is an IMEM address rather than a `.equ` constant
    /// or a DMEM data label. (Those share the flat symbol namespace and
    /// small constants collide with low code addresses.)
    pub fn is_code_symbol(&self, name: &str) -> bool {
        self.code_symbols.contains(name)
    }

    /// True when `name` was defined as a label in a `.data` section,
    /// i.e. its value is a DMEM word address.
    pub fn is_data_symbol(&self, name: &str) -> bool {
        self.data_symbols.contains(name)
    }

    /// Address ranges of the named data objects, sorted by base
    /// address: each data label owns the words from its address up to
    /// the next data label or the end of its containing DMEM segment.
    /// Used by the cross-handler DMEM conflict analysis to name the
    /// object a hazardous store hits.
    pub fn data_symbol_ranges(&self) -> Vec<(String, Addr, Addr)> {
        let mut labels: Vec<(Addr, &str)> = self
            .data_symbols
            .iter()
            .filter_map(|name| {
                self.symbols
                    .get(name)
                    .map(|&addr| (addr as Addr, name.as_str()))
            })
            .collect();
        labels.sort();
        let mut out = Vec::with_capacity(labels.len());
        for (i, &(base, name)) in labels.iter().enumerate() {
            let seg_end = self
                .dmem
                .iter()
                .find(|s| s.base <= base && (base as usize) < s.end())
                .map(|s| s.end() as Addr);
            let next_label = labels.get(i + 1).map(|&(a, _)| a);
            let end = match (seg_end, next_label) {
                (Some(se), Some(nl)) => se.min(nl),
                (Some(se), None) => se,
                // Label past every segment (e.g. one-past-the-end
                // marker): give it an empty range.
                (None, _) => base,
            };
            out.push((name.to_string(), base, end.max(base)));
        }
        out
    }

    /// Source provenance of the instruction starting at IMEM address
    /// `addr`, when known. Only instruction start addresses have
    /// entries; immediate words and data do not.
    pub fn source_line(&self, addr: Addr) -> Option<&SourceLine> {
        self.lines.get(&addr)
    }

    /// The full instruction-address → source-line table.
    pub fn source_lines(&self) -> &BTreeMap<Addr, SourceLine> {
        &self.lines
    }

    /// Flattened IMEM image from address 0 to the highest used word,
    /// zero-filled between segments.
    pub fn imem_image(&self) -> Vec<Word> {
        flatten(&self.imem)
    }

    /// Flattened DMEM image (see [`Program::imem_image`]).
    pub fn dmem_image(&self) -> Vec<Word> {
        flatten(&self.dmem)
    }

    /// Total IMEM words actually emitted (code size; the paper reports
    /// handler code sizes in bytes — multiply by two).
    pub fn imem_words_used(&self) -> usize {
        self.imem.iter().map(|s| s.words.len()).sum()
    }

    /// Code size in bytes, as the paper reports it.
    pub fn code_bytes(&self) -> usize {
        self.imem_words_used() * 2
    }
}

fn flatten(segments: &[Segment]) -> Vec<Word> {
    let len = segments.iter().map(Segment::end).max().unwrap_or(0);
    let mut image = vec![0; len];
    for seg in segments {
        image[seg.base as usize..seg.end()].copy_from_slice(&seg.words);
    }
    image
}

fn check_overlap(segments: &[Segment], bank: &str) -> Result<(), AsmError> {
    let mut sorted: Vec<&Segment> = segments.iter().collect();
    sorted.sort_by_key(|s| s.base);
    for pair in sorted.windows(2) {
        if pair[0].end() > pair[1].base as usize {
            return Err(AsmError::new(
                "<link>",
                0,
                format!(
                    "{bank} segments overlap: [{:#05x}..{:#05x}) and [{:#05x}..)",
                    pair[0].base,
                    pair[0].end(),
                    pair[1].base
                ),
            ));
        }
    }
    if let Some(last) = sorted.last() {
        if last.end() > MEM_WORDS {
            return Err(AsmError::new(
                "<link>",
                0,
                format!(
                    "{bank} image ends at {:#x}, beyond the 4KB bank",
                    last.end()
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(base: Addr, words: &[Word]) -> Segment {
        Segment {
            base,
            words: words.to_vec(),
        }
    }

    #[test]
    fn flatten_zero_fills_gaps() {
        let p = Program::new(
            vec![seg(0, &[1, 2]), seg(5, &[9])],
            vec![],
            BTreeMap::new(),
            BTreeSet::new(),
            BTreeSet::new(),
            BTreeMap::new(),
        )
        .unwrap();
        assert_eq!(p.imem_image(), vec![1, 2, 0, 0, 0, 9]);
        assert_eq!(p.imem_words_used(), 3);
        assert_eq!(p.code_bytes(), 6);
    }

    #[test]
    fn overlap_is_rejected() {
        let err = Program::new(
            vec![seg(0, &[1, 2, 3]), seg(2, &[9])],
            vec![],
            BTreeMap::new(),
            BTreeSet::new(),
            BTreeSet::new(),
            BTreeMap::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("overlap"));
    }

    #[test]
    fn beyond_bank_is_rejected() {
        let err = Program::new(
            vec![seg(2047, &[1, 2])],
            vec![],
            BTreeMap::new(),
            BTreeSet::new(),
            BTreeSet::new(),
            BTreeMap::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("beyond"));
    }

    #[test]
    fn empty_program() {
        let p = Program::default();
        assert!(p.imem_image().is_empty());
        assert_eq!(p.symbol("x"), None);
    }
}
