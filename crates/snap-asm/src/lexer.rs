//! Line tokenizer.
//!
//! Assembly is line-oriented; the lexer turns one line into a token
//! vector. Numbers, identifiers, punctuation and operators are enough —
//! structure (labels vs mnemonics vs operands) is the parser's job.

use crate::error::AsmError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier, mnemonic, register name or directive (with leading `.`).
    Ident(String),
    /// Integer literal (already parsed; char literals become their code).
    Number(i64),
    /// String literal (for `.ascii`).
    Str(String),
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// Tokenize one source line (comments already allowed in-line).
///
/// # Errors
///
/// Returns [`AsmError`] for malformed literals or unexpected characters.
pub fn tokenize(module: &str, line_no: usize, line: &str) -> Result<Vec<Token>, AsmError> {
    let err = |msg: String| AsmError::new(module, line_no, msg);
    let mut tokens = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            ';' | '#' => break, // comment to end of line
            '/' if bytes.get(i + 1) == Some(&b'/') => break,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '&' => {
                tokens.push(Token::Amp);
                i += 1;
            }
            '|' => {
                tokens.push(Token::Pipe);
                i += 1;
            }
            '^' => {
                tokens.push(Token::Caret);
                i += 1;
            }
            '<' if bytes.get(i + 1) == Some(&b'<') => {
                tokens.push(Token::Shl);
                i += 2;
            }
            '>' if bytes.get(i + 1) == Some(&b'>') => {
                tokens.push(Token::Shr);
                i += 2;
            }
            '"' => {
                let (s, consumed) = lex_string(&line[i..])
                    .ok_or_else(|| err("unterminated string literal".into()))?;
                tokens.push(Token::Str(s));
                i += consumed;
            }
            '\'' => {
                let (v, consumed) = lex_char(&line[i..])
                    .ok_or_else(|| err("malformed character literal".into()))?;
                tokens.push(Token::Number(v));
                i += consumed;
            }
            '0'..='9' => {
                let (v, consumed) = lex_number(&line[i..])
                    .ok_or_else(|| err(format!("malformed number near `{}`", &line[i..])))?;
                tokens.push(Token::Number(v));
                i += consumed;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '.' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(line[start..i].to_string()));
            }
            other => return Err(err(format!("unexpected character `{other}`"))),
        }
    }
    Ok(tokens)
}

fn lex_number(s: &str) -> Option<(i64, usize)> {
    let bytes = s.as_bytes();
    let (radix, skip) = if s.starts_with("0x") || s.starts_with("0X") {
        (16, 2)
    } else if s.starts_with("0b") || s.starts_with("0B") {
        (2, 2)
    } else {
        (10, 0)
    };
    let mut end = skip;
    while end < bytes.len() && (bytes[end] as char).is_digit(radix) {
        end += 1;
    }
    if end == skip {
        return None;
    }
    let v = i64::from_str_radix(&s[skip..end], radix).ok()?;
    Some((v, end))
}

fn lex_string(s: &str) -> Option<(String, usize)> {
    // s starts with '"'
    let mut out = String::new();
    let mut chars = s.char_indices().skip(1);
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, i + 1)),
            '\\' => match chars.next()?.1 {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '0' => out.push('\0'),
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                other => out.push(other),
            },
            other => out.push(other),
        }
    }
    None
}

fn lex_char(s: &str) -> Option<(i64, usize)> {
    // s starts with '\''
    let mut it = s.chars();
    it.next(); // opening quote
    let c = it.next()?;
    let (value, content_len) = if c == '\\' {
        let esc = it.next()?;
        let v = match esc {
            'n' => '\n',
            't' => '\t',
            '0' => '\0',
            other => other, // \\, \' and any other escaped char stand for themselves
        };
        (v as i64, 1 + esc.len_utf8())
    } else {
        (c as i64, c.len_utf8())
    };
    if it.next() == Some('\'') {
        Some((value, 1 + content_len + 1))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        tokenize("<t>", 1, s).unwrap()
    }

    #[test]
    fn basic_instruction_line() {
        assert_eq!(
            lex("  add r1, r2 ; sum"),
            vec![
                Token::Ident("add".into()),
                Token::Ident("r1".into()),
                Token::Comma,
                Token::Ident("r2".into()),
            ]
        );
    }

    #[test]
    fn label_and_memory_operand() {
        assert_eq!(
            lex("loop: lw r2, 4(r13)"),
            vec![
                Token::Ident("loop".into()),
                Token::Colon,
                Token::Ident("lw".into()),
                Token::Ident("r2".into()),
                Token::Comma,
                Token::Number(4),
                Token::LParen,
                Token::Ident("r13".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn number_radixes() {
        assert_eq!(
            lex("0x1F 0b101 42"),
            vec![Token::Number(31), Token::Number(5), Token::Number(42),]
        );
    }

    #[test]
    fn char_literals() {
        assert_eq!(lex("'A'"), vec![Token::Number(65)]);
        assert_eq!(lex("'\\n'"), vec![Token::Number(10)]);
    }

    #[test]
    fn string_literal_with_escapes() {
        assert_eq!(
            lex(r#".ascii "hi\n""#),
            vec![Token::Ident(".ascii".into()), Token::Str("hi\n".into()),]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            lex("1+2-3*4&5|6^7<<8>>9"),
            vec![
                Token::Number(1),
                Token::Plus,
                Token::Number(2),
                Token::Minus,
                Token::Number(3),
                Token::Star,
                Token::Number(4),
                Token::Amp,
                Token::Number(5),
                Token::Pipe,
                Token::Number(6),
                Token::Caret,
                Token::Number(7),
                Token::Shl,
                Token::Number(8),
                Token::Shr,
                Token::Number(9),
            ]
        );
    }

    #[test]
    fn comment_styles() {
        assert!(lex("; whole line").is_empty());
        assert!(lex("# hash comment").is_empty());
        assert!(lex("// slashes").is_empty());
        assert_eq!(lex("nop // trailing").len(), 1);
    }

    #[test]
    fn unexpected_character_is_error() {
        assert!(tokenize("<t>", 3, "add @r1").is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = tokenize("<t>", 9, r#".ascii "oops"#).unwrap_err();
        assert!(err.to_string().contains("unterminated"));
        assert_eq!(err.line, 9);
    }
}
