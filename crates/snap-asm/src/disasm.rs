//! Disassembler: word images back to readable listings.

use snap_isa::{Addr, Instruction, Word};
use std::fmt;

/// One line of disassembly.
#[derive(Debug, Clone, PartialEq)]
pub struct DisasmLine {
    /// Word address of the first word.
    pub addr: Addr,
    /// The raw words (one or two).
    pub words: Vec<Word>,
    /// The decoded instruction, or `None` for undecodable words
    /// (rendered as `.word`).
    pub instruction: Option<Instruction>,
}

impl fmt::Display for DisasmLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let raw: Vec<String> = self.words.iter().map(|w| format!("{w:04x}")).collect();
        let raw = raw.join(" ");
        match &self.instruction {
            Some(ins) => write!(f, "{:#05x}:  {raw:<10} {ins}", self.addr),
            None => write!(
                f,
                "{:#05x}:  {raw:<10} .word {:#06x}",
                self.addr, self.words[0]
            ),
        }
    }
}

/// Disassemble a word image starting at address `base`.
///
/// Decoding is linear: each undecodable word is emitted as a `.word`
/// line and decoding continues at the next word, so data interleaved
/// with code degrades gracefully.
///
/// ```
/// use snap_asm::{assemble, disassemble};
///
/// let program = assemble("li r1, 7\n halt")?;
/// let listing = disassemble(0, &program.imem_image());
/// assert_eq!(listing[0].instruction.unwrap().to_string(), "li r1, 0x7");
/// # Ok::<(), snap_asm::AsmError>(())
/// ```
pub fn disassemble(base: Addr, image: &[Word]) -> Vec<DisasmLine> {
    let mut lines = Vec::new();
    let mut i = 0;
    while i < image.len() {
        let addr = base.wrapping_add(i as Addr);
        let first = image[i];
        let two = Instruction::first_word_is_two_word(first);
        let second = if two { image.get(i + 1).copied() } else { None };
        match Instruction::decode(first, second) {
            Ok(ins) => {
                let n = ins.word_count();
                lines.push(DisasmLine {
                    addr,
                    words: image[i..i + n].to_vec(),
                    instruction: Some(ins),
                });
                i += n;
            }
            Err(_) => {
                lines.push(DisasmLine {
                    addr,
                    words: vec![first],
                    instruction: None,
                });
                i += 1;
            }
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::assemble;

    #[test]
    fn round_trip_through_assembler() {
        let p = assemble(
            r"
                li   r1, 0x1234
                add  r1, r2
                lw   r3, 7(r1)
            l:  bnez r3, l
                done
            ",
        )
        .unwrap();
        let lines = disassemble(0, &p.imem_image());
        let texts: Vec<String> = lines
            .iter()
            .map(|l| l.instruction.as_ref().unwrap().to_string())
            .collect();
        assert_eq!(
            texts,
            vec![
                "li r1, 0x1234",
                "add r1, r2",
                "lw r3, 0x7(r1)",
                "bnez r3, 0x5",
                "done",
            ]
        );
    }

    #[test]
    fn undecodable_words_become_word_directives() {
        let lines = disassemble(0, &[0xffff, Instruction::Nop.encode().first()]);
        assert!(lines[0].instruction.is_none());
        assert!(lines[0].to_string().contains(".word 0xffff"));
        assert_eq!(lines[1].instruction, Some(Instruction::Nop));
    }

    #[test]
    fn two_word_instruction_cut_at_end() {
        // `jmp` missing its immediate at the image end degrades to .word.
        let first = Instruction::Jmp { target: 1 }.encode().first();
        let lines = disassemble(0, &[first]);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].instruction.is_none());
    }

    #[test]
    fn addresses_advance_by_word_count() {
        let p = assemble("li r1, 1\n nop\n li r2, 2").unwrap();
        let lines = disassemble(0x100, &p.imem_image());
        assert_eq!(lines[0].addr, 0x100);
        assert_eq!(lines[1].addr, 0x102);
        assert_eq!(lines[2].addr, 0x103);
    }
}
