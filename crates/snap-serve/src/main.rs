//! `snap-serve` — run the simulation server from the command line.
//!
//! ```text
//! snap-serve [ADDR]        # default 127.0.0.1:7878
//! ```

use std::sync::Arc;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    if addr == "--help" || addr == "-h" {
        eprintln!("usage: snap-serve [ADDR]   (default 127.0.0.1:7878)");
        eprintln!("endpoints: see `snap_serve::http` docs or GET /");
        return;
    }
    let server = Arc::new(snap_serve::SimServer::new());
    let handle = match snap_serve::serve(server, &addr) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("snap-serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("snap-serve listening on http://{}", handle.addr());
    eprintln!(
        "submit: curl -s {}/sims -d '{{\"run_to_us\":100000}}'",
        handle.addr()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
