//! A minimal HTTP/1.1 front end over [`SimServer`].
//!
//! The workspace builds fully offline, so there is no async runtime to
//! lean on; the server is `std::net` + thread-per-connection, which is
//! entirely adequate for its job (tens of tenants steering
//! long-running sims, not a public edge). Every response closes the
//! connection; streaming uses `text/event-stream` with close-delimited
//! framing, so `curl -N` and any SSE client work unchanged.
//!
//! ## Endpoints
//!
//! | Method & path               | Body / response                                   |
//! |-----------------------------|---------------------------------------------------|
//! | `GET  /`                    | service info                                      |
//! | `GET  /sims`                | status of every sim                               |
//! | `POST /sims`                | scenario JSON (see [`crate::scenario`]) → `{id}`  |
//! | `GET  /sims/{id}`           | status document                                   |
//! | `POST /sims/{id}/pause`     | pause on the next slice boundary → status         |
//! | `POST /sims/{id}/resume`    | resume → status                                   |
//! | `POST /sims/{id}/run-to`    | `{"target_us": N}` extends the target → status    |
//! | `GET  /sims/{id}/snapshot`  | `application/octet-stream` snapshot bytes         |
//! | `POST /sims/{id}/fork`      | checkpoint + restore, paused → `{id}`             |
//! | `POST /sims/restore`        | snapshot bytes → new paused sim → `{id}`          |
//! | `GET  /sims/{id}/metrics`   | full `snap-metrics-v1` report                     |
//! | `GET  /sims/{id}/trace?from=N` | trace events from index `N`                    |
//! | `GET  /sims/{id}/uplink`    | gateway uplink frames (see `docs/FLEETS.md`)      |
//! | `GET  /sims/{id}/stream`    | SSE: status on every progress tick, ends when terminal |
//! | `DELETE /sims/{id}`         | stop and forget                                   |

use crate::server::{SimHandle, SimServer};
use snap_telemetry::{parse, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest accepted request body (snapshots of big fleets are a few
/// MB; scenarios are tiny).
const MAX_BODY: usize = 64 << 20;

/// A running HTTP server; dropping it stops the accept loop.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections. In-flight requests finish on their
    /// own threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:7878"`, port 0 for ephemeral) and
/// serve `server` until the handle is dropped.
///
/// # Errors
///
/// Socket bind failures.
pub fn serve(server: Arc<SimServer>, addr: &str) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("snap-serve-accept".to_string())
        .spawn(move || loop {
            if stop_flag.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let server = Arc::clone(&server);
                    let _ = std::thread::Builder::new()
                        .name("snap-serve-conn".to_string())
                        .spawn(move || handle_connection(&server, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        })?;
    Ok(ServeHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

struct Request {
    method: String,
    /// Path with the query string split off.
    path: String,
    query: String,
    body: Vec<u8>,
}

fn read_request(stream: &mut TcpStream) -> Option<Request> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).ok()?;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().ok()?;
            }
        }
    }
    if content_length > MAX_BODY {
        return None;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some(Request {
        method,
        path,
        query,
        body,
    })
}

fn write_response(stream: &mut TcpStream, status: u16, content_type: &str, body: &[u8]) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

fn json_ok(stream: &mut TcpStream, v: &Value) {
    write_response(stream, 200, "application/json", v.to_pretty().as_bytes());
}

fn json_error(stream: &mut TcpStream, status: u16, message: &str) {
    let mut v = Value::obj();
    v.set("error", Value::Str(message.to_string()));
    write_response(stream, status, "application/json", v.to_pretty().as_bytes());
}

fn id_json(id: u64) -> Value {
    let mut v = Value::obj();
    v.set("id", Value::Int(id as i64));
    v
}

fn query_param(query: &str, key: &str) -> Option<String> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v.to_string())
}

/// `GET /sims/{id}/stream`: one SSE `data:` line per progress tick
/// (slice completed, state change), final line at a terminal state,
/// then close. On a paused sim the stream idles, re-sending the
/// current status as a heartbeat every few seconds.
fn stream_sse(stream: &mut TcpStream, h: &Arc<SimHandle>) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut last_seq = u64::MAX;
    loop {
        let (v, seq, terminal) = h.wait_progress(last_seq, Duration::from_secs(3));
        last_seq = seq;
        let event = format!("data: {}\n\n", v.to_compact());
        if stream.write_all(event.as_bytes()).is_err() || stream.flush().is_err() {
            return;
        }
        if terminal {
            return;
        }
    }
}

fn handle_connection(server: &Arc<SimServer>, mut stream: TcpStream) {
    let Some(req) = read_request(&mut stream) else {
        json_error(&mut stream, 400, "malformed request");
        return;
    };
    route(server, &mut stream, &req);
}

fn route(server: &Arc<SimServer>, stream: &mut TcpStream, req: &Request) {
    let segs: Vec<&str> = req
        .path
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", []) => {
            let mut v = Value::obj();
            v.set("service", Value::Str("snap-serve".to_string())).set(
                "snapshot_format_version",
                Value::Int(i64::from(snap_snapshot::FORMAT_VERSION)),
            );
            json_ok(stream, &v);
        }
        ("GET", ["sims"]) => json_ok(stream, &server.list_json()),
        ("POST", ["sims"]) => {
            let text = String::from_utf8_lossy(&req.body);
            match crate::scenario::parse_scenario(&text) {
                Ok(s) => {
                    // Strict-lint preflight: a custom image with gating
                    // findings is refused with the structured body.
                    if let Err(body) = crate::scenario::lint_preflight(&s) {
                        write_response(
                            stream,
                            400,
                            "application/json",
                            body.to_pretty().as_bytes(),
                        );
                        return;
                    }
                    match server.submit(&s) {
                        Ok(id) => json_ok(stream, &id_json(id)),
                        Err(e) => json_error(stream, 400, &e),
                    }
                }
                Err(e) => json_error(stream, 400, &e),
            }
        }
        ("POST", ["sims", "restore"]) => match server.restore(&req.body) {
            Ok(id) => json_ok(stream, &id_json(id)),
            Err(e) => json_error(stream, 400, &e),
        },
        (_, ["sims", id, rest @ ..]) => {
            let Ok(id) = id.parse::<u64>() else {
                json_error(stream, 404, "bad sim id");
                return;
            };
            let Some(h) = server.get(id) else {
                json_error(stream, 404, "no such sim");
                return;
            };
            match (req.method.as_str(), rest) {
                ("GET", []) => json_ok(stream, &h.status_json()),
                ("DELETE", []) => {
                    server.remove(id);
                    json_ok(stream, &id_json(id));
                }
                ("POST", ["pause"]) => {
                    h.pause();
                    json_ok(stream, &h.status_json());
                }
                ("POST", ["resume"]) => {
                    h.resume();
                    json_ok(stream, &h.status_json());
                }
                ("POST", ["run-to"]) => {
                    let text = String::from_utf8_lossy(&req.body);
                    let target = parse(&text)
                        .ok()
                        .and_then(|v| v.get("target_us").and_then(Value::as_i64));
                    match target {
                        Some(us) if us >= 0 => {
                            h.run_to(us as u64);
                            json_ok(stream, &h.status_json());
                        }
                        _ => json_error(stream, 400, "expected {\"target_us\": N}"),
                    }
                }
                ("GET", ["snapshot"]) => {
                    let bytes = h.snapshot_bytes();
                    write_response(stream, 200, "application/octet-stream", &bytes);
                }
                ("POST", ["fork"]) => match server.fork(id) {
                    Ok(child) => json_ok(stream, &id_json(child)),
                    Err(e) => json_error(stream, 400, &e),
                },
                ("GET", ["metrics"]) => json_ok(stream, &h.metrics_json()),
                ("GET", ["uplink"]) => json_ok(stream, &h.uplink_json()),
                ("GET", ["trace"]) => {
                    let from = query_param(&req.query, "from")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0usize);
                    json_ok(stream, &h.trace_json(from));
                }
                ("GET", ["stream"]) => stream_sse(stream, &h),
                _ => json_error(stream, 404, "unknown endpoint"),
            }
        }
        _ => json_error(stream, 404, "unknown endpoint"),
    }
}
