//! Scenario specification — the JSON body of `POST /sims`.
//!
//! A scenario describes a fleet the server can build from scratch: how
//! many MAC ring nodes, blink background nodes, ATmega beacon motes
//! and gateways, the channel (range, loss probability, fade seed), the
//! core engine and network scheduler, battery budgets, and the
//! stimulus schedule. Parsing is strict about types and ranges — a bad
//! request must come back as HTTP 400, never a panic in a runner
//! thread.
//!
//! ```json
//! {
//!   "name": "demo",
//!   "mac_nodes": 3,
//!   "blink_nodes": 1,
//!   "avr_nodes": 2,
//!   "avr_period_ms": 50,
//!   "gateway": true,
//!   "battery": true,
//!   "battery_capacity_uah": 620.0,
//!   "range": 12.0,
//!   "loss": 0.15,
//!   "loss_seed": 42,
//!   "engine": "fused",
//!   "scheduler": "event",
//!   "stagger_us": 700,
//!   "irqs": [{"node": 1, "at_us": 5000}],
//!   "run_to_us": 10000,
//!   "slice_us": 1000,
//!   "start_paused": false
//! }
//! ```
//!
//! Every field except `run_to_us` has a default. Node ids are assigned
//! MAC ring first, then blink, then AVR motes, then the gateway — see
//! `docs/FLEETS.md` for the full schema and placement rules.

use dess::{SimDuration, SimTime};
use snap_apps::blink::blink_program;
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_core::{CoreConfig, Engine};
use snap_net::{NetworkSim, Position, Scheduler, Stimulus};
use snap_node::atmega::tinyos::beacon_system;
use snap_node::{BatteryConfig, NodeId, NodeKind};
use snap_telemetry::{parse, Value};

/// Hard cap on fleet size per submitted sim: the server is a
/// multi-tenant frontend, not the 10⁵-node batch path (use `netsim`
/// directly for that).
pub const MAX_NODES: u32 = 512;

/// Hard cap on the run target: one simulated minute.
pub const MAX_RUN_US: u64 = 60_000_000;

/// A buildable fleet description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name echoed in status reports.
    pub name: String,
    /// CSMA/MAC ring nodes (node `i` sends to `i+1`, wrapping).
    pub mac_nodes: u8,
    /// Timer-periodic blink nodes placed out of radio range.
    pub blink_nodes: u8,
    /// ATmega beacon motes placed in radio range of the MAC grid.
    pub avr_nodes: u8,
    /// Beacon period per AVR mote, in ≈1 ms timer ticks.
    pub avr_period_ms: u16,
    /// Add one mains-powered gateway that logs every heard word to its
    /// uplink buffer (`GET /sims/{id}/uplink`).
    pub gateway: bool,
    /// Attach chemistry-matched coin-cell budgets (SNAP vs AVR) to
    /// every non-gateway node; exhausted nodes die mid-run.
    pub battery: bool,
    /// Capacity override in µAh for every attached battery (tests use
    /// tiny values to exercise node death quickly).
    pub battery_capacity_uah: Option<f64>,
    /// Radio range (topology units).
    pub range: f64,
    /// Per-word loss probability in `[0, 1]`; 0 disables fading.
    pub loss: f64,
    /// Fade RNG seed (meaningful only when `loss > 0`).
    pub loss_seed: u64,
    /// Core execution engine for every node.
    pub engine: Engine,
    /// Network scheduler.
    pub scheduler: Scheduler,
    /// Gap between successive nodes' kick-off IRQs.
    pub stagger_us: u64,
    /// Extra sensor IRQs: `(node id, microseconds)`.
    pub irqs: Vec<(u32, u64)>,
    /// Simulated time the runner advances to.
    pub run_to_us: u64,
    /// Runner time slice: control operations (pause/snapshot/fork)
    /// land on slice boundaries.
    pub slice_us: u64,
    /// Submit in the paused state; `POST /sims/{id}/resume` starts it.
    pub start_paused: bool,
    /// Custom SNAP assembly. When present, one extra node running this
    /// image joins the fleet, placed out of radio range, with the last
    /// node id (after the gateway).
    pub asm: Option<String>,
    /// Run the strict `snap-lint` preflight over the custom image
    /// before accepting the submission (the default). `"lint": "skip"`
    /// opts out — the built-in apps are lint-clean by construction, so
    /// only `asm` is ever gated.
    pub lint_strict: bool,
}

impl Default for Scenario {
    fn default() -> Scenario {
        Scenario {
            name: "sim".to_string(),
            mac_nodes: 3,
            blink_nodes: 0,
            avr_nodes: 0,
            avr_period_ms: 50,
            gateway: false,
            battery: false,
            battery_capacity_uah: None,
            range: 12.0,
            loss: 0.0,
            loss_seed: 1,
            engine: Engine::Fused,
            scheduler: Scheduler::Auto,
            stagger_us: 700,
            irqs: Vec::new(),
            run_to_us: 10_000,
            slice_us: 1_000,
            start_paused: false,
            asm: None,
            lint_strict: true,
        }
    }
}

fn get_u64(v: &Value, key: &str, max: u64) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(f) => {
            let n = f
                .as_i64()
                .ok_or_else(|| format!("{key}: expected integer"))?;
            if n < 0 || n as u64 > max {
                return Err(format!("{key}: out of range (0..={max})"));
            }
            Ok(Some(n as u64))
        }
    }
}

fn get_f64(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(f) => Ok(Some(
            f.as_f64()
                .ok_or_else(|| format!("{key}: expected number"))?,
        )),
    }
}

/// Parse a scenario from its JSON text.
///
/// # Errors
///
/// A human-readable message naming the offending field (the HTTP layer
/// wraps it in a 400 response).
pub fn parse_scenario(text: &str) -> Result<Scenario, String> {
    let v = parse(text)?;
    let mut s = Scenario::default();
    if let Some(name) = v.get("name") {
        s.name = name
            .as_str()
            .ok_or("name: expected string")?
            .chars()
            .take(64)
            .collect();
    }
    if let Some(n) = get_u64(&v, "mac_nodes", u64::from(MAX_NODES))? {
        s.mac_nodes = u8::try_from(n).map_err(|_| "mac_nodes: at most 255")?;
    }
    if let Some(n) = get_u64(&v, "blink_nodes", u64::from(MAX_NODES))? {
        s.blink_nodes = u8::try_from(n).map_err(|_| "blink_nodes: at most 255")?;
    }
    if let Some(n) = get_u64(&v, "avr_nodes", u64::from(MAX_NODES))? {
        s.avr_nodes = u8::try_from(n).map_err(|_| "avr_nodes: at most 255")?;
    }
    if let Some(n) = get_u64(&v, "avr_period_ms", 60_000)? {
        if n == 0 {
            return Err("avr_period_ms: must be positive".to_string());
        }
        s.avr_period_ms = n as u16;
    }
    if let Some(p) = v.get("gateway") {
        s.gateway = match p {
            Value::Bool(b) => *b,
            _ => return Err("gateway: expected bool".to_string()),
        };
    }
    if let Some(p) = v.get("battery") {
        s.battery = match p {
            Value::Bool(b) => *b,
            _ => return Err("battery: expected bool".to_string()),
        };
    }
    if let Some(c) = get_f64(&v, "battery_capacity_uah")? {
        if !c.is_finite() || c <= 0.0 {
            return Err("battery_capacity_uah: must be finite and positive".to_string());
        }
        s.battery_capacity_uah = Some(c);
    }
    if let Some(a) = v.get("asm") {
        s.asm = Some(a.as_str().ok_or("asm: expected string")?.to_string());
    }
    if let Some(l) = v.get("lint") {
        s.lint_strict = match l.as_str() {
            Some("strict") => true,
            Some("skip") => false,
            _ => return Err("lint: expected \"strict\" or \"skip\"".to_string()),
        };
    }
    let total = u32::from(s.mac_nodes)
        + u32::from(s.blink_nodes)
        + u32::from(s.avr_nodes)
        + u32::from(s.gateway)
        + u32::from(s.asm.is_some());
    if total == 0 {
        return Err("scenario has zero nodes".to_string());
    }
    if total > MAX_NODES {
        return Err(format!(
            "scenario has {total} nodes; the cap is {MAX_NODES}"
        ));
    }
    if let Some(r) = get_f64(&v, "range")? {
        if !r.is_finite() || r <= 0.0 {
            return Err("range: must be finite and positive".to_string());
        }
        s.range = r;
    }
    if let Some(l) = get_f64(&v, "loss")? {
        if !l.is_finite() || !(0.0..=1.0).contains(&l) {
            return Err("loss: must be in [0, 1]".to_string());
        }
        s.loss = l;
    }
    if let Some(seed) = get_u64(&v, "loss_seed", u64::MAX - 1)? {
        s.loss_seed = seed;
    }
    if let Some(e) = v.get("engine") {
        s.engine = match e.as_str() {
            Some("interp") => Engine::Interp,
            Some("fused") => Engine::Fused,
            Some("aot") => Engine::Aot,
            _ => return Err("engine: expected \"interp\", \"fused\" or \"aot\"".to_string()),
        };
    }
    if let Some(sc) = v.get("scheduler") {
        s.scheduler = match sc.as_str() {
            Some("lockstep") => Scheduler::Lockstep,
            Some("event") => Scheduler::EventDriven,
            Some("sharded") => Scheduler::Sharded,
            Some("auto") => Scheduler::Auto,
            _ => {
                return Err(
                    "scheduler: expected \"lockstep\", \"event\", \"sharded\" or \"auto\""
                        .to_string(),
                )
            }
        };
    }
    if let Some(us) = get_u64(&v, "stagger_us", MAX_RUN_US)? {
        s.stagger_us = us;
    }
    if let Some(irqs) = v.get("irqs") {
        for (i, irq) in irqs
            .elements()
            .ok_or("irqs: expected array")?
            .iter()
            .enumerate()
        {
            let node = get_u64(irq, "node", u64::from(MAX_NODES))?
                .ok_or_else(|| format!("irqs[{i}]: missing node"))?;
            let at_us = get_u64(irq, "at_us", MAX_RUN_US)?
                .ok_or_else(|| format!("irqs[{i}]: missing at_us"))?;
            if node == 0 || node > u64::from(total) {
                return Err(format!("irqs[{i}].node: no such node"));
            }
            // AVR motes have no SNAP sensor-IRQ pin; ids land after
            // the MAC + blink block (see `build`).
            let first_avr = u64::from(s.mac_nodes) + u64::from(s.blink_nodes) + 1;
            if s.avr_nodes > 0 && node >= first_avr && node < first_avr + u64::from(s.avr_nodes) {
                return Err(format!("irqs[{i}].node: AVR motes take no sensor IRQ"));
            }
            s.irqs.push((node as u32, at_us));
        }
    }
    s.run_to_us = get_u64(&v, "run_to_us", MAX_RUN_US)?.ok_or("missing field: run_to_us")?;
    if let Some(us) = get_u64(&v, "slice_us", 1_000_000)? {
        if us == 0 {
            return Err("slice_us: must be positive".to_string());
        }
        s.slice_us = us;
    }
    if let Some(p) = v.get("start_paused") {
        s.start_paused = match p {
            Value::Bool(b) => *b,
            _ => return Err("start_paused: expected bool".to_string()),
        };
    }
    Ok(s)
}

/// Build the fleet a scenario describes. Deterministic: the same
/// scenario always yields the same initial state (this is what makes
/// the smoke test's straight-run comparison meaningful).
///
/// # Errors
///
/// Program assembly failures (should not happen for the built-in apps;
/// surfaced rather than unwrapped so a server never panics).
pub fn build(s: &Scenario) -> Result<NetworkSim, String> {
    let core = CoreConfig {
        engine: s.engine,
        ..CoreConfig::default()
    };
    let mut sim = NetworkSim::new(s.range);
    sim.set_scheduler(s.scheduler);
    if s.loss > 0.0 {
        sim.set_loss(s.loss, s.loss_seed);
    }
    for i in 0..s.mac_nodes {
        let dst = if i + 1 == s.mac_nodes { 1 } else { i + 2 };
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let program = mac_program(i + 1, &extra, &app).map_err(|e| e.to_string())?;
        let (col, row) = (f64::from(i % 5), f64::from(i / 5));
        let id = sim.add_node_with_core(&program, Position::new(col * 8.0, row * 8.0), core);
        sim.schedule(
            id,
            SimTime::ZERO + SimDuration::from_us(1_000 + s.stagger_us * u64::from(i)),
            Stimulus::SensorIrq,
        );
    }
    for i in 0..s.blink_nodes {
        sim.add_node_with_core(
            &blink_program().map_err(|e| e.to_string())?,
            Position::new(10_000.0 + f64::from(i) * 100.0, 0.0),
            core,
        );
    }
    // AVR beacon motes go on a row below the MAC grid, in radio range
    // of its first column cells: heterogeneous traffic on shared air.
    for i in 0..s.avr_nodes {
        let (avr_core, _) =
            beacon_system(i + 1, s.avr_period_ms.max(1)).map_err(|e| e.to_string())?;
        let (col, row) = (f64::from(i % 5), f64::from(i / 5));
        sim.add_avr_node(avr_core, Position::new(col * 8.0, -8.0 - row * 8.0));
    }
    if s.gateway {
        // The gateway bridges from boot regardless of its program; a
        // boot-and-sleep image keeps its core out of the airtime.
        let program = snap_asm::assemble("done").map_err(|e| e.to_string())?;
        sim.add_gateway_with_core(&program, Position::new(4.0, 4.0), core);
    }
    if s.battery {
        for n in 1..=sim.node_count() as u32 {
            let id = NodeId(n);
            let mut battery = match sim.node(id).kind() {
                NodeKind::Snap => BatteryConfig::coin_cell_snap(),
                NodeKind::Avr => BatteryConfig::coin_cell_avr(),
                NodeKind::Gateway => continue, // mains-powered
            };
            if let Some(c) = s.battery_capacity_uah {
                battery.capacity_uah = c;
            }
            sim.set_battery(id, Some(battery));
        }
    }
    if let Some(src) = &s.asm {
        let program = snap_asm::assemble(src).map_err(|e| format!("asm: {e}"))?;
        // Out of radio range of the MAC grid and the blink row: custom
        // images share the clock, not the air.
        sim.add_node_with_core(&program, Position::new(-10_000.0, 0.0), core);
    }
    for &(node, at_us) in &s.irqs {
        sim.schedule(
            NodeId(node),
            SimTime::ZERO + SimDuration::from_us(at_us),
            Stimulus::SensorIrq,
        );
    }
    Ok(sim)
}

/// The strict-lint preflight for `POST /sims`: a custom image that
/// fails `snap-lint --strict` (any warning-or-error finding, including
/// the whole-image event-flow lints) is rejected before a runner
/// thread ever sees it, unless the scenario opted out with
/// `"lint": "skip"`. The error is a structured JSON body listing every
/// gating diagnostic.
///
/// # Errors
///
/// The response body to return with HTTP 400.
pub fn lint_preflight(s: &Scenario) -> Result<(), Value> {
    let (Some(src), true) = (&s.asm, s.lint_strict) else {
        return Ok(());
    };
    let fail = |msg: String, diags: Vec<Value>| {
        let mut v = Value::obj();
        v.set("error", Value::Str(msg))
            .set("lint", Value::Str("strict".to_string()))
            .set(
                "hint",
                Value::Str("fix the findings or resubmit with \"lint\": \"skip\"".to_string()),
            )
            .set("diagnostics", Value::Arr(diags));
        v
    };
    let program = match snap_asm::assemble(src) {
        Ok(p) => p,
        // `build` would also refuse; failing here keeps the error shape
        // uniform for clients that always inspect `diagnostics`.
        Err(e) => return Err(fail(format!("asm does not assemble: {e}"), Vec::new())),
    };
    // Lint at the operating point the fleet actually runs
    // (`CoreConfig::default()` is the 1.8 V bring-up point).
    let analysis = snap_lint::analyze_program(&program, snap_energy::OperatingPoint::V1_8);
    let gating: Vec<&snap_lint::Diagnostic> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.severity >= snap_lint::Severity::Warning)
        .collect();
    if gating.is_empty() {
        return Ok(());
    }
    let diags = gating
        .iter()
        .map(|d| {
            let mut v = Value::obj();
            v.set("lint", Value::Str(d.lint.to_string()))
                .set("severity", Value::Str(d.severity.label().to_string()))
                .set("message", Value::Str(d.message.clone()));
            if let Some(pc) = d.pc {
                v.set("pc", Value::Int(i64::from(pc)));
            }
            v
        })
        .collect();
    Err(fail(
        format!("asm fails strict lint with {} finding(s)", gating.len()),
        diags,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = parse_scenario(r#"{"run_to_us": 5000}"#).unwrap();
        assert_eq!(s.mac_nodes, 3);
        assert_eq!(s.run_to_us, 5_000);
        assert!(!s.start_paused);
        assert!(build(&s).is_ok());
    }

    #[test]
    fn full_scenario_parses() {
        let s = parse_scenario(
            r#"{"name":"x","mac_nodes":4,"blink_nodes":2,"range":20.0,
                "loss":0.3,"loss_seed":9,"engine":"aot","scheduler":"sharded",
                "stagger_us":500,"irqs":[{"node":2,"at_us":4000}],
                "run_to_us":9000,"slice_us":250,"start_paused":true}"#,
        )
        .unwrap();
        assert_eq!(s.mac_nodes, 4);
        assert_eq!(s.irqs, vec![(2, 4_000)]);
        assert!(s.start_paused);
        let sim = build(&s).unwrap();
        assert_eq!(sim.node_count(), 6);
    }

    #[test]
    fn mixed_fleet_scenario_builds_and_validates() {
        let s = parse_scenario(
            r#"{"mac_nodes":2,"avr_nodes":2,"gateway":true,"battery":true,
                "run_to_us":1000}"#,
        )
        .unwrap();
        assert_eq!(s.avr_nodes, 2);
        assert!(s.gateway && s.battery);
        let sim = build(&s).unwrap();
        assert_eq!(sim.node_count(), 5);
        assert_eq!(sim.node(NodeId(1)).kind(), NodeKind::Snap);
        assert_eq!(sim.node(NodeId(3)).kind(), NodeKind::Avr);
        assert_eq!(sim.node(NodeId(5)).kind(), NodeKind::Gateway);
        assert!(sim.node(NodeId(1)).battery().is_some());
        assert!(sim.node(NodeId(3)).battery().is_some());
        // The gateway is mains-powered: no budget even when the fleet
        // has batteries.
        assert!(sim.node(NodeId(5)).battery().is_none());
    }

    #[test]
    fn avr_irq_targets_are_rejected() {
        let err = parse_scenario(
            r#"{"mac_nodes":2,"avr_nodes":1,"run_to_us":1000,
                "irqs":[{"node":3,"at_us":1}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("sensor IRQ"), "{err}");
    }

    #[test]
    fn bad_scenarios_are_rejected_with_field_names() {
        for (body, needle) in [
            (r#"{}"#, "run_to_us"),
            (r#"{"run_to_us":1000,"engine":"jit"}"#, "engine"),
            (r#"{"run_to_us":1000,"loss":1.5}"#, "loss"),
            (
                r#"{"run_to_us":1000,"mac_nodes":0,"blink_nodes":0}"#,
                "zero",
            ),
            (
                r#"{"run_to_us":1000,"irqs":[{"node":9,"at_us":1}]}"#,
                "node",
            ),
            (r#"{"run_to_us":999999999999}"#, "run_to_us"),
            (r#"not json"#, "invalid"),
        ] {
            let err = parse_scenario(body).unwrap_err();
            assert!(err.contains(needle), "body {body:?}: error {err:?}");
        }
    }
}
