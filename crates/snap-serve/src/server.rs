//! The multi-tenant simulation registry.
//!
//! Each submitted scenario becomes a [`SimHandle`]: the fleet plus a
//! dedicated runner thread that advances it slice by slice toward its
//! target time. Control operations (pause, resume, snapshot, fork,
//! status) take the same mutex the runner holds while advancing a
//! slice, so every operation lands on a **slice boundary** — exactly
//! the `run_until` boundary where `snap-net` snapshots are defined
//! (see `snap_net::snapshot`). There is no way to observe or
//! checkpoint a sim mid-slice, by construction.
//!
//! Forking is snapshot + restore in process: the child starts paused
//! at the parent's clock with the parent's target, and resuming it
//! must land bit-identically on the parent's own future — the smoke
//! test (`tests/smoke.rs`) and the `fork_resume_is_bit_identical` unit
//! test below enforce that.

use crate::scenario::Scenario;
use dess::{SimDuration, SimTime};
use snap_net::{NetworkSim, TraceKind};
use snap_node::{NodeId, NodeKind};
use snap_snapshot::Snapshot;
use snap_telemetry::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Identifies one simulation within a server.
pub type SimId = u64;

/// Lifecycle state of a managed simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimStatus {
    /// The runner is advancing toward the target time.
    Running,
    /// Paused on a slice boundary; `resume` continues.
    Paused,
    /// Reached the target time. `run_to` with a later target restarts.
    Done,
    /// A node faulted ([`snap_node::NodeError`]); terminal.
    Faulted(String),
}

impl SimStatus {
    fn label(&self) -> &'static str {
        match self {
            SimStatus::Running => "running",
            SimStatus::Paused => "paused",
            SimStatus::Done => "done",
            SimStatus::Faulted(_) => "faulted",
        }
    }

    /// Terminal states end `GET /sims/{id}/stream`.
    pub fn is_terminal(&self) -> bool {
        matches!(self, SimStatus::Done | SimStatus::Faulted(_))
    }
}

struct Inner {
    sim: NetworkSim,
    status: SimStatus,
    target_us: u64,
    slice_us: u64,
    /// Bumps on every state change; streaming clients wait on it.
    seq: u64,
    stop: bool,
}

/// One managed simulation: shared state plus the condvar the runner
/// and streaming clients rendezvous on.
pub struct SimHandle {
    id: SimId,
    name: String,
    inner: Mutex<Inner>,
    wake: Condvar,
}

fn now_us(sim: &NetworkSim) -> u64 {
    sim.now().as_ps() / 1_000_000
}

impl SimHandle {
    /// This sim's id.
    pub fn id(&self) -> SimId {
        self.id
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A runner that panicked mid-slice poisons the mutex; the sim
        // state is still readable and the status tells the story.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Pause on the next slice boundary. No-op unless running.
    pub fn pause(&self) {
        let mut g = self.lock();
        if g.status == SimStatus::Running {
            g.status = SimStatus::Paused;
            g.seq += 1;
            self.wake.notify_all();
        }
    }

    /// Resume a paused sim (also restarts a `Done` sim whose target was
    /// extended). Faulted sims stay faulted.
    pub fn resume(&self) {
        let mut g = self.lock();
        if matches!(g.status, SimStatus::Paused | SimStatus::Done) {
            g.status = SimStatus::Running;
            g.seq += 1;
            self.wake.notify_all();
        }
    }

    /// Extend the run target. Does not change pause state; a `Done` sim
    /// becomes `Running` again when the new target is later.
    pub fn run_to(&self, target_us: u64) {
        let mut g = self.lock();
        g.target_us = g.target_us.max(target_us);
        if g.status == SimStatus::Done && now_us(&g.sim) < g.target_us {
            g.status = SimStatus::Running;
        }
        g.seq += 1;
        self.wake.notify_all();
    }

    /// Serialize the sim at the current slice boundary.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let g = self.lock();
        Snapshot::Fleet(Box::new(g.sim.export_snapshot())).to_bytes()
    }

    /// Current status document (see `docs` on the HTTP layer).
    pub fn status_json(&self) -> Value {
        let g = self.lock();
        self.status_json_locked(&g)
    }

    fn status_json_locked(&self, g: &Inner) -> Value {
        let mut per_node = Vec::with_capacity(g.sim.node_count());
        for n in 1..=g.sim.node_count() as u32 {
            let node = g.sim.node(NodeId(n));
            let mut v = Value::obj();
            v.set("node", Value::Int(i64::from(n)));
            let kind = match node.kind() {
                NodeKind::Snap => "snap",
                NodeKind::Avr => "avr",
                NodeKind::Gateway => "gateway",
            };
            v.set("kind", Value::Str(kind.to_string()));
            let energy = match node.kind() {
                NodeKind::Avr => {
                    let mote = node.avr().expect("avr node has a mote");
                    v.set(
                        "active_cycles",
                        Value::Int(mote.core().active_cycles() as i64),
                    );
                    mote.active_energy()
                }
                _ => {
                    let stats = node.cpu().stats();
                    v.set("instructions", Value::Int(stats.instructions as i64))
                        .set("handlers", Value::Int(stats.handlers_dispatched as i64));
                    stats.energy
                }
            };
            v.set("energy_pj", Value::Float(energy.as_pj()))
                // The exact bits, for bit-identity checks over HTTP —
                // a float rendering would round.
                .set(
                    "energy_bits",
                    Value::Str(format!("{:016x}", energy.as_pj().to_bits())),
                );
            if let Some(at) = node.died_at() {
                v.set("died_at_us", Value::Int((at.as_ps() / 1_000_000) as i64));
            }
            per_node.push(v);
        }
        let mut v = Value::obj();
        v.set("id", Value::Int(self.id as i64))
            .set("name", Value::Str(self.name.clone()))
            .set("state", Value::Str(g.status.label().to_string()))
            .set(
                "fault",
                match &g.status {
                    SimStatus::Faulted(e) => Value::Str(e.clone()),
                    _ => Value::Null,
                },
            )
            .set("now_us", Value::Int(now_us(&g.sim) as i64))
            .set("target_us", Value::Int(g.target_us as i64))
            .set("seq", Value::Int(g.seq as i64))
            .set("nodes", Value::Int(g.sim.node_count() as i64))
            .set(
                "deliveries",
                Value::Int(g.sim.channel().deliveries() as i64),
            )
            .set(
                "collisions",
                Value::Int(g.sim.channel().collisions() as i64),
            )
            .set("faded", Value::Int(g.sim.channel().faded() as i64))
            .set(
                "trace_recorded",
                Value::Int(g.sim.trace().recorded() as i64),
            )
            .set("per_node", Value::Arr(per_node));
        v
    }

    /// Block until `seq` moves past `last_seq`, the sim reaches a
    /// terminal state, or `timeout` elapses; returns the fresh status
    /// document, its `seq`, and whether the state is terminal.
    pub fn wait_progress(&self, last_seq: u64, timeout: Duration) -> (Value, u64, bool) {
        let mut g = self.lock();
        if g.seq == last_seq && !g.status.is_terminal() {
            let (guard, _timeout) = match self.wake.wait_timeout(g, timeout) {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            g = guard;
        }
        (self.status_json_locked(&g), g.seq, g.status.is_terminal())
    }

    /// The full `snap-metrics-v1` report for this sim.
    pub fn metrics_json(&self) -> Value {
        let g = self.lock();
        // First SNAP-cored node's operating point; an all-AVR fleet
        // reports the default (the field describes SNAP vdd only).
        let vdd = (1..=g.sim.node_count() as u32)
            .map(|n| g.sim.node(NodeId(n)))
            .find(|node| node.kind() != NodeKind::Avr)
            .map(|node| node.cpu().config().operating_point.vdd())
            .unwrap_or_else(|| snap_core::CoreConfig::default().operating_point.vdd());
        g.sim.metrics_report("snap-serve", vdd)
    }

    /// Buffered gateway uplink frames across the fleet, in node order.
    /// Non-draining: repeated reads see a growing log, so polling
    /// clients can diff by count.
    pub fn uplink_json(&self) -> Value {
        let g = self.lock();
        let mut frames = Vec::new();
        for n in 1..=g.sim.node_count() as u32 {
            let node = g.sim.node(NodeId(n));
            if node.kind() != NodeKind::Gateway {
                continue;
            }
            for f in node.uplink() {
                let mut v = Value::obj();
                v.set("node", Value::Int(i64::from(n)))
                    .set("at_ps", Value::Int(f.at.as_ps() as i64))
                    .set("word", Value::Int(i64::from(f.word)));
                frames.push(v);
            }
        }
        let mut v = Value::obj();
        v.set("count", Value::Int(frames.len() as i64))
            .set("frames", Value::Arr(frames));
        v
    }

    /// Trace events from index `from` on, as JSON.
    pub fn trace_json(&self, from: usize) -> Value {
        let g = self.lock();
        let events = g.sim.trace().events();
        let from = from.min(events.len());
        let items: Vec<Value> = events[from..]
            .iter()
            .map(|e| {
                let mut v = Value::obj();
                v.set("at_ps", Value::Int(e.at_ps as i64))
                    .set("node", Value::Int(i64::from(e.node.0)));
                match e.kind {
                    TraceKind::Transmit { word } => {
                        v.set("kind", Value::Str("transmit".into()))
                            .set("word", Value::Int(i64::from(word)));
                    }
                    TraceKind::Deliver { word, from } => {
                        v.set("kind", Value::Str("deliver".into()))
                            .set("word", Value::Int(i64::from(word)))
                            .set("from", Value::Int(i64::from(from.0)));
                    }
                    TraceKind::Collision { from } => {
                        v.set("kind", Value::Str("collision".into()))
                            .set("from", Value::Int(i64::from(from.0)));
                    }
                    TraceKind::Led { value } => {
                        v.set("kind", Value::Str("led".into()))
                            .set("value", Value::Int(i64::from(value)));
                    }
                    TraceKind::Stimulus => {
                        v.set("kind", Value::Str("stimulus".into()));
                    }
                    TraceKind::NodeDeath => {
                        v.set("kind", Value::Str("node_death".into()));
                    }
                }
                v
            })
            .collect();
        let mut v = Value::obj();
        v.set("from", Value::Int(from as i64))
            .set("count", Value::Int(items.len() as i64))
            .set("events", Value::Arr(items));
        v
    }

    fn shutdown(&self) {
        let mut g = self.lock();
        g.stop = true;
        self.wake.notify_all();
    }
}

/// The runner: advance slice by slice while `Running`, park otherwise.
/// Holding the lock across `run_until` is what makes every control
/// operation land on a slice boundary.
fn runner(h: Arc<SimHandle>) {
    let mut g = h.lock();
    loop {
        if g.stop {
            return;
        }
        if g.status != SimStatus::Running {
            g = match h.wake.wait(g) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            continue;
        }
        let now = now_us(&g.sim);
        if now >= g.target_us {
            g.status = SimStatus::Done;
            g.seq += 1;
            h.wake.notify_all();
            continue;
        }
        let next = (now + g.slice_us).min(g.target_us);
        if let Err(e) = g.sim.run_until(SimTime::ZERO + SimDuration::from_us(next)) {
            g.status = SimStatus::Faulted(e.to_string());
        }
        g.seq += 1;
        h.wake.notify_all();
        // Give queued control operations a chance at the lock between
        // slices.
        drop(g);
        std::thread::yield_now();
        g = h.lock();
    }
}

/// The registry: submit, look up, fork, restore, list, remove.
pub struct SimServer {
    sims: Mutex<BTreeMap<SimId, Arc<SimHandle>>>,
    next_id: AtomicU64,
}

impl Default for SimServer {
    fn default() -> SimServer {
        SimServer::new()
    }
}

impl SimServer {
    /// An empty registry.
    pub fn new() -> SimServer {
        SimServer {
            sims: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(0),
        }
    }

    fn insert(
        &self,
        name: String,
        sim: NetworkSim,
        target_us: u64,
        slice_us: u64,
        paused: bool,
    ) -> SimId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let handle = Arc::new(SimHandle {
            id,
            name,
            inner: Mutex::new(Inner {
                sim,
                status: if paused {
                    SimStatus::Paused
                } else {
                    SimStatus::Running
                },
                target_us,
                slice_us: slice_us.max(1),
                seq: 0,
                stop: false,
            }),
            wake: Condvar::new(),
        });
        let for_runner = Arc::clone(&handle);
        std::thread::Builder::new()
            .name(format!("sim-{id}"))
            .spawn(move || runner(for_runner))
            .expect("spawn sim runner");
        self.sims.lock().unwrap().insert(id, handle);
        id
    }

    /// Build and start (or park, if `start_paused`) a scenario.
    ///
    /// # Errors
    ///
    /// Scenario build failures, as a client-facing message.
    pub fn submit(&self, s: &Scenario) -> Result<SimId, String> {
        let sim = crate::scenario::build(s)?;
        Ok(self.insert(s.name.clone(), sim, s.run_to_us, s.slice_us, s.start_paused))
    }

    /// Look up a sim by id.
    pub fn get(&self, id: SimId) -> Option<Arc<SimHandle>> {
        self.sims.lock().unwrap().get(&id).cloned()
    }

    /// Fork: checkpoint the parent on its current slice boundary and
    /// restore into a new sim, **paused**, with the parent's target and
    /// slice. Resuming the child replays the parent's exact future.
    ///
    /// # Errors
    ///
    /// Unknown id, or a snapshot restore failure.
    pub fn fork(&self, id: SimId) -> Result<SimId, String> {
        let parent = self.get(id).ok_or("no such sim")?;
        let (snap, target_us, slice_us) = {
            let g = parent.lock();
            (g.sim.export_snapshot(), g.target_us, g.slice_us)
        };
        let sim = NetworkSim::from_snapshot(&snap).map_err(|e| e.to_string())?;
        Ok(self.insert(
            format!("{}+fork", parent.name),
            sim,
            target_us,
            slice_us,
            true,
        ))
    }

    /// Restore a previously downloaded snapshot into a new, paused sim.
    /// Its target starts at its own clock; `run_to` then `resume` to
    /// continue.
    ///
    /// # Errors
    ///
    /// Undecodable or structurally corrupt snapshot bytes.
    pub fn restore(&self, bytes: &[u8]) -> Result<SimId, String> {
        let snap = Snapshot::from_bytes(bytes).map_err(|e| e.to_string())?;
        let fleet = snap.as_fleet().ok_or("snapshot is not a fleet")?;
        let sim = NetworkSim::from_snapshot(fleet).map_err(|e| e.to_string())?;
        let target_us = now_us(&sim);
        Ok(self.insert("restored".to_string(), sim, target_us, 1_000, true))
    }

    /// Status documents for every sim, in id order.
    pub fn list_json(&self) -> Value {
        let handles: Vec<Arc<SimHandle>> = self.sims.lock().unwrap().values().cloned().collect();
        let mut v = Value::obj();
        v.set(
            "sims",
            Value::Arr(handles.iter().map(|h| h.status_json()).collect()),
        );
        v
    }

    /// Stop and drop a sim.
    pub fn remove(&self, id: SimId) -> bool {
        match self.sims.lock().unwrap().remove(&id) {
            Some(h) => {
                h.shutdown();
                true
            }
            None => false,
        }
    }

    /// Stop every runner thread (used on server shutdown and in tests).
    pub fn shutdown(&self) {
        for h in self.sims.lock().unwrap().values() {
            h.shutdown();
        }
    }
}

impl Drop for SimServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Block until the sim reaches a terminal state ([`SimStatus::Done`] or
/// [`SimStatus::Faulted`]); returns the final status document. Test and
/// CLI helper; streaming clients use [`SimHandle::wait_progress`].
pub fn wait_terminal(h: &SimHandle, timeout: Duration) -> Result<Value, String> {
    let deadline = std::time::Instant::now() + timeout;
    let mut seq = u64::MAX;
    loop {
        let (v, s, terminal) = h.wait_progress(seq, Duration::from_millis(50));
        if terminal {
            return Ok(v);
        }
        seq = s;
        if std::time::Instant::now() >= deadline {
            return Err(format!("sim {} not terminal after {timeout:?}", h.id()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{parse_scenario, Scenario};

    fn mac_scenario(run_to_us: u64) -> Scenario {
        parse_scenario(&format!(
            r#"{{"mac_nodes":3,"loss":0.15,"loss_seed":42,"engine":"fused",
                "scheduler":"event","stagger_us":700,"run_to_us":{run_to_us},
                "slice_us":500}}"#
        ))
        .unwrap()
    }

    fn energy_bits(v: &Value) -> Vec<String> {
        v.get("per_node")
            .unwrap()
            .elements()
            .unwrap()
            .iter()
            .map(|n| n.get("energy_bits").unwrap().as_str().unwrap().to_string())
            .collect()
    }

    #[test]
    fn submitted_sim_runs_to_target_and_reports() {
        let server = SimServer::new();
        // Lossless and long enough for the MAC ring to complete a
        // handshake, so the deliveries assertion is meaningful.
        let s = parse_scenario(
            r#"{"mac_nodes":3,"engine":"fused","scheduler":"event",
                "stagger_us":900,"run_to_us":30000,"slice_us":1000}"#,
        )
        .unwrap();
        let id = server.submit(&s).unwrap();
        let h = server.get(id).unwrap();
        let v = wait_terminal(&h, Duration::from_secs(30)).unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("done"));
        assert_eq!(v.get("now_us").unwrap().as_i64(), Some(30_000));
        assert!(v.get("deliveries").unwrap().as_i64().unwrap() > 0);
        let trace = h.trace_json(0);
        assert!(trace.get("count").unwrap().as_i64().unwrap() > 0);
        snap_telemetry::validate_metrics(&h.metrics_json().to_pretty()).unwrap();
    }

    /// A heterogeneous fleet (SNAP ring + AVR mote + gateway, all on
    /// battery budgets) runs to target, bridges frames to the uplink,
    /// and emits a schema-valid mixed-kind metrics report.
    #[test]
    fn mixed_fleet_runs_and_bridges_uplink() {
        let server = SimServer::new();
        let s = parse_scenario(
            r#"{"mac_nodes":2,"avr_nodes":1,"gateway":true,"battery":true,
                "engine":"fused","scheduler":"event","stagger_us":900,
                "run_to_us":50000,"slice_us":1000}"#,
        )
        .unwrap();
        let id = server.submit(&s).unwrap();
        let h = server.get(id).unwrap();
        let v = wait_terminal(&h, Duration::from_secs(60)).unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("done"), "{v:?}");
        let kinds: Vec<&str> = v
            .get("per_node")
            .unwrap()
            .elements()
            .unwrap()
            .iter()
            .map(|n| n.get("kind").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(kinds, ["snap", "snap", "avr", "gateway"]);
        // The gateway overhears the MAC ring and bridges what it
        // decodes into the uplink buffer.
        let up = h.uplink_json();
        assert!(up.get("count").unwrap().as_i64().unwrap() > 0, "{up:?}");
        // Mixed-kind metrics stay valid under snap-metrics-v1, with
        // battery sections on budgeted nodes only.
        let metrics = h.metrics_json();
        snap_telemetry::validate_metrics(&metrics.to_pretty()).unwrap();
        let nodes = metrics.get("nodes").unwrap().elements().unwrap();
        assert!(nodes[0].get("battery").is_some(), "SNAP node has a budget");
        assert!(nodes[2].get("battery").is_some(), "AVR mote has a budget");
        assert!(
            nodes[3].get("battery").is_none(),
            "gateway is mains-powered"
        );
    }

    /// The acceptance criterion, in process: a served sim that is
    /// paused, forked and resumed produces bit-identical traces and
    /// energy f64 bits to an uninterrupted run of the same scenario.
    #[test]
    fn fork_resume_is_bit_identical() {
        let s = mac_scenario(12_000);
        let server = SimServer::new();
        let id = server.submit(&s).unwrap();
        let parent = server.get(id).unwrap();
        // Pause somewhere mid-flight (wherever the runner happens to
        // be), fork, then let both finish.
        std::thread::sleep(Duration::from_millis(5));
        parent.pause();
        let paused_at = parent
            .status_json()
            .get("now_us")
            .unwrap()
            .as_i64()
            .unwrap();
        let child_id = server.fork(id).unwrap();
        let child = server.get(child_id).unwrap();
        parent.resume();
        child.resume();
        let pv = wait_terminal(&parent, Duration::from_secs(30)).unwrap();
        let cv = wait_terminal(&child, Duration::from_secs(30)).unwrap();
        assert_eq!(pv.get("state").unwrap().as_str(), Some("done"), "{pv:?}");
        assert_eq!(cv.get("state").unwrap().as_str(), Some("done"), "{cv:?}");

        // Straight, uninterrupted run of the same scenario.
        let mut straight = crate::scenario::build(&s).unwrap();
        straight
            .run_until(SimTime::ZERO + SimDuration::from_us(s.run_to_us))
            .unwrap();

        assert_eq!(
            parent.trace_json(0),
            child.trace_json(0),
            "fork diverged from parent (paused at {paused_at} us)"
        );
        assert_eq!(energy_bits(&pv), energy_bits(&cv));
        let straight_bits: Vec<String> = (1..=straight.node_count() as u32)
            .map(|n| {
                format!(
                    "{:016x}",
                    straight
                        .node(NodeId(n))
                        .cpu()
                        .stats()
                        .energy
                        .as_pj()
                        .to_bits()
                )
            })
            .collect();
        assert_eq!(
            energy_bits(&pv),
            straight_bits,
            "served run diverged from straight run"
        );
        assert_eq!(
            parent.trace_json(0).get("count").unwrap().as_i64().unwrap() as usize,
            straight.trace().events().len()
        );
    }

    #[test]
    fn snapshot_restore_round_trips_through_registry() {
        let server = SimServer::new();
        let id = server.submit(&mac_scenario(4_000)).unwrap();
        let h = server.get(id).unwrap();
        wait_terminal(&h, Duration::from_secs(30)).unwrap();
        let bytes = h.snapshot_bytes();
        let restored_id = server.restore(&bytes).unwrap();
        let r = server.get(restored_id).unwrap();
        let v = r.status_json();
        assert_eq!(v.get("state").unwrap().as_str(), Some("paused"));
        assert_eq!(v.get("now_us").unwrap().as_i64(), Some(4_000));
        // Continue the restored sim and the original side by side.
        h.run_to(8_000);
        h.resume();
        r.run_to(8_000);
        r.resume();
        wait_terminal(&h, Duration::from_secs(30)).unwrap();
        wait_terminal(&r, Duration::from_secs(30)).unwrap();
        assert_eq!(h.trace_json(0), r.trace_json(0));
    }

    #[test]
    fn faulting_scenario_reports_faulted() {
        // IRQ into a node mid-transmission faults the MAC app (see
        // snap-net/tests/snapshot_equiv.rs).
        let s = parse_scenario(
            r#"{"mac_nodes":4,"loss":0.15,"loss_seed":3,"engine":"fused",
                "scheduler":"event","stagger_us":600,
                "irqs":[{"node":2,"at_us":5000}],
                "run_to_us":20000,"slice_us":1000}"#,
        )
        .unwrap();
        let server = SimServer::new();
        let id = server.submit(&s).unwrap();
        let h = server.get(id).unwrap();
        let v = wait_terminal(&h, Duration::from_secs(30)).unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("faulted"));
        let fault = v.get("fault").unwrap().as_str().unwrap();
        assert!(fault.contains("radio TX while busy"), "{fault}");
    }

    #[test]
    fn remove_stops_and_forgets() {
        let server = SimServer::new();
        let id = server.submit(&mac_scenario(2_000)).unwrap();
        assert!(server.remove(id));
        assert!(!server.remove(id));
        assert!(server.get(id).is_none());
    }
}
