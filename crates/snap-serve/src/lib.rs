//! # snap-serve — netsim as a service
//!
//! A multi-tenant simulation server over the `snap-net` fleet
//! simulator: submit a scenario, watch it advance over a live stream,
//! pause it on a deterministic boundary, download a `snap-snapshot`
//! checkpoint, fork it into a parallel universe, and resume either —
//! with the guarantee that none of this is observable in the results.
//! A served sim that is paused, forked and resumed produces
//! bit-identical traces and energy `f64` bits to an uninterrupted run
//! (enforced by `server::tests::fork_resume_is_bit_identical` and the
//! end-to-end `tests/smoke.rs`).
//!
//! Three layers:
//!
//! * [`scenario`] — the JSON scenario spec (`POST /sims` body) and its
//!   deterministic fleet builder.
//! * [`server`] — the registry: one runner thread per sim advancing it
//!   slice by slice; every control operation lands on a slice boundary,
//!   which is exactly where `snap_net` snapshots are defined.
//! * [`http`] — a dependency-free `std::net` HTTP/1.1 front end with
//!   SSE streaming (the workspace builds offline; there is no async
//!   runtime, and this server does not need one — see DESIGN.md §11).
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! let server = Arc::new(snap_serve::SimServer::new());
//! let handle = snap_serve::serve(server, "127.0.0.1:7878").unwrap();
//! println!("listening on http://{}", handle.addr());
//! # drop(handle);
//! ```
//!
//! Then, from a shell:
//!
//! ```text
//! curl -s localhost:7878/sims -d '{"mac_nodes":3,"loss":0.15,"run_to_us":100000}'
//! curl -sN localhost:7878/sims/1/stream          # live status events
//! curl -s  localhost:7878/sims/1/snapshot -o s.snap
//! curl -s -X POST localhost:7878/sims/1/fork     # → {"id": 2}, paused
//! curl -s -X POST localhost:7878/sims/2/resume
//! ```

#![warn(missing_docs)]

pub mod http;
pub mod scenario;
pub mod server;

pub use http::{serve, ServeHandle};
pub use scenario::{parse_scenario, Scenario};
pub use server::{wait_terminal, SimHandle, SimId, SimServer, SimStatus};
