//! End-to-end server smoke test, over real TCP: submit → stream →
//! pause → snapshot → fork → resume → verify the served, interrupted
//! runs are bit-identical to each other **and** to an uninterrupted
//! in-process run of the same scenario. This is the test CI's
//! `server-smoke` job runs.

use dess::{SimDuration, SimTime};
use snap_node::NodeId;
use snap_telemetry::{parse, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// One-shot HTTP/1.1 request; the server closes every connection, so
/// reading to EOF delimits the response.
fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = String::from_utf8_lossy(&raw[..text_end]);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, raw[text_end + 4..].to_vec())
}

fn get_json(addr: SocketAddr, path: &str) -> Value {
    let (status, body) = request(addr, "GET", path, b"");
    assert_eq!(
        status,
        200,
        "GET {path}: {}",
        String::from_utf8_lossy(&body)
    );
    parse(&String::from_utf8_lossy(&body)).expect("json body")
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> Value {
    let (status, body) = request(addr, "POST", path, body.as_bytes());
    assert_eq!(
        status,
        200,
        "POST {path}: {}",
        String::from_utf8_lossy(&body)
    );
    parse(&String::from_utf8_lossy(&body)).expect("json body")
}

/// Read the SSE stream until a terminal event arrives; returns every
/// `data:` payload seen.
fn stream_until_terminal(addr: SocketAddr, id: i64) -> Vec<Value> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!("GET /sims/{id}/stream HTTP/1.1\r\nHost: test\r\n\r\n");
    stream.write_all(head.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("stream to close");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.contains("text/event-stream"), "not SSE: {text}");
    let events: Vec<Value> = text
        .lines()
        .filter_map(|l| l.strip_prefix("data: "))
        .map(|l| parse(l).expect("event json"))
        .collect();
    assert!(!events.is_empty(), "no SSE events before close");
    let last = events.last().unwrap();
    let state = last.get("state").unwrap().as_str().unwrap();
    assert!(
        state == "done" || state == "faulted",
        "stream closed in non-terminal state {state:?}"
    );
    events
}

fn energy_bits(status: &Value) -> Vec<String> {
    status
        .get("per_node")
        .unwrap()
        .elements()
        .unwrap()
        .iter()
        .map(|n| n.get("energy_bits").unwrap().as_str().unwrap().to_string())
        .collect()
}

const SCENARIO: &str = r#"{
    "name": "smoke",
    "mac_nodes": 3,
    "loss": 0.15,
    "loss_seed": 42,
    "engine": "fused",
    "scheduler": "event",
    "stagger_us": 700,
    "run_to_us": 12000,
    "slice_us": 300
}"#;

#[test]
fn submit_stream_snapshot_fork_resume_equality() {
    let server = Arc::new(snap_serve::SimServer::new());
    let handle = snap_serve::serve(Arc::clone(&server), "127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    // Service info advertises the snapshot format it speaks.
    let info = get_json(addr, "/");
    assert_eq!(info.get("service").unwrap().as_str(), Some("snap-serve"));
    assert_eq!(
        info.get("snapshot_format_version").unwrap().as_i64(),
        Some(i64::from(snap_snapshot::FORMAT_VERSION))
    );

    // Submit.
    let id = post_json(addr, "/sims", SCENARIO)
        .get("id")
        .unwrap()
        .as_i64()
        .unwrap();

    // Pause lands on a slice boundary, wherever the runner happens to
    // be — the equality below must hold regardless. (On a slow enough
    // machine the sim may even have finished already; that is a valid
    // boundary too.)
    let paused = post_json(addr, &format!("/sims/{id}/pause"), "");
    let paused_at = paused.get("now_us").unwrap().as_i64().unwrap();
    let state = paused.get("state").unwrap().as_str().unwrap();
    assert!(
        state == "paused" || state == "done",
        "unexpected state {state:?}"
    );

    // Snapshot: the bytes must decode as a fleet checkpoint at the
    // paused instant.
    let (status, snap_bytes) = request(addr, "GET", &format!("/sims/{id}/snapshot"), b"");
    assert_eq!(status, 200);
    let decoded = snap_snapshot::Snapshot::from_bytes(&snap_bytes).expect("snapshot decodes");
    let fleet = decoded.as_fleet().expect("fleet snapshot");
    assert_eq!(fleet.now_ps / 1_000_000, paused_at as u64, "snapshot clock");

    // Fork (server-side snapshot+restore) and restore (round trip of
    // the downloaded bytes) both yield paused siblings.
    let fork_id = post_json(addr, &format!("/sims/{id}/fork"), "")
        .get("id")
        .unwrap()
        .as_i64()
        .unwrap();
    let (status, body) = request(addr, "POST", "/sims/restore", &snap_bytes);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let restored_id = parse(&String::from_utf8_lossy(&body))
        .unwrap()
        .get("id")
        .unwrap()
        .as_i64()
        .unwrap();
    post_json(
        addr,
        &format!("/sims/{restored_id}/run-to"),
        r#"{"target_us": 12000}"#,
    );

    // Resume all three universes and stream each to completion.
    for sid in [id, fork_id, restored_id] {
        post_json(addr, &format!("/sims/{sid}/resume"), "");
    }
    for sid in [id, fork_id, restored_id] {
        let events = stream_until_terminal(addr, sid);
        let last = events.last().unwrap();
        assert_eq!(
            last.get("state").unwrap().as_str(),
            Some("done"),
            "sim {sid}: {last:?}"
        );
        assert_eq!(last.get("now_us").unwrap().as_i64(), Some(12_000));
    }

    // Bit-identity across the three served universes: full trace and
    // per-node energy f64 bits.
    let base_trace = get_json(addr, &format!("/sims/{id}/trace"));
    let base_status = get_json(addr, &format!("/sims/{id}"));
    assert!(
        base_trace.get("count").unwrap().as_i64().unwrap() > 0,
        "vacuous run"
    );
    for sid in [fork_id, restored_id] {
        assert_eq!(
            get_json(addr, &format!("/sims/{sid}/trace")),
            base_trace,
            "sim {sid} trace diverged (forked at {paused_at} us)"
        );
        assert_eq!(
            energy_bits(&get_json(addr, &format!("/sims/{sid}"))),
            energy_bits(&base_status),
            "sim {sid} energy diverged"
        );
    }

    // ... and against an uninterrupted in-process run of the same
    // scenario: the server machinery must be invisible.
    let scenario = snap_serve::parse_scenario(SCENARIO).unwrap();
    let mut straight = snap_serve::scenario::build(&scenario).unwrap();
    straight
        .run_until(SimTime::ZERO + SimDuration::from_us(12_000))
        .unwrap();
    assert_eq!(
        base_trace.get("count").unwrap().as_i64().unwrap() as usize,
        straight.trace().events().len(),
        "served trace length diverged from straight run"
    );
    let straight_bits: Vec<String> = (1..=straight.node_count() as u32)
        .map(|n| {
            format!(
                "{:016x}",
                straight
                    .node(NodeId(n))
                    .cpu()
                    .stats()
                    .energy
                    .as_pj()
                    .to_bits()
            )
        })
        .collect();
    assert_eq!(energy_bits(&base_status), straight_bits);

    // The metrics endpoint serves a valid snap-metrics-v1 report.
    let metrics = get_json(addr, &format!("/sims/{id}/metrics"));
    snap_telemetry::validate_metrics(&metrics.to_pretty()).unwrap();

    // Housekeeping: list shows all three; delete removes.
    let sims = get_json(addr, "/sims");
    assert_eq!(sims.get("sims").unwrap().elements().unwrap().len(), 3);
    let (status, _) = request(addr, "DELETE", &format!("/sims/{restored_id}"), b"");
    assert_eq!(status, 200);
    let (status, _) = request(addr, "GET", &format!("/sims/{restored_id}"), b"");
    assert_eq!(status, 404);
}

#[test]
fn bad_requests_get_clean_errors() {
    let server = Arc::new(snap_serve::SimServer::new());
    let handle = snap_serve::serve(Arc::clone(&server), "127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    let (status, body) = request(addr, "POST", "/sims", b"{\"run_to_us\": -5}");
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("run_to_us"));

    let (status, _) = request(addr, "GET", "/sims/999", b"");
    assert_eq!(status, 404);

    let (status, body) = request(addr, "POST", "/sims/restore", b"garbage bytes");
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));

    let (status, _) = request(addr, "GET", "/nope", b"");
    assert_eq!(status, 404);
}

/// `POST /sims` runs the strict `snap-lint` preflight over a custom
/// image: a program the whole-image event-flow analysis can prove
/// overflows the queue is refused with a structured error body, is
/// accepted with `"lint": "skip"`, and a clean image passes untouched.
#[test]
fn submit_preflight_gates_custom_images() {
    let server = Arc::new(snap_serve::SimServer::new());
    let handle = snap_serve::serve(Arc::clone(&server), "127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    // Each timer0 activation posts three copies of its own event: the
    // interprocedural queue-overflow lint fires (no single activation
    // floods the queue, so the old per-handler lints stay silent).
    let flooding = "boot:\\n li r1, 0\\n li r2, h\\n setaddr r1, r2\\n \
                    li r3, 1\\n schedlo r1, r3\\n done\\nh:\\n li r4, 0\\n \
                    swev r4\\n swev r4\\n swev r4\\n done\\n";
    let scenario = |lint: &str| {
        format!("{{\"mac_nodes\": 0, \"asm\": \"{flooding}\"{lint}, \"run_to_us\": 1000}}")
    };

    let (status, body) = request(addr, "POST", "/sims", scenario("").as_bytes());
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    let v = parse(&String::from_utf8_lossy(&body)).expect("structured error body");
    assert_eq!(v.get("lint").unwrap().as_str(), Some("strict"));
    let diags = v.get("diagnostics").unwrap().elements().unwrap();
    assert!(
        diags
            .iter()
            .any(|d| d.get("lint").unwrap().as_str() == Some("queue-overflow")),
        "diagnostics should name the flow lint: {}",
        String::from_utf8_lossy(&body)
    );

    let (status, body) = request(
        addr,
        "POST",
        "/sims",
        scenario(", \"lint\": \"skip\"").as_bytes(),
    );
    assert_eq!(
        status,
        200,
        "skip must bypass the gate: {}",
        String::from_utf8_lossy(&body)
    );
    let id = parse(&String::from_utf8_lossy(&body))
        .unwrap()
        .get("id")
        .unwrap()
        .as_i64()
        .unwrap();
    request(addr, "DELETE", &format!("/sims/{id}"), b"");

    let clean = "{\"mac_nodes\": 0, \"asm\": \"boot:\\n done\\n\", \"run_to_us\": 1000}";
    let (status, body) = request(addr, "POST", "/sims", clean.as_bytes());
    assert_eq!(
        status,
        200,
        "lint-clean image must pass: {}",
        String::from_utf8_lossy(&body)
    );
}
