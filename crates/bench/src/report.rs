//! Small helpers for printing `paper vs measured` tables.

/// Print a title with an underline.
pub fn title(text: &str) {
    println!("\n{text}");
    println!("{}", "=".repeat(text.len()));
}

/// Print a sub-heading.
pub fn heading(text: &str) {
    println!("\n-- {text} --");
}

/// One `paper vs measured` row with a ratio column.
pub fn row(label: &str, paper: f64, measured: f64, unit: &str) {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    println!(
        "{label:<28} paper {paper:>10.2} {unit:<7} measured {measured:>10.2} {unit:<7} (x{ratio:.2})"
    );
}

/// A row with integer values.
pub fn row_u64(label: &str, paper: u64, measured: u64, unit: &str) {
    row(label, paper as f64, measured as f64, unit);
}

/// A free-form annotation line.
pub fn note(text: &str) {
    println!("   {text}");
}
