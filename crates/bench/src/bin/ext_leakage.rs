//! Extension: idle-leakage sensitivity (paper section 6 open question).
fn main() {
    bench::ext::print_leakage();
}
