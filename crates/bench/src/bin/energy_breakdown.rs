//! Regenerates the Section 4.4 energy distribution.
fn main() {
    bench::experiments::print_breakdown();
}
