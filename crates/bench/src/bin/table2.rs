//! Regenerates Table 2 (related microcontrollers).
fn main() {
    bench::experiments::print_table2();
}
