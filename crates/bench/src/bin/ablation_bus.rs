//! Bus-hierarchy ablation (DESIGN.md section 6).
fn main() {
    bench::ablation::print_bus_ablation();
}
