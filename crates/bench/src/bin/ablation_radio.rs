//! Radio word-interface ablation (DESIGN.md section 6).
fn main() {
    bench::ablation::print_radio_ablation();
}
