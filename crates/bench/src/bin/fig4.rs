//! Regenerates Fig. 4 (energy per instruction type).
fn main() {
    bench::experiments::print_fig4();
}
