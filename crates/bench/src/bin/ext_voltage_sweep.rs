//! Extension: voltage/energy trade-off sweep (paper section 6).
fn main() {
    bench::ext::print_voltage_sweep();
}
