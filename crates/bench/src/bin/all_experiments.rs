//! Runs every experiment in order: the full paper reproduction report.
fn main() {
    bench::experiments::print_fig4();
    bench::experiments::print_table1();
    bench::experiments::print_throughput();
    bench::experiments::print_wakeup();
    bench::experiments::print_breakdown();
    bench::experiments::print_fig5();
    bench::experiments::print_sense();
    bench::experiments::print_radiostack();
    bench::experiments::print_table2();
    bench::experiments::print_summary();
    bench::ablation::print_bus_ablation();
    bench::ablation::print_radio_ablation();
    bench::ablation::print_compiler_ablation();
}
