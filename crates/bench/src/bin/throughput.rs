//! Regenerates the Section 4.3 throughput numbers.
fn main() {
    bench::experiments::print_throughput();
}
