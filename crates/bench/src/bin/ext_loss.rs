//! Extension: packet delivery under per-word fading.
fn main() {
    bench::ext::print_loss_sweep();
}
