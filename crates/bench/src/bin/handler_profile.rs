//! Per-handler profile of a relay node (live Table-1-style accounting).
fn main() {
    bench::experiments::print_handler_profile();
}
