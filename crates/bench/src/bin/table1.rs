//! Regenerates Table 1 (handler statistics with energy).
fn main() {
    bench::experiments::print_table1();
}
