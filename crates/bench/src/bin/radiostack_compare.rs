//! Regenerates the Section 4.6 radio-stack comparison.
fn main() {
    bench::experiments::print_radiostack();
}
