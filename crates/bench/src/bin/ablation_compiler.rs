//! Compiler-quality ablation (DESIGN.md section 6).
fn main() {
    bench::ablation::print_compiler_ablation();
}
