//! Regenerates the Section 4.6 Sense comparison.
fn main() {
    bench::experiments::print_sense();
}
