//! Extension: CSMA backoff under contention.
fn main() {
    bench::ext::print_contention();
}
