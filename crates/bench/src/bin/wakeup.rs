//! Regenerates the Section 4.3 wake-up latencies.
fn main() {
    bench::experiments::print_wakeup();
}
