//! Regenerates the Section 4.7 results summary.
fn main() {
    bench::experiments::print_summary();
}
