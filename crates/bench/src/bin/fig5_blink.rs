//! Regenerates Fig. 5 (Blink: TinyOS vs SNAP).
fn main() {
    bench::experiments::print_fig5();
}
