//! The paper's published numbers, as printed in ASPLOS'04.
//!
//! Every experiment compares its measurement against these. We expect
//! to match *shape* (who wins, rough factors, orderings), not absolute
//! SPICE-calibrated values.

/// One Table 1 row: `(task, dynamic instructions, E(nJ)@1.8V,
/// pJ/ins@1.8V, E(nJ)@0.9V, pJ/ins@0.9V, E(nJ)@0.6V, pJ/ins@0.6V)`.
pub type Table1Row = (&'static str, u64, f64, f64, f64, f64, f64, f64);

/// Table 1 as published.
pub const TABLE1: [Table1Row; 6] = [
    ("Packet Transmission", 70, 15.1, 216.0, 3.8, 54.0, 1.6, 24.0),
    ("Packet Reception", 103, 22.5, 218.0, 5.6, 56.0, 2.5, 24.0),
    ("AODV Route Reply", 224, 48.1, 215.0, 12.0, 54.0, 5.2, 23.0),
    ("AODV Forward", 245, 53.7, 219.0, 13.5, 55.0, 5.9, 24.0),
    ("Temperature App", 140, 30.5, 218.0, 7.7, 55.0, 3.4, 24.0),
    ("Threshold App", 155, 33.7, 217.0, 8.5, 54.7, 3.8, 24.0),
];

/// §4.3: throughput in MIPS at 1.8 / 0.9 / 0.6 V.
pub const MIPS: [(f64, f64); 3] = [(1.8, 240.0), (0.9, 61.0), (0.6, 28.0)];

/// §4.3: wake-up latency in ns at 1.8 / 0.9 / 0.6 V (18 gate delays).
pub const WAKEUP_NS: [(f64, f64); 3] = [(1.8, 2.5), (0.9, 9.8), (0.6, 21.4)];

/// §4.4: energy distribution within the core (fractions of core energy).
pub const CORE_SPLIT: [(&str, f64); 5] = [
    ("datapath", 0.33),
    ("fetch", 0.20),
    ("decode", 0.16),
    ("mem-interface", 0.09),
    ("misc", 0.22),
];

/// §4.4: memory's share of total per-instruction energy ("about half").
pub const MEMORY_SHARE: f64 = 0.5;

/// Fig. 5 / §4.6 Blink: cycles per blink and energy.
pub struct BlinkPaper {
    /// Mote total cycles per blink.
    pub avr_total: u64,
    /// Mote cycles doing the actual blinking.
    pub avr_useful: u64,
    /// SNAP cycles per blink.
    pub snap_cycles: u64,
    /// Mote energy per blink, nJ.
    pub avr_nj: f64,
    /// SNAP energy per blink at 1.8 V, nJ.
    pub snap_nj_1v8: f64,
    /// SNAP energy per blink at 0.6 V, nJ.
    pub snap_nj_0v6: f64,
}

/// Fig. 5 constants.
pub const BLINK: BlinkPaper = BlinkPaper {
    avr_total: 523,
    avr_useful: 16,
    snap_cycles: 41,
    avr_nj: 1960.0,
    snap_nj_1v8: 6.8,
    snap_nj_0v6: 0.5,
};

/// §4.6 Sense: mote cycles (total, overhead) and SNAP cycles.
pub const SENSE: (u64, u64, u64) = (1118, 781, 261);

/// §4.6 radio stack: mote cycles/byte, SNAP cycles/byte.
pub const RADIOSTACK: (u64, u64) = (780, 331);

/// §4.7: handler energy bands, nJ — (min, max) at 1.8 V and 0.6 V.
pub const HANDLER_NJ_1V8: (f64, f64) = (15.0, 55.0);
/// §4.7 band at 0.6 V.
pub const HANDLER_NJ_0V6: (f64, f64) = (1.6, 5.9);

/// §4.7: active power at ≤10 events/s — (min, max) nW at 1.8 V / 0.6 V.
pub const ACTIVE_NW_1V8: (f64, f64) = (150.0, 550.0);
/// §4.7 band at 0.6 V.
pub const ACTIVE_NW_0V6: (f64, f64) = (16.0, 58.0);

/// Fig. 4 qualitative bands at 1.8 V: all classes < 300 pJ; the three
/// tiers (one-word reg, two-word imm, memory ops).
pub const FIG4_MAX_PJ_1V8: f64 = 300.0;
/// Fig. 4: at 0.6 V everything under 75 pJ, many classes under 25.
pub const FIG4_MAX_PJ_0V6: f64 = 75.0;

/// Table 2: Atmel energy / SNAP@0.6V energy ("almost 68 times").
pub const ATMEL_ENERGY_RATIO: f64 = 68.0;
