//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Bus hierarchy** (paper §3.1): the two-level fast/slow bus
//!    organization vs a single flat bus.
//! 2. **Word-wide radio interface** (paper §3.3): the message
//!    coprocessor's word-by-word events vs a bit-by-bit interrupt
//!    scheme like the microcontrollers use.
//! 3. **Compiler quality** (paper §4.5): `snapcc`'s naive (lcc-like)
//!    output vs hand-written assembly for the same function.
//!
//! (The fourth ablation — hardware event queue vs software scheduler —
//! is the Fig. 5 experiment itself.)

use crate::report;
use dess::SimDuration;
use snap_apps::prelude::{install_handler, PRELUDE};
use snap_asm::assemble_modules;
use snap_core::{CoreConfig, CoreStats, Processor};
use snap_energy::model::BusModel;
use snap_energy::OperatingPoint;
use snap_node::{Node, NodeConfig};

/// Result of one ablation arm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arm {
    /// Dynamic instructions.
    pub instructions: u64,
    /// Busy time in ns.
    pub busy_ns: f64,
    /// Energy in nJ.
    pub energy_nj: f64,
}

impl From<CoreStats> for Arm {
    fn from(d: CoreStats) -> Arm {
        Arm {
            instructions: d.instructions,
            busy_ns: d.busy_time.as_ns(),
            energy_nj: d.energy.as_nj(),
        }
    }
}

/// Run the Temperature app (5 samples) on a given bus organization.
pub fn run_temperature_with_bus(bus: BusModel) -> Arm {
    let program = snap_apps::apps::temperature_program().expect("assembles");
    let core = CoreConfig {
        bus,
        ..CoreConfig::at(OperatingPoint::V1_8)
    };
    let cfg = NodeConfig {
        core,
        ..NodeConfig::default()
    };
    let mut node = Node::new(cfg);
    node.load(&program).expect("fits");
    node.sensors_mut()
        .set_reading(snap_apps::apps::TEMP_SENSOR, 50);
    node.run_for(SimDuration::from_us(50)).expect("boot");
    let before = node.cpu().stats();
    node.run_for(SimDuration::from_us(2_350)).expect("samples");
    node.cpu().stats().since(&before).into()
}

/// Bus-hierarchy ablation: hierarchical vs flat busses.
pub fn ablate_bus() -> (Arm, Arm) {
    (
        run_temperature_with_bus(BusModel::Hierarchical),
        run_temperature_with_bus(BusModel::Flat),
    )
}

/// A receive handler that gets one *bit* per event (the bit-by-bit
/// interrupt scheme of conventional microcontrollers, emulated on the
/// event queue) and assembles words in software.
const BIT_RX_APP: &str = "
.data
bit_acc:    .word 0
bit_count:  .word 0
bit_words:  .word 0

.text
bit_rx:
    mov     r2, r15            ; the bit (0/1)
    lw      r3, bit_acc(r0)
    slli    r3, 1
    or      r3, r2
    sw      r3, bit_acc(r0)
    lw      r4, bit_count(r0)
    addi    r4, 1
    sw      r4, bit_count(r0)
    li      r5, 16
    bne     r4, r5, bit_rx_out
    sw      r0, bit_count(r0)
    lw      r6, bit_words(r0)
    addi    r6, 1
    sw      r6, bit_words(r0)
bit_rx_out:
    done
";

/// A receive handler that gets one whole word per event (the SNAP
/// message-coprocessor scheme).
const WORD_RX_APP: &str = "
.data
word_buf:   .space 8
word_count: .word 0

.text
word_rx:
    mov     r2, r15
    lw      r3, word_count(r0)
    sw      r2, word_buf(r3)
    addi    r3, 1
    sw      r3, word_count(r0)
    done
";

fn run_rx_program(app: &str, handler: &str, events: &[u16]) -> Arm {
    let boot = format!(
        "boot:\n{}    li      r15, 0x1001\n    done\n",
        install_handler("EV_RX", handler)
    );
    let program = assemble_modules(&[("prelude.s", PRELUDE), ("boot.s", &boot), ("app.s", app)])
        .expect("assembles");
    let mut node = Node::new(NodeConfig::default());
    node.load(&program).expect("fits");
    node.run_for(SimDuration::from_us(10)).expect("boot");
    let before = node.cpu().stats();
    for &e in events {
        assert!(node.deliver_rx(e), "event lost");
        node.run_for(SimDuration::from_us(60)).expect("handler");
    }
    node.cpu().stats().since(&before).into()
}

/// Word-interface ablation: deliver a 5-word message as 5 word events
/// vs 80 bit events. Returns `(word_interface, bit_interface)`.
pub fn ablate_radio_interface() -> (Arm, Arm) {
    let message = [0x1234u16, 0x5678, 0x9abc, 0xdef0, 0x0f0f];
    let word_arm = run_rx_program(WORD_RX_APP, "word_rx", &message);
    let bits: Vec<u16> = message
        .iter()
        .flat_map(|w| (0..16).rev().map(move |i| (w >> i) & 1))
        .collect();
    let bit_arm = run_rx_program(BIT_RX_APP, "bit_rx", &bits);
    (word_arm, bit_arm)
}

/// Hand-written assembly for the compiler ablation's workload: sum a
/// 16-word DMEM buffer and count values above a threshold.
const HAND_SUM_ASM: &str = "
    li      r1, 0          ; sum
    li      r2, 0          ; index
    li      r3, 0          ; above-threshold count
    li      r4, 100        ; threshold
sum_loop:
    lw      r5, buf(r2)
    add     r1, r5
    bleu    r5, r4, sum_skip
    addi    r3, 1
sum_skip:
    addi    r2, 1
    li      r6, 16
    bltu    r2, r6, sum_loop
    halt

.data
buf: .space 16
";

/// The same workload in C (compiled by `snapcc` with its naive,
/// lcc-like codegen).
const C_SUM_SRC: &str = "
int buf[16];
int above;
int main() {
    int sum = 0;
    int i;
    for (i = 0; i < 16; i = i + 1) {
        sum = sum + buf[i];
        if (buf[i] > 100) above = above + 1;
    }
    return sum;
}
";

fn fill_buf(cpu: &mut Processor, base: u16) {
    let values: Vec<u16> = (0..16).map(|i| (i * 37 + 5) as u16).collect();
    cpu.load_data(base, &values).expect("buffer fits");
}

/// Compiler ablation: returns `(hand_assembly, snapcc)` arms for the
/// identical workload, verifying both compute the same sum.
pub fn ablate_compiler() -> (Arm, Arm) {
    // Hand assembly.
    let asm_prog = snap_asm::assemble(HAND_SUM_ASM).expect("assembles");
    let mut cpu = Processor::new(CoreConfig::default());
    cpu.load_image(0, &asm_prog.imem_image()).expect("fits");
    fill_buf(&mut cpu, asm_prog.symbol("buf").expect("buf symbol"));
    cpu.run_to_halt(10_000).expect("runs");
    let hand_sum = cpu.regs().read(snap_isa::Reg::R1);
    let hand: Arm = cpu.stats().into();

    // snapcc.
    let c_prog = snapcc::compile_to_program(C_SUM_SRC).expect("compiles");
    let mut cpu = Processor::new(CoreConfig::default());
    cpu.load_image(0, &c_prog.imem_image()).expect("fits");
    cpu.load_data(0, &c_prog.dmem_image()).expect("fits");
    fill_buf(&mut cpu, c_prog.symbol("buf").expect("buf symbol"));
    cpu.run_to_halt(100_000).expect("runs");
    let c_sum = cpu.regs().read(snap_isa::Reg::R1);
    let compiled: Arm = cpu.stats().into();

    assert_eq!(hand_sum, c_sum, "both implementations must agree");
    (hand, compiled)
}

/// Print the bus ablation.
pub fn print_bus_ablation() {
    report::title("Ablation - two-level bus hierarchy vs flat bus");
    let (hier, flat) = ablate_bus();
    println!(
        "  hierarchical: {:>6} ins  {:>9.1} ns busy  {:>7.2} nJ",
        hier.instructions, hier.busy_ns, hier.energy_nj
    );
    println!(
        "  flat:         {:>6} ins  {:>9.1} ns busy  {:>7.2} nJ",
        flat.instructions, flat.busy_ns, flat.energy_nj
    );
    report::note(&format!(
        "hierarchy saves {:.0}% latency and {:.0}% energy on the temperature app",
        (1.0 - hier.busy_ns / flat.busy_ns) * 100.0,
        (1.0 - hier.energy_nj / flat.energy_nj) * 100.0
    ));
}

/// Print the radio-interface ablation.
pub fn print_radio_ablation() {
    report::title("Ablation - word-wide radio events vs bit-by-bit interrupts");
    let (word, bit) = ablate_radio_interface();
    println!(
        "  word events (5/message): {:>6} ins  {:>8.2} nJ",
        word.instructions, word.energy_nj
    );
    println!(
        "  bit events (80/message): {:>6} ins  {:>8.2} nJ",
        bit.instructions, bit.energy_nj
    );
    report::note(&format!(
        "the word interface is x{:.1} cheaper in instructions (paper Section 3.3's motivation)",
        bit.instructions as f64 / word.instructions as f64
    ));
}

/// Print the compiler ablation.
pub fn print_compiler_ablation() {
    report::title("Ablation - hand assembly vs snapcc (unoptimized, lcc-like)");
    let (hand, compiled) = ablate_compiler();
    println!(
        "  hand asm: {:>6} ins  {:>8.2} nJ",
        hand.instructions, hand.energy_nj
    );
    println!(
        "  snapcc:   {:>6} ins  {:>8.2} nJ",
        compiled.instructions, compiled.energy_nj
    );
    report::note(&format!(
        "naive compilation costs x{:.1} instructions (paper Section 4.5: unnecessary load/stores)",
        compiled.instructions as f64 / hand.instructions as f64
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_hierarchy_wins() {
        let (hier, flat) = ablate_bus();
        assert_eq!(hier.instructions, flat.instructions, "same program");
        assert!(hier.busy_ns < flat.busy_ns, "hierarchy must be faster");
        assert!(hier.energy_nj < flat.energy_nj, "hierarchy must be cheaper");
    }

    #[test]
    fn word_interface_wins_bigly() {
        let (word, bit) = ablate_radio_interface();
        let ratio = bit.instructions as f64 / word.instructions as f64;
        assert!(ratio > 5.0, "word interface only x{ratio} better");
    }

    #[test]
    fn compiler_overhead_is_real_but_bounded() {
        let (hand, compiled) = ablate_compiler();
        let ratio = compiled.instructions as f64 / hand.instructions as f64;
        assert!(
            ratio > 1.5,
            "snapcc should cost more than hand asm, x{ratio}"
        );
        assert!(ratio < 12.0, "snapcc should not be absurd, x{ratio}");
    }
}
