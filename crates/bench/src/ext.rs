//! Extension experiments beyond the paper's evaluation.
//!
//! * **Voltage sweep** — the paper's §6 future work: "redesign the
//!   processor to sacrifice its performance for even lower energy per
//!   instruction". We sweep supply voltage (delay scaled by the
//!   paper-calibrated velocity-saturation-flavoured law fitted to its
//!   three points) and chart the energy/throughput trade-off, including
//!   whether tens-of-handlers-per-second workloads still fit.
//! * **CSMA contention** — how the MAC's `rand` backoff degrades as
//!   contenders are added on one channel: delivery vs collision rates
//!   (networking context for §4.2's MAC benchmark).

use crate::report;
use dess::{SimDuration, SimTime};
use snap_apps::mac::{mac_boot_with_backoff, mac_program, send_on_irq_app, MAC, RX_DISPATCH_STUB};
use snap_apps::measure::measure_aodv_forward;
use snap_apps::prelude::install_handler;
use snap_apps::prelude::PRELUDE;
use snap_asm::assemble_modules;
use snap_energy::OperatingPoint;
use snap_net::{NetworkSim, Position, Stimulus};

/// Fit of the paper's delay factors (1.0 @1.8 V, 3.93 @0.9 V,
/// 8.57 @0.6 V): `delay = (1.8/V)^1.97` reproduces the two published
/// low-voltage points within 2 %. Used to extrapolate the §6 "even
/// lower voltage" direction.
pub fn delay_factor_fit(vdd: f64) -> f64 {
    assert!(vdd > 0.4, "fit is meaningless near/below threshold");
    (1.8 / vdd).powf(1.97)
}

/// One row of the voltage sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRow {
    /// Supply voltage.
    pub vdd: f64,
    /// Average energy per instruction on the AODV-forward handler, pJ.
    pub pj_per_ins: f64,
    /// Throughput on that handler, MIPS.
    pub mips: f64,
    /// Handlers per second the core could sustain at 100 % duty.
    pub handlers_per_s: f64,
}

/// Sweep the supply from 1.8 V down toward threshold.
pub fn voltage_sweep() -> Vec<SweepRow> {
    [1.8, 1.5, 1.2, 0.9, 0.75, 0.6, 0.5, 0.45]
        .into_iter()
        .map(|vdd| {
            let point = if vdd == 1.8 {
                OperatingPoint::V1_8
            } else if vdd == 0.9 {
                OperatingPoint::V0_9
            } else if vdd == 0.6 {
                OperatingPoint::V0_6
            } else {
                OperatingPoint::new(vdd, delay_factor_fit(vdd))
            };
            let m = measure_aodv_forward(point);
            let mips = m.instructions as f64 / m.busy_time.as_us();
            SweepRow {
                vdd,
                pj_per_ins: m.energy_per_instruction().as_pj(),
                mips,
                handlers_per_s: 1.0 / m.busy_time.as_secs(),
            }
        })
        .collect()
}

/// Print the voltage sweep.
pub fn print_voltage_sweep() {
    report::title("Extension - voltage/energy trade-off (paper section 6 direction)");
    println!(
        "{:>6} {:>12} {:>10} {:>16}",
        "Vdd", "pJ/ins", "MIPS", "handlers/s max"
    );
    for row in voltage_sweep() {
        println!(
            "{:>6.2} {:>12.1} {:>10.1} {:>16.0}",
            row.vdd, row.pj_per_ins, row.mips, row.handlers_per_s
        );
    }
    report::note("data monitoring needs only tens of handlers/s (paper section 6):");
    report::note("even deep-subnominal operation leaves orders of magnitude of headroom");
}

/// One row of the contention experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionRow {
    /// Contending transmitters.
    pub senders: usize,
    /// Clean word deliveries at the listener.
    pub deliveries: u64,
    /// Collision-garbled words.
    pub collisions: u64,
}

/// `senders` nodes all triggered at the same instant, one listener.
pub fn contention(senders: usize) -> ContentionRow {
    let mut sim = NetworkSim::new(50.0);
    let extra = install_handler("EV_IRQ", "app_send_irq");
    let mut ids = Vec::new();
    for i in 0..senders {
        let app = format!("{}{}", send_on_irq_app(99), RX_DISPATCH_STUB);
        // Backoff window of 65 ms (0xffff ticks): many packet
        // air-times, so the random draws can actually separate senders.
        let program = assemble_modules(&[
            ("prelude.s", PRELUDE),
            (
                "boot.s",
                &mac_boot_with_backoff(i as u8 + 1, &extra, 0xffff),
            ),
            ("mac.s", MAC),
            ("app.s", &app),
        ])
        .expect("assembles");
        let id = sim.add_node(&program, Position::new(i as f64, 0.0));
        ids.push(id);
    }
    sim.add_node(
        &mac_program(99, "", RX_DISPATCH_STUB).expect("assembles"),
        Position::new(0.0, 3.0),
    );
    let t0 = SimTime::ZERO + SimDuration::from_ms(1);
    for &id in &ids {
        sim.schedule(id, t0, Stimulus::SensorIrq);
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(200))
        .expect("network runs");
    ContentionRow {
        senders,
        deliveries: sim.channel().deliveries(),
        collisions: sim.channel().collisions(),
    }
}

/// Print the contention experiment.
pub fn print_contention() {
    report::title("Extension - CSMA random backoff under contention");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "senders", "deliveries", "collisions", "loss"
    );
    for n in [1usize, 2, 3, 4, 6, 8] {
        let row = contention(n);
        let total = row.deliveries + row.collisions;
        let loss = if total > 0 {
            row.collisions as f64 / total as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "{:>8} {:>12} {:>12} {:>9.0}%",
            row.senders, row.deliveries, row.collisions, loss
        );
    }
    report::note("nodes seed their LFSR from their node id; the MAC does not carrier-");
    report::note("sense, so overlap within a word time is a collision (ALOHA-like)");
}

/// One row of the leakage-sensitivity study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageRow {
    /// Assumed idle leakage, nW.
    pub leakage_nw: f64,
    /// Event rate at which active energy equals leakage ("break-even"),
    /// events per second.
    pub break_even_events_per_s: f64,
    /// Average power at ten events per second, nW.
    pub power_at_10eps_nw: f64,
}

/// §6: the paper's open question is SNAP/LE's idle leakage. Sweep
/// candidate leakage values and show where the energy budget tips from
/// event-dominated to leakage-dominated at 0.6 V.
pub fn leakage_sensitivity() -> Vec<LeakageRow> {
    let handler = measure_aodv_forward(OperatingPoint::V0_6);
    let handler_nj = handler.energy.as_nj();
    [1.0, 3.0, 10.0, 30.0, 100.0, 300.0]
        .into_iter()
        .map(|leakage_nw| LeakageRow {
            leakage_nw,
            // leakage (nW) == rate x handler energy (nJ) x 1 (nW per nJ/s)
            break_even_events_per_s: leakage_nw / handler_nj,
            power_at_10eps_nw: leakage_nw + 10.0 * handler_nj,
        })
        .collect()
}

/// Print the leakage study.
pub fn print_leakage() {
    report::title("Extension - idle-leakage sensitivity at 0.6V (paper section 6 open question)");
    println!(
        "{:>12} {:>22} {:>18}",
        "leakage nW", "break-even events/s", "power @10ev/s nW"
    );
    for row in leakage_sensitivity() {
        println!(
            "{:>12.0} {:>22.2} {:>18.1}",
            row.leakage_nw, row.break_even_events_per_s, row.power_at_10eps_nw
        );
    }
    report::note("below the break-even rate the node's budget is leakage-dominated;");
    report::note("at the paper's ~10 events/s, leakage under ~56 nW keeps events dominant");
}

/// One row of the loss sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossRow {
    /// Per-word fading probability.
    pub word_loss: f64,
    /// Packets sent.
    pub sent: u64,
    /// Packets fully received and checksum-verified.
    pub received: u64,
    /// Naive analytic packet-success bound `(1-p)^5` for a 5-word
    /// packet (ignores receiver desynchronization).
    pub analytic: f64,
}

impl LossRow {
    /// Measured packet delivery ratio.
    pub fn pdr(&self) -> f64 {
        self.received as f64 / self.sent as f64
    }
}

/// Measure packet delivery under per-word fading: one sender, one
/// listener, `n` packets. The MAC's frame timeout resynchronizes the
/// word-serial receiver after a lost word, so measured PDR tracks the
/// naive `(1-p)^words` bound (without the timeout, desynchronization
/// cascaded across packets and PDR collapsed).
pub fn loss_sweep_row(word_loss: f64, n: u64) -> LossRow {
    let mut sim = NetworkSim::new(10.0);
    sim.set_loss(word_loss, 0xFADE);
    let extra = install_handler("EV_IRQ", "app_send_irq");
    let app = format!(
        "{}{}",
        send_on_irq_app(2),
        "
rx_dispatch:
    lw r2, 0x100(r0)
    addi r2, 1
    sw r2, 0x100(r0)
    done
"
    );
    let sender = sim.add_node(
        &mac_program(1, &extra, &app).expect("assembles"),
        Position::new(0.0, 0.0),
    );
    let counter_app = "
rx_dispatch:
    lw r2, 0x100(r0)
    addi r2, 1
    sw r2, 0x100(r0)
    done
";
    let listener = sim.add_node(
        &mac_program(2, "", counter_app).expect("assembles"),
        Position::new(3.0, 0.0),
    );
    for i in 0..n {
        sim.schedule(
            sender,
            SimTime::ZERO + SimDuration::from_ms(2 + 10 * i),
            Stimulus::SensorIrq,
        );
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(2 + 10 * n + 20))
        .expect("runs");
    let received = sim.node(listener).cpu().dmem().read(0x100) as u64;
    LossRow {
        word_loss,
        sent: n,
        received,
        analytic: (1.0 - word_loss).powi(5),
    }
}

/// Print the loss sweep.
pub fn print_loss_sweep() {
    report::title("Extension - packet delivery vs per-word fading (5-word packets)");
    println!(
        "{:>10} {:>8} {:>10} {:>14} {:>14}",
        "word loss", "sent", "received", "measured PDR", "(1-p)^5 bound"
    );
    for p in [0.0, 0.02, 0.05, 0.1, 0.2] {
        let row = loss_sweep_row(p, 30);
        println!(
            "{:>10.2} {:>8} {:>10} {:>14.2} {:>14.2}",
            row.word_loss,
            row.sent,
            row.received,
            row.pdr(),
            row.analytic
        );
    }
    report::note("the MAC's frame timeout (timer 1) resynchronizes after a lost word,");
    report::note("so measured PDR tracks the independent-loss bound");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_matches_published_points() {
        assert!((delay_factor_fit(1.8) - 1.0).abs() < 1e-9);
        assert!(
            (delay_factor_fit(0.9) - 3.93).abs() < 0.3,
            "{}",
            delay_factor_fit(0.9)
        );
        assert!(
            (delay_factor_fit(0.6) - 8.57).abs() < 0.9,
            "{}",
            delay_factor_fit(0.6)
        );
    }

    #[test]
    fn sweep_is_monotone() {
        let rows = voltage_sweep();
        for pair in rows.windows(2) {
            assert!(pair[0].vdd > pair[1].vdd);
            assert!(
                pair[0].pj_per_ins > pair[1].pj_per_ins,
                "energy falls with voltage"
            );
            assert!(pair[0].mips > pair[1].mips, "speed falls with voltage");
        }
        // Even at the lowest point, thousands of handlers/s remain —
        // far beyond the tens/s the paper targets.
        assert!(rows.last().unwrap().handlers_per_s > 1_000.0);
    }

    #[test]
    fn loss_sweep_endpoints() {
        let clean = loss_sweep_row(0.0, 10);
        assert_eq!(clean.received, clean.sent);
        let lossy = loss_sweep_row(0.3, 10);
        assert!(lossy.received < lossy.sent, "{lossy:?}");
    }

    #[test]
    fn leakage_break_even_scales_linearly() {
        let rows = leakage_sensitivity();
        for pair in rows.windows(2) {
            let ratio = pair[1].leakage_nw / pair[0].leakage_nw;
            let be_ratio = pair[1].break_even_events_per_s / pair[0].break_even_events_per_s;
            assert!((ratio - be_ratio).abs() < 1e-9);
        }
        // With the 10 nW placeholder, break-even is ~2 events/s: the
        // paper's tens-of-events workloads are event-dominated.
        let at10 = rows.iter().find(|r| r.leakage_nw == 10.0).unwrap();
        assert!((1.0..4.0).contains(&at10.break_even_events_per_s));
    }

    #[test]
    fn single_sender_is_clean() {
        let row = contention(1);
        assert_eq!(row.deliveries, 5);
        assert_eq!(row.collisions, 0);
    }

    #[test]
    fn heavy_contention_collides() {
        let row = contention(6);
        assert!(
            row.collisions > 0,
            "six simultaneous senders must collide: {row:?}"
        );
    }
}
