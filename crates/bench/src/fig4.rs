//! Fig. 4 — energy per instruction type.
//!
//! Methodology per §4.4: "running programs of one thousand of each
//! instruction using uniformly distributed random operands, and
//! averaging across the type of instruction", at 1.8 / 0.9 / 0.6 V.
//! The figure covers the commonly executed classes; `done` (which
//! sleeps) and IMEM stores (which would overwrite the running program)
//! are excluded, as in the paper's figure.

use dess::SplitMix64;
use snap_core::{CoreConfig, Processor};
use snap_energy::OperatingPoint;
use snap_isa::{AluImmOp, AluOp, BranchCond, Instruction, InstructionClass, Reg, ShiftOp};

/// Instructions per class (the paper's methodology).
pub const INSTANCES: usize = 1000;

/// The classes Fig. 4 reports, in display order.
pub const FIG4_CLASSES: [InstructionClass; 12] = [
    InstructionClass::ArithReg,
    InstructionClass::LogicalReg,
    InstructionClass::Shift,
    InstructionClass::ArithImm,
    InstructionClass::LogicalImm,
    InstructionClass::Load,
    InstructionClass::Store,
    InstructionClass::Branch,
    InstructionClass::Jump,
    InstructionClass::Timer,
    InstructionClass::Bitfield,
    InstructionClass::Rand,
];

/// Measured energy/latency for one class at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassEnergy {
    /// The class.
    pub class: InstructionClass,
    /// Average energy per instruction, pJ.
    pub energy_pj: f64,
    /// Average latency per instruction, ns.
    pub latency_ns: f64,
    /// Instances measured.
    pub count: u64,
}

/// Registers used as random operands (excluding conventions and the
/// timer-number register r9).
const OPERANDS: [Reg; 8] = [
    Reg::R1,
    Reg::R2,
    Reg::R3,
    Reg::R4,
    Reg::R5,
    Reg::R6,
    Reg::R7,
    Reg::R8,
];

fn rand_reg(rng: &mut SplitMix64) -> Reg {
    OPERANDS[rng.next_below(OPERANDS.len() as u64) as usize]
}

/// Generate one instruction of `class` for the word address `at`.
fn gen_instruction(class: InstructionClass, at: u16, rng: &mut SplitMix64) -> Instruction {
    use InstructionClass as C;
    let rd = rand_reg(rng);
    let rs = rand_reg(rng);
    let imm = rng.next_u16();
    match class {
        C::ArithReg => {
            const OPS: [AluOp; 8] = [
                AluOp::Add,
                AluOp::Addc,
                AluOp::Sub,
                AluOp::Subc,
                AluOp::Mov,
                AluOp::Neg,
                AluOp::Slt,
                AluOp::Sltu,
            ];
            Instruction::AluReg {
                op: OPS[rng.next_below(8) as usize],
                rd,
                rs,
            }
        }
        C::LogicalReg => {
            const OPS: [AluOp; 4] = [AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Not];
            Instruction::AluReg {
                op: OPS[rng.next_below(4) as usize],
                rd,
                rs,
            }
        }
        C::Shift => {
            const OPS: [ShiftOp; 5] = [
                ShiftOp::Sll,
                ShiftOp::Srl,
                ShiftOp::Sra,
                ShiftOp::Rol,
                ShiftOp::Ror,
            ];
            let op = OPS[rng.next_below(5) as usize];
            if rng.next_below(2) == 0 {
                Instruction::ShiftReg { op, rd, rs }
            } else {
                Instruction::ShiftImm {
                    op,
                    rd,
                    amount: (imm & 0xf) as u8,
                }
            }
        }
        C::ArithImm => {
            const OPS: [AluImmOp; 5] = [
                AluImmOp::Addi,
                AluImmOp::Subi,
                AluImmOp::Li,
                AluImmOp::Slti,
                AluImmOp::Sltiu,
            ];
            Instruction::AluImm {
                op: OPS[rng.next_below(5) as usize],
                rd,
                imm,
            }
        }
        C::LogicalImm => {
            const OPS: [AluImmOp; 3] = [AluImmOp::Andi, AluImmOp::Ori, AluImmOp::Xori];
            Instruction::AluImm {
                op: OPS[rng.next_below(3) as usize],
                rd,
                imm,
            }
        }
        C::Load => Instruction::Load {
            rd,
            base: rs,
            offset: imm,
        },
        C::Store => Instruction::Store {
            rs: rd,
            base: rs,
            offset: imm,
        },
        // Branches compare random operands but always land on the next
        // instruction, so taken and not-taken paths both continue.
        C::Branch => {
            const CONDS: [BranchCond; 6] = [
                BranchCond::Eq,
                BranchCond::Ne,
                BranchCond::Lt,
                BranchCond::Ge,
                BranchCond::Ltu,
                BranchCond::Geu,
            ];
            Instruction::Branch {
                cond: CONDS[rng.next_below(6) as usize],
                ra: rd,
                rb: rs,
                target: at + 2,
            }
        }
        C::Jump => {
            if rng.next_below(2) == 0 {
                Instruction::Jmp { target: at + 2 }
            } else {
                Instruction::Jal {
                    rd: Reg::R11,
                    target: at + 2,
                }
            }
        }
        // r9 is pre-seeded with a valid timer number; schedhi stages a
        // value without starting a countdown, cancel on an idle timer
        // posts nothing.
        C::Timer => {
            if rng.next_below(4) == 0 {
                Instruction::Cancel { rt: Reg::R9 }
            } else {
                Instruction::SchedHi {
                    rt: Reg::R9,
                    rv: rs,
                }
            }
        }
        C::Bitfield => Instruction::Bfs { rd, rs, mask: imm },
        C::Rand => {
            if rng.next_below(4) == 0 {
                Instruction::Seed { rs }
            } else {
                Instruction::Rand { rd }
            }
        }
        other => unreachable!("class {other} is not part of Fig. 4"),
    }
}

/// Measure one class at one operating point.
///
/// # Panics
///
/// Panics if the generated program misbehaves (a harness bug).
pub fn measure_class(class: InstructionClass, point: OperatingPoint) -> ClassEnergy {
    let mut rng = SplitMix64::new(0xF164 ^ class as u64);
    let mut program = Vec::with_capacity(INSTANCES + 1);
    let mut at: u16 = 0;
    for _ in 0..INSTANCES {
        let ins = gen_instruction(class, at, &mut rng);
        at += ins.word_count() as u16;
        program.push(ins);
    }
    program.push(Instruction::Halt);

    let mut cpu = Processor::new(CoreConfig::at(point));
    cpu.load_program(&program).expect("fig4 program fits IMEM");
    // Uniformly random operand registers (the paper's methodology),
    // seeded directly so the setup does not pollute the class counters.
    for reg in OPERANDS {
        cpu.regs_mut().write(reg, rng.next_u16());
    }
    cpu.regs_mut().write(Reg::R9, rng.next_below(3) as u16); // timer number
    cpu.run_to_halt(INSTANCES as u64 + 10)
        .expect("fig4 program runs clean");

    let stats = cpu.acct().class_stats(class);
    assert_eq!(
        stats.count, INSTANCES as u64,
        "{class}: exact instance count"
    );
    let busy = cpu.acct().busy_time();
    ClassEnergy {
        class,
        energy_pj: stats.energy.as_pj() / stats.count as f64,
        // Remove the single halt instruction's latency from the average.
        latency_ns: busy.as_ns() / (stats.count + 1) as f64,
        count: stats.count,
    }
}

/// Measure all Fig. 4 classes at one operating point.
pub fn measure_fig4(point: OperatingPoint) -> Vec<ClassEnergy> {
    FIG4_CLASSES
        .into_iter()
        .map(|c| measure_class(c, point))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_measured_exactly() {
        for row in measure_fig4(OperatingPoint::V1_8) {
            assert_eq!(row.count, INSTANCES as u64, "{}", row.class);
            assert!(row.energy_pj > 0.0);
            assert!(row.latency_ns > 0.0);
        }
    }

    #[test]
    fn paper_bands_hold() {
        // < 300 pJ at 1.8 V for every class; < 75 pJ at 0.6 V with many
        // classes under 25 pJ.
        for row in measure_fig4(OperatingPoint::V1_8) {
            assert!(
                row.energy_pj < crate::paper::FIG4_MAX_PJ_1V8,
                "{}: {}",
                row.class,
                row.energy_pj
            );
        }
        let at06 = measure_fig4(OperatingPoint::V0_6);
        let mut under25 = 0;
        for row in &at06 {
            assert!(
                row.energy_pj < crate::paper::FIG4_MAX_PJ_0V6,
                "{}: {}",
                row.class,
                row.energy_pj
            );
            if row.energy_pj < 25.0 {
                under25 += 1;
            }
        }
        assert!(under25 >= 5, "many classes under 25 pJ, got {under25}");
    }

    #[test]
    fn tier_ordering() {
        let rows = measure_fig4(OperatingPoint::V1_8);
        let by = |c: InstructionClass| rows.iter().find(|r| r.class == c).unwrap().energy_pj;
        use InstructionClass as C;
        assert!(by(C::ArithReg) < by(C::ArithImm));
        assert!(by(C::ArithImm) < by(C::Load));
        assert!(by(C::LogicalReg) < by(C::LogicalImm));
        assert!(by(C::Store) > by(C::ArithImm));
    }

    #[test]
    fn deterministic() {
        let a = measure_fig4(OperatingPoint::V0_9);
        let b = measure_fig4(OperatingPoint::V0_9);
        assert_eq!(a, b);
    }
}
