//! The non-Fig.-4 experiments: throughput, wake-up, energy
//! distribution, the three TinyOS comparisons, Table 2 and the §4.7
//! summary. Each returns structured results; the bins/bench targets
//! print them against `paper`.

use crate::paper;
use crate::report;
use atmega::tinyos;
use dess::SimDuration;
use snap_apps::measure::{
    measure_blink, measure_components, measure_radiostack_byte, measure_sense, measure_table1,
};
use snap_core::{CoreConfig, Processor};
use snap_energy::{related_processors, AvrEnergyModel, Component, OperatingPoint};
use snap_isa::Instruction;

/// §4.3 throughput: average MIPS over the Table 1 benchmark mix.
pub fn measure_mips(point: OperatingPoint) -> f64 {
    let rows = measure_table1(point);
    let instructions: u64 = rows.iter().map(|r| r.instructions).sum();
    let busy: SimDuration = rows.iter().map(|r| r.busy_time).sum();
    instructions as f64 / busy.as_us()
}

/// §4.3 wake-up latency: time from event arrival at an idle core to
/// handler dispatch.
pub fn measure_wakeup_ns(point: OperatingPoint) -> f64 {
    let mut cpu = Processor::new(CoreConfig::at(point));
    cpu.load_program(&[Instruction::Done]).expect("fits");
    cpu.run_until_idle(10).expect("boots to sleep");
    let t0 = cpu.now();
    cpu.post_sensor_irq();
    cpu.step().expect("wakes");
    (cpu.now() - t0).as_ns()
}

/// §4.4 energy distribution: `(component, fraction-of-core-energy)`
/// plus memory's share of the total.
pub fn measure_breakdown(point: OperatingPoint) -> (Vec<(Component, f64)>, f64) {
    let components = measure_components(point);
    let core_fracs = Component::CORE_SPLIT
        .iter()
        .map(|&(c, _)| (c, components.core_fraction(c)))
        .collect();
    let memory_share = components.memory_total() / components.total();
    (core_fracs, memory_share)
}

/// One platform side of a §4.6 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Mote (TinyOS/AVR) cycles.
    pub avr_cycles: u64,
    /// SNAP cycles.
    pub snap_cycles: u64,
    /// Mote energy, nJ.
    pub avr_nj: f64,
    /// SNAP energy at 1.8 V, nJ.
    pub snap_nj_1v8: f64,
    /// SNAP energy at 0.6 V, nJ.
    pub snap_nj_0v6: f64,
}

impl Comparison {
    /// Cycle-reduction factor (mote / SNAP).
    pub fn cycle_ratio(&self) -> f64 {
        self.avr_cycles as f64 / self.snap_cycles as f64
    }
}

fn avr_energy_nj(cycles: u64) -> f64 {
    AvrEnergyModel::atmega128l().task_energy(cycles).as_nj()
}

/// Fig. 5: the Blink comparison.
pub fn compare_blink() -> Comparison {
    let avr = tinyos::measure_blink_cycles();
    let snap18 = measure_blink(OperatingPoint::V1_8);
    let snap06 = measure_blink(OperatingPoint::V0_6);
    Comparison {
        avr_cycles: avr.total,
        snap_cycles: snap18.cycles,
        avr_nj: avr_energy_nj(avr.total),
        snap_nj_1v8: snap18.energy.as_nj(),
        snap_nj_0v6: snap06.energy.as_nj(),
    }
}

/// §4.6: the Sense comparison (returns overhead cycles too).
pub fn compare_sense() -> (Comparison, u64) {
    let avr = tinyos::measure_sense_cycles();
    let snap18 = measure_sense(OperatingPoint::V1_8);
    let snap06 = measure_sense(OperatingPoint::V0_6);
    (
        Comparison {
            avr_cycles: avr.total,
            snap_cycles: snap18.cycles,
            avr_nj: avr_energy_nj(avr.total),
            snap_nj_1v8: snap18.energy.as_nj(),
            snap_nj_0v6: snap06.energy.as_nj(),
        },
        avr.overhead(),
    )
}

/// §4.6: the radio-stack per-byte comparison.
pub fn compare_radiostack() -> Comparison {
    let avr_cycles = tinyos::measure_radiostack_cycles_per_byte();
    let snap18 = measure_radiostack_byte(OperatingPoint::V1_8);
    let snap06 = measure_radiostack_byte(OperatingPoint::V0_6);
    Comparison {
        avr_cycles,
        snap_cycles: snap18.cycles,
        avr_nj: avr_energy_nj(avr_cycles),
        snap_nj_1v8: snap18.energy.as_nj(),
        snap_nj_0v6: snap06.energy.as_nj(),
    }
}

/// A measured SNAP/LE row for Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapRow {
    /// Supply voltage.
    pub vdd: f64,
    /// Measured MIPS on the benchmark mix.
    pub mips: f64,
    /// Average pJ per instruction on the benchmark mix.
    pub energy_per_ins_pj: f64,
}

/// Measure the two SNAP/LE rows of Table 2 (0.6 V and 1.8 V).
pub fn measure_snap_rows() -> [SnapRow; 2] {
    let row = |point: OperatingPoint| {
        let rows = measure_table1(point);
        let instructions: u64 = rows.iter().map(|r| r.instructions).sum();
        let busy: SimDuration = rows.iter().map(|r| r.busy_time).sum();
        let energy: f64 = rows.iter().map(|r| r.energy.as_pj()).sum();
        SnapRow {
            vdd: point.vdd(),
            mips: instructions as f64 / busy.as_us(),
            energy_per_ins_pj: energy / instructions as f64,
        }
    };
    [row(OperatingPoint::V0_6), row(OperatingPoint::V1_8)]
}

/// §4.7 summary: handler-energy band (nJ) and active power band (nW)
/// at ten events per second, for one operating point.
pub fn measure_summary(point: OperatingPoint) -> ((f64, f64), (f64, f64)) {
    let rows = measure_table1(point);
    let min_nj = rows
        .iter()
        .map(|r| r.energy.as_nj())
        .fold(f64::INFINITY, f64::min);
    let max_nj = rows.iter().map(|r| r.energy.as_nj()).fold(0.0f64, f64::max);
    // Ten handlers per second: power = 10 x handler energy per second.
    let to_nw = |nj: f64| nj * 10.0; // nJ x 10/s = 10 nW per nJ
    ((min_nj, max_nj), (to_nw(min_nj), to_nw(max_nj)))
}

/// Per-handler profile of a relay node serving a busy period: receive
/// a packet, forward it, answer a route request (Table 1's per-task
/// accounting, measured live from one node's profile counters).
pub fn print_handler_profile() {
    use dess::SimDuration;
    use snap_apps::aodv::relay_program;
    use snap_apps::packet::Packet;
    use snap_node::{Node, NodeConfig};

    report::title("Per-handler profile of a relay node (Table 1 accounting, live)");
    let program = relay_program(3, &[(9, 2), (7, 4)]).expect("assembles");
    let mut node = Node::new(NodeConfig::default());
    node.load(&program).expect("fits");
    node.run_for(SimDuration::from_ms(1)).expect("boot");
    // Traffic: two data packets to forward and one route request.
    for packet in [
        Packet::data(9, 1, vec![1, 2]),
        Packet::route_request(3, 1, 7),
        Packet::data(9, 4, vec![3]),
    ] {
        for w in packet.encode() {
            node.deliver_rx(w);
            node.run_for(SimDuration::from_us(900)).expect("rx");
        }
        node.run_for(SimDuration::from_ms(12))
            .expect("tx completes");
    }
    let profile = node.cpu().profile();
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12}",
        "handler", "dispatches", "instructions", "ins/dispatch", "energy"
    );
    let boot = profile.boot();
    println!(
        "{:<16} {:>10} {:>12} {:>12.1} {:>12}",
        "(boot)",
        1,
        boot.instructions,
        boot.instructions as f64,
        boot.energy.to_string()
    );
    for (event, stats) in profile.dispatched() {
        println!(
            "{:<16} {:>10} {:>12} {:>12.1} {:>12}",
            event.to_string(),
            stats.dispatches,
            stats.instructions,
            stats.instructions_per_dispatch(),
            stats.energy.to_string()
        );
    }
    report::note("radio-rx covers packet assembly + routing dispatch; radio-tx-done");
    report::note("covers the word-by-word transmit pump; timer2 is the CSMA backoff");
}

// ---- printed reports (shared by bins and bench targets) ----

/// Print Fig. 4.
pub fn print_fig4() {
    report::title("Fig. 4 - energy per instruction type");
    for point in OperatingPoint::PAPER_POINTS {
        report::heading(&point.label().to_string());
        for row in crate::fig4::measure_fig4(point) {
            println!(
                "  {:<12} {:>8.1} pJ/ins   {:>7.2} ns/ins",
                row.class.label(),
                row.energy_pj,
                row.latency_ns
            );
        }
    }
    report::note("paper bands: <300 pJ at 1.8V; <75 pJ (many <25) at 0.6V;");
    report::note("tiers: one-word reg < two-word imm < memory ops");
}

/// Print Table 1.
pub fn print_table1() {
    report::title("Table 1 - handler code statistics with energy");
    for (i, point) in OperatingPoint::PAPER_POINTS.into_iter().enumerate() {
        report::heading(&point.label());
        for (row, paper_row) in measure_table1(point).iter().zip(paper::TABLE1) {
            let (paper_nj, paper_pj) = match i {
                0 => (paper_row.2, paper_row.3),
                1 => (paper_row.4, paper_row.5),
                _ => (paper_row.6, paper_row.7),
            };
            println!(
                "  {:<20} insts paper {:>4} meas {:>4} | E paper {:>6.1}nJ meas {:>6.1}nJ | pJ/ins paper {:>5.0} meas {:>5.0}",
                row.name,
                paper_row.1,
                row.instructions,
                paper_nj,
                row.energy.as_nj(),
                paper_pj,
                row.energy_per_instruction().as_pj(),
            );
        }
    }
    let rows = measure_table1(OperatingPoint::V1_8);
    let total: usize = [0usize, 2, 4, 5].iter().map(|&i| rows[i].code_bytes).sum();
    report::note(&format!(
        "total code size of the distinct programs: {total} bytes (paper: ~2.8 KB)"
    ));
}

/// Print §4.3 throughput.
pub fn print_throughput() {
    report::title("Section 4.3 - average throughput (benchmark mix)");
    for (point, (_, paper_mips)) in OperatingPoint::PAPER_POINTS.into_iter().zip(paper::MIPS) {
        report::row(
            &format!("MIPS @ {}", point.label()),
            paper_mips,
            measure_mips(point),
            "MIPS",
        );
    }
}

/// Print §4.3 wake-up latency.
pub fn print_wakeup() {
    report::title("Section 4.3 - idle-to-active wake-up latency");
    for (point, (_, paper_ns)) in OperatingPoint::PAPER_POINTS
        .into_iter()
        .zip(paper::WAKEUP_NS)
    {
        report::row(
            &format!("wakeup @ {}", point.label()),
            paper_ns,
            measure_wakeup_ns(point),
            "ns",
        );
    }
    report::note("Atmel baseline: 4,000,000 - 65,000,000 ns (4-65 ms)");
}

/// Print §4.4 energy distribution.
pub fn print_breakdown() {
    report::title("Section 4.4 - core energy distribution");
    let (fracs, memory_share) = measure_breakdown(OperatingPoint::V1_8);
    for ((component, measured), (label, paper_frac)) in fracs.iter().zip(paper::CORE_SPLIT) {
        debug_assert_eq!(component.label(), label);
        report::row(
            &format!("core share: {component}"),
            paper_frac * 100.0,
            measured * 100.0,
            "%",
        );
    }
    report::row(
        "memory share of total",
        paper::MEMORY_SHARE * 100.0,
        memory_share * 100.0,
        "%",
    );
}

/// Print Fig. 5.
pub fn print_fig5() {
    report::title("Fig. 5 - periodic LED Blink: TinyOS/mote vs SNAP");
    let c = compare_blink();
    report::row_u64(
        "mote cycles/blink",
        paper::BLINK.avr_total,
        c.avr_cycles,
        "cycles",
    );
    report::row_u64(
        "SNAP cycles/blink",
        paper::BLINK.snap_cycles,
        c.snap_cycles,
        "cycles",
    );
    report::row("mote energy/blink", paper::BLINK.avr_nj, c.avr_nj, "nJ");
    report::row(
        "SNAP energy @1.8V",
        paper::BLINK.snap_nj_1v8,
        c.snap_nj_1v8,
        "nJ",
    );
    report::row(
        "SNAP energy @0.6V",
        paper::BLINK.snap_nj_0v6,
        c.snap_nj_0v6,
        "nJ",
    );
    report::note(&format!(
        "cycle reduction: paper x{:.1}, measured x{:.1}",
        paper::BLINK.avr_total as f64 / paper::BLINK.snap_cycles as f64,
        c.cycle_ratio()
    ));
}

/// Print the Sense comparison.
pub fn print_sense() {
    report::title("Section 4.6 - Sense: TinyOS/mote vs SNAP");
    let (c, overhead) = compare_sense();
    report::row_u64(
        "mote cycles/iteration",
        paper::SENSE.0,
        c.avr_cycles,
        "cycles",
    );
    report::row_u64("mote overhead cycles", paper::SENSE.1, overhead, "cycles");
    report::row_u64(
        "SNAP cycles/iteration",
        paper::SENSE.2,
        c.snap_cycles,
        "cycles",
    );
    report::note(&format!(
        "overhead fraction: paper {:.0}%, measured {:.0}%",
        paper::SENSE.1 as f64 / paper::SENSE.0 as f64 * 100.0,
        overhead as f64 / c.avr_cycles as f64 * 100.0
    ));
}

/// Print the radio-stack comparison.
pub fn print_radiostack() {
    report::title("Section 4.6 - MICA high-speed radio stack, per byte");
    let c = compare_radiostack();
    report::row_u64(
        "mote cycles/byte",
        paper::RADIOSTACK.0,
        c.avr_cycles,
        "cycles",
    );
    report::row_u64(
        "SNAP cycles/byte",
        paper::RADIOSTACK.1,
        c.snap_cycles,
        "cycles",
    );
    report::note(&format!(
        "reduction: paper {:.0}%, measured {:.0}%",
        (1.0 - paper::RADIOSTACK.1 as f64 / paper::RADIOSTACK.0 as f64) * 100.0,
        (1.0 - c.snap_cycles as f64 / c.avr_cycles as f64) * 100.0
    ));
}

/// Print Table 2.
pub fn print_table2() {
    report::title("Table 2 - related microcontrollers");
    println!(
        "{:<22} {:>8} {:>10} {:>9} {:>12}",
        "processor", "clocked", "MIPS", "Vdd", "pJ/ins"
    );
    for r in related_processors() {
        println!(
            "{:<22} {:>8} {:>10} {:>9} {:>12}",
            r.name,
            if r.clocked { "yes" } else { "no" },
            format!("{}-{}", r.mips.0, r.mips.1),
            format!("{}-{}", r.voltage.0, r.voltage.1),
            format!("{}-{}", r.energy_per_ins_pj.0, r.energy_per_ins_pj.1),
        );
    }
    for row in measure_snap_rows() {
        println!(
            "{:<22} {:>8} {:>10.0} {:>9.1} {:>12.0}   (measured)",
            format!("SNAP/LE @{}V", row.vdd),
            "no",
            row.mips,
            row.vdd,
            row.energy_per_ins_pj,
        );
    }
    let snap06 = measure_snap_rows()[0];
    report::row(
        "Atmel/SNAP energy ratio",
        paper::ATMEL_ENERGY_RATIO,
        1500.0 / snap06.energy_per_ins_pj,
        "x",
    );
}

/// Print the §4.7 summary.
pub fn print_summary() {
    report::title("Section 4.7 - results summary");
    let ((lo18, hi18), (plo18, phi18)) = measure_summary(OperatingPoint::V1_8);
    let ((lo06, hi06), (plo06, phi06)) = measure_summary(OperatingPoint::V0_6);
    report::row(
        "handler energy min @1.8V",
        paper::HANDLER_NJ_1V8.0,
        lo18,
        "nJ",
    );
    report::row(
        "handler energy max @1.8V",
        paper::HANDLER_NJ_1V8.1,
        hi18,
        "nJ",
    );
    report::row(
        "handler energy min @0.6V",
        paper::HANDLER_NJ_0V6.0,
        lo06,
        "nJ",
    );
    report::row(
        "handler energy max @0.6V",
        paper::HANDLER_NJ_0V6.1,
        hi06,
        "nJ",
    );
    report::row(
        "active power min @1.8V",
        paper::ACTIVE_NW_1V8.0,
        plo18,
        "nW",
    );
    report::row(
        "active power max @1.8V",
        paper::ACTIVE_NW_1V8.1,
        phi18,
        "nW",
    );
    report::row(
        "active power min @0.6V",
        paper::ACTIVE_NW_0V6.0,
        plo06,
        "nW",
    );
    report::row(
        "active power max @0.6V",
        paper::ACTIVE_NW_0V6.1,
        phi06,
        "nW",
    );
    report::note("active power assumes ten handlers per second (paper Section 4.7)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mips_band() {
        // Paper: 240 MIPS at 1.8 V. Accept 25% tolerance (mix-dependent).
        let mips = measure_mips(OperatingPoint::V1_8);
        assert!((180.0..300.0).contains(&mips), "{mips} MIPS");
        // Voltage scaling: ~x3.93 and ~x8.57 slower.
        let m09 = measure_mips(OperatingPoint::V0_9);
        let m06 = measure_mips(OperatingPoint::V0_6);
        assert!((mips / m09 - 3.93).abs() < 0.1, "{}", mips / m09);
        assert!((mips / m06 - 8.57).abs() < 0.1, "{}", mips / m06);
    }

    #[test]
    fn wakeup_matches_gate_delay_model() {
        for (point, (_, paper_ns)) in OperatingPoint::PAPER_POINTS
            .into_iter()
            .zip(paper::WAKEUP_NS)
        {
            let ns = measure_wakeup_ns(point);
            assert!((ns - paper_ns).abs() < 0.2, "{point}: {ns} vs {paper_ns}");
        }
    }

    #[test]
    fn breakdown_matches_paper_split() {
        let (fracs, memory_share) = measure_breakdown(OperatingPoint::V1_8);
        for ((_, measured), (label, paper_frac)) in fracs.iter().zip(paper::CORE_SPLIT) {
            assert!(
                (measured - paper_frac).abs() < 0.02,
                "{label}: {measured} vs {paper_frac}"
            );
        }
        assert!(
            (0.40..0.60).contains(&memory_share),
            "memory share {memory_share}"
        );
    }

    #[test]
    fn comparisons_have_paper_shape() {
        let blink = compare_blink();
        assert!(
            blink.cycle_ratio() > 8.0,
            "blink ratio {}",
            blink.cycle_ratio()
        );
        assert!(blink.avr_nj / blink.snap_nj_1v8 > 50.0);
        let (sense, overhead) = compare_sense();
        assert!(
            sense.cycle_ratio() > 2.5,
            "sense ratio {}",
            sense.cycle_ratio()
        );
        assert!(overhead as f64 / sense.avr_cycles as f64 > 0.55);
        let rs = compare_radiostack();
        assert!(
            rs.cycle_ratio() > 1.2,
            "radio stack ratio {}",
            rs.cycle_ratio()
        );
    }

    #[test]
    fn table2_snap_rows() {
        let [low, high] = measure_snap_rows();
        assert!(low.vdd < high.vdd);
        assert!(
            (15.0..35.0).contains(&low.energy_per_ins_pj),
            "{}",
            low.energy_per_ins_pj
        );
        assert!(
            (150.0..280.0).contains(&high.energy_per_ins_pj),
            "{}",
            high.energy_per_ins_pj
        );
        // The headline ratio: Atmel 1500 pJ/ins vs SNAP at 0.6 V ~ 68x.
        let ratio = 1500.0 / low.energy_per_ins_pj;
        assert!((45.0..90.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn summary_bands() {
        let ((lo, hi), (plo, phi)) = measure_summary(OperatingPoint::V0_6);
        assert!(lo > 0.5 && hi < 12.0, "handler band {lo}-{hi} nJ");
        assert!(plo > 5.0 && phi < 120.0, "power band {plo}-{phi} nW");
    }
}
