//! # bench — the harness that regenerates every table and figure
//!
//! One module per experiment; each returns structured results and knows
//! the paper's published values, so every bench/bin target prints
//! `paper vs measured` rows. Launchers:
//!
//! | experiment | `cargo run -p bench --bin …` | `cargo bench -p bench --bench …` |
//! |---|---|---|
//! | Fig. 4 energy per class | `fig4` | `fig4_energy_per_class` |
//! | Table 1 handlers | `table1` | `table1_handlers` |
//! | §4.3 throughput | `throughput` | `throughput_mips` |
//! | §4.3 wake-up latency | `wakeup` | `wakeup_latency` |
//! | §4.4 energy distribution | `energy_breakdown` | `energy_breakdown` |
//! | Fig. 5 Blink | `fig5_blink` | `fig5_blink` |
//! | §4.6 Sense | `sense_compare` | `sense_compare` |
//! | §4.6 radio stack | `radiostack_compare` | `radiostack_compare` |
//! | Table 2 | `table2` | `table2_related` |
//! | §4.7 summary | `summary` | `summary_power` |
//! | bus-hierarchy ablation | `ablation_bus` | `ablation_bus` |
//! | radio word-interface ablation | `ablation_radio` | `ablation_radio_word` |
//! | compiler-quality ablation | `ablation_compiler` | `ablation_compiler` |
//! | voltage sweep (extension) | `ext_voltage_sweep` | `ext_voltage_sweep` |
//! | CSMA contention (extension) | `ext_csma` | `ext_csma` |

#![warn(missing_docs)]

pub mod ablation;
pub mod experiments;
pub mod ext;
pub mod fig4;
pub mod paper;
pub mod report;
