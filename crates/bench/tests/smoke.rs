//! Smoke test: every experiment report runs to completion (the bins
//! and bench targets share these functions, so `cargo test` covers the
//! whole harness).

#[test]
fn all_reports_run() {
    bench::experiments::print_table1();
    bench::experiments::print_throughput();
    bench::experiments::print_wakeup();
    bench::experiments::print_breakdown();
    bench::experiments::print_fig5();
    bench::experiments::print_sense();
    bench::experiments::print_radiostack();
    bench::experiments::print_table2();
    bench::experiments::print_summary();
    bench::experiments::print_handler_profile();
    bench::ablation::print_bus_ablation();
    bench::ablation::print_radio_ablation();
    bench::ablation::print_compiler_ablation();
    bench::ext::print_leakage();
}

#[test]
fn fig4_report_runs() {
    bench::experiments::print_fig4();
}

#[test]
fn ext_reports_run() {
    bench::ext::print_voltage_sweep();
    bench::ext::print_contention();
}
