//! `cargo bench --bench ext_csma` — extension experiment.
fn main() {
    bench::ext::print_contention();
}
