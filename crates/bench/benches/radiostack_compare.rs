//! `cargo bench --bench radiostack_compare` — regenerates this experiment's table.
fn main() {
    bench::experiments::print_radiostack();
}
