//! Criterion microbenchmarks of the simulator hot paths (how fast the
//! reproduction itself runs; not a paper figure), plus a regression
//! harness: `cargo bench --bench sim_speed -- --json` re-measures the
//! scenarios and writes `BENCH_sim_speed.json` at the repo root with
//! the speedup over the recorded pre-fast-path baseline.

use criterion::{criterion_group, Bencher, Criterion};
use dess::{SimDuration, SimTime};
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::{install_handler, PRELUDE};
use snap_asm::{assemble_modules, Program};
use snap_core::{CoreConfig, Engine, Processor};
use snap_isa::{AluImmOp, AluOp, Instruction, Reg};
use snap_net::{NetworkSim, Position, Scheduler, Stimulus, TraceMode};
use snap_node::{BatteryConfig, NodeId, NodeKind};
use std::time::{Duration, Instant};

/// Baseline timings measured on this tree immediately before the
/// fast-path changes (predecoded IMEM, persistent worker pool, cached
/// neighbourhoods), release profile, same machine; the minimum of six
/// runs, so reported speedups are conservative. `--json` reports
/// current timings as a speedup over these.
const BASELINE_30K_US: f64 = 1_562.0;
const BASELINE_NET_US: f64 = 163_100.0;

/// Lockstep-scheduler timing of the sparse 256-node scenario, measured
/// on this tree with `--baseline` (release profile, same machine,
/// minimum of six runs). Everything except the scheduler is identical
/// — the same incremental topology cache, batched handler execution
/// and count-only trace — so the reported speedup is attributable to
/// the wake calendar alone. (With the pre-PR O(n³) topology build the
/// lockstep run was 809,160 µs; that part of the win is excluded.)
/// The sparse scenario is exactly the workload the wake calendar
/// exists for: hundreds of duty-cycled nodes, almost all asleep at
/// any instant.
const BASELINE_SPARSE_LOCKSTEP_US: f64 = 488_548.0;

fn core_loop_program() -> [Instruction; 5] {
    // A tight arithmetic loop: 3 instructions per iteration.
    [
        Instruction::AluImm {
            op: AluImmOp::Li,
            rd: Reg::R1,
            imm: 10_000,
        },
        Instruction::AluReg {
            op: AluOp::Add,
            rd: Reg::R2,
            rs: Reg::R1,
        },
        Instruction::AluImm {
            op: AluImmOp::Subi,
            rd: Reg::R1,
            imm: 1,
        },
        Instruction::Branch {
            cond: snap_isa::BranchCond::Nez,
            ra: Reg::R1,
            rb: Reg::R0,
            target: 2,
        },
        Instruction::Halt,
    ]
}

/// Simulated-workload size: (dynamic instructions, energy in pJ).
/// Deterministic per scenario — reported in the JSON so the bench
/// record carries the paper's energy units alongside wall time.
type Workload = (u64, f64);

fn run_core_loop(prog: &[Instruction]) -> Workload {
    let mut cpu = Processor::new(CoreConfig::default());
    cpu.load_program(prog).unwrap();
    cpu.run_to_halt(40_000).unwrap();
    let stats = cpu.stats();
    assert!(stats.instructions > 30_000);
    (stats.instructions, stats.energy.as_pj())
}

/// Sum every node's executed instructions and consumed energy.
fn network_workload(sim: &NetworkSim) -> Workload {
    let mut instructions = 0;
    let mut energy_pj = 0.0;
    for id in sim.topology().nodes() {
        let stats = sim.node(id).cpu().stats();
        instructions += stats.instructions;
        energy_pj += stats.energy.as_pj();
    }
    (instructions, energy_pj)
}

/// A 25-node CSMA mesh on a 5x5 grid: every node runs the MAC with a
/// send-on-IRQ app targeting its successor, IRQs staggered so traffic
/// overlaps. 25 nodes is past `PARALLEL_THRESHOLD`, so this exercises
/// the parallel node-window path as well as delivery range scans.
fn run_net_mesh() -> Workload {
    let mut sim = NetworkSim::new(12.0);
    for i in 0u8..25 {
        let dst = if i == 24 { 1 } else { i + 2 };
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let program = mac_program(i + 1, &extra, &app).expect("assembles");
        let (row, col) = (f64::from(i / 5), f64::from(i % 5));
        sim.add_node(&program, Position::new(col * 10.0, row * 10.0));
    }
    let ids: Vec<_> = sim.topology().nodes().collect();
    for (i, id) in ids.into_iter().enumerate() {
        // ~833 µs word time: a 1.5 ms stagger lets early packets land
        // cleanly while later ones overlap and collide — both delivery
        // outcomes are exercised.
        let at = SimTime::ZERO + SimDuration::from_us(1_000 + 1_500 * i as u64);
        sim.schedule(id, at, Stimulus::SensorIrq);
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(60))
        .expect("network runs");
    assert!(sim.channel().deliveries() > 0, "mesh must carry traffic");
    network_workload(&sim)
}

/// Nodes in the sparse duty-cycled scenario.
const SPARSE_NODES: usize = 256;
/// MAC nodes within those: a small cluster that keeps real radio
/// traffic (CSMA, deliveries, collisions) in the mix.
const SPARSE_MAC_NODES: usize = 6;
/// Simulated span. Long on purpose: the point of the scenario is vast
/// stretches of near-total sleep.
const SPARSE_SIM_MS: u64 = 500;

/// A duty-cycled sensing node: a periodic timer handler that counts
/// the tick and re-arms. Periods and initial phases vary per node so
/// wake-ups spread out instead of beating in sync — at any instant a
/// handful of the 256 nodes are due and the rest are asleep.
fn sparse_timer_program(period_ticks: u16, phase_ticks: u16) -> Program {
    let app = format!(
        r"
.data
ticks: .word 0

.text
duty_timer:
    lw      r2, ticks(r0)
    addi    r2, 1
    sw      r2, ticks(r0)
    li      r1, 0
    schedhi r1, r0
    li      r2, {period_ticks}
    schedlo r1, r2
    done
"
    );
    let mut boot = String::from("boot:\n");
    boot.push_str(&install_handler("EV_TIMER0", "duty_timer"));
    boot.push_str(&format!(
        "    li      r1, 0\n    schedhi r1, r0\n    li      r2, {phase_ticks}\n    schedlo r1, r2\n    done\n"
    ));
    assemble_modules(&[("prelude.s", PRELUDE), ("boot.s", &boot), ("duty.s", &app)])
        .expect("sparse program assembles")
}

/// Pre-assembled programs for the sparse scenario (assembly is setup,
/// not simulation — it stays outside the measured loop).
fn sparse_programs() -> Vec<Program> {
    let mut programs = Vec::with_capacity(SPARSE_NODES);
    for i in 0..SPARSE_MAC_NODES {
        let dst = if i + 1 == SPARSE_MAC_NODES { 1 } else { i + 2 } as u8;
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let extra = install_handler("EV_IRQ", "app_send_irq");
        programs.push(mac_program(i as u8 + 1, &extra, &app).expect("assembles"));
    }
    for i in 0..SPARSE_NODES - SPARSE_MAC_NODES {
        let period = 2_000 + (i % 17) as u16 * 311; // 2.0 .. 7.0 ms
        let phase = 100 + (i % 97) as u16 * 53; // de-synchronized starts
        programs.push(sparse_timer_program(period, phase));
    }
    programs
}

/// 256 nodes, ~98% of them duty-cycled sleepers: a 6-node MAC cluster
/// exchanges packets every ~50 ms while 250 timer nodes (parked out of
/// radio range) wake for a few instructions every few milliseconds.
/// Under the lockstep scheduler every ~20 µs window advances all 256
/// nodes; under the wake calendar each window touches only the nodes
/// actually due.
fn run_net_sparse(programs: &[Program], scheduler: Scheduler) -> Workload {
    let mut sim = NetworkSim::new(12.0);
    sim.set_scheduler(scheduler);
    sim.set_trace_mode(TraceMode::CountOnly);
    for (i, program) in programs.iter().enumerate() {
        let pos = if i < SPARSE_MAC_NODES {
            // The MAC cluster: a tight line, everyone in range.
            Position::new(i as f64 * 8.0, 0.0)
        } else {
            // Sleepers: far from the cluster and from each other.
            Position::new(1_000.0 + i as f64 * 100.0, 0.0)
        };
        sim.add_node(program, pos);
    }
    let ids: Vec<_> = sim.topology().nodes().take(SPARSE_MAC_NODES).collect();
    for burst in 0..(SPARSE_SIM_MS / 50) {
        for (i, id) in ids.iter().enumerate() {
            let at = SimTime::ZERO + SimDuration::from_us(1_000 + burst * 50_000 + 900 * i as u64);
            sim.schedule(*id, at, Stimulus::SensorIrq);
        }
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(SPARSE_SIM_MS))
        .expect("network runs");
    assert!(sim.channel().deliveries() > 0, "cluster must carry traffic");
    assert!(
        sim.trace().recorded() > 0,
        "count-only trace must still count"
    );
    network_workload(&sim)
}

/// Nodes in the compute-heavy scenario. Deliberately below the
/// parallel threshold so both engine runs stay sequential — the row
/// measures the translation engine, nothing else.
const COMPUTE_NODES: usize = 6;
/// Simulated span of the compute-heavy scenario.
const COMPUTE_SIM_MS: u64 = 20;

/// A compute-bound sensing node: every 500 µs the timer handler runs a
/// 64-iteration mixing loop over its sample history before re-arming —
/// a long, hot, perfectly fusable back edge, the workload the tiered
/// execution engine exists for. No radio; nodes are parked out of
/// range of each other.
fn compute_heavy_program() -> Program {
    let app = r"
.data
ticks: .word 0
mix:   .word 0

.text
crunch_timer:
    lw      r2, ticks(r0)
    addi    r2, 1
    sw      r2, ticks(r0)
    lw      r3, mix(r0)
    li      r1, 64
crunch_loop:
    add     r3, r1
    xor     r4, r3
    slli    r4, 1
    add     r4, r2
    subi    r1, 1
    bnez    r1, crunch_loop
    sw      r3, mix(r0)
    li      r1, 0
    schedhi r1, r0
    li      r2, 500
    schedlo r1, r2
    done
";
    let mut boot = String::from("boot:\n");
    boot.push_str(&install_handler("EV_TIMER0", "crunch_timer"));
    boot.push_str(
        "    li      r1, 0\n    schedhi r1, r0\n    li      r2, 500\n    schedlo r1, r2\n    done\n",
    );
    assemble_modules(&[("prelude.s", PRELUDE), ("boot.s", &boot), ("crunch.s", app)])
        .expect("compute-heavy program assembles")
}

fn run_compute_heavy(program: &Program, engine: Engine) -> Workload {
    let mut sim = NetworkSim::new(10.0);
    sim.set_trace_mode(TraceMode::CountOnly);
    // Sequential on both sides: the row isolates the engine.
    sim.set_parallel_threshold(usize::MAX);
    let core = CoreConfig {
        engine,
        ..CoreConfig::default()
    };
    sim.add_nodes_from(
        program,
        core,
        (0..COMPUTE_NODES).map(|i| Position::new(i as f64 * 100.0, 0.0)),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(COMPUTE_SIM_MS))
        .expect("compute-heavy runs");
    network_workload(&sim)
}

/// Duty-cycle period for grid sleepers, in timer ticks (µs).
const GRID_PERIOD_TICKS: u16 = 2_000;
/// MAC nodes per radio cluster in the grid scenarios (strung along a
/// grid row, 8 m apart — with spatial sharding a cluster spans several
/// cells, so its deliveries cross shard boundaries).
const GRID_MAC_NODES: usize = 6;
/// Independent MAC clusters, spread across the grid on evenly spaced
/// rows. Clusters sit far outside each other's radio range, so all of
/// them reuse the same six MAC programs (addresses only have to be
/// unique within earshot) and their traffic stays cluster-local — but
/// a single shared calendar still pays a global scheduling boundary
/// for every cluster's channel events.
const GRID_CLUSTERS: usize = 10;
/// Shard count for the sharded grid runs. On one core the curve
/// flattens past ~64 shards (smaller per-shard calendars, same total
/// work); with worker threads available the pool runs shards in
/// parallel, so a generous count also leaves headroom for multi-core
/// hosts.
const GRID_SHARDS: usize = 64;
/// Grid scenario sizes: (width, height, simulated ms).
const GRID_10K: (usize, usize, u64) = (100, 100, 10);
const GRID_100K: (usize, usize, u64) = (400, 250, 10);
const GRID_1M: (usize, usize, u64) = (1_000, 1_000, 10);

/// The shared grid sleeper. Every filler node runs this same image —
/// program memory and the decode cache stay copy-on-write across the
/// whole fleet — and per-node phase comes from a staggered one-shot
/// `SensorIrq` that starts the periodic timer, so a million sleepers
/// wake at a million distinct instants without a million programs.
///
/// The timer handler is a realistic sensing tick, not a bare re-arm:
/// count the tick, derive a synthetic sample, run it through an EWMA
/// filter and a running accumulator, then re-arm. Handler length is
/// what separates the schedulers — a single shared calendar must chop
/// every running burst at each other node's wake instant (~one window
/// round-trip per instruction once wakes are denser than the
/// instruction time), while shard epochs run each burst to completion
/// in one call.
fn grid_sleeper_program() -> Program {
    let app = format!(
        r"
.data
ticks: .word 0
ewma:  .word 0
acc:   .word 0
h0:    .word 0
h1:    .word 0
h2:    .word 0
h3:    .word 0
smooth: .word 0

.text
duty_timer:
    lw      r2, ticks(r0)
    addi    r2, 1
    sw      r2, ticks(r0)
    lw      r3, ewma(r0)
    mov     r4, r2
    slli    r4, 3
    xor     r4, r2
    add     r3, r4
    srli    r3, 1
    sw      r3, ewma(r0)
    lw      r5, acc(r0)
    add     r5, r3
    sw      r5, acc(r0)
; 4-tap moving average over the filtered history
    lw      r4, h0(r0)
    lw      r5, h1(r0)
    lw      r6, h2(r0)
    lw      r7, h3(r0)
    sw      r3, h0(r0)
    sw      r4, h1(r0)
    sw      r5, h2(r0)
    sw      r6, h3(r0)
    add     r4, r5
    add     r6, r7
    add     r4, r6
    srli    r4, 2
    sw      r4, smooth(r0)
    li      r1, 0
    schedhi r1, r0
    li      r2, {GRID_PERIOD_TICKS}
    schedlo r1, r2
    done

; staggered kick: the scheduled SensorIrq lands here once and starts
; the periodic timer at this node's own phase
kick_timer:
    li      r1, 0
    schedhi r1, r0
    li      r2, {GRID_PERIOD_TICKS}
    schedlo r1, r2
    done
"
    );
    let mut boot = String::from("boot:\n");
    boot.push_str(&install_handler("EV_TIMER0", "duty_timer"));
    boot.push_str(&install_handler("EV_IRQ", "kick_timer"));
    boot.push_str("    done\n");
    assemble_modules(&[("prelude.s", PRELUDE), ("boot.s", &boot), ("grid.s", &app)])
        .expect("grid program assembles")
}

/// Pre-assembled programs for the grid scenarios.
struct GridPrograms {
    mac: Vec<Program>,
    sleeper: Program,
}

fn grid_programs() -> GridPrograms {
    let mut mac = Vec::with_capacity(GRID_MAC_NODES);
    for i in 0..GRID_MAC_NODES {
        let dst = if i + 1 == GRID_MAC_NODES { 1 } else { i + 2 } as u8;
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let extra = install_handler("EV_IRQ", "app_send_irq");
        mac.push(mac_program(i as u8 + 1, &extra, &app).expect("assembles"));
    }
    GridPrograms {
        mac,
        sleeper: grid_sleeper_program(),
    }
}

/// Build one W×H grid fleet: `GRID_CLUSTERS` 6-node MAC clusters on
/// evenly spaced rows plus duty-cycled sleepers on the remaining grid
/// slots (8 m pitch), each sleeper's periodic timer started by a kick
/// IRQ staggered across one full period — so wake instants are spread
/// ~uniformly instead of beating in sync.
fn build_grid(
    (width, height, sim_ms): (usize, usize, u64),
    scheduler: Scheduler,
    shards: usize,
    programs: &GridPrograms,
) -> NetworkSim {
    let mut sim = NetworkSim::new(12.0);
    sim.set_scheduler(scheduler);
    sim.set_shards(shards);
    sim.set_trace_mode(TraceMode::CountOnly);
    let cluster_rows: Vec<usize> = (0..GRID_CLUSTERS)
        .map(|c| c * height / GRID_CLUSTERS)
        .collect();
    let mut mac_ids = Vec::with_capacity(GRID_CLUSTERS * GRID_MAC_NODES);
    let mut mac_slots = std::collections::HashSet::new();
    for &row in &cluster_rows {
        for (i, prog) in programs.mac.iter().enumerate() {
            mac_slots.insert(row * width + i);
            mac_ids.push(sim.add_node(prog, Position::new(i as f64 * 8.0, row as f64 * 8.0)));
        }
    }
    let filler = width * height - mac_slots.len();
    let ids = sim.add_nodes_from(
        &programs.sleeper,
        CoreConfig::default(),
        (0..width * height)
            .filter(move |slot| !mac_slots.contains(slot))
            .map(move |slot| {
                Position::new((slot % width) as f64 * 8.0, (slot / width) as f64 * 8.0)
            }),
    );
    // Every cluster bursts every 5 ms for the whole run. The 700 µs
    // sender stagger is deliberately less than one word time (833 µs):
    // each ring has hidden terminals (node 3 cannot hear node 1), so
    // bursts collide and CSMA retries keep the channel churning for
    // most of the run — the contended regime where a single shared
    // calendar pays for every channel event fleet-wide. Retries need
    // a few word times to drain, so horizons shorter than ~10 ms can
    // end before any word lands. The 137 µs per-cluster skew keeps the
    // clusters' (otherwise identical, deterministic) retry schedules
    // from coinciding: ten clusters mean ten distinct sets of channel
    // instants, as they would from independent real deployments.
    for burst in 0..sim_ms.div_ceil(5) {
        for (i, id) in mac_ids.iter().enumerate() {
            let (cluster, member) = (i / GRID_MAC_NODES, (i % GRID_MAC_NODES) as u64);
            let at = SimTime::ZERO
                + SimDuration::from_us(1_000 + burst * 5_000 + 137 * cluster as u64 + 700 * member);
            sim.schedule(*id, at, Stimulus::SensorIrq);
        }
    }
    // Staggered kicks: phases spread across exactly one period.
    let period_ns = u64::from(GRID_PERIOD_TICKS) * 1_000;
    for (i, id) in ids.into_iter().enumerate() {
        let phase = SimDuration::from_ns(i as u64 * period_ns / filler as u64);
        sim.schedule(
            id,
            SimTime::ZERO + SimDuration::from_us(1_000) + phase,
            Stimulus::SensorIrq,
        );
    }
    sim
}

/// Resident-set size in bytes (`/proc/self/statm`; 0 where absent).
fn rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| s.split_whitespace().nth(1)?.parse::<u64>().ok())
        .map_or(0, |pages| pages * 4096)
}

/// Hand-timed grid measurement. The fleet build (node cloning, kick
/// scheduling) is setup and stays outside the timed region; only
/// `run_until` is measured. When `reps > 1` an extra untimed warm-up
/// run goes first and is excluded from the stats — the first run in a
/// fresh process pays one-off costs (allocator arena growth, page
/// faults for the copy-on-write node clones) that would otherwise
/// pollute the mean. RSS growth across the first (cold) build gives
/// the `bytes_per_node` memory column.
struct GridTiming {
    min_us: f64,
    median_us: f64,
    mean_us: f64,
    reps: u64,
    work: Workload,
    bytes_per_node: u64,
    deliveries: u64,
    collisions: u64,
}

fn time_grid(
    size: (usize, usize, u64),
    scheduler: Scheduler,
    shards: usize,
    reps: u64,
    programs: &GridPrograms,
) -> GridTiming {
    let mut times = Vec::with_capacity(reps as usize);
    let mut work = (0u64, 0.0f64);
    let mut bytes_per_node = 0u64;
    let (mut deliveries, mut collisions) = (0u64, 0u64);
    let warmup = u64::from(reps > 1);
    for rep in 0..reps.max(1) + warmup {
        let before = rss_bytes();
        let mut sim = build_grid(size, scheduler, shards, programs);
        if rep == 0 {
            bytes_per_node = rss_bytes().saturating_sub(before) / (size.0 * size.1) as u64;
        }
        let rss_built = rss_bytes();
        let start = Instant::now();
        sim.run_until(SimTime::ZERO + SimDuration::from_ms(size.2))
            .expect("grid runs");
        if rep >= warmup {
            times.push(start.elapsed().as_secs_f64() * 1e6);
        }
        if rep == 0 && std::env::var_os("GRID_RSS_DEBUG").is_some() {
            eprintln!(
                "grid {}x{}: rss {} MB built, {} MB after run",
                size.0,
                size.1,
                rss_built / (1 << 20),
                rss_bytes() / (1 << 20)
            );
        }
        deliveries = sim.channel().deliveries();
        collisions = sim.channel().collisions();
        work = network_workload(&sim);
    }
    times.sort_by(f64::total_cmp);
    GridTiming {
        min_us: times[0],
        median_us: times[times.len() / 2],
        mean_us: times.iter().sum::<f64>() / times.len() as f64,
        reps: times.len() as u64,
        work,
        bytes_per_node,
        deliveries,
        collisions,
    }
}

fn bench_core(c: &mut Criterion) {
    let prog = core_loop_program();
    c.bench_function("simulate_30k_instructions", |b| {
        b.iter(|| run_core_loop(&prog))
    });
    c.bench_function("assemble_mac_aodv", |b| {
        b.iter(|| snap_apps::aodv::relay_program(3, &[(9, 2)]).unwrap())
    });
}

fn bench_net(c: &mut Criterion) {
    c.bench_function("net_speed_25_node_mesh", |b| b.iter(run_net_mesh));
    let programs = sparse_programs();
    c.bench_function("net_sparse_256", |b| {
        b.iter(|| run_net_sparse(&programs, Scheduler::EventDriven))
    });
    let compute = compute_heavy_program();
    c.bench_function("compute_heavy", |b| {
        b.iter(|| run_compute_heavy(&compute, Engine::Fused))
    });
}

criterion_group!(benches, bench_core, bench_net);

/// One scenario row of the hand-rolled JSON report.
struct Entry {
    name: &'static str,
    baseline_us: f64,
    min_us: f64,
    median_us: f64,
    mean_us: f64,
    iterations: u64,
    work: Workload,
    /// RSS growth per node during fleet build (grid scenarios only).
    bytes_per_node: Option<u64>,
    /// Extra scenario-specific JSON fields, pre-rendered as
    /// `"key": value` pairs (serve throughput columns).
    extra: Vec<(&'static str, f64)>,
    /// Free-text caveat (e.g. baseline provenance at extreme scale).
    note: Option<&'static str>,
}

impl Entry {
    fn to_json(&self) -> String {
        let (instructions, energy_pj) = self.work;
        let mut s = format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"baseline_us\": {:.1},\n",
                "      \"current_us\": {:.1},\n",
                "      \"min_us\": {:.1},\n",
                "      \"median_us\": {:.1},\n",
                "      \"speedup\": {:.2},\n",
                "      \"iterations\": {},\n",
                "      \"instructions\": {},\n",
                "      \"energy_pj\": {:.1},\n",
                "      \"pj_per_instruction\": {:.2}"
            ),
            self.name,
            self.baseline_us,
            self.mean_us,
            self.min_us,
            self.median_us,
            self.baseline_us / self.mean_us,
            self.iterations,
            instructions,
            energy_pj,
            energy_pj / instructions as f64,
        );
        if let Some(bytes) = self.bytes_per_node {
            s.push_str(&format!(",\n      \"bytes_per_node\": {bytes}"));
        }
        for (key, value) in &self.extra {
            s.push_str(&format!(",\n      \"{key}\": {value:.1}"));
        }
        if let Some(note) = self.note {
            s.push_str(&format!(",\n      \"note\": \"{note}\""));
        }
        s.push_str("\n    }");
        s
    }
}

fn summary_entry(
    name: &'static str,
    baseline_us: f64,
    s: criterion::Summary,
    work: Workload,
) -> Entry {
    Entry {
        name,
        baseline_us,
        min_us: s.min.as_secs_f64() * 1e6,
        median_us: s.median.as_secs_f64() * 1e6,
        mean_us: s.mean.as_secs_f64() * 1e6,
        iterations: s.iterations,
        work,
        bytes_per_node: None,
        extra: Vec::new(),
        note: None,
    }
}

/// Basic timing statistics over `reps` hand-timed runs of `f`, with
/// one untimed warm-up excluded (as in [`time_grid`]).
struct Timing {
    min_us: f64,
    median_us: f64,
    mean_us: f64,
    reps: u64,
    work: Workload,
}

fn time_runs(reps: u64, mut f: impl FnMut() -> Workload) -> Timing {
    let mut times = Vec::with_capacity(reps as usize);
    let mut work = (0u64, 0.0f64);
    let warmup = u64::from(reps > 1);
    for rep in 0..reps.max(1) + warmup {
        let start = Instant::now();
        work = f();
        if rep >= warmup {
            times.push(start.elapsed().as_secs_f64() * 1e6);
        }
    }
    times.sort_by(f64::total_cmp);
    Timing {
        min_us: times[0],
        median_us: times[times.len() / 2],
        mean_us: times.iter().sum::<f64>() / times.len() as f64,
        reps: times.len() as u64,
        work,
    }
}

/// Measure the compute-heavy scenario: the default fused engine
/// against the same tree under the pure interpreter. Identical
/// scheduler, single thread, bit-identical results — the reported
/// speedup belongs to the translation engine alone.
fn compute_entry(reps: u64) -> Entry {
    let program = compute_heavy_program();
    let fused = time_runs(reps, || run_compute_heavy(&program, Engine::Fused));
    let interp = time_runs(reps, || run_compute_heavy(&program, Engine::Interp));
    assert_eq!(
        fused.work.0, interp.work.0,
        "engines disagree on instruction count"
    );
    assert_eq!(
        fused.work.1.to_bits(),
        interp.work.1.to_bits(),
        "engines disagree on energy bits"
    );
    Entry {
        name: "compute_heavy",
        baseline_us: interp.min_us,
        min_us: fused.min_us,
        median_us: fused.median_us,
        mean_us: fused.mean_us,
        iterations: fused.reps,
        work: fused.work,
        bytes_per_node: None,
        extra: Vec::new(),
        note: Some("baseline = same tree under Engine::Interp; fused-engine speedup"),
    }
}

/// Measure one grid scenario: the auto scheduler — what `run_until`
/// picks for this fleet size — (`reps` runs) against a single
/// sequential event-driven run of the same tree as baseline. A single
/// baseline rep is conservative — it runs warm, after the measured
/// reps have paged everything in. Below the auto threshold the two
/// sides run the same scheduler, so the row honestly reports ~1.0x
/// (see DESIGN.md §6d); the sharded win only appears at the scales
/// where the sharded engine is actually selected.
fn grid_entry(
    name: &'static str,
    size: (usize, usize, u64),
    reps: u64,
    programs: &GridPrograms,
    note: Option<&'static str>,
) -> Entry {
    let auto = time_grid(size, Scheduler::Auto, GRID_SHARDS, reps, programs);
    let sequential = time_grid(size, Scheduler::EventDriven, 1, 1, programs);
    assert!(auto.deliveries > 0, "cluster must carry traffic");
    assert_eq!(
        (auto.deliveries, auto.collisions),
        (sequential.deliveries, sequential.collisions),
        "schedulers disagree on channel counters"
    );
    Entry {
        name,
        baseline_us: sequential.min_us,
        min_us: auto.min_us,
        median_us: auto.median_us,
        mean_us: auto.mean_us,
        iterations: auto.reps,
        work: auto.work,
        bytes_per_node: Some(auto.bytes_per_node),
        extra: Vec::new(),
        note,
    }
}

/// SNAP nodes in the fleet-lifetime scenario (a MAC ring bursting
/// every 20 ms — a data-monitoring duty cycle).
const FLEET_SNAP_NODES: u8 = 4;
/// ATmega beacon motes riding the same air, beaconing every ~20 ms.
const FLEET_AVR_NODES: u8 = 4;
/// Observed simulated span the lifetime projection extrapolates from.
const FLEET_SIM_MS: u64 = 200;

/// The paper's bottom line as a simulation: a mixed SNAP + ATmega
/// fleet on identical 620 mAh coin cells, running comparable ~20 ms
/// duty cycles. Returns the workload plus the mean projected node
/// lifetime (seconds) per platform, extrapolated by the battery model
/// from each node's measured consumption over the simulated span
/// (`BatteryConfig::projected_lifetime_s`; see docs/FLEETS.md).
fn run_fleet_lifetime() -> (Workload, f64, f64) {
    let mut sim = NetworkSim::new(12.0);
    sim.set_trace_mode(TraceMode::CountOnly);
    for i in 0..FLEET_SNAP_NODES {
        let dst = if i + 1 == FLEET_SNAP_NODES { 1 } else { i + 2 };
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let program = mac_program(i + 1, &extra, &app).expect("assembles");
        let id = sim.add_node(&program, Position::new(f64::from(i) * 8.0, 0.0));
        sim.set_battery(id, Some(BatteryConfig::coin_cell_snap()));
        // A send burst every 20 ms for the whole span; the 900 µs
        // member stagger clears each ~833 µs word time.
        for burst in 0..FLEET_SIM_MS / 20 {
            let at = 1_000 + burst * 20_000 + 900 * u64::from(i);
            sim.schedule(
                id,
                SimTime::ZERO + SimDuration::from_us(at),
                Stimulus::SensorIrq,
            );
        }
    }
    for i in 0..FLEET_AVR_NODES {
        // Staggered periods so the motes do not beacon in lockstep.
        let (avr, _) = snap_node::atmega::tinyos::beacon_system(i + 1, 20 + u16::from(i))
            .expect("beacon assembles");
        let id = sim.add_avr_node(avr, Position::new(f64::from(i) * 8.0, -8.0));
        sim.set_battery(id, Some(BatteryConfig::coin_cell_avr()));
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(FLEET_SIM_MS))
        .expect("fleet runs");
    assert!(sim.channel().deliveries() > 0, "fleet must carry traffic");

    let elapsed = SimDuration::from_ms(FLEET_SIM_MS);
    let mut work = (0u64, 0.0f64);
    let (mut snap_sum, mut snap_n) = (0.0f64, 0u32);
    let (mut avr_sum, mut avr_n) = (0.0f64, 0u32);
    for n in 1..=sim.node_count() as u32 {
        let node = sim.node(NodeId(n));
        match node.kind() {
            NodeKind::Snap | NodeKind::Gateway => {
                let stats = node.cpu().stats();
                work.0 += stats.instructions;
                work.1 += stats.energy.as_pj();
            }
            NodeKind::Avr => {
                let mote = node.avr().expect("avr node");
                work.1 += mote.active_energy().as_pj();
            }
        }
        let (Some(battery), Some(consumed)) = (node.battery(), node.battery_consumed()) else {
            continue;
        };
        let life = battery
            .projected_lifetime_s(consumed, elapsed)
            .expect("nonzero consumption over a nonzero span");
        match node.kind() {
            NodeKind::Avr => {
                avr_sum += life;
                avr_n += 1;
            }
            _ => {
                snap_sum += life;
                snap_n += 1;
            }
        }
    }
    let snap_life = snap_sum / f64::from(snap_n);
    let avr_life = avr_sum / f64::from(avr_n);
    (work, snap_life, avr_life)
}

/// The `fleet_lifetime` report row: wall time of the mixed-fleet run
/// (speedup vs itself — the row exists for the lifetime columns) plus
/// the per-platform projections and their ratio. The paper's Table 2
/// direction — the SNAP sleep floor is ~nW against the mote's ~75 µW —
/// must come out of the simulation, not be asserted into it: the row
/// is only recorded if SNAP outlives the mote by well over an order of
/// magnitude.
fn fleet_lifetime_entry(reps: u64) -> Entry {
    let (mut snap_life, mut avr_life) = (0.0f64, 0.0f64);
    let timing = time_runs(reps, || {
        let (work, s, a) = run_fleet_lifetime();
        snap_life = s;
        avr_life = a;
        work
    });
    let ratio = snap_life / avr_life;
    assert!(
        ratio > 10.0,
        "SNAP must outlive the ATmega mote decisively (paper Table 2); \
         got snap {snap_life:.0} s vs avr {avr_life:.0} s"
    );
    Entry {
        name: "fleet_lifetime",
        baseline_us: timing.mean_us,
        min_us: timing.min_us,
        median_us: timing.median_us,
        mean_us: timing.mean_us,
        iterations: timing.reps,
        work: timing.work,
        bytes_per_node: None,
        extra: vec![
            ("snap_lifetime_s", snap_life),
            ("avr_lifetime_s", avr_life),
            ("lifetime_ratio", ratio),
        ],
        note: Some(
            "mean projected node lifetime per platform on identical 620 mAh coin cells \
             (duty-cycle extrapolation; instructions column counts SNAP cores only); \
             speedup vs itself",
        ),
    }
}

/// Concurrent tenants in the serve-throughput scenario.
const SERVE_TENANTS: usize = 8;
/// Simulated span each tenant requests: long enough that slice and
/// HTTP overhead amortize and the concurrency win is what's measured.
const SERVE_RUN_TO_US: u64 = 400_000;

/// The scenario tenant `i` submits: a 3-node MAC ring under a
/// per-tenant fade seed plus four periodic blink nodes, with a sensor
/// IRQ kicking a MAC send every 20 ms — sustained traffic for the
/// whole simulated span, so the cost scales with `run_to_us` rather
/// than quiescing after the kick-off. The schedule must clear the
/// ~4.3 ms a 5-word packet spends on the air (plus CSMA backoff) after
/// the kick-off IRQ and after each send; a tighter schedule faults the
/// sender with `RadioBusy` (an IRQ landing mid-transmission), which is
/// program error, not load.
fn tenant_scenario(i: usize) -> String {
    let mut irqs = String::new();
    for node in 1..=3u64 {
        let mut at = 7_000 + 700 * (node - 1);
        while at < SERVE_RUN_TO_US {
            if !irqs.is_empty() {
                irqs.push(',');
            }
            irqs.push_str(&format!(r#"{{"node":{node},"at_us":{at}}}"#));
            at += 20_000;
        }
    }
    format!(
        concat!(
            r#"{{"name":"tenant-{}","mac_nodes":3,"blink_nodes":4,"#,
            r#""loss":0.1,"loss_seed":{},"engine":"fused","scheduler":"event","#,
            r#""stagger_us":700,"irqs":[{}],"run_to_us":{},"slice_us":2000}}"#
        ),
        i,
        40 + i,
        irqs,
        SERVE_RUN_TO_US
    )
}

/// One-shot HTTP/1.1 request against the snap-serve loopback listener
/// (the server closes every connection, so EOF delimits the response).
fn http_request(addr: std::net::SocketAddr, method: &str, path: &str, body: &[u8]) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to snap-serve");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    assert!(
        head.split_whitespace().nth(1) == Some("200"),
        "{method} {path}: {head}\n{body}"
    );
    body.to_string()
}

/// One serve round: start a server, have every tenant submit its
/// scenario over TCP and poll its status until the sim completes.
/// Returns the round's wall time, every status-query latency observed,
/// and the summed workload the tenants report back.
fn run_serve_round() -> (f64, Vec<f64>, Workload) {
    let server = std::sync::Arc::new(snap_serve::SimServer::new());
    let mut handle = snap_serve::serve(std::sync::Arc::clone(&server), "127.0.0.1:0")
        .expect("bind snap-serve on loopback");
    let addr = handle.addr();
    let start = Instant::now();
    let tenants: Vec<_> = (0..SERVE_TENANTS)
        .map(|i| {
            std::thread::spawn(move || {
                let body = tenant_scenario(i);
                let reply = http_request(addr, "POST", "/sims", body.as_bytes());
                let v = snap_telemetry::parse(&reply).expect("submit reply json");
                let id = v.get("id").and_then(|x| x.as_i64()).expect("sim id");
                let mut latencies = Vec::new();
                loop {
                    let t0 = Instant::now();
                    let status = http_request(addr, "GET", &format!("/sims/{id}"), b"");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                    let v = snap_telemetry::parse(&status).expect("status json");
                    let state = v.get("state").and_then(|s| s.as_str().map(String::from));
                    match state.as_deref() {
                        Some("done") => {
                            let mut instructions = 0u64;
                            let mut energy_pj = 0.0f64;
                            for node in v.get("per_node").and_then(|n| n.elements()).unwrap() {
                                instructions +=
                                    node.get("instructions").unwrap().as_i64().unwrap() as u64;
                                energy_pj += node.get("energy_pj").unwrap().as_f64().unwrap();
                            }
                            return (latencies, (instructions, energy_pj));
                        }
                        Some("faulted") => panic!("tenant {i} faulted: {status}"),
                        _ => std::thread::sleep(Duration::from_micros(100)),
                    }
                }
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut work = (0u64, 0.0f64);
    for t in tenants {
        let (lat, (instr, pj)) = t.join().expect("tenant thread");
        latencies.extend(lat);
        work.0 += instr;
        work.1 += pj;
    }
    let wall_us = start.elapsed().as_secs_f64() * 1e6;
    handle.shutdown();
    (wall_us, latencies, work)
}

/// The same tenant scenarios run directly in-process, one after the
/// other on one thread — the no-server baseline.
fn run_serve_direct() -> Workload {
    let mut work = (0u64, 0.0f64);
    for i in 0..SERVE_TENANTS {
        let s = snap_serve::parse_scenario(&tenant_scenario(i)).expect("tenant scenario parses");
        let mut sim = snap_serve::scenario::build(&s).expect("tenant scenario builds");
        sim.run_until(SimTime::ZERO + SimDuration::from_us(SERVE_RUN_TO_US))
            .expect("tenant scenario runs");
        let (instr, pj) = network_workload(&sim);
        work.0 += instr;
        work.1 += pj;
    }
    work
}

/// Measure netsim-as-a-service under `SERVE_TENANTS` concurrent
/// tenants over real loopback TCP: wall time per round (min/median),
/// sims/sec, and p99 status-query latency under load. Baseline is the
/// identical scenarios run directly in-process on one thread, so the
/// speedup column is the server's concurrency win net of all HTTP,
/// slicing and locking overhead — and the instruction counts must
/// match exactly (the service must be simulation-invisible).
fn serve_entry(reps: u64) -> Entry {
    let direct = time_runs(reps, run_serve_direct);
    let mut walls = Vec::new();
    let mut latencies = Vec::new();
    let mut work = (0u64, 0.0f64);
    let warmup = u64::from(reps > 1);
    for rep in 0..reps.max(1) + warmup {
        let (wall_us, lat, w) = run_serve_round();
        if rep >= warmup {
            walls.push(wall_us);
            latencies.extend(lat);
        }
        work = w;
    }
    assert_eq!(
        work.0, direct.work.0,
        "served tenants disagree with direct runs on instruction count"
    );
    walls.sort_by(f64::total_cmp);
    latencies.sort_by(f64::total_cmp);
    let median_us = walls[walls.len() / 2];
    let p99_us = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
    Entry {
        name: "serve_throughput",
        baseline_us: direct.min_us,
        min_us: walls[0],
        median_us,
        mean_us: walls.iter().sum::<f64>() / walls.len() as f64,
        iterations: walls.len() as u64,
        // The servers report energy as rounded decimals; the direct
        // runs carry the exact f64s — use those for the energy column.
        work: direct.work,
        bytes_per_node: None,
        extra: vec![
            ("tenants", SERVE_TENANTS as f64),
            ("sims_per_sec", SERVE_TENANTS as f64 / (median_us / 1e6)),
            ("queries", latencies.len() as f64),
            ("p99_query_us", p99_us),
        ],
        note: Some(
            "baseline = same tenant scenarios run directly in-process, sequentially; \
             on few-core hosts <1.0x is HTTP+slicing overhead, not a regression",
        ),
    }
}

/// Measure the regression scenarios and write the report to `path`.
/// `full_grids` adds the 100k- and 1M-node scenarios (minutes of
/// wall time); the check path stops at the 10k grid.
fn run_json(measurement: Duration, path: &std::path::Path, full_grids: bool) {
    let mut c = Criterion::default().measurement_time(measurement);
    let prog = core_loop_program();
    let core = c.measure_function(&mut |b: &mut Bencher| b.iter(|| run_core_loop(&prog)));
    let net = c.measure_function(&mut |b: &mut Bencher| b.iter(run_net_mesh));
    let programs = sparse_programs();
    let sparse = c.measure_function(&mut |b: &mut Bencher| {
        b.iter(|| run_net_sparse(&programs, Scheduler::EventDriven))
    });

    // Workload columns (deterministic per scenario): one extra run of
    // each, outside the timing loop, at the default 1.8 V point.
    let core_work = run_core_loop(&prog);
    let net_work = run_net_mesh();
    let sparse_work = run_net_sparse(&programs, Scheduler::EventDriven);

    let grid_programs = grid_programs();
    let mut entries = vec![
        summary_entry(
            "simulate_30k_instructions",
            BASELINE_30K_US,
            core,
            core_work,
        ),
        summary_entry("net_speed_25_node_mesh", BASELINE_NET_US, net, net_work),
        summary_entry(
            "net_sparse_256",
            BASELINE_SPARSE_LOCKSTEP_US,
            sparse,
            sparse_work,
        ),
        compute_entry(5),
        grid_entry(
            "net_grid_10k",
            GRID_10K,
            3,
            &grid_programs,
            Some("auto scheduler resolves to event-driven at this scale: ~1.0x is honest"),
        ),
        // One quick rep in the CI smoke path; real stats on --json.
        serve_entry(if full_grids { 5 } else { 1 }),
        fleet_lifetime_entry(if full_grids { 5 } else { 1 }),
    ];
    if full_grids {
        entries.push(grid_entry(
            "net_grid_100k",
            GRID_100K,
            3,
            &grid_programs,
            Some("auto scheduler resolves to sharded at this scale"),
        ));
        // At a million nodes the sequential baseline would take far
        // longer than the measurement is worth; the 10k/100k rows
        // establish the scaling, this row proves the size runs.
        let m = time_grid(GRID_1M, Scheduler::Sharded, GRID_SHARDS, 1, &grid_programs);
        entries.push(Entry {
            name: "net_grid_1m",
            baseline_us: m.min_us,
            min_us: m.min_us,
            median_us: m.median_us,
            mean_us: m.mean_us,
            iterations: m.reps,
            work: m.work,
            bytes_per_node: Some(m.bytes_per_node),
            extra: Vec::new(),
            note: Some("sequential baseline not measured at this scale; speedup vs itself"),
        });
    }
    let rows: Vec<String> = entries.iter().map(Entry::to_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"sim_speed\",\n  \"vdd_v\": 1.8,\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(path, &json).expect("write bench report");
    print!("{json}");
    println!("wrote {}", path.display());
}

/// Where `--json` writes the recorded report (the repo root).
fn report_path() -> std::path::PathBuf {
    std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join("BENCH_sim_speed.json")
}

/// CI smoke mode: run every scenario for a couple of iterations, write
/// the JSON, and verify it is well-formed — catches scenario panics and
/// report-format rot without paying full measurement time.
fn run_check() {
    // A throwaway path: the smoke run's few-iteration timings must not
    // clobber the recorded repo-root report. The grid coverage is the
    // scaled-down 10k scenario only; 100k/1m stay out of CI budgets.
    let path = std::env::temp_dir().join("BENCH_sim_speed.check.json");
    run_json(Duration::from_millis(1), &path, false);
    let json = std::fs::read_to_string(&path).expect("read back bench report");
    validate_report(&json, false);
    println!("bench check ok: {} is well-formed", path.display());
}

/// Scenario names expected in a report; grid scenarios additionally
/// carry a `bytes_per_node` column.
fn expected_scenarios(full_grids: bool) -> (Vec<&'static str>, usize) {
    let mut names = vec![
        "simulate_30k_instructions",
        "net_speed_25_node_mesh",
        "net_sparse_256",
        "compute_heavy",
        "net_grid_10k",
        "serve_throughput",
        "fleet_lifetime",
    ];
    let mut grids = 1;
    if full_grids {
        names.extend(["net_grid_100k", "net_grid_1m"]);
        grids += 2;
    }
    (names, grids)
}

/// Minimal structural validation of the hand-rolled report (the
/// workspace has no JSON parser by design): balanced braces/brackets,
/// every scenario present, every numeric field finite and positive.
fn validate_report(json: &str, full_grids: bool) {
    let mut depth = 0i32;
    for ch in json.chars() {
        match ch {
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced braces in report");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced braces in report");
    let (names, grids) = expected_scenarios(full_grids);
    for name in &names {
        assert!(
            json.contains(&format!("\"name\": \"{name}\"")),
            "scenario {name} missing from report"
        );
    }
    let count_of = |field: &str| -> Vec<f64> {
        json.lines()
            .filter_map(|l| l.trim().strip_prefix(&format!("\"{field}\": ")))
            .map(|v| {
                v.trim_end_matches(',')
                    .parse()
                    .unwrap_or_else(|_| panic!("{field} parses as a number"))
            })
            .collect()
    };
    for field in [
        "speedup",
        "min_us",
        "median_us",
        "instructions",
        "energy_pj",
        "pj_per_instruction",
    ] {
        let values = count_of(field);
        assert_eq!(values.len(), names.len(), "one {field} per scenario");
        assert!(
            values.iter().all(|s| s.is_finite() && *s > 0.0),
            "{field} must be finite and positive: {values:?}"
        );
    }
    let mem = count_of("bytes_per_node");
    assert_eq!(mem.len(), grids, "one bytes_per_node per grid scenario");
    assert!(
        mem.iter().all(|b| b.is_finite() && *b >= 0.0),
        "bytes_per_node must be finite: {mem:?}"
    );
    for field in ["tenants", "sims_per_sec", "queries", "p99_query_us"] {
        let values = count_of(field);
        assert_eq!(values.len(), 1, "one {field} on the serve scenario");
        assert!(
            values.iter().all(|s| s.is_finite() && *s > 0.0),
            "{field} must be finite and positive: {values:?}"
        );
    }
    for field in ["snap_lifetime_s", "avr_lifetime_s", "lifetime_ratio"] {
        let values = count_of(field);
        assert_eq!(
            values.len(),
            1,
            "one {field} on the fleet-lifetime scenario"
        );
        assert!(
            values.iter().all(|s| s.is_finite() && *s > 0.0),
            "{field} must be finite and positive: {values:?}"
        );
    }
}

/// Re-measure the lockstep reference for the sparse scenario (six
/// runs, prints the minimum). Paste the result into
/// `BASELINE_SPARSE_LOCKSTEP_US` when the scenario itself changes.
fn run_sparse_baseline() {
    let programs = sparse_programs();
    let mut best = f64::INFINITY;
    for i in 0..6 {
        let start = std::time::Instant::now();
        run_net_sparse(&programs, Scheduler::Lockstep);
        let us = start.elapsed().as_secs_f64() * 1e6;
        println!("lockstep sparse run {i}: {us:.0} µs");
        best = best.min(us);
    }
    println!("minimum: {best:.0} µs  (BASELINE_SPARSE_LOCKSTEP_US)");
}

/// Development probe: time one grid size under each engine/shard
/// count, printing raw numbers (not part of the recorded report).
fn run_grid_probe(size: (usize, usize, u64), reps: u64) {
    let programs = grid_programs();
    for (label, scheduler, shards) in [
        ("warmup", Scheduler::Sharded, GRID_SHARDS),
        ("event-driven", Scheduler::EventDriven, 1),
        ("sharded/1", Scheduler::Sharded, 1),
        ("sharded/8", Scheduler::Sharded, 8),
        ("sharded/64", Scheduler::Sharded, 64),
    ] {
        let t = time_grid(size, scheduler, shards, reps, &programs);
        println!(
            "{label:<14} min {:>10.0} µs  median {:>10.0} µs  ({} instr, {} B/node, {} dlv, {} col)",
            t.min_us, t.median_us, t.work.0, t.bytes_per_node, t.deliveries, t.collisions
        );
    }
}

/// Development probe: time the 30k-instruction core loop alone (min
/// and median over many reps) — the tight feedback loop for engine
/// work, not part of the recorded report.
fn run_core_probe() {
    let prog = core_loop_program();
    let mut times: Vec<f64> = Vec::new();
    for _ in 0..200 {
        let start = Instant::now();
        let work = run_core_loop(&prog);
        times.push(start.elapsed().as_secs_f64() * 1e6);
        assert!(work.0 > 30_000);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = times[0];
    let median = times[times.len() / 2];
    println!(
        "core 30k: min {min:.1} µs  median {median:.1} µs  ({:.2}x / {:.2}x vs {BASELINE_30K_US} µs baseline)",
        BASELINE_30K_US / min,
        BASELINE_30K_US / median,
    );
}

fn main() {
    if std::env::args().any(|a| a == "--core-probe") {
        run_core_probe();
    } else if std::env::args().any(|a| a == "--grid-probe") {
        run_grid_probe(GRID_10K, 2);
    } else if std::env::args().any(|a| a == "--grid-probe-100k") {
        run_grid_probe(GRID_100K, 1);
    } else if std::env::args().any(|a| a == "--grid-probe-1m") {
        let programs = grid_programs();
        let t = time_grid(GRID_1M, Scheduler::Sharded, GRID_SHARDS, 1, &programs);
        println!(
            "1m sharded/8: {:.0} µs, {} instr, {} B/node, {} dlv, {} col",
            t.min_us, t.work.0, t.bytes_per_node, t.deliveries, t.collisions
        );
    } else if std::env::args().any(|a| a == "--serve-probe") {
        println!("{}", serve_entry(3).to_json());
    } else if std::env::args().any(|a| a == "--fleet-probe") {
        println!("{}", fleet_lifetime_entry(5).to_json());
    } else if std::env::args().any(|a| a == "--check") {
        run_check();
    } else if std::env::args().any(|a| a == "--baseline") {
        run_sparse_baseline();
    } else if std::env::args().any(|a| a == "--json") {
        // The shim's default measurement window.
        run_json(Duration::from_millis(400), &report_path(), true);
    } else {
        benches();
    }
}
