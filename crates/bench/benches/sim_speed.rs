//! Criterion microbenchmarks of the simulator hot paths (how fast the
//! reproduction itself runs; not a paper figure), plus a regression
//! harness: `cargo bench --bench sim_speed -- --json` re-measures the
//! scenarios and writes `BENCH_sim_speed.json` at the repo root with
//! the speedup over the recorded pre-fast-path baseline.

use criterion::{criterion_group, Bencher, Criterion};
use dess::{SimDuration, SimTime};
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::{install_handler, PRELUDE};
use snap_asm::{assemble_modules, Program};
use snap_core::{CoreConfig, Processor};
use snap_isa::{AluImmOp, AluOp, Instruction, Reg};
use snap_net::{NetworkSim, Position, Scheduler, Stimulus, TraceMode};
use std::time::Duration;

/// Baseline timings measured on this tree immediately before the
/// fast-path changes (predecoded IMEM, persistent worker pool, cached
/// neighbourhoods), release profile, same machine; the minimum of six
/// runs, so reported speedups are conservative. `--json` reports
/// current timings as a speedup over these.
const BASELINE_30K_US: f64 = 1_562.0;
const BASELINE_NET_US: f64 = 163_100.0;

/// Lockstep-scheduler timing of the sparse 256-node scenario, measured
/// on this tree with `--baseline` (release profile, same machine,
/// minimum of six runs). Everything except the scheduler is identical
/// — the same incremental topology cache, batched handler execution
/// and count-only trace — so the reported speedup is attributable to
/// the wake calendar alone. (With the pre-PR O(n³) topology build the
/// lockstep run was 809,160 µs; that part of the win is excluded.)
/// The sparse scenario is exactly the workload the wake calendar
/// exists for: hundreds of duty-cycled nodes, almost all asleep at
/// any instant.
const BASELINE_SPARSE_LOCKSTEP_US: f64 = 488_548.0;

fn core_loop_program() -> [Instruction; 5] {
    // A tight arithmetic loop: 3 instructions per iteration.
    [
        Instruction::AluImm {
            op: AluImmOp::Li,
            rd: Reg::R1,
            imm: 10_000,
        },
        Instruction::AluReg {
            op: AluOp::Add,
            rd: Reg::R2,
            rs: Reg::R1,
        },
        Instruction::AluImm {
            op: AluImmOp::Subi,
            rd: Reg::R1,
            imm: 1,
        },
        Instruction::Branch {
            cond: snap_isa::BranchCond::Nez,
            ra: Reg::R1,
            rb: Reg::R0,
            target: 2,
        },
        Instruction::Halt,
    ]
}

/// Simulated-workload size: (dynamic instructions, energy in pJ).
/// Deterministic per scenario — reported in the JSON so the bench
/// record carries the paper's energy units alongside wall time.
type Workload = (u64, f64);

fn run_core_loop(prog: &[Instruction]) -> Workload {
    let mut cpu = Processor::new(CoreConfig::default());
    cpu.load_program(prog).unwrap();
    cpu.run_to_halt(40_000).unwrap();
    let stats = cpu.stats();
    assert!(stats.instructions > 30_000);
    (stats.instructions, stats.energy.as_pj())
}

/// Sum every node's executed instructions and consumed energy.
fn network_workload(sim: &NetworkSim) -> Workload {
    let mut instructions = 0;
    let mut energy_pj = 0.0;
    for id in sim.topology().nodes() {
        let stats = sim.node(id).cpu().stats();
        instructions += stats.instructions;
        energy_pj += stats.energy.as_pj();
    }
    (instructions, energy_pj)
}

/// A 25-node CSMA mesh on a 5x5 grid: every node runs the MAC with a
/// send-on-IRQ app targeting its successor, IRQs staggered so traffic
/// overlaps. 25 nodes is past `PARALLEL_THRESHOLD`, so this exercises
/// the parallel node-window path as well as delivery range scans.
fn run_net_mesh() -> Workload {
    let mut sim = NetworkSim::new(12.0);
    for i in 0u8..25 {
        let dst = if i == 24 { 1 } else { i + 2 };
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let program = mac_program(i + 1, &extra, &app).expect("assembles");
        let (row, col) = (f64::from(i / 5), f64::from(i % 5));
        sim.add_node(&program, Position::new(col * 10.0, row * 10.0));
    }
    let ids: Vec<_> = sim.topology().nodes().collect();
    for (i, id) in ids.into_iter().enumerate() {
        // ~833 µs word time: a 1.5 ms stagger lets early packets land
        // cleanly while later ones overlap and collide — both delivery
        // outcomes are exercised.
        let at = SimTime::ZERO + SimDuration::from_us(1_000 + 1_500 * i as u64);
        sim.schedule(id, at, Stimulus::SensorIrq);
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(60))
        .expect("network runs");
    assert!(sim.channel().deliveries() > 0, "mesh must carry traffic");
    network_workload(&sim)
}

/// Nodes in the sparse duty-cycled scenario.
const SPARSE_NODES: usize = 256;
/// MAC nodes within those: a small cluster that keeps real radio
/// traffic (CSMA, deliveries, collisions) in the mix.
const SPARSE_MAC_NODES: usize = 6;
/// Simulated span. Long on purpose: the point of the scenario is vast
/// stretches of near-total sleep.
const SPARSE_SIM_MS: u64 = 500;

/// A duty-cycled sensing node: a periodic timer handler that counts
/// the tick and re-arms. Periods and initial phases vary per node so
/// wake-ups spread out instead of beating in sync — at any instant a
/// handful of the 256 nodes are due and the rest are asleep.
fn sparse_timer_program(period_ticks: u16, phase_ticks: u16) -> Program {
    let app = format!(
        r"
.data
ticks: .word 0

.text
duty_timer:
    lw      r2, ticks(r0)
    addi    r2, 1
    sw      r2, ticks(r0)
    li      r1, 0
    schedhi r1, r0
    li      r2, {period_ticks}
    schedlo r1, r2
    done
"
    );
    let mut boot = String::from("boot:\n");
    boot.push_str(&install_handler("EV_TIMER0", "duty_timer"));
    boot.push_str(&format!(
        "    li      r1, 0\n    schedhi r1, r0\n    li      r2, {phase_ticks}\n    schedlo r1, r2\n    done\n"
    ));
    assemble_modules(&[("prelude.s", PRELUDE), ("boot.s", &boot), ("duty.s", &app)])
        .expect("sparse program assembles")
}

/// Pre-assembled programs for the sparse scenario (assembly is setup,
/// not simulation — it stays outside the measured loop).
fn sparse_programs() -> Vec<Program> {
    let mut programs = Vec::with_capacity(SPARSE_NODES);
    for i in 0..SPARSE_MAC_NODES {
        let dst = if i + 1 == SPARSE_MAC_NODES { 1 } else { i + 2 } as u8;
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let extra = install_handler("EV_IRQ", "app_send_irq");
        programs.push(mac_program(i as u8 + 1, &extra, &app).expect("assembles"));
    }
    for i in 0..SPARSE_NODES - SPARSE_MAC_NODES {
        let period = 2_000 + (i % 17) as u16 * 311; // 2.0 .. 7.0 ms
        let phase = 100 + (i % 97) as u16 * 53; // de-synchronized starts
        programs.push(sparse_timer_program(period, phase));
    }
    programs
}

/// 256 nodes, ~98% of them duty-cycled sleepers: a 6-node MAC cluster
/// exchanges packets every ~50 ms while 250 timer nodes (parked out of
/// radio range) wake for a few instructions every few milliseconds.
/// Under the lockstep scheduler every ~20 µs window advances all 256
/// nodes; under the wake calendar each window touches only the nodes
/// actually due.
fn run_net_sparse(programs: &[Program], scheduler: Scheduler) -> Workload {
    let mut sim = NetworkSim::new(12.0);
    sim.set_scheduler(scheduler);
    sim.set_trace_mode(TraceMode::CountOnly);
    for (i, program) in programs.iter().enumerate() {
        let pos = if i < SPARSE_MAC_NODES {
            // The MAC cluster: a tight line, everyone in range.
            Position::new(i as f64 * 8.0, 0.0)
        } else {
            // Sleepers: far from the cluster and from each other.
            Position::new(1_000.0 + i as f64 * 100.0, 0.0)
        };
        sim.add_node(program, pos);
    }
    let ids: Vec<_> = sim.topology().nodes().take(SPARSE_MAC_NODES).collect();
    for burst in 0..(SPARSE_SIM_MS / 50) {
        for (i, id) in ids.iter().enumerate() {
            let at = SimTime::ZERO + SimDuration::from_us(1_000 + burst * 50_000 + 900 * i as u64);
            sim.schedule(*id, at, Stimulus::SensorIrq);
        }
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(SPARSE_SIM_MS))
        .expect("network runs");
    assert!(sim.channel().deliveries() > 0, "cluster must carry traffic");
    assert!(
        sim.trace().recorded() > 0,
        "count-only trace must still count"
    );
    network_workload(&sim)
}

fn bench_core(c: &mut Criterion) {
    let prog = core_loop_program();
    c.bench_function("simulate_30k_instructions", |b| {
        b.iter(|| run_core_loop(&prog))
    });
    c.bench_function("assemble_mac_aodv", |b| {
        b.iter(|| snap_apps::aodv::relay_program(3, &[(9, 2)]).unwrap())
    });
}

fn bench_net(c: &mut Criterion) {
    c.bench_function("net_speed_25_node_mesh", |b| b.iter(run_net_mesh));
    let programs = sparse_programs();
    c.bench_function("net_sparse_256", |b| {
        b.iter(|| run_net_sparse(&programs, Scheduler::EventDriven))
    });
}

criterion_group!(benches, bench_core, bench_net);

/// Measure the regression scenarios and write the report to `path`.
fn run_json(measurement: Duration, path: &std::path::Path) {
    let mut c = Criterion::default().measurement_time(measurement);
    let prog = core_loop_program();
    let core = c.measure_function(&mut |b: &mut Bencher| b.iter(|| run_core_loop(&prog)));
    let net = c.measure_function(&mut |b: &mut Bencher| b.iter(run_net_mesh));
    let programs = sparse_programs();
    let sparse = c.measure_function(&mut |b: &mut Bencher| {
        b.iter(|| run_net_sparse(&programs, Scheduler::EventDriven))
    });

    // Workload columns (deterministic per scenario): one extra run of
    // each, outside the timing loop, at the default 1.8 V point.
    let core_work = run_core_loop(&prog);
    let net_work = run_net_mesh();
    let sparse_work = run_net_sparse(&programs, Scheduler::EventDriven);

    let core_us = core.mean.as_secs_f64() * 1e6;
    let net_us = net.mean.as_secs_f64() * 1e6;
    let sparse_us = sparse.mean.as_secs_f64() * 1e6;
    let entry = |name: &str, baseline_us: f64, current_us: f64, iters: u64, work: Workload| {
        let (instructions, energy_pj) = work;
        format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"baseline_us\": {:.1},\n",
                "      \"current_us\": {:.1},\n",
                "      \"speedup\": {:.2},\n",
                "      \"iterations\": {},\n",
                "      \"instructions\": {},\n",
                "      \"energy_pj\": {:.1},\n",
                "      \"pj_per_instruction\": {:.2}\n",
                "    }}"
            ),
            name,
            baseline_us,
            current_us,
            baseline_us / current_us,
            iters,
            instructions,
            energy_pj,
            energy_pj / instructions as f64,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"sim_speed\",\n  \"vdd_v\": 1.8,\n  \"scenarios\": [\n{},\n{},\n{}\n  ]\n}}\n",
        entry(
            "simulate_30k_instructions",
            BASELINE_30K_US,
            core_us,
            core.iterations,
            core_work
        ),
        entry(
            "net_speed_25_node_mesh",
            BASELINE_NET_US,
            net_us,
            net.iterations,
            net_work
        ),
        entry(
            "net_sparse_256",
            BASELINE_SPARSE_LOCKSTEP_US,
            sparse_us,
            sparse.iterations,
            sparse_work
        ),
    );
    std::fs::write(path, &json).expect("write bench report");
    print!("{json}");
    println!("wrote {}", path.display());
}

/// Where `--json` writes the recorded report (the repo root).
fn report_path() -> std::path::PathBuf {
    std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join("BENCH_sim_speed.json")
}

/// CI smoke mode: run every scenario for a couple of iterations, write
/// the JSON, and verify it is well-formed — catches scenario panics and
/// report-format rot without paying full measurement time.
fn run_check() {
    // A throwaway path: the smoke run's few-iteration timings must not
    // clobber the recorded repo-root report.
    let path = std::env::temp_dir().join("BENCH_sim_speed.check.json");
    run_json(Duration::from_millis(1), &path);
    let json = std::fs::read_to_string(&path).expect("read back bench report");
    validate_report(&json);
    println!("bench check ok: {} is well-formed", path.display());
}

/// Minimal structural validation of the hand-rolled report (the
/// workspace has no JSON parser by design): balanced braces/brackets,
/// every scenario present, every speedup a finite positive number.
fn validate_report(json: &str) {
    let mut depth = 0i32;
    for ch in json.chars() {
        match ch {
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced braces in report");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced braces in report");
    for name in [
        "simulate_30k_instructions",
        "net_speed_25_node_mesh",
        "net_sparse_256",
    ] {
        assert!(
            json.contains(&format!("\"name\": \"{name}\"")),
            "scenario {name} missing from report"
        );
    }
    for field in ["speedup", "instructions", "energy_pj", "pj_per_instruction"] {
        let values: Vec<f64> = json
            .lines()
            .filter_map(|l| l.trim().strip_prefix(&format!("\"{field}\": ")))
            .map(|v| {
                v.trim_end_matches(',')
                    .parse()
                    .unwrap_or_else(|_| panic!("{field} parses as a number"))
            })
            .collect();
        assert_eq!(values.len(), 3, "one {field} per scenario");
        assert!(
            values.iter().all(|s| s.is_finite() && *s > 0.0),
            "{field} must be finite and positive: {values:?}"
        );
    }
}

/// Re-measure the lockstep reference for the sparse scenario (six
/// runs, prints the minimum). Paste the result into
/// `BASELINE_SPARSE_LOCKSTEP_US` when the scenario itself changes.
fn run_sparse_baseline() {
    let programs = sparse_programs();
    let mut best = f64::INFINITY;
    for i in 0..6 {
        let start = std::time::Instant::now();
        run_net_sparse(&programs, Scheduler::Lockstep);
        let us = start.elapsed().as_secs_f64() * 1e6;
        println!("lockstep sparse run {i}: {us:.0} µs");
        best = best.min(us);
    }
    println!("minimum: {best:.0} µs  (BASELINE_SPARSE_LOCKSTEP_US)");
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        run_check();
    } else if std::env::args().any(|a| a == "--baseline") {
        run_sparse_baseline();
    } else if std::env::args().any(|a| a == "--json") {
        // The shim's default measurement window.
        run_json(Duration::from_millis(400), &report_path());
    } else {
        benches();
    }
}
