//! Criterion microbenchmarks of the simulator hot paths (how fast the
//! reproduction itself runs; not a paper figure).

use criterion::{criterion_group, criterion_main, Criterion};
use snap_core::{CoreConfig, Processor};
use snap_isa::{AluImmOp, AluOp, Instruction, Reg};

fn bench_core(c: &mut Criterion) {
    // A tight arithmetic loop: 3 instructions per iteration.
    let prog = [
        Instruction::AluImm { op: AluImmOp::Li, rd: Reg::R1, imm: 10_000 },
        Instruction::AluReg { op: AluOp::Add, rd: Reg::R2, rs: Reg::R1 },
        Instruction::AluImm { op: AluImmOp::Subi, rd: Reg::R1, imm: 1 },
        Instruction::Branch {
            cond: snap_isa::BranchCond::Nez,
            ra: Reg::R1,
            rb: Reg::R0,
            target: 2,
        },
        Instruction::Halt,
    ];
    c.bench_function("simulate_30k_instructions", |b| {
        b.iter(|| {
            let mut cpu = Processor::new(CoreConfig::default());
            cpu.load_program(&prog).unwrap();
            cpu.run_to_halt(40_000).unwrap();
            assert!(cpu.stats().instructions > 30_000);
        })
    });
    c.bench_function("assemble_mac_aodv", |b| {
        b.iter(|| snap_apps::aodv::relay_program(3, &[(9, 2)]).unwrap())
    });
}

criterion_group!(benches, bench_core);
criterion_main!(benches);
