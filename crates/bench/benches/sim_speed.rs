//! Criterion microbenchmarks of the simulator hot paths (how fast the
//! reproduction itself runs; not a paper figure), plus a regression
//! harness: `cargo bench --bench sim_speed -- --json` re-measures the
//! scenarios and writes `BENCH_sim_speed.json` at the repo root with
//! the speedup over the recorded pre-fast-path baseline.

use criterion::{criterion_group, Bencher, Criterion};
use dess::{SimDuration, SimTime};
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_core::{CoreConfig, Processor};
use snap_isa::{AluImmOp, AluOp, Instruction, Reg};
use snap_net::{NetworkSim, Position, Stimulus};

/// Baseline timings measured on this tree immediately before the
/// fast-path changes (predecoded IMEM, persistent worker pool, cached
/// neighbourhoods), release profile, same machine; the minimum of six
/// runs, so reported speedups are conservative. `--json` reports
/// current timings as a speedup over these.
const BASELINE_30K_US: f64 = 1_562.0;
const BASELINE_NET_US: f64 = 163_100.0;

fn core_loop_program() -> [Instruction; 5] {
    // A tight arithmetic loop: 3 instructions per iteration.
    [
        Instruction::AluImm {
            op: AluImmOp::Li,
            rd: Reg::R1,
            imm: 10_000,
        },
        Instruction::AluReg {
            op: AluOp::Add,
            rd: Reg::R2,
            rs: Reg::R1,
        },
        Instruction::AluImm {
            op: AluImmOp::Subi,
            rd: Reg::R1,
            imm: 1,
        },
        Instruction::Branch {
            cond: snap_isa::BranchCond::Nez,
            ra: Reg::R1,
            rb: Reg::R0,
            target: 2,
        },
        Instruction::Halt,
    ]
}

fn run_core_loop(prog: &[Instruction]) {
    let mut cpu = Processor::new(CoreConfig::default());
    cpu.load_program(prog).unwrap();
    cpu.run_to_halt(40_000).unwrap();
    assert!(cpu.stats().instructions > 30_000);
}

/// A 25-node CSMA mesh on a 5x5 grid: every node runs the MAC with a
/// send-on-IRQ app targeting its successor, IRQs staggered so traffic
/// overlaps. 25 nodes is past `PARALLEL_THRESHOLD`, so this exercises
/// the parallel node-window path as well as delivery range scans.
fn run_net_mesh() {
    let mut sim = NetworkSim::new(12.0);
    for i in 0u8..25 {
        let dst = if i == 24 { 1 } else { i + 2 };
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let program = mac_program(i + 1, &extra, &app).expect("assembles");
        let (row, col) = (f64::from(i / 5), f64::from(i % 5));
        sim.add_node(&program, Position::new(col * 10.0, row * 10.0));
    }
    let ids: Vec<_> = sim.topology().nodes().collect();
    for (i, id) in ids.into_iter().enumerate() {
        // ~833 µs word time: a 1.5 ms stagger lets early packets land
        // cleanly while later ones overlap and collide — both delivery
        // outcomes are exercised.
        let at = SimTime::ZERO + SimDuration::from_us(1_000 + 1_500 * i as u64);
        sim.schedule(id, at, Stimulus::SensorIrq);
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(60))
        .expect("network runs");
    assert!(sim.channel().deliveries() > 0, "mesh must carry traffic");
}

fn bench_core(c: &mut Criterion) {
    let prog = core_loop_program();
    c.bench_function("simulate_30k_instructions", |b| {
        b.iter(|| run_core_loop(&prog))
    });
    c.bench_function("assemble_mac_aodv", |b| {
        b.iter(|| snap_apps::aodv::relay_program(3, &[(9, 2)]).unwrap())
    });
}

fn bench_net(c: &mut Criterion) {
    c.bench_function("net_speed_25_node_mesh", |b| b.iter(run_net_mesh));
}

criterion_group!(benches, bench_core, bench_net);

/// Measure both regression scenarios and write `BENCH_sim_speed.json`.
fn run_json() {
    let mut c = Criterion::default();
    let prog = core_loop_program();
    let core = c.measure_function(&mut |b: &mut Bencher| b.iter(|| run_core_loop(&prog)));
    let net = c.measure_function(&mut |b: &mut Bencher| b.iter(run_net_mesh));

    let core_us = core.mean.as_secs_f64() * 1e6;
    let net_us = net.mean.as_secs_f64() * 1e6;
    let entry = |name: &str, baseline_us: f64, current_us: f64, iters: u64| {
        format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"baseline_us\": {:.1},\n",
                "      \"current_us\": {:.1},\n",
                "      \"speedup\": {:.2},\n",
                "      \"iterations\": {}\n",
                "    }}"
            ),
            name,
            baseline_us,
            current_us,
            baseline_us / current_us,
            iters
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"sim_speed\",\n  \"scenarios\": [\n{},\n{}\n  ]\n}}\n",
        entry(
            "simulate_30k_instructions",
            BASELINE_30K_US,
            core_us,
            core.iterations
        ),
        entry(
            "net_speed_25_node_mesh",
            BASELINE_NET_US,
            net_us,
            net.iterations
        ),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_speed.json");
    std::fs::write(path, &json).expect("write BENCH_sim_speed.json");
    print!("{json}");
    println!("wrote {path}");
}

fn main() {
    if std::env::args().any(|a| a == "--json") {
        run_json();
    } else {
        benches();
    }
}
