//! `cargo bench --bench wakeup_latency` — regenerates this experiment's table.
fn main() {
    bench::experiments::print_wakeup();
}
