//! `cargo bench --bench fig4_energy_per_class` — regenerates this experiment's table.
fn main() {
    bench::experiments::print_fig4();
}
