//! `cargo bench --bench handler_profile` — per-handler accounting.
fn main() {
    bench::experiments::print_handler_profile();
}
