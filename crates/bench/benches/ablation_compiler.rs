//! `cargo bench --bench ablation_compiler` — regenerates this experiment's table.
fn main() {
    bench::ablation::print_compiler_ablation();
}
