//! Analyzer-runtime benchmark for `snap-lint` (how fast the static
//! analysis itself runs; not a paper figure). `cargo bench --bench
//! lint_speed -- --json` re-measures and writes `BENCH_lint.json` at
//! the repo root; a preflight that costs microseconds per program is
//! what lets `srun --lint` and `xtask lint-asm` run on every build.

use criterion::{criterion_group, Bencher, Criterion};
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_asm::Program;
use snap_energy::OperatingPoint;
use snap_lint::Analysis;
use std::time::Duration;

/// The paper's Packet Transmission sender (same wiring as the lint
/// golden tests).
fn mac_send() -> Program {
    let extra = install_handler("EV_IRQ", "app_send_irq");
    let app = format!("{}{}", send_on_irq_app(5), RX_DISPATCH_STUB);
    mac_program(2, &extra, &app).unwrap()
}

/// A synthetic 64-handler stress image for the whole-image event-flow
/// analysis: every event has eight alternative handlers installed
/// behind a runtime mode switch (each arm a const `li` + `setaddr`, so
/// the handler table stays precise and the analysis non-degraded), and
/// every handler bumps its event's scratch word and chains a `swev` to
/// the next event, wrapping at the end — the flow graph is one big
/// cycle over 64 roots.
fn flow_stress() -> Program {
    let mut src = String::from(".data\nmode: .word 0\n");
    for e in 0..8 {
        src.push_str(&format!("scratch{e}: .word 0\n"));
    }
    src.push_str(".text\nboot:\n    lw      r10, mode(r0)\n    andi    r10, 7\n");
    for e in 0..8 {
        src.push_str(&format!("    li      r1, {e}\n"));
        for m in 0..8 {
            if m < 7 {
                src.push_str(&format!(
                    "    mov     r11, r10\n    xori    r11, {m}\n    bnez    r11, b{e}_{}\n",
                    m + 1
                ));
            }
            src.push_str(&format!("    li      r2, h{e}_{m}\n    setaddr r1, r2\n"));
            if m < 7 {
                src.push_str(&format!("    jmp     b{e}_end\nb{e}_{}:\n", m + 1));
            }
        }
        src.push_str(&format!("b{e}_end:\n"));
    }
    src.push_str(
        "    li      r3, 0\n    schedhi r3, r0\n    li      r4, 50\n    schedlo r3, r4\n    done\n",
    );
    for e in 0..8 {
        for m in 0..8 {
            src.push_str(&format!(
                "h{e}_{m}:\n    lw      r4, scratch{e}(r0)\n    addi    r4, {m}\n    \
                 sw      r4, scratch{e}(r0)\n    li      r5, {}\n    swev    r5\n    done\n",
                (e + 1) % 8
            ));
        }
    }
    snap_asm::assemble(&src).expect("flow stress image assembles")
}

fn scenarios() -> Vec<(&'static str, Program)> {
    vec![
        ("lint_blink", snap_apps::blink::blink_program().unwrap()),
        ("lint_mac_send", mac_send()),
        (
            "lint_threshold_aodv",
            snap_apps::apps::threshold_program(1).unwrap(),
        ),
        ("lint_flow", flow_stress()),
    ]
}

fn analyze(program: &Program) -> Analysis {
    snap_lint::analyze_program(program, OperatingPoint::V0_6)
}

fn bench_lint(c: &mut Criterion) {
    for (name, program) in scenarios() {
        c.bench_function(name, |b| b.iter(|| analyze(&program)));
    }
}

criterion_group!(benches, bench_lint);

/// Measure each scenario and write the report to `path`.
fn run_json(measurement: Duration, path: &std::path::Path) {
    let mut c = Criterion::default().measurement_time(measurement);
    let mut entries = Vec::new();
    for (name, program) in scenarios() {
        let summary = c.measure_function(&mut |b: &mut Bencher| b.iter(|| analyze(&program)));
        // One run outside the timing loop for the size columns.
        let analysis = analyze(&program);
        let us = summary.mean.as_secs_f64() * 1e6;
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"current_us\": {:.1},\n",
                "      \"iterations\": {},\n",
                "      \"imem_words\": {},\n",
                "      \"reachable_words\": {},\n",
                "      \"diagnostics\": {},\n",
                "      \"words_per_ms\": {:.0}\n",
                "    }}"
            ),
            name,
            us,
            summary.iterations,
            analysis.imem_words,
            analysis.reachable.len(),
            analysis.diagnostics.len(),
            analysis.imem_words as f64 / (us / 1000.0),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"lint_speed\",\n  \"vdd_v\": 0.6,\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(path, &json).expect("write bench report");
    print!("{json}");
    println!("wrote {}", path.display());
}

/// Where `--json` writes the recorded report (the repo root).
fn report_path() -> std::path::PathBuf {
    std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join("BENCH_lint.json")
}

/// Fast harness validation: every scenario analyzes without panicking
/// and the report is well-formed.
fn run_check() {
    let path = std::env::temp_dir().join("BENCH_lint.check.json");
    run_json(Duration::from_millis(1), &path);
    let json = std::fs::read_to_string(&path).expect("read back bench report");
    for name in [
        "lint_blink",
        "lint_mac_send",
        "lint_threshold_aodv",
        "lint_flow",
    ] {
        assert!(
            json.contains(&format!("\"name\": \"{name}\"")),
            "missing scenario {name}"
        );
    }
    println!("lint_speed --check: report well-formed");
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        run_check();
    } else if std::env::args().any(|a| a == "--json") {
        run_json(Duration::from_millis(400), &report_path());
    } else {
        benches();
    }
}
