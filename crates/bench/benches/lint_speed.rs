//! Analyzer-runtime benchmark for `snap-lint` (how fast the static
//! analysis itself runs; not a paper figure). `cargo bench --bench
//! lint_speed -- --json` re-measures and writes `BENCH_lint.json` at
//! the repo root; a preflight that costs microseconds per program is
//! what lets `srun --lint` and `xtask lint-asm` run on every build.

use criterion::{criterion_group, Bencher, Criterion};
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_asm::Program;
use snap_energy::OperatingPoint;
use snap_lint::Analysis;
use std::time::Duration;

/// The paper's Packet Transmission sender (same wiring as the lint
/// golden tests).
fn mac_send() -> Program {
    let extra = install_handler("EV_IRQ", "app_send_irq");
    let app = format!("{}{}", send_on_irq_app(5), RX_DISPATCH_STUB);
    mac_program(2, &extra, &app).unwrap()
}

fn scenarios() -> Vec<(&'static str, Program)> {
    vec![
        ("lint_blink", snap_apps::blink::blink_program().unwrap()),
        ("lint_mac_send", mac_send()),
        (
            "lint_threshold_aodv",
            snap_apps::apps::threshold_program(1).unwrap(),
        ),
    ]
}

fn analyze(program: &Program) -> Analysis {
    snap_lint::analyze_program(program, OperatingPoint::V0_6)
}

fn bench_lint(c: &mut Criterion) {
    for (name, program) in scenarios() {
        c.bench_function(name, |b| b.iter(|| analyze(&program)));
    }
}

criterion_group!(benches, bench_lint);

/// Measure each scenario and write the report to `path`.
fn run_json(measurement: Duration, path: &std::path::Path) {
    let mut c = Criterion::default().measurement_time(measurement);
    let mut entries = Vec::new();
    for (name, program) in scenarios() {
        let summary = c.measure_function(&mut |b: &mut Bencher| b.iter(|| analyze(&program)));
        // One run outside the timing loop for the size columns.
        let analysis = analyze(&program);
        let us = summary.mean.as_secs_f64() * 1e6;
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"current_us\": {:.1},\n",
                "      \"iterations\": {},\n",
                "      \"imem_words\": {},\n",
                "      \"reachable_words\": {},\n",
                "      \"diagnostics\": {},\n",
                "      \"words_per_ms\": {:.0}\n",
                "    }}"
            ),
            name,
            us,
            summary.iterations,
            analysis.imem_words,
            analysis.reachable.len(),
            analysis.diagnostics.len(),
            analysis.imem_words as f64 / (us / 1000.0),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"lint_speed\",\n  \"vdd_v\": 0.6,\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(path, &json).expect("write bench report");
    print!("{json}");
    println!("wrote {}", path.display());
}

/// Where `--json` writes the recorded report (the repo root).
fn report_path() -> std::path::PathBuf {
    std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join("BENCH_lint.json")
}

/// Fast harness validation: every scenario analyzes without panicking
/// and the report is well-formed.
fn run_check() {
    let path = std::env::temp_dir().join("BENCH_lint.check.json");
    run_json(Duration::from_millis(1), &path);
    let json = std::fs::read_to_string(&path).expect("read back bench report");
    for name in ["lint_blink", "lint_mac_send", "lint_threshold_aodv"] {
        assert!(
            json.contains(&format!("\"name\": \"{name}\"")),
            "missing scenario {name}"
        );
    }
    println!("lint_speed --check: report well-formed");
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        run_check();
    } else if std::env::args().any(|a| a == "--json") {
        run_json(Duration::from_millis(400), &report_path());
    } else {
        benches();
    }
}
