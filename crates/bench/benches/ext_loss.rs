//! `cargo bench --bench ext_loss` — extension experiment.
fn main() {
    bench::ext::print_loss_sweep();
}
