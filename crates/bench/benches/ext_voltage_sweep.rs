//! `cargo bench --bench ext_voltage_sweep` — extension experiment.
fn main() {
    bench::ext::print_voltage_sweep();
}
