//! `cargo bench --bench table2_related` — regenerates this experiment's table.
fn main() {
    bench::experiments::print_table2();
}
