//! `cargo bench --bench fig5_blink` — regenerates this experiment's table.
fn main() {
    bench::experiments::print_fig5();
}
