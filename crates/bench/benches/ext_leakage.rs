//! `cargo bench --bench ext_leakage` — extension experiment.
fn main() {
    bench::ext::print_leakage();
}
