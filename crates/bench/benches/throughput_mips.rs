//! `cargo bench --bench throughput_mips` — regenerates this experiment's table.
fn main() {
    bench::experiments::print_throughput();
}
