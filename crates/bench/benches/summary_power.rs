//! `cargo bench --bench summary_power` — regenerates this experiment's table.
fn main() {
    bench::experiments::print_summary();
}
