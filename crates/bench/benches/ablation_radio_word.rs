//! `cargo bench --bench ablation_radio_word` — regenerates this experiment's table.
fn main() {
    bench::ablation::print_radio_ablation();
}
