//! `cargo bench --bench sense_compare` — regenerates this experiment's table.
fn main() {
    bench::experiments::print_sense();
}
