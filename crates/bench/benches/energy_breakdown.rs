//! `cargo bench --bench energy_breakdown` — regenerates this experiment's table.
fn main() {
    bench::experiments::print_breakdown();
}
