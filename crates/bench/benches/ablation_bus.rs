//! `cargo bench --bench ablation_bus` — regenerates this experiment's table.
fn main() {
    bench::ablation::print_bus_ablation();
}
