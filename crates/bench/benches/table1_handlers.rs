//! `cargo bench --bench table1_handlers` — regenerates this experiment's table.
fn main() {
    bench::experiments::print_table1();
}
