//! Edge cases of the timer and message coprocessors, exercised through
//! real programs on the core.

use dess::{SimDuration, SimTime};
use snap_core::{CoreConfig, CoreState, Processor, StepError};
use snap_isa::{AluImmOp, AluOp, EventKind, Instruction, Reg, Word};

fn li(rd: Reg, imm: Word) -> Instruction {
    Instruction::AluImm {
        op: AluImmOp::Li,
        rd,
        imm,
    }
}

fn cpu_with(prog: &[Instruction]) -> Processor {
    let mut cpu = Processor::new(CoreConfig::default());
    cpu.load_program(prog).unwrap();
    cpu
}

fn install(table: &mut Vec<Instruction>, ev: EventKind, addr: Word) {
    table.push(li(Reg::R1, ev.index() as Word));
    table.push(li(Reg::R2, addr));
    table.push(Instruction::SetAddr {
        rev: Reg::R1,
        raddr: Reg::R2,
    });
}

/// Rescheduling an active timer replaces its countdown (the second
/// schedlo wins); only one expiry token arrives.
#[test]
fn reschedule_active_timer_replaces_countdown() {
    let mut boot = Vec::new();
    install(&mut boot, EventKind::Timer0, 0x80);
    boot.extend([
        li(Reg::R3, 0),
        li(Reg::R4, 10_000),
        Instruction::SchedLo {
            rt: Reg::R3,
            rv: Reg::R4,
        }, // 10 ms...
        li(Reg::R4, 200),
        Instruction::SchedLo {
            rt: Reg::R3,
            rv: Reg::R4,
        }, // ...no: 200 us
        Instruction::Done,
    ]);
    let handler = [li(Reg::R9, 0x77), Instruction::Halt];
    let mut cpu = cpu_with(&boot);
    let img: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
    cpu.load_image(0x80, &img).unwrap();
    cpu.run_to_halt(1_000).unwrap();
    assert_eq!(cpu.regs().read(Reg::R9), 0x77);
    assert!(
        cpu.now().as_us() < 1_000.0,
        "fired at {} (10ms schedule not replaced?)",
        cpu.now()
    );
    assert_eq!(cpu.timers().scheduled(), 2);
    assert_eq!(cpu.timers().expired(), 1);
}

/// The full 24-bit timer range works: high bits via schedhi.
#[test]
fn timer_24_bit_range() {
    let mut boot = Vec::new();
    install(&mut boot, EventKind::Timer1, 0x80);
    boot.extend([
        li(Reg::R3, 1),
        li(Reg::R4, 0x0001),
        Instruction::SchedHi {
            rt: Reg::R3,
            rv: Reg::R4,
        }, // top byte = 1
        li(Reg::R4, 0x0000),
        Instruction::SchedLo {
            rt: Reg::R3,
            rv: Reg::R4,
        }, // 0x010000 ticks
        Instruction::Done,
    ]);
    let handler = [Instruction::Halt];
    let mut cpu = cpu_with(&boot);
    let img: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
    cpu.load_image(0x80, &img).unwrap();
    cpu.run_to_halt(1_000).unwrap();
    // 0x010000 us = 65.536 ms.
    assert!((cpu.now().as_ms() - 65.536).abs() < 0.2, "{}", cpu.now());
}

/// schedhi's staged value stays with the register and combines with the
/// next schedlo.
#[test]
fn schedhi_combines_with_next_schedlo() {
    let mut boot = Vec::new();
    install(&mut boot, EventKind::Timer2, 0x80);
    boot.extend([
        li(Reg::R3, 2),
        li(Reg::R4, 0x0002),
        Instruction::SchedHi {
            rt: Reg::R3,
            rv: Reg::R4,
        },
        li(Reg::R4, 100),
        Instruction::SchedLo {
            rt: Reg::R3,
            rv: Reg::R4,
        },
        Instruction::Done,
    ]);
    let mut cpu = cpu_with(&boot);
    let handler = [Instruction::Halt];
    let img: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
    cpu.load_image(0x80, &img).unwrap();
    cpu.run_to_halt(1_000).unwrap();
    // 0x020064 ticks = 131172 us.
    assert!((cpu.now().as_ms() - 131.172).abs() < 0.3, "{}", cpu.now());
}

/// Cancelling then rescheduling in one handler: the cancel token and
/// the new expiry both arrive, in order.
#[test]
fn cancel_then_reschedule_orders_tokens() {
    let mut boot = Vec::new();
    install(&mut boot, EventKind::Timer0, 0x80);
    boot.extend([
        li(Reg::R3, 0),
        li(Reg::R4, 5_000),
        Instruction::SchedLo {
            rt: Reg::R3,
            rv: Reg::R4,
        },
        Instruction::Cancel { rt: Reg::R3 }, // token 1 (cancellation)
        li(Reg::R4, 50),
        Instruction::SchedLo {
            rt: Reg::R3,
            rv: Reg::R4,
        }, // token 2 at +50us
        Instruction::Done,
    ]);
    // Handler counts invocations at DMEM 0x10; halts on the second.
    let handler_src: Vec<Instruction> = vec![
        Instruction::Load {
            rd: Reg::R5,
            base: Reg::R0,
            offset: 0x10,
        }, // 0x80..82
        Instruction::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::R5,
            imm: 1,
        }, // 0x82..84
        Instruction::Store {
            rs: Reg::R5,
            base: Reg::R0,
            offset: 0x10,
        }, // 0x84..86
        Instruction::AluImm {
            op: AluImmOp::Slti,
            rd: Reg::R5,
            imm: 2,
        }, // 0x86..88
        Instruction::Branch {
            cond: snap_isa::BranchCond::Eqz,
            ra: Reg::R5,
            rb: Reg::R0,
            target: 0x80 + 11, // second invocation (count >= 2): halt
        }, // 0x88..8a
        Instruction::Done, // 0x8a
        Instruction::Halt, // 0x8b
    ];
    let mut cpu = cpu_with(&boot);
    let img: Vec<Word> = handler_src.iter().flat_map(|i| i.encode()).collect();
    cpu.load_image(0x80, &img).unwrap();
    cpu.run_to_halt(1_000).unwrap();
    assert_eq!(cpu.dmem().read(0x10), 2, "cancel token + expiry token");
    assert_eq!(cpu.timers().cancelled(), 1);
    assert_eq!(cpu.timers().expired(), 1);
}

/// Every instruction that reads r15 pops exactly one FIFO entry; an
/// instruction reading it twice pops twice.
#[test]
fn r15_double_read_pops_twice() {
    let mut boot = Vec::new();
    install(&mut boot, EventKind::RadioRx, 0x80);
    boot.push(li(Reg::R15, snap_isa::MsgCommand::RadioRxOn.encode()));
    boot.push(Instruction::Done);
    // Handler: r3 = r15; r3 += r15 (pops two queued words).
    let handler = [
        li(Reg::R3, 0),
        Instruction::AluReg {
            op: AluOp::Mov,
            rd: Reg::R3,
            rs: Reg::R15,
        },
        Instruction::AluReg {
            op: AluOp::Add,
            rd: Reg::R3,
            rs: Reg::R15,
        },
        Instruction::Halt,
    ];
    let mut cpu = cpu_with(&boot);
    let img: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
    cpu.load_image(0x80, &img).unwrap();
    cpu.run_until_idle(100).unwrap();
    cpu.post_radio_rx(30);
    cpu.post_radio_rx(12);
    cpu.run_to_halt(100).unwrap();
    assert_eq!(cpu.regs().read(Reg::R3), 42);
    assert_eq!(cpu.msg().outgoing_len(), 0);
}

/// A handler that underflows the FIFO faults deterministically.
#[test]
fn r15_underflow_faults_with_address() {
    let mut boot = Vec::new();
    install(&mut boot, EventKind::SensorIrq, 0x80);
    boot.push(Instruction::Done);
    let handler = [Instruction::AluReg {
        op: AluOp::Mov,
        rd: Reg::R3,
        rs: Reg::R15,
    }];
    let mut cpu = cpu_with(&boot);
    let img: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
    cpu.load_image(0x80, &img).unwrap();
    cpu.run_until_idle(100).unwrap();
    cpu.post_sensor_irq();
    let err = cpu.run_to_halt(100).unwrap_err();
    assert_eq!(err, StepError::MsgPortEmpty { at: 0x80 });
}

/// Assemble a program and load both memory images into a default core.
fn cpu_from_asm(src: &str) -> Processor {
    let program = snap_asm::assemble(src).unwrap();
    let mut cpu = Processor::new(CoreConfig::default());
    cpu.load_image(0, &program.imem_image()).unwrap();
    cpu.load_data(0, &program.dmem_image()).unwrap();
    cpu
}

/// A cancel issued *after* the countdown already elapsed — the expiry
/// token was posted while the cancelling code was still running — must
/// not add a cancellation token: exactly one handler invocation, and
/// the cancel is a no-op on the now-inactive timer.
#[test]
fn cancel_racing_expiry_posts_exactly_one_token() {
    let mut cpu = cpu_from_asm(
        "
.text
boot:
    li      r1, 0
    li      r2, handler
    setaddr r1, r2
    li      r3, 0
    li      r4, 5           ; expire 5 ticks from now
    schedlo r3, r4
    li      r6, 4000        ; spin well past the expiry (~16 us busy)
spin:
    subi    r6, 1
    bnez    r6, spin
    cancel  r3              ; countdown already elapsed: no token
    done
handler:
    lw      r5, 0x10(r0)
    addi    r5, 1
    sw      r5, 0x10(r0)
    done
",
    );
    cpu.run_until_idle(20_000).unwrap();
    assert_eq!(cpu.dmem().read(0x10), 1, "exactly one expiry dispatch");
    assert_eq!(cpu.timers().scheduled(), 1);
    assert_eq!(cpu.timers().expired(), 1);
    assert_eq!(
        cpu.timers().cancelled(),
        0,
        "cancel of an expired timer must not count"
    );
}

/// Event-queue capacity at the FIFO boundary: nine received words post
/// eight tokens (the ninth is dropped at the full queue) but all nine
/// words enter the FIFO, so after the eight dispatches drain one word
/// each, exactly one word is left behind.
#[test]
fn fifo_overflow_drops_event_but_keeps_word() {
    let mut cpu = cpu_from_asm(
        "
.text
boot:
    li      r1, 3           ; EV_RADRX
    li      r2, handler
    setaddr r1, r2
    li      r15, 0x1001     ; radio rx on
    done
handler:
    mov     r3, r15         ; pop one word per dispatch
    lw      r5, 0x20(r0)
    addi    r5, 1
    sw      r5, 0x20(r0)
    done
",
    );
    cpu.run_until_idle(100).unwrap();
    for i in 0..9u16 {
        let accepted = cpu.post_radio_rx(0x4000 + i);
        assert_eq!(accepted, i < 8, "word {i}");
    }
    assert_eq!(cpu.msg().words_received(), 9, "all nine words hit the FIFO");
    cpu.run_until_idle(1_000).unwrap();
    assert_eq!(cpu.dmem().read(0x20), 8, "one dispatch per queued token");
    assert_eq!(cpu.stats().events_dropped, 1);
    assert_eq!(
        cpu.msg().outgoing_len(),
        1,
        "the dropped event's word stays in the FIFO"
    );
}

/// The `seed`/`rand` pair is pinned to the hardware LFSR sequence
/// (16-bit Galois, taps 0xB400, sixteen bit-steps per word). Values
/// computed independently from the polynomial; a change to the RNG
/// breaks CSMA backoff reproducibility across the whole repo.
#[test]
fn lfsr_sequence_is_pinned() {
    let mut cpu = cpu_from_asm(
        "
.text
boot:
    li      r1, 0xBEEF
    seed    r1
    rand    r2
    sw      r2, 0x30(r0)
    rand    r2
    sw      r2, 0x31(r0)
    rand    r2
    sw      r2, 0x32(r0)
    rand    r2
    sw      r2, 0x33(r0)
    seed    r0              ; zero seed locks the LFSR: mapped to 1
    rand    r2
    sw      r2, 0x34(r0)
    halt
",
    );
    cpu.run_to_halt(100).unwrap();
    assert_eq!(cpu.dmem().read(0x30), 0xC4BE);
    assert_eq!(cpu.dmem().read(0x31), 0x64A3);
    assert_eq!(cpu.dmem().read(0x32), 0xF6FA);
    assert_eq!(cpu.dmem().read(0x33), 0xC4AC);
    assert_eq!(cpu.dmem().read(0x34), 0x7C41, "zero seed must act as 1");
}

/// Sleep accounting: advance_idle splits wall time into sleep time and
/// never goes backwards.
#[test]
fn advance_idle_accounting() {
    let mut cpu = cpu_with(&[Instruction::Done]);
    cpu.run_until_idle(10).unwrap();
    assert_eq!(cpu.state(), CoreState::Asleep);
    let t0 = cpu.now();
    let target = t0 + SimDuration::from_ms(3);
    let reached = cpu.advance_idle(target);
    assert_eq!(reached, target);
    // Advancing to the past is a no-op.
    let same = cpu.advance_idle(SimTime::ZERO);
    assert_eq!(same, target);
    let stats = cpu.stats();
    assert!(
        (stats.sleep_time.as_ms() - 3.0).abs() < 0.01,
        "{}",
        stats.sleep_time
    );
}
