//! Bit-identity of the translation tiers, including under `isw`
//! self-modification of a hot (fused and AOT-compiled) region.
//!
//! The broad conformance net is snap-smith's differential matrix; this
//! suite pins the specific contract the tiers were built around — the
//! same program run under [`Engine::Interp`], [`Engine::Fused`] and
//! [`Engine::Aot`] must agree on every architectural register, both
//! memories, the final pc and simulated time, and every statistic down
//! to the raw `f64` bits of the energy total — with a deterministic
//! regression for the invalidation path (a loop that rewrites its own
//! body after getting hot) and a property test over the loop shape.

use proptest::prelude::*;
use snap_core::{AotRegion, CoreConfig, Engine, Processor};
use snap_isa::{AluOp, Instruction, Reg};

/// Every instruction-start address of a straight-assembled image (the
/// addresses snap-lint's proof would export for a fully proved
/// program). Stops at the first undecodable word (data padding).
fn instruction_starts(imem: &[u16]) -> Vec<u16> {
    let mut addrs = Vec::new();
    let mut a = 0usize;
    while a < imem.len() {
        let second = imem.get(a + 1).copied();
        let Ok(ins) = Instruction::decode(imem[a], second) else {
            break;
        };
        addrs.push(a as u16);
        a += ins.word_count();
    }
    addrs
}

/// Everything the tiers must agree on, in bit-comparable form.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Snapshot {
    regs: Vec<u16>,
    carry: bool,
    pc: u16,
    now_ps: u64,
    dmem: Vec<u16>,
    imem: Vec<u16>,
    instructions: u64,
    cycles: u64,
    energy_bits: u64,
    busy_ps: u64,
    sleep_ps: u64,
    wakeups: u64,
    handlers: u64,
}

fn run(source: &str, engine: Engine, max_steps: u64) -> Snapshot {
    let program = snap_asm::assemble(source).expect("test program assembles");
    let image = program.imem_image();
    let mut cpu = Processor::new(CoreConfig {
        engine,
        ..CoreConfig::default()
    });
    cpu.load_image(0, &image).unwrap();
    cpu.load_data(0, &program.dmem_image()).unwrap();
    if engine == Engine::Aot {
        let addrs = instruction_starts(&image);
        cpu.install_aot(&[AotRegion { entry: 0, addrs }]);
        assert!(cpu.aot_block_count() > 0, "AOT tier must actually engage");
    }
    cpu.run_to_halt(max_steps).unwrap();
    let stats = cpu.stats();
    Snapshot {
        // r15 is the message FIFO; reading it pops, so observe r0–r14.
        regs: Reg::ALL[..15].iter().map(|&r| cpu.regs().read(r)).collect(),
        carry: cpu.regs().carry(),
        pc: cpu.pc(),
        now_ps: cpu.now().as_ps(),
        dmem: (0..64).map(|a| cpu.dmem().read(a)).collect(),
        imem: (0..64).map(|a| cpu.imem().read(a)).collect(),
        instructions: stats.instructions,
        cycles: stats.cycles,
        energy_bits: stats.energy.as_pj().to_bits(),
        busy_ps: stats.busy_time.as_ps(),
        sleep_ps: stats.sleep_time.as_ps(),
        wakeups: stats.wakeups,
        handlers: stats.handlers_dispatched,
    }
}

/// Run under all three engines and insist on bit-equality; returns the
/// agreed snapshot for scenario-specific assertions.
fn assert_engines_agree(source: &str, max_steps: u64) -> Snapshot {
    let interp = run(source, Engine::Interp, max_steps);
    let fused = run(source, Engine::Fused, max_steps);
    let aot = run(source, Engine::Aot, max_steps);
    assert_eq!(interp, fused, "interp vs fused");
    assert_eq!(interp, aot, "interp vs aot");
    interp
}

/// A counter loop that rewrites its own body once it has run hot:
/// phase 1 accumulates into `r2`, then the loop's first instruction
/// (`add r2, r1`) is overwritten via `isw` with `add rd, r1` for a
/// caller-chosen `rd`, and the same loop re-runs as phase 2. Both the
/// fused trace and the AOT block covering the loop must be invalidated
/// by the store — silently replaying the stale body would accumulate
/// phase 2 into `r2`.
fn self_modifying_loop(phase1: u16, phase2: u16, rd: Reg) -> String {
    let patched = Instruction::AluReg {
        op: AluOp::Add,
        rd,
        rs: Reg::R1,
    };
    let word = patched.encode().first();
    format!(
        "\
boot:
    li      r1, {phase1}
loop:
    add     r2, r1
    subi    r1, 1
    bnez    r1, loop
    bnez    r7, end
    li      r7, 1
    li      r4, loop
    li      r5, {word}
    isw     r5, 0(r4)
    li      r1, {phase2}
    jmp     loop
end:
    halt
"
    )
}

#[test]
fn hot_loop_agrees_across_engines() {
    let src = "\
boot:
    li      r1, 200
loop:
    add     r2, r1
    add     r3, r2
    subi    r1, 1
    bnez    r1, loop
    halt
";
    let snap = assert_engines_agree(src, 10_000);
    // 200 + 199 + ... + 1.
    assert_eq!(snap.regs[2], 20_100u32 as u16);
    assert!(snap.instructions > 800);
}

#[test]
fn isw_into_hot_region_invalidates_and_agrees() {
    let snap = assert_engines_agree(&self_modifying_loop(60, 40, Reg::R9), 10_000);
    // Phase 1 summed 60..=1 into r2; phase 2 must land in r9, not r2.
    assert_eq!(snap.regs[2], (1..=60u16).sum::<u16>());
    assert_eq!(snap.regs[9], (1..=40u16).sum::<u16>());
}

#[test]
fn isw_redirecting_to_self_still_terminates() {
    // Patching the target with the identical instruction is the
    // degenerate invalidation: nothing observable changes, but the
    // caches must still drop and rebuild the region.
    let snap = assert_engines_agree(&self_modifying_loop(25, 30, Reg::R2), 10_000);
    assert_eq!(
        snap.regs[2],
        (1..=25u16).sum::<u16>() + (1..=30u16).sum::<u16>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine bit-identity holds across loop lengths and patch targets,
    /// including phases short enough that the trace never gets hot and
    /// lengths that cross the budget boundary mid-loop.
    #[test]
    fn self_modifying_loops_agree(
        phase1 in 1u16..120,
        phase2 in 1u16..120,
        rd in prop_oneof![Just(Reg::R2), Just(Reg::R3), Just(Reg::R8), Just(Reg::R9)],
    ) {
        assert_engines_agree(&self_modifying_loop(phase1, phase2, rd), 20_000);
    }
}
