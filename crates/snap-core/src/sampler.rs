//! Opt-in per-dispatch handler sampling.
//!
//! [`crate::profile::HandlerProfile`] accumulates *totals* per event
//! kind; telemetry wants *distributions* — the paper's Table 1 reports
//! handler lengths as a range (70–245 dynamic instructions) and energy
//! per handler as nJ figures, which only a per-dispatch record can
//! reproduce. The sampler records one [`HandlerSample`] per completed
//! handler dispatch: its dynamic instruction count, its energy, its
//! start/end instants and how long its event token waited in the queue.
//!
//! Sampling is strictly opt-in (see [`crate::Processor::enable_sampling`])
//! and observation-only: it never changes execution, timing or energy,
//! so golden traces and differential-conformance runs are bit-identical
//! with sampling on or off.

use dess::{SimDuration, SimTime};
use snap_energy::Energy;
use snap_isa::EventKind;

/// One completed handler dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandlerSample {
    /// The event whose handler ran.
    pub event: EventKind,
    /// When the handler started (after any wake-up latency).
    pub start: SimTime,
    /// When the handler's `done` (or `halt`) completed.
    pub end: SimTime,
    /// Dynamic instructions the handler executed (including its `done`).
    pub instructions: u64,
    /// Energy the handler consumed.
    pub energy: Energy,
    /// How long the event token sat in the queue before dispatch
    /// (includes the wake-up latency when the core was asleep).
    pub queue_wait: SimDuration,
    /// `swev` instructions the handler executed (attempted posts,
    /// whether or not the queue accepted them).
    pub sw_posted: u64,
    /// `swev` posts the queue accepted during the handler.
    pub sw_enqueued: u64,
    /// Tokens the queue accepted during the handler from *any* source
    /// (software posts, timers, radio, sensor). Equal to `sw_enqueued`
    /// exactly when nothing external interleaved with the dispatch.
    pub enqueued: u64,
    /// Event tokens in the system when the handler ended: pending
    /// tokens plus the chained token `done` dispatched into (zero when
    /// the handler put the core to sleep). This is the occupancy the
    /// static event-flow analysis bounds per dispatch.
    pub queue_len: usize,
}

/// Cumulative processor counters captured at a dispatch boundary; the
/// sampler stores deltas between two captures.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DispatchCounters {
    pub instructions: u64,
    pub energy: Energy,
    pub sw_posted: u64,
    pub sw_enqueued: u64,
    pub inserted: u64,
}

/// The in-flight dispatch a sampler is currently measuring.
#[derive(Debug, Clone, Copy)]
struct OpenSample {
    event: EventKind,
    start: SimTime,
    at0: DispatchCounters,
    queue_wait: SimDuration,
}

/// Collects [`HandlerSample`]s up to a fixed capacity.
///
/// The capacity bounds memory on long runs; samples past it are counted
/// in [`HandlerSampler::truncated`] but not retained (summary counters
/// in [`crate::CoreStats`] and [`crate::profile::HandlerProfile`] still
/// cover the whole run).
#[derive(Debug, Clone)]
pub struct HandlerSampler {
    samples: Vec<HandlerSample>,
    cap: usize,
    truncated: u64,
    open: Option<OpenSample>,
}

impl HandlerSampler {
    /// A sampler retaining at most `cap` samples.
    pub fn new(cap: usize) -> HandlerSampler {
        HandlerSampler {
            samples: Vec::new(),
            cap: cap.max(1),
            truncated: 0,
            open: None,
        }
    }

    /// The retained samples, in dispatch order.
    pub fn samples(&self) -> &[HandlerSample] {
        &self.samples
    }

    /// Completed dispatches that were not retained (capacity reached).
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// The retention capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Start measuring a dispatch. Any still-open sample is closed
    /// first with the same counters (a chained `done` dispatch ends the
    /// previous handler at the very instant the next one starts), and
    /// `queue_len` — the occupancy at this boundary — becomes that
    /// closing sample's end-of-handler depth.
    pub(crate) fn begin(
        &mut self,
        event: EventKind,
        now: SimTime,
        at: DispatchCounters,
        queue_wait: SimDuration,
        queue_len: usize,
    ) {
        self.close(now, at, queue_len);
        self.open = Some(OpenSample {
            event,
            start: now,
            at0: at,
            queue_wait,
        });
    }

    /// Close the open sample (if any) against the current counters.
    pub(crate) fn close(&mut self, now: SimTime, at: DispatchCounters, queue_len: usize) {
        let Some(open) = self.open.take() else {
            return;
        };
        if self.samples.len() >= self.cap {
            self.truncated += 1;
            return;
        }
        self.samples.push(HandlerSample {
            event: open.event,
            start: open.start,
            end: now,
            instructions: at.instructions - open.at0.instructions,
            energy: at.energy - open.at0.energy,
            queue_wait: open.queue_wait,
            sw_posted: at.sw_posted - open.at0.sw_posted,
            sw_enqueued: at.sw_enqueued - open.at0.sw_enqueued,
            enqueued: at.inserted - open.at0.inserted,
            queue_len,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(instructions: u64, pj: f64) -> DispatchCounters {
        DispatchCounters {
            instructions,
            energy: Energy::from_pj(pj),
            sw_posted: 0,
            sw_enqueued: 0,
            inserted: 0,
        }
    }

    #[test]
    fn begin_close_produces_deltas() {
        let mut s = HandlerSampler::new(10);
        let mut a0 = at(5, 50.0);
        a0.sw_posted = 2;
        a0.sw_enqueued = 2;
        a0.inserted = 4;
        s.begin(
            EventKind::Timer0,
            SimTime::from_ps(100),
            a0,
            SimDuration::from_ps(7),
            3,
        );
        let mut a1 = at(12, 120.0);
        a1.sw_posted = 5;
        a1.sw_enqueued = 4;
        a1.inserted = 7;
        s.close(SimTime::from_ps(400), a1, 2);
        assert_eq!(s.samples().len(), 1);
        let sm = s.samples()[0];
        assert_eq!(sm.event, EventKind::Timer0);
        assert_eq!(sm.instructions, 7);
        assert!((sm.energy.as_pj() - 70.0).abs() < 1e-9);
        assert_eq!(sm.start, SimTime::from_ps(100));
        assert_eq!(sm.end, SimTime::from_ps(400));
        assert_eq!(sm.queue_wait, SimDuration::from_ps(7));
        assert_eq!(sm.sw_posted, 3);
        assert_eq!(sm.sw_enqueued, 2);
        assert_eq!(sm.enqueued, 3);
        assert_eq!(sm.queue_len, 2, "close-time occupancy, not begin-time");
    }

    #[test]
    fn chained_begin_closes_previous() {
        let mut s = HandlerSampler::new(10);
        s.begin(
            EventKind::Timer0,
            SimTime::from_ps(0),
            at(0, 0.0),
            SimDuration::ZERO,
            1,
        );
        s.begin(
            EventKind::RadioRx,
            SimTime::from_ps(200),
            at(3, 30.0),
            SimDuration::from_ps(200),
            2,
        );
        s.close(SimTime::from_ps(300), at(5, 55.0), 0);
        assert_eq!(s.samples().len(), 2);
        assert_eq!(s.samples()[0].event, EventKind::Timer0);
        assert_eq!(s.samples()[0].instructions, 3);
        assert_eq!(
            s.samples()[0].queue_len,
            2,
            "chained begin closes the previous sample at the boundary occupancy"
        );
        assert_eq!(s.samples()[1].event, EventKind::RadioRx);
        assert_eq!(s.samples()[1].instructions, 2);
        assert_eq!(s.samples()[1].queue_len, 0);
    }

    #[test]
    fn capacity_truncates_but_counts() {
        let mut s = HandlerSampler::new(1);
        for i in 0..3u64 {
            s.begin(
                EventKind::Soft,
                SimTime::from_ps(i * 10),
                at(i, 0.0),
                SimDuration::ZERO,
                1,
            );
            s.close(SimTime::from_ps(i * 10 + 5), at(i + 1, 0.0), 0);
        }
        assert_eq!(s.samples().len(), 1);
        assert_eq!(s.truncated(), 2);
    }

    #[test]
    fn close_without_open_is_a_no_op() {
        let mut s = HandlerSampler::new(4);
        s.close(SimTime::from_ps(1), at(1, 0.0), 0);
        assert!(s.samples().is_empty());
    }
}
