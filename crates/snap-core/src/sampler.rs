//! Opt-in per-dispatch handler sampling.
//!
//! [`crate::profile::HandlerProfile`] accumulates *totals* per event
//! kind; telemetry wants *distributions* — the paper's Table 1 reports
//! handler lengths as a range (70–245 dynamic instructions) and energy
//! per handler as nJ figures, which only a per-dispatch record can
//! reproduce. The sampler records one [`HandlerSample`] per completed
//! handler dispatch: its dynamic instruction count, its energy, its
//! start/end instants and how long its event token waited in the queue.
//!
//! Sampling is strictly opt-in (see [`crate::Processor::enable_sampling`])
//! and observation-only: it never changes execution, timing or energy,
//! so golden traces and differential-conformance runs are bit-identical
//! with sampling on or off.

use dess::{SimDuration, SimTime};
use snap_energy::Energy;
use snap_isa::EventKind;

/// One completed handler dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandlerSample {
    /// The event whose handler ran.
    pub event: EventKind,
    /// When the handler started (after any wake-up latency).
    pub start: SimTime,
    /// When the handler's `done` (or `halt`) completed.
    pub end: SimTime,
    /// Dynamic instructions the handler executed (including its `done`).
    pub instructions: u64,
    /// Energy the handler consumed.
    pub energy: Energy,
    /// How long the event token sat in the queue before dispatch
    /// (includes the wake-up latency when the core was asleep).
    pub queue_wait: SimDuration,
}

/// The in-flight dispatch a sampler is currently measuring.
#[derive(Debug, Clone, Copy)]
struct OpenSample {
    event: EventKind,
    start: SimTime,
    instructions0: u64,
    energy0: Energy,
    queue_wait: SimDuration,
}

/// Collects [`HandlerSample`]s up to a fixed capacity.
///
/// The capacity bounds memory on long runs; samples past it are counted
/// in [`HandlerSampler::truncated`] but not retained (summary counters
/// in [`crate::CoreStats`] and [`crate::profile::HandlerProfile`] still
/// cover the whole run).
#[derive(Debug, Clone)]
pub struct HandlerSampler {
    samples: Vec<HandlerSample>,
    cap: usize,
    truncated: u64,
    open: Option<OpenSample>,
}

impl HandlerSampler {
    /// A sampler retaining at most `cap` samples.
    pub fn new(cap: usize) -> HandlerSampler {
        HandlerSampler {
            samples: Vec::new(),
            cap: cap.max(1),
            truncated: 0,
            open: None,
        }
    }

    /// The retained samples, in dispatch order.
    pub fn samples(&self) -> &[HandlerSample] {
        &self.samples
    }

    /// Completed dispatches that were not retained (capacity reached).
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// The retention capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Start measuring a dispatch. Any still-open sample is closed
    /// first with the same counters (a chained `done` dispatch ends the
    /// previous handler at the very instant the next one starts).
    pub(crate) fn begin(
        &mut self,
        event: EventKind,
        now: SimTime,
        instructions: u64,
        energy: Energy,
        queue_wait: SimDuration,
    ) {
        self.close(now, instructions, energy);
        self.open = Some(OpenSample {
            event,
            start: now,
            instructions0: instructions,
            energy0: energy,
            queue_wait,
        });
    }

    /// Close the open sample (if any) against the current counters.
    pub(crate) fn close(&mut self, now: SimTime, instructions: u64, energy: Energy) {
        let Some(open) = self.open.take() else {
            return;
        };
        if self.samples.len() >= self.cap {
            self.truncated += 1;
            return;
        }
        self.samples.push(HandlerSample {
            event: open.event,
            start: open.start,
            end: now,
            instructions: instructions - open.instructions0,
            energy: energy - open.energy0,
            queue_wait: open.queue_wait,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_close_produces_deltas() {
        let mut s = HandlerSampler::new(10);
        s.begin(
            EventKind::Timer0,
            SimTime::from_ps(100),
            5,
            Energy::from_pj(50.0),
            SimDuration::from_ps(7),
        );
        s.close(SimTime::from_ps(400), 12, Energy::from_pj(120.0));
        assert_eq!(s.samples().len(), 1);
        let sm = s.samples()[0];
        assert_eq!(sm.event, EventKind::Timer0);
        assert_eq!(sm.instructions, 7);
        assert!((sm.energy.as_pj() - 70.0).abs() < 1e-9);
        assert_eq!(sm.start, SimTime::from_ps(100));
        assert_eq!(sm.end, SimTime::from_ps(400));
        assert_eq!(sm.queue_wait, SimDuration::from_ps(7));
    }

    #[test]
    fn chained_begin_closes_previous() {
        let mut s = HandlerSampler::new(10);
        s.begin(
            EventKind::Timer0,
            SimTime::from_ps(0),
            0,
            Energy::ZERO,
            SimDuration::ZERO,
        );
        s.begin(
            EventKind::RadioRx,
            SimTime::from_ps(200),
            3,
            Energy::from_pj(30.0),
            SimDuration::from_ps(200),
        );
        s.close(SimTime::from_ps(300), 5, Energy::from_pj(55.0));
        assert_eq!(s.samples().len(), 2);
        assert_eq!(s.samples()[0].event, EventKind::Timer0);
        assert_eq!(s.samples()[0].instructions, 3);
        assert_eq!(s.samples()[1].event, EventKind::RadioRx);
        assert_eq!(s.samples()[1].instructions, 2);
    }

    #[test]
    fn capacity_truncates_but_counts() {
        let mut s = HandlerSampler::new(1);
        for i in 0..3u64 {
            s.begin(
                EventKind::Soft,
                SimTime::from_ps(i * 10),
                i,
                Energy::ZERO,
                SimDuration::ZERO,
            );
            s.close(SimTime::from_ps(i * 10 + 5), i + 1, Energy::ZERO);
        }
        assert_eq!(s.samples().len(), 1);
        assert_eq!(s.truncated(), 2);
    }

    #[test]
    fn close_without_open_is_a_no_op() {
        let mut s = HandlerSampler::new(4);
        s.close(SimTime::from_ps(1), 1, Energy::ZERO);
        assert!(s.samples().is_empty());
    }
}
