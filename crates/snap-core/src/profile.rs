//! Per-handler profiling.
//!
//! Table 1 reports statistics *per handler task*; this module
//! generalizes that: the core attributes every executed instruction to
//! the event whose handler is running (or to boot code), so a node can
//! report exactly where its instructions and picojoules go — e.g. "the
//! radio-rx handler ran 37 times for 1.2 k instructions and 260 nJ".

use dess::SimDuration;
use snap_energy::Energy;
use snap_isa::{EventKind, EVENT_TABLE_ENTRIES};

/// Accumulated statistics for one handler (or boot).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HandlerStats {
    /// Times this handler was dispatched.
    pub dispatches: u64,
    /// Dynamic instructions executed in it.
    pub instructions: u64,
    /// Energy it consumed.
    pub energy: Energy,
    /// Execution time it consumed.
    pub busy_time: SimDuration,
}

impl HandlerStats {
    /// Average instructions per dispatch (0 when never dispatched).
    pub fn instructions_per_dispatch(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.instructions as f64 / self.dispatches as f64
        }
    }

    /// Average energy per dispatch.
    pub fn energy_per_dispatch(&self) -> Energy {
        if self.dispatches == 0 {
            Energy::ZERO
        } else {
            self.energy / self.dispatches as f64
        }
    }
}

/// The per-handler profile: one bucket per event kind plus boot code.
#[derive(Debug, Clone, Default)]
pub struct HandlerProfile {
    boot: HandlerStats,
    per_event: [HandlerStats; EVENT_TABLE_ENTRIES],
}

impl HandlerProfile {
    /// A zeroed profile (boot counts as one dispatch).
    pub fn new() -> HandlerProfile {
        let mut p = HandlerProfile::default();
        p.boot.dispatches = 1;
        p
    }

    pub(crate) fn note_dispatch(&mut self, event: EventKind) {
        self.per_event[event.index()].dispatches += 1;
    }

    #[inline]
    pub(crate) fn note_instruction(
        &mut self,
        context: Option<EventKind>,
        energy: Energy,
        latency: SimDuration,
    ) {
        let bucket = match context {
            Some(ev) => &mut self.per_event[ev.index()],
            None => &mut self.boot,
        };
        bucket.instructions += 1;
        bucket.energy += energy;
        bucket.busy_time += latency;
    }

    /// The mutable bucket [`HandlerProfile::note_instruction`] would
    /// charge in `context` — resolved once per fused-trace replay so
    /// the per-instruction path skips the branch.
    #[inline]
    pub(crate) fn bucket_mut(&mut self, context: Option<EventKind>) -> &mut HandlerStats {
        match context {
            Some(ev) => &mut self.per_event[ev.index()],
            None => &mut self.boot,
        }
    }

    /// Statistics for boot code (everything outside any handler).
    pub fn boot(&self) -> HandlerStats {
        self.boot
    }

    /// Statistics for one event's handler.
    pub fn event(&self, event: EventKind) -> HandlerStats {
        self.per_event[event.index()]
    }

    /// Iterate `(event, stats)` for events that were dispatched.
    pub fn dispatched(&self) -> impl Iterator<Item = (EventKind, HandlerStats)> + '_ {
        EventKind::ALL
            .into_iter()
            .map(|ev| (ev, self.event(ev)))
            .filter(|(_, s)| s.dispatches > 0)
    }

    /// Total instructions across boot and all handlers (must equal the
    /// core's instruction count).
    pub fn total_instructions(&self) -> u64 {
        self.boot.instructions + self.per_event.iter().map(|s| s.instructions).sum::<u64>()
    }

    /// All buckets for a snapshot.
    pub(crate) fn export(&self) -> (HandlerStats, [HandlerStats; EVENT_TABLE_ENTRIES]) {
        (self.boot, self.per_event)
    }

    /// Rebuild all buckets from a snapshot.
    pub(crate) fn restore(
        &mut self,
        boot: HandlerStats,
        per_event: [HandlerStats; EVENT_TABLE_ENTRIES],
    ) {
        self.boot = boot;
        self.per_event = per_event;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let mut s = HandlerStats::default();
        assert_eq!(s.instructions_per_dispatch(), 0.0);
        assert_eq!(s.energy_per_dispatch(), Energy::ZERO);
        s.dispatches = 4;
        s.instructions = 40;
        s.energy = Energy::from_pj(800.0);
        assert_eq!(s.instructions_per_dispatch(), 10.0);
        assert!((s.energy_per_dispatch().as_pj() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn attribution_buckets() {
        let mut p = HandlerProfile::new();
        p.note_instruction(None, Energy::from_pj(1.0), SimDuration::from_ns(1));
        p.note_dispatch(EventKind::RadioRx);
        p.note_instruction(
            Some(EventKind::RadioRx),
            Energy::from_pj(2.0),
            SimDuration::from_ns(1),
        );
        p.note_instruction(
            Some(EventKind::RadioRx),
            Energy::from_pj(2.0),
            SimDuration::from_ns(1),
        );
        assert_eq!(p.boot().instructions, 1);
        assert_eq!(p.event(EventKind::RadioRx).instructions, 2);
        assert_eq!(p.event(EventKind::RadioRx).dispatches, 1);
        assert_eq!(p.total_instructions(), 3);
        assert_eq!(p.dispatched().count(), 1);
    }
}
