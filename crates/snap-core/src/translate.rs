//! Tier-2 translation: AOT-compiled basic blocks for proven handlers.
//!
//! Where tier 1 (the private `fuse` module) opportunistically fuses
//! short idiom
//! windows at run time, tier 2 compiles **whole basic blocks** ahead of
//! time — but only inside handler regions a static analysis
//! (snap-lint) has proven done-terminating. The caller hands
//! [`AotImage::compile`] one [`AotRegion`] per proven handler (its
//! entry plus every CFG node address); the compiler splits each region
//! at its branch/jump leaders and builds one unbounded
//! `FusedTrace` per block. Execution then
//! chains block to block through the processor's burst loop with no
//! per-instruction decode at all.
//!
//! Safety argument (DESIGN §7): a compiled block contains only closed
//! micro-ops — the same set tier 1 admits (no `r15`, no
//! `done`/`halt`/calls, no timer/event/IMEM instructions) — so replay
//! cannot fault, cannot produce environment actions, and cannot leave
//! the running state. Anything else ends the block with a
//! `Fall` terminator that hands the PC back to the interpreter, which
//! is also the degraded path for edges the proof did not cover.
//! Accounting replays the interpreter's per-instruction sequence
//! exactly (see the `fuse` module), so results stay bit-identical.
//!
//! Coherence: blocks record their contiguous word span `[start, end)`;
//! an `isw` store into a span drops every covering block (the leader
//! index is rebuilt), and bulk image loads reset the whole image. The
//! inner compiled image is shared Arc-CoW across processor clones, so
//! a fleet built from one template carries a single copy.

use crate::energy_acct::InstrCosts;
use crate::fuse::{self, FusedTrace};
use snap_isa::{Addr, Instruction, MEM_WORDS};
use std::sync::Arc;

const ADDR_MASK: usize = MEM_WORDS - 1;
const NO_BLOCK: u32 = u32::MAX;

/// One proven-terminating handler region: the handler's entry address
/// plus every instruction address in its CFG. Produced from snap-lint's
/// per-handler analysis by the embedding layer (srun/netsim/snap-smith)
/// — snap-core deliberately does not depend on the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AotRegion {
    /// The handler's entry address (becomes the first block leader).
    pub entry: Addr,
    /// Every instruction-start address in the handler's CFG.
    pub addrs: Vec<Addr>,
}

/// The compiled tier-2 image: basic blocks indexed by leader address.
/// Cloning shares the image (Arc-CoW); an empty image is free.
#[derive(Debug, Clone, Default)]
pub struct AotImage {
    inner: Option<Arc<AotInner>>,
}

#[derive(Debug, Clone)]
struct AotInner {
    /// Leader address (masked) → index into `blocks`, or [`NO_BLOCK`].
    index: Vec<u32>,
    blocks: Vec<AotBlock>,
}

#[derive(Debug, Clone)]
struct AotBlock {
    trace: FusedTrace,
    /// Word span the block's instructions occupy. `end` is unmasked
    /// (monotone from `start`), so a span may run past `MEM_WORDS` when
    /// a block wraps the top of IMEM.
    start: u32,
    end: u32,
}

impl AotImage {
    /// Compile basic blocks for each region. `decode` supplies the
    /// instruction and model costs starting at an address (the
    /// processor's uncached decode path), or `None` where no valid
    /// instruction starts. Blocks shorter than two instructions are
    /// skipped — the interpreter handles them at no extra cost.
    pub fn compile(
        regions: &[AotRegion],
        decode: impl Fn(Addr) -> Option<(Instruction, InstrCosts)>,
    ) -> AotImage {
        let mut index = vec![NO_BLOCK; MEM_WORDS];
        let mut blocks = Vec::new();
        for region in regions {
            let mut member = vec![false; MEM_WORDS];
            for &a in &region.addrs {
                member[a as usize & ADDR_MASK] = true;
            }
            // Block leaders: the entry, plus both successors of every
            // conditional branch and the target of every jump in the
            // region (a basic block can only be entered at one of
            // these). Members only — an edge leaving the region is an
            // interpreter edge.
            let mut leaders = vec![region.entry];
            for &a in &region.addrs {
                let Some((ins, _)) = decode(a) else { continue };
                match ins {
                    Instruction::Branch { target, .. } => {
                        leaders.push(target);
                        leaders.push(a.wrapping_add(ins.word_count() as Addr));
                    }
                    Instruction::Jmp { target } => leaders.push(target),
                    _ => {}
                }
            }
            leaders.sort_unstable();
            leaders.dedup();
            for leader in leaders {
                let slot = leader as usize & ADDR_MASK;
                if !member[slot] || index[slot] != NO_BLOCK {
                    continue;
                }
                let run = fuse::build_run(
                    leader,
                    usize::MAX,
                    |a| member[a as usize & ADDR_MASK],
                    &decode,
                );
                if let Some((trace, end)) = run {
                    index[slot] = blocks.len() as u32;
                    blocks.push(AotBlock {
                        trace,
                        start: leader as u32,
                        end: if (end as u32) > leader as u32 {
                            end as u32
                        } else {
                            // The run wrapped the 16-bit address space;
                            // unmask into a monotone span.
                            end as u32 + MEM_WORDS as u32
                        },
                    });
                }
            }
        }
        if blocks.is_empty() {
            return AotImage { inner: None };
        }
        AotImage {
            inner: Some(Arc::new(AotInner { index, blocks })),
        }
    }

    /// The compiled block whose leader is `at`, if one survives.
    #[inline]
    pub(crate) fn block_at(&self, at: Addr) -> Option<&FusedTrace> {
        let inner = self.inner.as_deref()?;
        match inner.index[at as usize & ADDR_MASK] {
            NO_BLOCK => None,
            i => Some(&inner.blocks[i as usize].trace),
        }
    }

    /// Invalidate after an IMEM word write at `addr`: drop every block
    /// whose span covers the written word and rebuild the leader index.
    /// No-op (no Arc copy) when nothing covers it.
    pub fn invalidate_write(&mut self, addr: Addr) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let a = addr as u32 & ADDR_MASK as u32;
        let covers = |b: &AotBlock| {
            (a >= b.start && a < b.end)
                || (a + MEM_WORDS as u32 >= b.start && a + (MEM_WORDS as u32) < b.end)
        };
        if !inner.blocks.iter().any(covers) {
            return;
        }
        let inner = Arc::make_mut(self.inner.as_mut().expect("checked above"));
        inner.blocks.retain(|b| !covers(b));
        if inner.blocks.is_empty() {
            self.inner = None;
            return;
        }
        inner.index.fill(NO_BLOCK);
        for (i, b) in inner.blocks.iter().enumerate() {
            inner.index[b.start as usize & ADDR_MASK] = i as u32;
        }
    }

    /// Number of compiled blocks in the image.
    pub fn block_count(&self) -> usize {
        self.inner.as_deref().map_or(0, |i| i.blocks.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy_acct::EnergyAccountant;
    use snap_energy::OperatingPoint;
    use snap_isa::{AluImmOp, BranchCond, Reg, Word};

    fn decoder(prog: &[Instruction]) -> impl Fn(Addr) -> Option<(Instruction, InstrCosts)> + '_ {
        let acct = EnergyAccountant::new(OperatingPoint::V1_8);
        let mut map = std::collections::BTreeMap::new();
        let mut at: Addr = 0;
        for ins in prog {
            map.insert(at, (*ins, acct.cost_of(ins)));
            at += ins.word_count() as Addr;
        }
        move |a| map.get(&a).copied()
    }

    fn li(rd: Reg, imm: Word) -> Instruction {
        Instruction::AluImm {
            op: AluImmOp::Li,
            rd,
            imm,
        }
    }

    /// li r1, 3        ; words 0..2   (leader: entry)
    /// loop: add r2,r1 ; word  4      (leader: branch target)
    /// subi r1, 1      ; words 5..7
    /// bnez r1, 4      ; words 7..9
    /// done            ; word  9      (leader: branch fallthrough)
    fn loop_prog() -> Vec<Instruction> {
        vec![
            li(Reg::R1, 3),
            li(Reg::R2, 0),
            Instruction::AluReg {
                op: snap_isa::AluOp::Add,
                rd: Reg::R2,
                rs: Reg::R1,
            },
            Instruction::AluImm {
                op: AluImmOp::Subi,
                rd: Reg::R1,
                imm: 1,
            },
            Instruction::Branch {
                cond: BranchCond::Nez,
                ra: Reg::R1,
                rb: Reg::R0,
                target: 4,
            },
            Instruction::Done,
        ]
    }

    fn loop_region() -> AotRegion {
        AotRegion {
            entry: 0,
            addrs: vec![0, 2, 4, 5, 7, 9],
        }
    }

    #[test]
    fn compiles_blocks_at_leaders() {
        let prog = loop_prog();
        let img = AotImage::compile(&[loop_region()], decoder(&prog));
        // Blocks build *through* interior leaders (longer runs beat
        // classic basic-block splits): the entry block runs all the way
        // to the bnez [0..9), overlapping the loop-body block [4..9).
        // The `done` leader at 9 is a single unfusable instruction: no
        // block.
        assert_eq!(img.block_count(), 2);
        let entry = img.block_at(0).expect("entry block");
        assert_eq!(entry.len, 5);
        let body = img.block_at(4).expect("loop body block");
        assert_eq!(body.len, 3);
        assert!(img.block_at(9).is_none());
        assert!(img.block_at(5).is_none(), "mid-block is not a leader");
    }

    #[test]
    fn region_boundary_ends_block() {
        // Same program, but the region omits the subi/bnez tail: the
        // body block must stop at the boundary instead of compiling
        // through it.
        let prog = loop_prog();
        let region = AotRegion {
            entry: 0,
            addrs: vec![0, 2, 4],
        };
        let img = AotImage::compile(&[region], decoder(&prog));
        assert_eq!(img.block_count(), 1);
        let entry = img.block_at(0).expect("entry block");
        // li, li, add — then the boundary at word 5.
        assert_eq!(entry.len, 3);
        assert!(matches!(entry.term, crate::fuse::FusedTerm::Fall { to: 5 }));
    }

    #[test]
    fn write_inside_block_drops_it() {
        let prog = loop_prog();
        let mut img = AotImage::compile(&[loop_region()], decoder(&prog));
        // Word 1 (entry li's immediate) is covered only by the entry
        // block [0..9)'s head — but the entry block spans the loop too,
        // so a write at word 6 (subi immediate) kills both it and the
        // body block [4..9).
        img.invalidate_write(1);
        assert!(img.block_at(0).is_none());
        assert!(img.block_at(4).is_some(), "body block starts later");
        assert_eq!(img.block_count(), 1);
        // Dropping the last block empties the image entirely.
        img.invalidate_write(6);
        assert_eq!(img.block_count(), 0);
        assert!(img.block_at(4).is_none());
    }

    #[test]
    fn clones_share_until_invalidated() {
        let prog = loop_prog();
        let img = AotImage::compile(&[loop_region()], decoder(&prog));
        let mut clone = img.clone();
        clone.invalidate_write(1);
        assert_eq!(clone.block_count(), 1);
        assert_eq!(img.block_count(), 2, "original unaffected");
    }

    #[test]
    fn empty_regions_compile_to_empty_image() {
        let img = AotImage::compile(&[], |_| None);
        assert_eq!(img.block_count(), 0);
        assert!(img.block_at(0).is_none());
        let mut img = img;
        img.invalidate_write(0); // must not panic
    }
}
