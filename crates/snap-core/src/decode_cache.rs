//! Per-address predecode cache over IMEM.
//!
//! The simulator's hottest loop is fetch → decode → cost lookup →
//! execute. Decoding and the energy/timing model evaluations are pure
//! functions of the IMEM words and the core's fixed operating point,
//! so both are done once per address and replayed on every dynamic
//! execution. SNAP/LE programs self-modify (the paper's bootloader
//! writes handlers into IMEM with `isw`), so the cache tracks IMEM
//! writes: a store to `addr` invalidates the slot at `addr` and the
//! slot at `addr - 1`, where a two-word instruction would have read
//! `addr` as its immediate word. Bulk image loads drop everything.
//!
//! Correctness contract: cached entries hold the *same* decoded
//! instruction and the *same* `f64` energy/latency values the uncached
//! path would recompute, so traces and energy totals are bit-identical
//! with the cache on or off (a property test in `tests/properties.rs`
//! drives random self-modifying programs against both).

use crate::energy_acct::InstrCosts;
use crate::fuse::{FusedSlot, MAX_TRACE_WORDS};
use snap_isa::{Addr, Instruction, MEM_WORDS};
use std::sync::Arc;

const ADDR_MASK: usize = MEM_WORDS - 1;

/// One predecoded IMEM slot: the instruction starting at that address
/// plus the accounting costs its execution charges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predecoded {
    /// The decoded instruction.
    pub ins: Instruction,
    /// Precomputed energy/latency/attribution per execution.
    pub costs: InstrCosts,
}

/// The cache: one optional [`Predecoded`] slot per IMEM word address.
///
/// Copy-on-write like the memory banks: clones share the slot array, so
/// a fleet built from a template node shares one predecoded image until
/// a node self-modifies its IMEM.
#[derive(Debug, Clone)]
pub struct DecodeCache {
    slots: Arc<[Option<Predecoded>; MEM_WORDS]>,
    /// Tier-1 fusion verdicts, one per possible trace entry address.
    /// Shares the slot array's CoW discipline so a fleet shares one
    /// fused image; invalidated alongside the decode slots (a write at
    /// `addr` clears every entry whose trace could span `addr`).
    fused: Arc<Vec<FusedSlot>>,
}

impl Default for DecodeCache {
    fn default() -> DecodeCache {
        DecodeCache::new()
    }
}

impl DecodeCache {
    /// An empty cache covering all of IMEM.
    pub fn new() -> DecodeCache {
        DecodeCache {
            slots: Arc::new([None; MEM_WORDS]),
            fused: Arc::new(vec![FusedSlot::Unknown; MEM_WORDS]),
        }
    }

    /// The cached entry whose first word is at `at`, if still valid.
    /// Addresses wrap modulo IMEM size, mirroring the banks.
    #[inline]
    pub fn get(&self, at: Addr) -> Option<&Predecoded> {
        self.slots[at as usize & ADDR_MASK].as_ref()
    }

    /// Cache the instruction whose first word is at `at`.
    #[inline]
    pub fn insert(&mut self, at: Addr, entry: Predecoded) {
        Arc::make_mut(&mut self.slots)[at as usize & ADDR_MASK] = Some(entry);
    }

    /// The fusion verdict for a trace entered at `at`.
    #[inline]
    pub(crate) fn fused_get(&self, at: Addr) -> &FusedSlot {
        &self.fused[at as usize & ADDR_MASK]
    }

    /// Record the fusion verdict for traces entered at `at`.
    pub(crate) fn fused_set(&mut self, at: Addr, slot: FusedSlot) {
        Arc::make_mut(&mut self.fused)[at as usize & ADDR_MASK] = slot;
    }

    /// Invalidate after an IMEM word write at `addr`: the instruction
    /// starting there and the two-word instruction starting one word
    /// earlier (whose immediate lives at `addr`), plus every fused
    /// trace whose span could include `addr` (traces cover at most
    /// `MAX_TRACE_WORDS` words, so entries up to that far back).
    #[inline]
    pub fn invalidate_write(&mut self, addr: Addr) {
        let slots = Arc::make_mut(&mut self.slots);
        slots[addr as usize & ADDR_MASK] = None;
        slots[(addr as usize).wrapping_sub(1) & ADDR_MASK] = None;
        let fused = Arc::make_mut(&mut self.fused);
        for back in 0..MAX_TRACE_WORDS {
            fused[(addr as usize).wrapping_sub(back) & ADDR_MASK] = FusedSlot::Unknown;
        }
    }

    /// Drop every entry (bulk IMEM load).
    pub fn invalidate_all(&mut self) {
        Arc::make_mut(&mut self.slots).fill(None);
        Arc::make_mut(&mut self.fused).fill(FusedSlot::Unknown);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy_acct::EnergyAccountant;
    use snap_energy::OperatingPoint;
    use snap_isa::{AluImmOp, Reg};

    fn entry() -> Predecoded {
        let ins = Instruction::AluImm {
            op: AluImmOp::Li,
            rd: Reg::R1,
            imm: 1,
        };
        let acct = EnergyAccountant::new(OperatingPoint::V1_8);
        Predecoded {
            ins,
            costs: acct.cost_of(&ins),
        }
    }

    #[test]
    fn insert_get_round_trip() {
        let mut c = DecodeCache::new();
        assert!(c.get(7).is_none());
        c.insert(7, entry());
        assert_eq!(c.get(7), Some(&entry()));
        // Addresses wrap like the memory banks.
        assert_eq!(c.get(7 + MEM_WORDS as Addr), Some(&entry()));
    }

    #[test]
    fn write_invalidates_both_candidate_starts() {
        let mut c = DecodeCache::new();
        c.insert(9, entry());
        c.insert(10, entry());
        c.insert(11, entry());
        c.invalidate_write(10);
        assert!(
            c.get(9).is_none(),
            "two-word instruction at 9 reads word 10"
        );
        assert!(c.get(10).is_none());
        assert!(c.get(11).is_some());
    }

    #[test]
    fn write_at_zero_wraps_to_last_slot() {
        let mut c = DecodeCache::new();
        let last = (MEM_WORDS - 1) as Addr;
        c.insert(last, entry());
        c.invalidate_write(0);
        assert!(
            c.get(last).is_none(),
            "two-word instruction at 2047 wraps to word 0"
        );
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = DecodeCache::new();
        c.insert(3, entry());
        c.fused_set(3, FusedSlot::NoFuse);
        c.invalidate_all();
        assert!(c.get(3).is_none());
        assert_eq!(*c.fused_get(3), FusedSlot::Unknown);
    }

    #[test]
    fn write_invalidates_fused_span() {
        let mut c = DecodeCache::new();
        let entry_at = 40 as Addr;
        c.fused_set(entry_at, FusedSlot::NoFuse);
        // A write at the far end of the maximum span clears the entry…
        c.invalidate_write(entry_at + MAX_TRACE_WORDS as Addr - 1);
        assert_eq!(*c.fused_get(entry_at), FusedSlot::Unknown);
        // …but one word past the span leaves it alone.
        c.fused_set(entry_at, FusedSlot::NoFuse);
        c.invalidate_write(entry_at + MAX_TRACE_WORDS as Addr);
        assert_eq!(*c.fused_get(entry_at), FusedSlot::NoFuse);
    }

    #[test]
    fn fused_span_invalidation_wraps() {
        let mut c = DecodeCache::new();
        let entry_at = (MEM_WORDS - 2) as Addr;
        c.fused_set(entry_at, FusedSlot::NoFuse);
        // A trace entered two words before the top of IMEM can wrap
        // around to low addresses; a write there must clear it.
        c.invalidate_write(3);
        assert_eq!(*c.fused_get(entry_at), FusedSlot::Unknown);
    }
}
