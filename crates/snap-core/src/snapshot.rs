//! Core state export/restore against the `snap-snapshot` format.
//!
//! [`Processor::export_snapshot`] captures the complete observable
//! state of a core; [`Processor::from_snapshot`] rebuilds a core that
//! resumes **bit-identically** — registers, memories, event order,
//! timing and energy `f64` bits all match a never-snapshotted run.
//!
//! Two classes of state are deliberately *not* captured:
//!
//! * **Caches** (predecode verdicts, fused traces, tier-2 AOT blocks):
//!   pure functions of IMEM and the config. The restored core starts
//!   with cold caches and refills them lazily; because every execution
//!   tier is bit-identical, warm-vs-cold is observationally invisible.
//!   Embedders running [`crate::Engine::Aot`] may re-run their static
//!   analysis and [`Processor::install_aot`] after restore to get the
//!   tier-2 speed back — correctness does not depend on it.
//! * **Telemetry** (the per-dispatch sampler): observation-only by
//!   construction. A restored core has sampling off; queue stamps are
//!   preserved so re-enabling it keeps exact queue waits.

use crate::energy_acct::ClassStats;
use crate::processor::{CoreConfig, CoreState, Engine, Processor};
use crate::profile::HandlerStats;
use dess::{Lfsr16, SimDuration, SimTime};
use snap_energy::model::BusModel;
use snap_energy::{Component, ComponentEnergy, Energy, OperatingPoint};
use snap_isa::{
    EventKind, EventToken, InstructionClass, EVENT_TABLE_ENTRIES, MEM_WORDS, NUM_PHYSICAL_REGS,
};
use snap_snapshot::core::{engine, state};
use snap_snapshot::{
    AcctSnapshot, ClassStatSnap, CoreConfigSnap, CoreSnapshot, HandlerStatSnap, MsgSnapshot,
    ProfileSnapshot, QueueSnapshot, SnapshotError, TimerRegSnap, TimerSnapshot,
};

fn engine_to_wire(e: Engine) -> u8 {
    match e {
        Engine::Interp => engine::INTERP,
        Engine::Fused => engine::FUSED,
        Engine::Aot => engine::AOT,
    }
}

fn engine_from_wire(w: u8) -> Result<Engine, SnapshotError> {
    match w {
        engine::INTERP => Ok(Engine::Interp),
        engine::FUSED => Ok(Engine::Fused),
        engine::AOT => Ok(Engine::Aot),
        _ => Err(SnapshotError::Corrupt("engine discriminant")),
    }
}

fn state_to_wire(s: CoreState) -> u8 {
    match s {
        CoreState::Running => state::RUNNING,
        CoreState::Asleep => state::ASLEEP,
        CoreState::Halted => state::HALTED,
    }
}

fn state_from_wire(w: u8) -> Result<CoreState, SnapshotError> {
    match w {
        state::RUNNING => Ok(CoreState::Running),
        state::ASLEEP => Ok(CoreState::Asleep),
        state::HALTED => Ok(CoreState::Halted),
        _ => Err(SnapshotError::Corrupt("core state discriminant")),
    }
}

/// Export a [`CoreConfig`] to its wire form.
pub fn config_to_snap(config: &CoreConfig) -> CoreConfigSnap {
    CoreConfigSnap {
        vdd_bits: config.operating_point.vdd().to_bits(),
        delay_factor_bits: config.operating_point.delay_factor().to_bits(),
        bus_flat: config.bus == BusModel::Flat,
        event_queue_capacity: config.event_queue_capacity as u64,
        timer_tick_ps: config.timer_tick.as_ps(),
        lfsr_seed: config.lfsr_seed,
        predecode: config.predecode,
        engine: engine_to_wire(config.engine),
    }
}

/// Rebuild a [`CoreConfig`] from its wire form.
///
/// # Errors
///
/// Rejects non-finite or out-of-range operating points and zero
/// capacities rather than panicking in the constructors downstream.
pub fn config_from_snap(snap: &CoreConfigSnap) -> Result<CoreConfig, SnapshotError> {
    let vdd = f64::from_bits(snap.vdd_bits);
    let delay = f64::from_bits(snap.delay_factor_bits);
    if !vdd.is_finite() || vdd <= 0.0 {
        return Err(SnapshotError::Corrupt("operating point vdd"));
    }
    if !delay.is_finite() || delay < 1.0 {
        return Err(SnapshotError::Corrupt("operating point delay factor"));
    }
    if snap.timer_tick_ps == 0 {
        return Err(SnapshotError::Corrupt("timer tick"));
    }
    if snap.event_queue_capacity == 0 || snap.event_queue_capacity > u32::MAX as u64 {
        return Err(SnapshotError::Corrupt("event queue capacity"));
    }
    Ok(CoreConfig {
        operating_point: OperatingPoint::new(vdd, delay),
        event_queue_capacity: snap.event_queue_capacity as usize,
        timer_tick: SimDuration::from_ps(snap.timer_tick_ps),
        lfsr_seed: snap.lfsr_seed,
        bus: if snap.bus_flat {
            BusModel::Flat
        } else {
            BusModel::Hierarchical
        },
        predecode: snap.predecode,
        engine: engine_from_wire(snap.engine)?,
    })
}

impl Processor {
    /// Capture the complete observable core state.
    pub fn export_snapshot(&self) -> CoreSnapshot {
        let (regs, carry) = self.regs.export();
        let (fifo, stamps, dropped, inserted) = self.event_queue.export();
        let (timer_regs, scheduled, expired, cancelled) = self.timer.export();
        let (outgoing, awaiting_tx, rx_enabled, port, words_tx, words_rx) = self.msg.export();
        let (boot, per_event) = self.profile.export();
        CoreSnapshot {
            config: config_to_snap(&self.config),
            regs: regs.to_vec(),
            carry,
            imem: self.imem.as_words().to_vec(),
            dmem: self.dmem.as_words().to_vec(),
            pc: self.pc,
            state: state_to_wire(self.state),
            now_ps: self.now.as_ps(),
            handler_table: self.handler_table.to_vec(),
            lfsr: self.lfsr.state(),
            current_event: self.current_event.map(|e| e.index() as u8),
            queue: QueueSnapshot {
                fifo: fifo.iter().map(|t| t.table_index() as u8).collect(),
                stamps,
                dropped,
                inserted,
            },
            timers: TimerSnapshot {
                timers: timer_regs
                    .iter()
                    .map(|&(staged_hi, expiry)| TimerRegSnap {
                        staged_hi,
                        expiry_ps: expiry.map(|t| t.as_ps()),
                    })
                    .collect(),
                scheduled,
                expired,
                cancelled,
            },
            msg: MsgSnapshot {
                outgoing,
                awaiting_tx_payload: awaiting_tx,
                rx_enabled,
                port,
                words_tx,
                words_rx,
            },
            acct: AcctSnapshot {
                components: Component::ALL
                    .iter()
                    .map(|&c| self.acct.components().get(c).as_pj().to_bits())
                    .collect(),
                per_class: self
                    .acct
                    .per_class_raw()
                    .iter()
                    .map(|s| ClassStatSnap {
                        count: s.count,
                        energy_bits: s.energy.as_pj().to_bits(),
                    })
                    .collect(),
                total_energy_bits: self.acct.total_energy().as_pj().to_bits(),
                busy_ps: self.acct.busy_time().as_ps(),
                instructions: self.acct.instructions(),
                cycles: self.acct.cycles(),
            },
            profile: ProfileSnapshot {
                boot: handler_stats_to_snap(&boot),
                per_event: per_event.iter().map(handler_stats_to_snap).collect(),
            },
            sleep_ps: self.sleep_time.as_ps(),
            wakeup_ps: self.wakeup_time.as_ps(),
            wakeups: self.wakeups,
            handlers_dispatched: self.handlers_dispatched,
        }
    }

    /// Rebuild a core from a snapshot. The restored core resumes
    /// bit-identically to the original; simulator caches start cold and
    /// refill lazily (see the module docs).
    ///
    /// # Errors
    ///
    /// Rejects structurally invalid snapshots ([`SnapshotError::Corrupt`]).
    pub fn from_snapshot(snap: &CoreSnapshot) -> Result<Processor, SnapshotError> {
        let config = config_from_snap(&snap.config)?;
        let mut cpu = Processor::new(config);

        let regs: [u16; NUM_PHYSICAL_REGS] = snap
            .regs
            .as_slice()
            .try_into()
            .map_err(|_| SnapshotError::Corrupt("register count"))?;
        cpu.regs.restore(regs, snap.carry);

        if snap.imem.len() != MEM_WORDS || snap.dmem.len() != MEM_WORDS {
            return Err(SnapshotError::Corrupt("memory bank size"));
        }
        cpu.imem
            .load(0, &snap.imem)
            .map_err(|_| SnapshotError::Corrupt("imem image"))?;
        cpu.dmem
            .load(0, &snap.dmem)
            .map_err(|_| SnapshotError::Corrupt("dmem image"))?;
        // Caches rebuild lazily against the restored IMEM.
        cpu.decode.invalidate_all();

        cpu.handler_table = snap
            .handler_table
            .as_slice()
            .try_into()
            .map_err(|_| SnapshotError::Corrupt("handler table size"))?;
        cpu.pc = snap.pc;
        cpu.state = state_from_wire(snap.state)?;
        cpu.now = SimTime::from_ps(snap.now_ps);
        cpu.lfsr = Lfsr16::new(snap.lfsr);
        cpu.current_event = match snap.current_event {
            Some(i) => Some(
                EventKind::from_index(i as usize)
                    .ok_or(SnapshotError::Corrupt("current event index"))?,
            ),
            None => None,
        };

        let mut tokens = Vec::with_capacity(snap.queue.fifo.len());
        for &i in &snap.queue.fifo {
            let kind = EventKind::from_index(i as usize)
                .ok_or(SnapshotError::Corrupt("event token index"))?;
            tokens.push(EventToken::new(kind));
        }
        if tokens.len() > cpu.config.event_queue_capacity {
            return Err(SnapshotError::Corrupt("event queue overflow"));
        }
        cpu.event_queue.restore(
            &tokens,
            snap.queue.stamps.as_deref(),
            snap.queue.dropped,
            snap.queue.inserted,
        );

        if snap.timers.timers.len() != crate::timer_cop::NUM_TIMERS {
            return Err(SnapshotError::Corrupt("timer register count"));
        }
        let mut timer_regs = [(0u8, None); crate::timer_cop::NUM_TIMERS];
        for (r, t) in timer_regs.iter_mut().zip(&snap.timers.timers) {
            *r = (t.staged_hi, t.expiry_ps.map(SimTime::from_ps));
        }
        cpu.timer.restore(
            timer_regs,
            snap.timers.scheduled,
            snap.timers.expired,
            snap.timers.cancelled,
        );

        cpu.msg.restore(
            &snap.msg.outgoing,
            snap.msg.awaiting_tx_payload,
            snap.msg.rx_enabled,
            snap.msg.port,
            snap.msg.words_tx,
            snap.msg.words_rx,
        );

        if snap.acct.components.len() != Component::ALL.len() {
            return Err(SnapshotError::Corrupt("component count"));
        }
        if snap.acct.per_class.len() != InstructionClass::ALL.len() {
            return Err(SnapshotError::Corrupt("instruction class count"));
        }
        let mut components = ComponentEnergy::new();
        for (slot, &bits) in components
            .as_array_mut()
            .iter_mut()
            .zip(&snap.acct.components)
        {
            *slot = Energy::from_pj(f64::from_bits(bits));
        }
        let mut per_class = [ClassStats::default(); InstructionClass::ALL.len()];
        for (slot, s) in per_class.iter_mut().zip(&snap.acct.per_class) {
            *slot = ClassStats {
                count: s.count,
                energy: Energy::from_pj(f64::from_bits(s.energy_bits)),
            };
        }
        cpu.acct.restore(
            components,
            per_class,
            Energy::from_pj(f64::from_bits(snap.acct.total_energy_bits)),
            SimDuration::from_ps(snap.acct.busy_ps),
            snap.acct.instructions,
            snap.acct.cycles,
        );

        if snap.profile.per_event.len() != EVENT_TABLE_ENTRIES {
            return Err(SnapshotError::Corrupt("profile bucket count"));
        }
        let mut per_event = [HandlerStats::default(); EVENT_TABLE_ENTRIES];
        for (slot, s) in per_event.iter_mut().zip(&snap.profile.per_event) {
            *slot = handler_stats_from_snap(s);
        }
        cpu.profile
            .restore(handler_stats_from_snap(&snap.profile.boot), per_event);

        cpu.sleep_time = SimDuration::from_ps(snap.sleep_ps);
        cpu.wakeup_time = SimDuration::from_ps(snap.wakeup_ps);
        cpu.wakeups = snap.wakeups;
        cpu.handlers_dispatched = snap.handlers_dispatched;
        Ok(cpu)
    }
}

fn handler_stats_to_snap(s: &HandlerStats) -> HandlerStatSnap {
    HandlerStatSnap {
        dispatches: s.dispatches,
        instructions: s.instructions,
        energy_bits: s.energy.as_pj().to_bits(),
        busy_ps: s.busy_time.as_ps(),
    }
}

fn handler_stats_from_snap(s: &HandlerStatSnap) -> HandlerStats {
    HandlerStats {
        dispatches: s.dispatches,
        instructions: s.instructions,
        energy: Energy::from_pj(f64::from_bits(s.energy_bits)),
        busy_time: SimDuration::from_ps(s.busy_ps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::{AluImmOp, Instruction, Reg, Word};
    use snap_snapshot::Snapshot;

    fn li(rd: Reg, imm: Word) -> Instruction {
        Instruction::AluImm {
            op: AluImmOp::Li,
            rd,
            imm,
        }
    }

    /// A core mid-flight: handler installed, timers armed, tokens
    /// queued, energy accumulated.
    fn busy_core(engine: Engine) -> Processor {
        let boot = [
            li(Reg::R1, EventKind::SensorIrq.index() as Word),
            li(Reg::R2, 200),
            Instruction::SetAddr {
                rev: Reg::R1,
                raddr: Reg::R2,
            },
            li(Reg::R3, 0),
            li(Reg::R4, 50),
            Instruction::SchedLo {
                rt: Reg::R3,
                rv: Reg::R4,
            },
            Instruction::Seed { rs: Reg::R2 },
            Instruction::Rand { rd: Reg::R5 },
            Instruction::Done,
        ];
        let handler = [
            Instruction::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::R6,
                imm: 1,
            },
            Instruction::Done,
        ];
        let mut cpu = Processor::new(CoreConfig {
            engine,
            ..CoreConfig::default()
        });
        cpu.load_program(&boot).unwrap();
        let img: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
        cpu.load_image(200, &img).unwrap();
        cpu.run_until_idle(100).unwrap();
        cpu.post_sensor_irq();
        cpu.post_sensor_irq();
        cpu
    }

    #[test]
    fn export_import_round_trip_is_exact() {
        for engine in [Engine::Interp, Engine::Fused, Engine::Aot] {
            let cpu = busy_core(engine);
            let snap = cpu.export_snapshot();
            let restored = Processor::from_snapshot(&snap).unwrap();
            // The snapshot of the restored core is identical.
            assert_eq!(restored.export_snapshot(), snap);
        }
    }

    #[test]
    fn snapshot_serializes_through_bytes() {
        let cpu = busy_core(Engine::Fused);
        let snap = cpu.export_snapshot();
        let bytes = Snapshot::Core(Box::new(snap.clone())).to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.as_core().unwrap(), &snap);
    }

    #[test]
    fn restored_core_resumes_bit_identically() {
        for engine in [Engine::Interp, Engine::Fused, Engine::Aot] {
            let mut straight = busy_core(engine);
            let mut restored =
                Processor::from_snapshot(&busy_core(engine).export_snapshot()).unwrap();
            straight.run_until_idle(1000).unwrap();
            restored.run_until_idle(1000).unwrap();
            // Drain the armed timer identically on both.
            let t = straight.next_timer_expiry().unwrap();
            straight.advance_idle(t);
            restored.advance_idle(t);
            straight.run_until_idle(1000).unwrap();
            restored.run_until_idle(1000).unwrap();
            assert_eq!(
                straight.export_snapshot(),
                restored.export_snapshot(),
                "divergence under {engine:?}"
            );
            // Energy f64 bits, explicitly.
            assert_eq!(
                straight.acct().total_energy().as_pj().to_bits(),
                restored.acct().total_energy().as_pj().to_bits()
            );
        }
    }

    #[test]
    fn corrupt_fields_are_rejected() {
        let snap = busy_core(Engine::Fused).export_snapshot();

        let mut s = snap.clone();
        s.regs.pop();
        assert!(Processor::from_snapshot(&s).is_err());

        let mut s = snap.clone();
        s.imem.truncate(10);
        assert!(Processor::from_snapshot(&s).is_err());

        let mut s = snap.clone();
        s.config.vdd_bits = f64::NAN.to_bits();
        assert!(Processor::from_snapshot(&s).is_err());

        let mut s = snap.clone();
        s.current_event = Some(9);
        assert!(Processor::from_snapshot(&s).is_err());

        let mut s = snap;
        s.queue.fifo = vec![0; 64];
        assert!(Processor::from_snapshot(&s).is_err());
    }

    #[test]
    fn config_round_trips_at_every_paper_point() {
        for point in OperatingPoint::PAPER_POINTS {
            let config = CoreConfig::at(point);
            let back = config_from_snap(&config_to_snap(&config)).unwrap();
            assert_eq!(back, config);
        }
    }
}
