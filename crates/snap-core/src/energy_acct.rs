//! Per-instruction energy and latency accounting.
//!
//! Every executed instruction is folded into three views:
//!
//! * a running total (energy, busy time, instruction count),
//! * a per-class histogram — the data behind Fig. 4 and the "most
//!   frequently executed instructions" analysis of §4.5,
//! * a per-component attribution — the data behind the §4.4 energy
//!   distribution.

use dess::SimDuration;
use snap_energy::model::{BusModel, InstrShape, SnapEnergyModel, SnapTimingModel};
use snap_energy::{ComponentEnergy, Energy, OperatingPoint};
use snap_isa::{Instruction, InstructionClass};

/// Derive the energy-model shape of an instruction.
pub fn shape_of(ins: &Instruction) -> InstrShape {
    InstrShape {
        class: ins.class(),
        words: ins.word_count(),
        dmem: ins.accesses_dmem(),
        imem_data: ins.accesses_imem_data(),
    }
}

/// Everything [`EnergyAccountant::record`] derives from the instruction
/// alone: a pure function of the instruction and the accountant's fixed
/// models, so callers may compute it once (e.g. per IMEM address) and
/// replay it per dynamic execution. Replaying accumulates the exact
/// `f64` values the uncached path would, keeping totals bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrCosts {
    /// Instruction class (the per-class histogram key).
    pub class: InstructionClass,
    /// Energy charged per execution.
    pub energy: Energy,
    /// Latency charged per execution.
    pub latency: SimDuration,
    /// Per-component attribution per execution.
    pub components: ComponentEnergy,
    /// Occupancy cycles per execution (IMEM words + memory accesses).
    pub cycles: u64,
}

/// Count and energy for one instruction class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassStats {
    /// Dynamic instructions of this class.
    pub count: u64,
    /// Total energy spent by this class.
    pub energy: Energy,
}

/// The core's energy/latency accountant.
#[derive(Debug, Clone)]
pub struct EnergyAccountant {
    energy_model: SnapEnergyModel,
    timing_model: SnapTimingModel,
    components: ComponentEnergy,
    per_class: [ClassStats; InstructionClass::ALL.len()],
    total_energy: Energy,
    busy_time: SimDuration,
    instructions: u64,
    cycles: u64,
}

impl EnergyAccountant {
    /// An accountant at the given operating point.
    pub fn new(point: OperatingPoint) -> EnergyAccountant {
        EnergyAccountant::with_bus(point, BusModel::default())
    }

    /// An accountant with an explicit bus organization (ablations).
    pub fn with_bus(point: OperatingPoint, bus: BusModel) -> EnergyAccountant {
        EnergyAccountant {
            energy_model: SnapEnergyModel::new(point).with_bus(bus),
            timing_model: SnapTimingModel::new(point).with_bus(bus),
            components: ComponentEnergy::new(),
            per_class: [ClassStats::default(); InstructionClass::ALL.len()],
            total_energy: Energy::ZERO,
            busy_time: SimDuration::ZERO,
            instructions: 0,
            cycles: 0,
        }
    }

    /// The underlying energy model.
    pub fn energy_model(&self) -> &SnapEnergyModel {
        &self.energy_model
    }

    /// The underlying timing model.
    pub fn timing_model(&self) -> &SnapTimingModel {
        &self.timing_model
    }

    /// Record one executed instruction; returns its latency so the core
    /// can advance simulated time.
    pub fn record(&mut self, ins: &Instruction) -> SimDuration {
        self.record_costs(&self.cost_of(ins))
    }

    /// The costs [`EnergyAccountant::record`] would charge for `ins`.
    pub fn cost_of(&self, ins: &Instruction) -> InstrCosts {
        let shape = shape_of(ins);
        InstrCosts {
            class: shape.class,
            energy: self.energy_model.instruction_energy(shape),
            latency: self.timing_model.instruction_latency(shape),
            components: self.energy_model.instruction_energy_by_component(shape),
            cycles: shape.words as u64 + shape.dmem as u64 + shape.imem_data as u64,
        }
    }

    /// Record one executed instruction from precomputed costs.
    #[inline]
    pub fn record_costs(&mut self, costs: &InstrCosts) -> SimDuration {
        self.record_costs_delta(costs).0
    }

    /// [`EnergyAccountant::record_costs`], also returning the exact
    /// `f64` delta of the running total (`after - before`, which is not
    /// `costs.energy` under floating-point rounding). The hot replay
    /// path needs both without re-reading the total.
    #[inline]
    pub fn record_costs_delta(&mut self, costs: &InstrCosts) -> (SimDuration, Energy) {
        self.components.merge(&costs.components);
        let entry = &mut self.per_class[costs.class as usize];
        entry.count += 1;
        entry.energy += costs.energy;
        let before = self.total_energy;
        self.total_energy += costs.energy;
        self.busy_time += costs.latency;
        self.instructions += 1;
        self.cycles += costs.cycles;
        (costs.latency, self.total_energy - before)
    }

    /// The floating-point half of [`EnergyAccountant::record_costs`]
    /// alone, in the same order — component merge, per-class energy,
    /// running total — returning the exact delta of the total. The
    /// integer counters are left to [`EnergyAccountant::record_batch`].
    #[inline]
    pub(crate) fn record_energy(&mut self, costs: &InstrCosts) -> Energy {
        self.components.merge(&costs.components);
        self.per_class[costs.class as usize].energy += costs.energy;
        let before = self.total_energy;
        self.total_energy += costs.energy;
        self.total_energy - before
    }

    /// The integer half of `reps` identical runs of
    /// [`EnergyAccountant::record_costs`] calls, batched: per-class
    /// dynamic counts, busy time, instruction and cycle totals.
    /// Integer sums are associative, so `reps ×` the per-run totals is
    /// identical to recording serially.
    #[inline]
    pub(crate) fn record_batch(
        &mut self,
        counts: &[(InstructionClass, u32)],
        latency: SimDuration,
        cycles: u64,
        instructions: u64,
        reps: u64,
    ) {
        for &(class, n) in counts {
            self.per_class[class as usize].count += n as u64 * reps;
        }
        self.busy_time += latency * reps;
        self.instructions += instructions * reps;
        self.cycles += cycles * reps;
    }

    /// The mutable accumulator fields the fused hot loop keeps in
    /// registers across a back-edge loop: component attribution,
    /// per-class stats, and the running energy total.
    #[inline]
    pub(crate) fn hot_parts(
        &mut self,
    ) -> (
        &mut ComponentEnergy,
        &mut [ClassStats; InstructionClass::ALL.len()],
        &mut Energy,
    ) {
        (
            &mut self.components,
            &mut self.per_class,
            &mut self.total_energy,
        )
    }

    /// Total energy of all recorded instructions.
    #[inline]
    pub fn total_energy(&self) -> Energy {
        self.total_energy
    }

    /// Total execution (busy) time of all recorded instructions.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Number of recorded (dynamic) instructions.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Asynchronous "cycles": IMEM words fetched plus data-memory
    /// accesses. The paper's TinyOS comparisons (§4.6) count cycles on
    /// both platforms; for the clockless SNAP/LE this occupancy count is
    /// the natural equivalent (a two-word instruction takes two cycles,
    /// paper §3.1).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Average energy per instruction; zero when nothing was recorded.
    pub fn energy_per_instruction(&self) -> Energy {
        if self.instructions == 0 {
            return Energy::ZERO;
        }
        self.total_energy / self.instructions as f64
    }

    /// Average throughput in MIPS over the busy time; zero when nothing
    /// was recorded.
    pub fn mips(&self) -> f64 {
        if self.busy_time.is_zero() {
            return 0.0;
        }
        self.instructions as f64 / self.busy_time.as_us()
    }

    /// Per-class statistics for recorded classes, ordered by class.
    pub fn per_class(&self) -> impl Iterator<Item = (InstructionClass, ClassStats)> + '_ {
        InstructionClass::ALL
            .into_iter()
            .map(|c| (c, self.per_class[c as usize]))
            .filter(|(_, s)| s.count > 0)
    }

    /// Statistics for one class.
    pub fn class_stats(&self, class: InstructionClass) -> ClassStats {
        self.per_class[class as usize]
    }

    /// The per-component energy attribution.
    pub fn components(&self) -> &ComponentEnergy {
        &self.components
    }

    /// Rebuild every accumulator from a snapshot (the models are kept —
    /// they are pure functions of the config the accountant was built
    /// with). Energy values arrive as the exact `f64`s that were
    /// running when the snapshot was taken, so subsequent accumulation
    /// continues bit-identically.
    pub(crate) fn restore(
        &mut self,
        components: ComponentEnergy,
        per_class: [ClassStats; InstructionClass::ALL.len()],
        total_energy: Energy,
        busy_time: SimDuration,
        instructions: u64,
        cycles: u64,
    ) {
        self.components = components;
        self.per_class = per_class;
        self.total_energy = total_energy;
        self.busy_time = busy_time;
        self.instructions = instructions;
        self.cycles = cycles;
    }

    /// The raw per-class array, Snapshot export side (includes classes
    /// with zero counts, unlike [`EnergyAccountant::per_class`]).
    pub(crate) fn per_class_raw(&self) -> &[ClassStats; InstructionClass::ALL.len()] {
        &self.per_class
    }

    /// Reset all counters (the models are kept).
    pub fn reset(&mut self) {
        self.components = ComponentEnergy::new();
        self.per_class = [ClassStats::default(); InstructionClass::ALL.len()];
        self.total_energy = Energy::ZERO;
        self.busy_time = SimDuration::ZERO;
        self.instructions = 0;
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::{AluImmOp, AluOp, Reg};

    fn add() -> Instruction {
        Instruction::AluReg {
            op: AluOp::Add,
            rd: Reg::R1,
            rs: Reg::R2,
        }
    }

    fn li() -> Instruction {
        Instruction::AluImm {
            op: AluImmOp::Li,
            rd: Reg::R1,
            imm: 5,
        }
    }

    fn load() -> Instruction {
        Instruction::Load {
            rd: Reg::R1,
            base: Reg::R2,
            offset: 0,
        }
    }

    #[test]
    fn recording_accumulates() {
        let mut a = EnergyAccountant::new(OperatingPoint::V1_8);
        let lat = a.record(&add());
        assert!(!lat.is_zero());
        a.record(&li());
        a.record(&load());
        assert_eq!(a.instructions(), 3);
        assert!(a.total_energy().as_pj() > 0.0);
        assert_eq!(a.class_stats(InstructionClass::ArithReg).count, 1);
        assert_eq!(a.class_stats(InstructionClass::ArithImm).count, 1);
        assert_eq!(a.class_stats(InstructionClass::Load).count, 1);
        assert_eq!(a.class_stats(InstructionClass::Nop).count, 0);
    }

    #[test]
    fn component_total_matches_energy_total() {
        let mut a = EnergyAccountant::new(OperatingPoint::V0_6);
        for _ in 0..10 {
            a.record(&add());
            a.record(&load());
        }
        assert!((a.components().total().as_pj() - a.total_energy().as_pj()).abs() < 1e-6);
    }

    #[test]
    fn averages() {
        let mut a = EnergyAccountant::new(OperatingPoint::V1_8);
        assert_eq!(a.energy_per_instruction(), Energy::ZERO);
        assert_eq!(a.mips(), 0.0);
        for _ in 0..100 {
            a.record(&add());
        }
        let per = a.energy_per_instruction();
        assert!((per.as_pj() - a.total_energy().as_pj() / 100.0).abs() < 1e-9);
        assert!(a.mips() > 100.0, "{}", a.mips());
    }

    #[test]
    fn reset_clears_counters() {
        let mut a = EnergyAccountant::new(OperatingPoint::V0_9);
        a.record(&add());
        a.reset();
        assert_eq!(a.instructions(), 0);
        assert_eq!(a.total_energy(), Energy::ZERO);
        assert!(a.busy_time().is_zero());
        assert_eq!(a.per_class().count(), 0);
    }

    #[test]
    fn shape_of_derives_memory_flags() {
        let s = shape_of(&load());
        assert!(s.dmem && !s.imem_data);
        assert_eq!(s.words, 2);
        let s = shape_of(&Instruction::ImemStore {
            rs: Reg::R1,
            base: Reg::R2,
            offset: 0,
        });
        assert!(s.imem_data && !s.dmem);
    }
}
