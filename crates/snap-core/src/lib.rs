//! # snap-core — the SNAP/LE processor simulator
//!
//! An instruction-level, energy- and latency-accurate simulator of the
//! SNAP/LE event-driven asynchronous processor (paper §3):
//!
//! * [`event_queue`] — the hardware event queue: the FIFO of event
//!   tokens that replaces an operating system's task scheduler.
//! * [`timer_cop`] — the timer coprocessor: three self-decrementing
//!   24-bit timer registers scheduled with `schedhi`/`schedlo` and
//!   cancelled with `cancel`.
//! * [`msg_cop`] — the message coprocessor: the two 16-bit FIFOs mapped
//!   to `r15` that interface the core to the radio and sensors.
//! * [`memory`], [`regfile`] — the 4 KB IMEM/DMEM banks and the
//!   fifteen-entry register file with its carry flag.
//! * [`decode_cache`] — the simulator's predecoded-IMEM fast path:
//!   decode and model costs computed once per address, invalidated on
//!   self-modifying `isw` stores; also holds the tier-1 superinstruction
//!   fusion verdicts.
//! * [`translate`] — tier-2 AOT translation: whole basic blocks of
//!   proven-terminating handlers compiled to closed micro-op traces
//!   (see [`processor::Engine`]).
//! * [`energy_acct`] — per-instruction energy/latency accounting against
//!   the calibrated `snap-energy` model, attributed per component and
//!   per instruction class (reproducing Fig. 4 and §4.4).
//! * [`profile`] — per-handler attribution: instructions, energy and
//!   time bucketed by the event whose handler was running (Table 1's
//!   per-task accounting, generalized).
//! * [`sampler`] — opt-in per-dispatch samples (handler length, energy,
//!   queue wait) feeding the `snap-telemetry` distributions; strictly
//!   observation-only.
//! * [`processor`] — the core itself: boot, handler dispatch, sleep and
//!   wake-up, and the execution of every instruction.
//!
//! ## Example: run a handler and read its energy
//!
//! ```
//! use snap_core::{CoreConfig, Processor};
//! use snap_isa::{AluImmOp, Instruction, Reg};
//!
//! // A boot program: r1 = 7, then halt.
//! let prog = [
//!     Instruction::AluImm { op: AluImmOp::Li, rd: Reg::R1, imm: 7 },
//!     Instruction::Halt,
//! ];
//! let mut cpu = Processor::new(CoreConfig::default());
//! cpu.load_program(&prog).unwrap();
//! cpu.run_to_halt(100).unwrap();
//! assert_eq!(cpu.regs().read(Reg::R1), 7);
//! assert!(cpu.stats().energy.as_pj() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod decode_cache;
pub mod energy_acct;
pub mod event_queue;
mod fuse;
pub mod memory;
pub mod msg_cop;
pub mod processor;
pub mod profile;
pub mod regfile;
pub mod sampler;
pub mod snapshot;
pub mod timer_cop;
pub mod translate;

pub use decode_cache::DecodeCache;
pub use energy_acct::EnergyAccountant;
pub use event_queue::EventQueue;
pub use memory::MemBank;
pub use msg_cop::{EnvAction, MsgCoprocessor};
pub use processor::{CoreConfig, CoreState, CoreStats, Engine, Processor, StepError, StepOutcome};
pub use profile::{HandlerProfile, HandlerStats};
pub use regfile::RegFile;
pub use sampler::{HandlerSample, HandlerSampler};
pub use timer_cop::TimerCoprocessor;
pub use translate::{AotImage, AotRegion};
