//! The register file.
//!
//! Fifteen physical 16-bit registers (`r0`–`r14`) plus the carry flag
//! used by `addc`/`subc` for multi-precision arithmetic (paper §3.4).
//! `r15` is *not* stored here — it is the message-coprocessor port and
//! is handled by the core's operand routing.

use snap_isa::{Reg, Word, NUM_PHYSICAL_REGS};

/// The fifteen-entry register file and carry flag.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegFile {
    regs: [Word; NUM_PHYSICAL_REGS],
    carry: bool,
}

impl RegFile {
    /// A zeroed register file.
    pub fn new() -> RegFile {
        RegFile::default()
    }

    /// Read a physical register.
    ///
    /// # Panics
    ///
    /// Panics on `r15`; the core must route message-port reads to the
    /// message coprocessor before touching the register file.
    #[inline]
    pub fn read(&self, reg: Reg) -> Word {
        assert!(
            !reg.is_msg_port(),
            "r15 reads go to the message coprocessor"
        );
        self.regs[reg.index() as usize]
    }

    /// Write a physical register.
    ///
    /// # Panics
    ///
    /// Panics on `r15` (see [`RegFile::read`]).
    #[inline]
    pub fn write(&mut self, reg: Reg, value: Word) {
        assert!(
            !reg.is_msg_port(),
            "r15 writes go to the message coprocessor"
        );
        self.regs[reg.index() as usize] = value;
    }

    /// The carry flag.
    #[inline]
    pub fn carry(&self) -> bool {
        self.carry
    }

    /// Set the carry flag.
    #[inline]
    pub fn set_carry(&mut self, carry: bool) {
        self.carry = carry;
    }

    /// Zero all registers and clear carry.
    pub fn clear(&mut self) {
        self.regs.fill(0);
        self.carry = false;
    }

    /// All registers plus carry, for a snapshot.
    pub(crate) fn export(&self) -> ([Word; NUM_PHYSICAL_REGS], bool) {
        (self.regs, self.carry)
    }

    /// Rebuild from a snapshot.
    pub(crate) fn restore(&mut self, regs: [Word; NUM_PHYSICAL_REGS], carry: bool) {
        self.regs = regs;
        self.carry = carry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write() {
        let mut rf = RegFile::new();
        rf.write(Reg::R0, 1);
        rf.write(Reg::R14, 0xffff);
        assert_eq!(rf.read(Reg::R0), 1);
        assert_eq!(rf.read(Reg::R14), 0xffff);
        assert_eq!(rf.read(Reg::R7), 0);
    }

    #[test]
    fn carry_flag() {
        let mut rf = RegFile::new();
        assert!(!rf.carry());
        rf.set_carry(true);
        assert!(rf.carry());
        rf.clear();
        assert!(!rf.carry());
        assert_eq!(rf.read(Reg::R14), 0);
    }

    #[test]
    #[should_panic(expected = "message coprocessor")]
    fn r15_read_panics() {
        let rf = RegFile::new();
        let _ = rf.read(Reg::R15);
    }

    #[test]
    #[should_panic(expected = "message coprocessor")]
    fn r15_write_panics() {
        let mut rf = RegFile::new();
        rf.write(Reg::R15, 0);
    }
}
