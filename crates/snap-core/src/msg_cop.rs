//! The message coprocessor.
//!
//! The interface between the core and the node's radio and sensors
//! (paper §3.3, Fig. 3). Two 16-bit FIFOs map to register `r15`:
//!
//! * a core write to `r15` enters the *incoming* FIFO — either a
//!   [`MsgCommand`] or, immediately after a `RadioTx` command, a payload
//!   word for the radio;
//! * a core read from `r15` pops the *outgoing* FIFO, which holds radio
//!   words and sensor readings delivered by the environment.
//!
//! Arrival of external data (a radio word, a sensor reading, an
//! external-interrupt assertion) raises an event token; the core learns
//! about the data through the event queue and fetches it through `r15`.
//! Word-by-word reception matters because the radio is slow (≈19.2 kbps
//! — almost a millisecond per word): the coprocessor does the bit/word
//! conversion so the core is never stalled on the serial stream.

use snap_isa::{EventKind, MsgCommand, Word};
use std::collections::VecDeque;

/// An action the message coprocessor asks the node environment to take.
///
/// The processor surfaces these from [`crate::Processor::step`]; the node
/// (crate `snap-node`) carries them out against its radio/sensor models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvAction {
    /// Transmit a 16-bit word over the radio; the environment raises a
    /// `RadioTxDone` event when the word has been serialized.
    TxWord(Word),
    /// Radio receiver enabled (`true`) or radio powered off (`false`).
    RadioMode(bool),
    /// Poll sensor `id`; the environment answers with a sensor reply.
    Query(u16),
    /// A 12-bit value driven onto the output port (LEDs/GPIO).
    PortWrite(u16),
}

/// Error: a word written to `r15` was not a valid command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadCommand {
    /// The offending word.
    pub word: Word,
}

impl std::fmt::Display for BadCommand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "word {:#06x} written to r15 is not a message-coprocessor command",
            self.word
        )
    }
}

impl std::error::Error for BadCommand {}

/// The message coprocessor state.
#[derive(Debug, Clone)]
pub struct MsgCoprocessor {
    outgoing: VecDeque<Word>,
    awaiting_tx_payload: bool,
    rx_enabled: bool,
    port: u16,
    words_tx: u64,
    words_rx: u64,
}

impl MsgCoprocessor {
    /// A coprocessor in its reset state: radio off, FIFOs empty.
    pub fn new() -> MsgCoprocessor {
        MsgCoprocessor {
            outgoing: VecDeque::new(),
            awaiting_tx_payload: false,
            rx_enabled: false,
            port: 0,
            words_tx: 0,
            words_rx: 0,
        }
    }

    // ---- core side (r15) ----

    /// A core write to `r15`.
    ///
    /// # Errors
    ///
    /// Returns [`BadCommand`] when the word is neither transmit payload
    /// nor a valid command.
    pub fn core_write(&mut self, word: Word) -> Result<Option<EnvAction>, BadCommand> {
        if self.awaiting_tx_payload {
            self.awaiting_tx_payload = false;
            self.words_tx += 1;
            return Ok(Some(EnvAction::TxWord(word)));
        }
        match MsgCommand::decode(word) {
            Some(MsgCommand::RadioTx) => {
                self.awaiting_tx_payload = true;
                Ok(None)
            }
            Some(MsgCommand::RadioRxOn) => {
                self.rx_enabled = true;
                Ok(Some(EnvAction::RadioMode(true)))
            }
            Some(MsgCommand::RadioOff) => {
                self.rx_enabled = false;
                Ok(Some(EnvAction::RadioMode(false)))
            }
            Some(MsgCommand::QuerySensor(id)) => Ok(Some(EnvAction::Query(id))),
            Some(MsgCommand::PortWrite(v)) => {
                self.port = v;
                Ok(Some(EnvAction::PortWrite(v)))
            }
            None => Err(BadCommand { word }),
        }
    }

    /// A core read from `r15`: pop the outgoing FIFO.
    pub fn core_read(&mut self) -> Option<Word> {
        self.outgoing.pop_front()
    }

    // ---- environment side ----

    /// A word arrived from the radio. Returns the event to raise, or
    /// `None` when the receiver is disabled (the word is lost).
    pub fn radio_rx_word(&mut self, word: Word) -> Option<EventKind> {
        if !self.rx_enabled {
            return None;
        }
        self.words_rx += 1;
        self.outgoing.push_back(word);
        Some(EventKind::RadioRx)
    }

    /// The radio finished serializing the last transmit word.
    pub fn radio_tx_done(&mut self) -> EventKind {
        EventKind::RadioTxDone
    }

    /// A sensor query completed with `reading`.
    pub fn sensor_reply(&mut self, reading: Word) -> EventKind {
        self.outgoing.push_back(reading);
        EventKind::SensorReply
    }

    /// A sensor asserted the external-interrupt pin.
    pub fn sensor_irq(&mut self) -> EventKind {
        EventKind::SensorIrq
    }

    // ---- observability ----

    /// `true` when the receiver is enabled.
    pub fn rx_enabled(&self) -> bool {
        self.rx_enabled
    }

    /// `true` when the next `r15` write will be treated as transmit
    /// payload.
    pub fn awaiting_tx_payload(&self) -> bool {
        self.awaiting_tx_payload
    }

    /// The last value written to the output port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Words queued for the core to read.
    pub fn outgoing_len(&self) -> usize {
        self.outgoing.len()
    }

    /// Total radio words transmitted.
    pub fn words_transmitted(&self) -> u64 {
        self.words_tx
    }

    /// Total radio words received (receiver enabled).
    pub fn words_received(&self) -> u64 {
        self.words_rx
    }

    /// Full coprocessor state for a snapshot: the outgoing FIFO
    /// front-first, the three mode flags/latches and both counters.
    #[allow(clippy::type_complexity)]
    pub(crate) fn export(&self) -> (Vec<Word>, bool, bool, u16, u64, u64) {
        (
            self.outgoing.iter().copied().collect(),
            self.awaiting_tx_payload,
            self.rx_enabled,
            self.port,
            self.words_tx,
            self.words_rx,
        )
    }

    /// Rebuild coprocessor state from a snapshot.
    pub(crate) fn restore(
        &mut self,
        outgoing: &[Word],
        awaiting_tx_payload: bool,
        rx_enabled: bool,
        port: u16,
        words_tx: u64,
        words_rx: u64,
    ) {
        self.outgoing.clear();
        self.outgoing.extend(outgoing.iter().copied());
        self.awaiting_tx_payload = awaiting_tx_payload;
        self.rx_enabled = rx_enabled;
        self.port = port;
        self.words_tx = words_tx;
        self.words_rx = words_rx;
    }
}

impl Default for MsgCoprocessor {
    fn default() -> MsgCoprocessor {
        MsgCoprocessor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_command_then_payload() {
        let mut m = MsgCoprocessor::new();
        assert_eq!(m.core_write(MsgCommand::RadioTx.encode()).unwrap(), None);
        assert!(m.awaiting_tx_payload());
        assert_eq!(
            m.core_write(0xabcd).unwrap(),
            Some(EnvAction::TxWord(0xabcd))
        );
        assert!(!m.awaiting_tx_payload());
        assert_eq!(m.words_transmitted(), 1);
    }

    #[test]
    fn payload_can_be_any_word() {
        // Even a word that looks like a command is payload in TX state.
        let mut m = MsgCoprocessor::new();
        m.core_write(MsgCommand::RadioTx.encode()).unwrap();
        let cmd_looking = MsgCommand::RadioRxOn.encode();
        assert_eq!(
            m.core_write(cmd_looking).unwrap(),
            Some(EnvAction::TxWord(cmd_looking))
        );
        assert!(!m.rx_enabled());
    }

    #[test]
    fn rx_flow() {
        let mut m = MsgCoprocessor::new();
        // Receiver off: words are lost.
        assert_eq!(m.radio_rx_word(1), None);
        m.core_write(MsgCommand::RadioRxOn.encode()).unwrap();
        assert!(m.rx_enabled());
        assert_eq!(m.radio_rx_word(0x1111), Some(EventKind::RadioRx));
        assert_eq!(m.radio_rx_word(0x2222), Some(EventKind::RadioRx));
        assert_eq!(m.core_read(), Some(0x1111));
        assert_eq!(m.core_read(), Some(0x2222));
        assert_eq!(m.core_read(), None);
        assert_eq!(m.words_received(), 2);
    }

    #[test]
    fn sensor_flow() {
        let mut m = MsgCoprocessor::new();
        assert_eq!(
            m.core_write(MsgCommand::QuerySensor(3).encode()).unwrap(),
            Some(EnvAction::Query(3))
        );
        assert_eq!(m.sensor_reply(0x00ff), EventKind::SensorReply);
        assert_eq!(m.core_read(), Some(0x00ff));
        assert_eq!(m.sensor_irq(), EventKind::SensorIrq);
    }

    #[test]
    fn port_write() {
        let mut m = MsgCoprocessor::new();
        assert_eq!(
            m.core_write(MsgCommand::PortWrite(0x5a).encode()).unwrap(),
            Some(EnvAction::PortWrite(0x5a))
        );
        assert_eq!(m.port(), 0x5a);
    }

    #[test]
    fn bad_command_is_error() {
        let mut m = MsgCoprocessor::new();
        let err = m.core_write(0x0007).unwrap_err();
        assert_eq!(err.word, 0x0007);
        assert!(err.to_string().contains("r15"));
    }

    #[test]
    fn radio_off_disables_rx() {
        let mut m = MsgCoprocessor::new();
        m.core_write(MsgCommand::RadioRxOn.encode()).unwrap();
        assert_eq!(
            m.core_write(MsgCommand::RadioOff.encode()).unwrap(),
            Some(EnvAction::RadioMode(false))
        );
        assert_eq!(m.radio_rx_word(9), None);
    }

    #[test]
    fn rx_and_sensor_share_outgoing_fifo_in_order() {
        let mut m = MsgCoprocessor::new();
        m.core_write(MsgCommand::RadioRxOn.encode()).unwrap();
        m.radio_rx_word(1);
        m.sensor_reply(2);
        m.radio_rx_word(3);
        assert_eq!(m.outgoing_len(), 3);
        assert_eq!(
            (m.core_read(), m.core_read(), m.core_read()),
            (Some(1), Some(2), Some(3))
        );
    }
}
