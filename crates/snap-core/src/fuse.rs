//! Tier-1 translation: superinstruction fusion over the predecoded IMEM.
//!
//! The interpreter pays a fixed dispatch tax per dynamic instruction:
//! cache probe, 20-way opcode match, operand plumbing that must be
//! ready for `r15` coprocessor traffic, and a `StepOutcome` round-trip.
//! Most handler code is short runs of *closed* instructions — register
//! ALU ops, shifts, DMEM loads/stores — that cannot fault, cannot
//! produce an [`crate::EnvAction`], and cannot touch the event machinery.
//! This module rewrites such runs (plus an optional `jmp`/branch
//! terminator) into a [`FusedTrace`] of compact micro-ops that a single
//! dispatch replays back-to-back, the software analogue of threaded
//! code with a computed-goto loop.
//!
//! Fusion recognizes the hot multi-word idioms the paper's handlers
//! lean on — compare-and-branch pairs, `add`/`addc` carry chains,
//! load-op-store sequences, and counted-loop back-edges — and tags each
//! trace with its [`FuseKind`].
//!
//! Correctness contract (shared with tier 2 in [`crate::translate`]):
//! replaying a trace is **bit-identical** to interpreting its
//! constituent instructions. Per constituent, the trace replays the
//! exact accounting sequence of [`crate::Processor`]'s interpreter —
//! charge energy, advance time, attribute to the current handler, then
//! apply semantics, then poll the timer coprocessor at the advanced
//! time — so energy `f64` sums, timer-event stamps and queue contents
//! come out identical to the stepped loop. Instructions that *can*
//! fault, act on the environment, or end a handler (`r15` operands,
//! `done`, `halt`, calls, timer/event ops, `isw`/`ilw`, `rand`/`seed`)
//! are never fused; the trace hands control back to the interpreter at
//! those points. A trace only runs when the whole of it fits the
//! caller's step budget and time limit, so the per-instruction boundary
//! checks the interpreter would have performed are all guaranteed to
//! pass.

use crate::energy_acct::{EnergyAccountant, InstrCosts};
use crate::event_queue::EventQueue;
use crate::memory::MemBank;
use crate::profile::HandlerStats;
use crate::regfile::RegFile;
use crate::timer_cop::TimerCoprocessor;
use dess::{SimDuration, SimTime};
use snap_isa::{
    Addr, AluImmOp, AluOp, BranchCond, EventToken, Instruction, InstructionClass, Reg, ShiftOp,
    Word,
};

/// Maximum micro-ops in one tier-1 trace. Tier 2 compiles whole basic
/// blocks and has no cap.
pub(crate) const MAX_FUSED_OPS: usize = 6;

/// Maximum IMEM words a tier-1 trace can span: `MAX_FUSED_OPS` two-word
/// instructions plus a two-word branch/jump terminator. The decode
/// cache invalidates this span below an `isw` write.
pub(crate) const MAX_TRACE_WORDS: usize = 2 * MAX_FUSED_OPS + 2;

/// A closed micro-op: no faults, no environment actions, no `r15`, no
/// control flow, no event/timer/IMEM side effects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum UOp {
    /// Register ALU op (`rd = rd op rs`; `mov`/`not`/`neg` read `rs` only).
    AluReg { op: AluOp, rd: Reg, rs: Reg },
    /// Immediate ALU op (`rd = rd op imm`; `li` writes only).
    AluImm { op: AluImmOp, rd: Reg, imm: Word },
    /// Shift by register amount (low 4 bits).
    ShiftReg { op: ShiftOp, rd: Reg, rs: Reg },
    /// Shift by immediate amount.
    ShiftImm { op: ShiftOp, rd: Reg, amount: u8 },
    /// DMEM load.
    Load { rd: Reg, base: Reg, offset: Word },
    /// DMEM store.
    Store { rs: Reg, base: Reg, offset: Word },
    /// Bit-field set.
    Bfs { rd: Reg, rs: Reg, mask: Word },
    /// No operation (still charged).
    Nop,
}

/// How a fused trace transfers control when its micro-ops are done.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FusedTerm {
    /// Hand the PC to the next dispatch (fallthrough past the last
    /// micro-op, or an unfusable instruction the interpreter must run).
    Fall { to: Addr },
    /// An unconditional `jmp` folded into the trace.
    Jmp { costs: InstrCosts, to: Addr },
    /// A conditional branch folded into the trace.
    Branch {
        costs: InstrCosts,
        cond: BranchCond,
        ra: Reg,
        rb: Reg,
        taken: Addr,
        fall: Addr,
    },
}

/// The idiom a trace was recognized as (observability/tests; execution
/// is identical for all kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FuseKind {
    /// One compare/test op plus a conditional branch.
    CmpBranch,
    /// Contains an `addc`/`subc` multi-precision carry chain.
    CarryChain,
    /// Load and store with intervening ops.
    LoadOpStore,
    /// Ends in a backward conditional branch (counted-loop back-edge).
    LoopEdge,
    /// Any other fusable straight-line run.
    StraightLine,
}

/// A fused superinstruction: a straight-line run of micro-ops plus an
/// optional control-flow terminator, all charged per constituent
/// exactly as the interpreter would.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FusedTrace {
    /// The micro-ops with their precomputed per-execution costs.
    pub ops: Box<[(UOp, InstrCosts)]>,
    /// Control transfer after the micro-ops.
    pub term: FusedTerm,
    /// Dynamic instructions this trace replays (ops, plus one for a
    /// `Jmp`/`Branch` terminator).
    pub len: u64,
    /// Sum of the latencies of every replayed instruction *except the
    /// last*. The interpreter checks its time limit before each
    /// instruction; entering the trace with `now + prefix < limit`
    /// guarantees every one of those checks would have passed.
    pub prefix: SimDuration,
    /// Sum of the latencies of *every* replayed instruction. Latencies
    /// are integer picoseconds, so this equals the serial per-
    /// instruction sum exactly and lets a replay batch its time
    /// advance (see [`exec_trace_burst`]).
    pub total_latency: SimDuration,
    /// Sum of the occupancy cycles of every replayed instruction.
    pub total_cycles: u64,
    /// Dynamic instruction count per class, for batch-updating the
    /// per-class histogram (integer counts commute).
    pub counts: Box<[(InstructionClass, u32)]>,
    /// The recognized idiom.
    pub kind: FuseKind,
}

/// The fusion verdict for one entry address.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) enum FusedSlot {
    /// Not yet examined.
    #[default]
    Unknown,
    /// Examined; nothing worth fusing starts here.
    NoFuse,
    /// A fused trace starts here.
    Trace(Box<FusedTrace>),
}

/// Map an instruction to its closed micro-op, or `None` if it can
/// fault, act on the environment, or transfer control. Any `r15`
/// operand (message-port FIFO) disqualifies.
pub(crate) fn uop_of(ins: &Instruction) -> Option<UOp> {
    let ok = |r: Reg| !r.is_msg_port();
    match *ins {
        Instruction::AluReg { op, rd, rs } if ok(rd) && ok(rs) => Some(UOp::AluReg { op, rd, rs }),
        Instruction::AluImm { op, rd, imm } if ok(rd) => Some(UOp::AluImm { op, rd, imm }),
        Instruction::ShiftReg { op, rd, rs } if ok(rd) && ok(rs) => {
            Some(UOp::ShiftReg { op, rd, rs })
        }
        Instruction::ShiftImm { op, rd, amount } if ok(rd) => {
            Some(UOp::ShiftImm { op, rd, amount })
        }
        Instruction::Load { rd, base, offset } if ok(rd) && ok(base) => {
            Some(UOp::Load { rd, base, offset })
        }
        Instruction::Store { rs, base, offset } if ok(rs) && ok(base) => {
            Some(UOp::Store { rs, base, offset })
        }
        Instruction::Bfs { rd, rs, mask } if ok(rd) && ok(rs) => Some(UOp::Bfs { rd, rs, mask }),
        Instruction::Nop => Some(UOp::Nop),
        _ => None,
    }
}

/// Try to build a fused trace whose first instruction is at `at`.
/// `decode` supplies the predecoded instruction and costs at an
/// address, or `None` where no valid instruction starts. Runs of fewer
/// than two instructions are [`FusedSlot::NoFuse`] — the interpreter
/// handles them at no extra cost.
pub(crate) fn build_trace(
    at: Addr,
    decode: impl Fn(Addr) -> Option<(Instruction, InstrCosts)>,
) -> FusedSlot {
    match build_run(at, MAX_FUSED_OPS, |_| true, decode) {
        Some((trace, _end)) => FusedSlot::Trace(Box::new(trace)),
        None => FusedSlot::NoFuse,
    }
}

/// The shared trace builder behind both tiers: collect up to `max_ops`
/// closed micro-ops starting at `at`, folding in a trailing
/// branch/`jmp` terminator when one follows, but never crossing an
/// address where `allowed` is false (tier 2 stops at its proven
/// region's boundary; tier 1 allows everything). Returns the trace and
/// the end-exclusive word address of the run (the span
/// `[at, end)` is what an IMEM write must invalidate), or `None` for
/// runs of fewer than two instructions.
pub(crate) fn build_run(
    at: Addr,
    max_ops: usize,
    allowed: impl Fn(Addr) -> bool,
    decode: impl Fn(Addr) -> Option<(Instruction, InstrCosts)>,
) -> Option<(FusedTrace, Addr)> {
    let mut ops: Vec<(UOp, InstrCosts)> = Vec::new();
    let mut lats: Vec<SimDuration> = Vec::new();
    let mut cursor = at;
    let mut term: Option<FusedTerm> = None;
    loop {
        if ops.len() == max_ops || !allowed(cursor) {
            break;
        }
        let Some((ins, costs)) = decode(cursor) else {
            break;
        };
        if let Some(u) = uop_of(&ins) {
            lats.push(costs.latency);
            ops.push((u, costs));
            cursor = cursor.wrapping_add(ins.word_count() as Addr);
            continue;
        }
        match ins {
            Instruction::Branch {
                cond,
                ra,
                rb,
                target,
            } if !ra.is_msg_port() && (cond.is_unary() || !rb.is_msg_port()) => {
                lats.push(costs.latency);
                term = Some(FusedTerm::Branch {
                    costs,
                    cond,
                    ra,
                    rb,
                    taken: target,
                    fall: cursor.wrapping_add(ins.word_count() as Addr),
                });
                cursor = cursor.wrapping_add(ins.word_count() as Addr);
            }
            Instruction::Jmp { target } => {
                lats.push(costs.latency);
                term = Some(FusedTerm::Jmp { costs, to: target });
                cursor = cursor.wrapping_add(ins.word_count() as Addr);
            }
            _ => {}
        }
        break;
    }
    let len = lats.len() as u64;
    if len < 2 {
        return None;
    }
    let prefix = lats[..lats.len() - 1]
        .iter()
        .fold(SimDuration::ZERO, |acc, &l| acc + l);
    let total_latency = prefix + lats[lats.len() - 1];
    let term = term.unwrap_or(FusedTerm::Fall { to: cursor });
    let mut total_cycles = 0u64;
    let mut counts: Vec<(InstructionClass, u32)> = Vec::new();
    {
        let mut note = |c: &InstrCosts| {
            total_cycles += c.cycles;
            match counts.iter_mut().find(|(class, _)| *class == c.class) {
                Some((_, n)) => *n += 1,
                None => counts.push((c.class, 1)),
            }
        };
        for (_, c) in &ops {
            note(c);
        }
        match &term {
            FusedTerm::Jmp { costs, .. } | FusedTerm::Branch { costs, .. } => note(costs),
            FusedTerm::Fall { .. } => {}
        }
    }
    let kind = classify(&ops, &term, at);
    Some((
        FusedTrace {
            ops: ops.into_boxed_slice(),
            term,
            len,
            prefix,
            total_latency,
            total_cycles,
            counts: counts.into_boxed_slice(),
            kind,
        },
        cursor,
    ))
}

fn classify(ops: &[(UOp, InstrCosts)], term: &FusedTerm, entry: Addr) -> FuseKind {
    let carry = ops.iter().any(|(u, _)| {
        matches!(
            u,
            UOp::AluReg {
                op: AluOp::Addc | AluOp::Subc,
                ..
            }
        )
    });
    if carry {
        return FuseKind::CarryChain;
    }
    if let FusedTerm::Branch { taken, .. } = term {
        if *taken <= entry {
            return FuseKind::LoopEdge;
        }
        if ops.len() == 1 {
            return FuseKind::CmpBranch;
        }
    }
    let loads = ops.iter().any(|(u, _)| matches!(u, UOp::Load { .. }));
    let stores = ops.iter().any(|(u, _)| matches!(u, UOp::Store { .. }));
    if loads && stores {
        return FuseKind::LoadOpStore;
    }
    FuseKind::StraightLine
}

/// The mutable processor fields a trace replay touches. Split out of
/// [`crate::Processor`] so the trace can stay borrowed from the decode
/// cache (or AOT image) while execution mutates the rest of the core.
/// `bucket` is the profile bucket for the running handler — the current
/// event cannot change inside a trace, so the dispatcher resolves it
/// once per replay instead of once per instruction.
pub(crate) struct ExecCtx<'a> {
    pub regs: &'a mut RegFile,
    pub dmem: &'a mut MemBank,
    pub acct: &'a mut EnergyAccountant,
    pub bucket: &'a mut HandlerStats,
    pub timer: &'a mut TimerCoprocessor,
    pub event_queue: &'a mut EventQueue,
    pub now: &'a mut SimTime,
    pub pc: &'a mut Addr,
}

/// Replay a fused trace, looping in place while its own back-edge
/// re-enters it. The caller has verified one whole replay fits the step
/// budget and time limit; each further iteration runs only after the
/// same check (`executed + len <= budget_left` and
/// `now + prefix < limit`) passes again — exactly the condition the
/// dispatcher would re-establish — so every replay is infallible and
/// bit-identical to interpreting the constituents. Returns the number
/// of dynamic instructions executed (a multiple of `trace.len`).
///
/// The in-place loop is what makes counted loops cheap: the dispatch
/// tax (cache probe, slot match, context set-up) is paid once per
/// *loop*, not once per iteration.
pub(crate) fn exec_trace_burst(
    trace: &FusedTrace,
    entry: Addr,
    budget_left: u64,
    limit: SimTime,
    cx: &mut ExecCtx<'_>,
) -> u64 {
    let mut executed = 0u64;
    // Closed micro-ops cannot schedule or cancel timers, so the next
    // expiry only moves when a poll fires; cache it and probe with one
    // compare instead of scanning the registers per instruction
    // (`any_due(now)` is exactly `next_expiry() <= now`). With no
    // timer active at entry none can appear mid-loop, so that case
    // runs a poll-free loop with no cold calls at all.
    let mut next_due = cx.timer.next_expiry();
    if next_due.is_none() {
        return run_hot(trace, entry, budget_left, limit, cx);
    }
    loop {
        match next_due {
            // A timer could expire at or before the trace's final
            // instruction boundary: replay with the interpreter's
            // per-instruction poll so tokens are stamped at the exact
            // intermediate times.
            Some(at) if at <= *cx.now + trace.total_latency => {
                replay_exact(trace, cx, &mut next_due);
            }
            // No expiry can land inside the window, so no intermediate
            // `now` is observable: f64 sums stay serial per
            // instruction, integer counters batch per replay.
            _ => replay_fast(trace, cx),
        }
        executed += trace.len;
        if *cx.pc != entry || executed + trace.len > budget_left || *cx.now + trace.prefix >= limit
        {
            return executed;
        }
    }
}

/// The poll-free back-edge loop: no timer register is active, so none
/// can fire or be scheduled inside closed micro-ops, and nothing can
/// observe intermediate state. The f64 accumulators are held in locals
/// (registers) for the whole loop — the identical value sequence in
/// the identical order, written back once — and every integer counter
/// collapses to a single `reps ×` update at exit (each iteration adds
/// the same integer totals, and integer addition is associative).
fn run_hot(
    trace: &FusedTrace,
    entry: Addr,
    budget_left: u64,
    limit: SimTime,
    cx: &mut ExecCtx<'_>,
) -> u64 {
    let mut executed = 0u64;
    let mut reps = 0u64;
    let mut now = *cx.now;
    // Assigned by every terminator arm before the first read.
    let mut pc;
    let mut bucket_energy = cx.bucket.energy;
    let (components, per_class, total_ref) = cx.acct.hot_parts();
    let comps = components.as_array_mut();
    let mut total = *total_ref;
    // The f64 half of `charge`, on the local accumulators, in the
    // interpreter's exact order: component merge, per-class energy,
    // running total, handler attribution of the post-sum delta.
    macro_rules! charge_local {
        ($costs:expr) => {{
            let costs: &InstrCosts = $costs;
            for (into, from) in comps.iter_mut().zip(costs.components.as_array()) {
                *into += *from;
            }
            per_class[costs.class as usize].energy += costs.energy;
            let before = total;
            total += costs.energy;
            bucket_energy += total - before;
        }};
    }
    loop {
        for (op, costs) in trace.ops.iter() {
            charge_local!(costs);
            exec_uop(op, cx.regs, cx.dmem);
        }
        match &trace.term {
            FusedTerm::Fall { to } => pc = *to,
            FusedTerm::Jmp { costs, to } => {
                charge_local!(costs);
                pc = *to;
            }
            FusedTerm::Branch {
                costs,
                cond,
                ra,
                rb,
                taken,
                fall,
            } => {
                charge_local!(costs);
                let a = cx.regs.read(*ra);
                let b = if cond.is_unary() {
                    0
                } else {
                    cx.regs.read(*rb)
                };
                pc = if cond.eval(a, b) { *taken } else { *fall };
            }
        }
        now += trace.total_latency;
        executed += trace.len;
        reps += 1;
        if pc != entry || executed + trace.len > budget_left || now + trace.prefix >= limit {
            break;
        }
    }
    *total_ref = total;
    *cx.now = now;
    *cx.pc = pc;
    cx.bucket.energy = bucket_energy;
    cx.acct.record_batch(
        &trace.counts,
        trace.total_latency,
        trace.total_cycles,
        trace.len,
        reps,
    );
    cx.bucket.instructions += trace.len * reps;
    cx.bucket.busy_time += trace.total_latency * reps;
    executed
}

/// Replay with per-instruction accounting and timer polls — the
/// verbatim interpreter sequence. Used whenever a timer expiry could
/// fall inside the trace.
#[cold]
#[inline(never)]
fn replay_exact(trace: &FusedTrace, cx: &mut ExecCtx<'_>, next_due: &mut Option<SimTime>) {
    for (op, costs) in trace.ops.iter() {
        charge(cx, costs);
        exec_uop(op, cx.regs, cx.dmem);
        fire_due(cx, next_due);
    }
    match &trace.term {
        FusedTerm::Fall { to } => *cx.pc = *to,
        FusedTerm::Jmp { costs, to } => {
            charge(cx, costs);
            *cx.pc = *to;
            fire_due(cx, next_due);
        }
        FusedTerm::Branch {
            costs,
            cond,
            ra,
            rb,
            taken,
            fall,
        } => {
            charge(cx, costs);
            let a = cx.regs.read(*ra);
            let b = if cond.is_unary() {
                0
            } else {
                cx.regs.read(*rb)
            };
            *cx.pc = if cond.eval(a, b) { *taken } else { *fall };
            fire_due(cx, next_due);
        }
    }
}

/// Replay with the f64 energy sums serial per instruction (their
/// order affects rounding) and every integer counter — time, busy
/// time, instruction/cycle/class counts — batched once per replay.
/// Integer sums are associative, so the batched totals equal the
/// serial ones bit-for-bit; the caller has established that no timer
/// expiry falls inside the window, so no intermediate `now` or counter
/// value is observable.
#[inline(always)]
fn replay_fast(trace: &FusedTrace, cx: &mut ExecCtx<'_>) {
    for (op, costs) in trace.ops.iter() {
        charge_energy(cx, costs);
        exec_uop(op, cx.regs, cx.dmem);
    }
    match &trace.term {
        FusedTerm::Fall { to } => *cx.pc = *to,
        FusedTerm::Jmp { costs, to } => {
            charge_energy(cx, costs);
            *cx.pc = *to;
        }
        FusedTerm::Branch {
            costs,
            cond,
            ra,
            rb,
            taken,
            fall,
        } => {
            charge_energy(cx, costs);
            let a = cx.regs.read(*ra);
            let b = if cond.is_unary() {
                0
            } else {
                cx.regs.read(*rb)
            };
            *cx.pc = if cond.eval(a, b) { *taken } else { *fall };
        }
    }
    cx.acct.record_batch(
        &trace.counts,
        trace.total_latency,
        trace.total_cycles,
        trace.len,
        1,
    );
    *cx.now += trace.total_latency;
    cx.bucket.instructions += trace.len;
    cx.bucket.busy_time += trace.total_latency;
}

/// The interpreter's per-instruction accounting sequence, verbatim:
/// charge energy, advance time, attribute the (post-sum) energy delta
/// and latency to the running handler. `f64` addition order is
/// preserved so totals match bit-for-bit.
#[inline]
fn charge(cx: &mut ExecCtx<'_>, costs: &InstrCosts) {
    let (latency, delta) = cx.acct.record_costs_delta(costs);
    *cx.now += latency;
    cx.bucket.instructions += 1;
    cx.bucket.energy += delta;
    cx.bucket.busy_time += latency;
}

/// The f64 half of [`charge`] alone, in the same order: component
/// merge, per-class energy, running total, handler attribution. The
/// integer half is batched by [`replay_fast`]'s caller-visible-free
/// window.
#[inline]
fn charge_energy(cx: &mut ExecCtx<'_>, costs: &InstrCosts) {
    let delta = cx.acct.record_energy(costs);
    cx.bucket.energy += delta;
}

/// The interpreter's post-instruction timer poll, verbatim in effect:
/// probe the cached next expiry (equivalent to `any_due`), then enqueue
/// expirations stamped at the current (post-instruction) time and
/// refresh the cache.
#[inline]
fn fire_due(cx: &mut ExecCtx<'_>, next_due: &mut Option<SimTime>) {
    if next_due.is_some_and(|at| at <= *cx.now) {
        for ev in cx.timer.poll(*cx.now) {
            cx.event_queue.push_at(EventToken::new(ev), cx.now.as_ps());
        }
        *next_due = cx.timer.next_expiry();
    }
}

/// Execute one closed micro-op. Semantics are copied line-for-line from
/// the interpreter arms in [`crate::Processor`] (which call the same
/// [`alu_binary`]/[`shift`] helpers), minus the `r15` plumbing that
/// fusion excludes.
#[inline]
pub(crate) fn exec_uop(op: &UOp, regs: &mut RegFile, dmem: &mut MemBank) {
    match *op {
        UOp::AluReg { op, rd, rs } => {
            let b = regs.read(rs);
            let result = match op {
                AluOp::Mov => b,
                AluOp::Not => !b,
                AluOp::Neg => b.wrapping_neg(),
                _ => {
                    let a = regs.read(rd);
                    alu_binary(regs, op, a, b)
                }
            };
            regs.write(rd, result);
        }
        UOp::AluImm { op, rd, imm } => {
            let result = match op {
                AluImmOp::Li => imm,
                _ => {
                    let a = regs.read(rd);
                    match op {
                        AluImmOp::Addi => alu_binary(regs, AluOp::Add, a, imm),
                        AluImmOp::Subi => alu_binary(regs, AluOp::Sub, a, imm),
                        AluImmOp::Andi => a & imm,
                        AluImmOp::Ori => a | imm,
                        AluImmOp::Xori => a ^ imm,
                        AluImmOp::Slti => ((a as i16) < (imm as i16)) as Word,
                        AluImmOp::Sltiu => (a < imm) as Word,
                        AluImmOp::Li => unreachable!(),
                    }
                }
            };
            regs.write(rd, result);
        }
        UOp::ShiftReg { op, rd, rs } => {
            let amount = (regs.read(rs) & 0xf) as u32;
            let a = regs.read(rd);
            regs.write(rd, shift(op, a, amount));
        }
        UOp::ShiftImm { op, rd, amount } => {
            let a = regs.read(rd);
            regs.write(rd, shift(op, a, amount as u32));
        }
        UOp::Load { rd, base, offset } => {
            let addr = regs.read(base).wrapping_add(offset);
            let value = dmem.read(addr);
            regs.write(rd, value);
        }
        UOp::Store { rs, base, offset } => {
            let addr = regs.read(base).wrapping_add(offset);
            let value = regs.read(rs);
            dmem.write(addr, value);
        }
        UOp::Bfs { rd, rs, mask } => {
            let field = regs.read(rs);
            let a = regs.read(rd);
            regs.write(rd, (a & !mask) | (field & mask));
        }
        UOp::Nop => {}
    }
}

/// Binary ALU op with carry-flag effects — the single implementation
/// shared by the interpreter and both translation tiers.
#[inline]
pub(crate) fn alu_binary(regs: &mut RegFile, op: AluOp, a: Word, b: Word) -> Word {
    match op {
        AluOp::Add => {
            let (r, c) = a.overflowing_add(b);
            regs.set_carry(c);
            r
        }
        AluOp::Addc => {
            let sum = a as u32 + b as u32 + regs.carry() as u32;
            regs.set_carry(sum > 0xffff);
            sum as Word
        }
        AluOp::Sub => {
            let (r, borrow) = a.overflowing_sub(b);
            regs.set_carry(borrow);
            r
        }
        AluOp::Subc => {
            let diff = a as i32 - b as i32 - regs.carry() as i32;
            regs.set_carry(diff < 0);
            diff as Word
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Slt => ((a as i16) < (b as i16)) as Word,
        AluOp::Sltu => (a < b) as Word,
        AluOp::Mov | AluOp::Not | AluOp::Neg => unreachable!("unary ops handled by caller"),
    }
}

/// Shift helper shared by the interpreter and both translation tiers.
#[inline]
pub(crate) fn shift(op: ShiftOp, a: Word, amount: u32) -> Word {
    match op {
        ShiftOp::Sll => a << amount,
        ShiftOp::Srl => a >> amount,
        ShiftOp::Sra => ((a as i16) >> amount) as Word,
        ShiftOp::Rol => a.rotate_left(amount),
        ShiftOp::Ror => a.rotate_right(amount),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_energy::OperatingPoint;

    fn costs(ins: &Instruction) -> InstrCosts {
        EnergyAccountant::new(OperatingPoint::V1_8).cost_of(ins)
    }

    fn decoder(prog: &[Instruction]) -> impl Fn(Addr) -> Option<(Instruction, InstrCosts)> + '_ {
        // Lay the program out from address 0 like the loader would.
        let mut map = std::collections::BTreeMap::new();
        let mut at: Addr = 0;
        for ins in prog {
            map.insert(at, (*ins, costs(ins)));
            at += ins.word_count() as Addr;
        }
        move |a| map.get(&a).copied()
    }

    fn li(rd: Reg, imm: Word) -> Instruction {
        Instruction::AluImm {
            op: AluImmOp::Li,
            rd,
            imm,
        }
    }

    #[test]
    fn loop_body_fuses_to_loop_edge() {
        // add r2, r1; subi r1, 1; bnez r1, 0 — the counted-loop idiom.
        let prog = [
            Instruction::AluReg {
                op: AluOp::Add,
                rd: Reg::R2,
                rs: Reg::R1,
            },
            Instruction::AluImm {
                op: AluImmOp::Subi,
                rd: Reg::R1,
                imm: 1,
            },
            Instruction::Branch {
                cond: BranchCond::Nez,
                ra: Reg::R1,
                rb: Reg::R0,
                target: 0,
            },
        ];
        let FusedSlot::Trace(t) = build_trace(0, decoder(&prog)) else {
            panic!("expected a trace");
        };
        assert_eq!(t.len, 3);
        assert_eq!(t.ops.len(), 2);
        assert_eq!(t.kind, FuseKind::LoopEdge);
        assert!(matches!(
            t.term,
            FusedTerm::Branch {
                taken: 0,
                fall: 5,
                ..
            }
        ));
        // prefix covers everything but the branch itself.
        let expect = t.ops[0].1.latency + t.ops[1].1.latency;
        assert_eq!(t.prefix, expect);
    }

    #[test]
    fn single_instruction_does_not_fuse() {
        let prog = [Instruction::Jmp { target: 0 }];
        assert_eq!(build_trace(0, decoder(&prog)), FusedSlot::NoFuse);
        let prog = [li(Reg::R1, 1), Instruction::Done];
        // li followed by done: only one fusable instruction.
        assert_eq!(build_trace(0, decoder(&prog)), FusedSlot::NoFuse);
    }

    #[test]
    fn r15_operands_disqualify() {
        let prog = [li(Reg::R15, 0x4001), li(Reg::R1, 1)];
        // First instruction writes the message port: can't fuse from 0.
        assert_eq!(build_trace(0, decoder(&prog)), FusedSlot::NoFuse);
    }

    #[test]
    fn carry_chain_is_recognized() {
        let prog = [
            Instruction::AluReg {
                op: AluOp::Add,
                rd: Reg::R1,
                rs: Reg::R2,
            },
            Instruction::AluReg {
                op: AluOp::Addc,
                rd: Reg::R3,
                rs: Reg::R4,
            },
            Instruction::Halt,
        ];
        let FusedSlot::Trace(t) = build_trace(0, decoder(&prog)) else {
            panic!("expected a trace");
        };
        assert_eq!(t.kind, FuseKind::CarryChain);
        assert!(matches!(t.term, FusedTerm::Fall { to: 2 }));
    }

    #[test]
    fn cmp_branch_pair_is_recognized() {
        let prog = [
            Instruction::AluReg {
                op: AluOp::Slt,
                rd: Reg::R1,
                rs: Reg::R2,
            },
            Instruction::Branch {
                cond: BranchCond::Nez,
                ra: Reg::R1,
                rb: Reg::R0,
                target: 40,
            },
        ];
        let FusedSlot::Trace(t) = build_trace(0, decoder(&prog)) else {
            panic!("expected a trace");
        };
        assert_eq!(t.kind, FuseKind::CmpBranch);
        assert_eq!(t.len, 2);
    }

    #[test]
    fn load_op_store_is_recognized() {
        let prog = [
            Instruction::Load {
                rd: Reg::R1,
                base: Reg::R2,
                offset: 0,
            },
            Instruction::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::R1,
                imm: 1,
            },
            Instruction::Store {
                rs: Reg::R1,
                base: Reg::R2,
                offset: 0,
            },
            Instruction::Done,
        ];
        let FusedSlot::Trace(t) = build_trace(0, decoder(&prog)) else {
            panic!("expected a trace");
        };
        assert_eq!(t.kind, FuseKind::LoadOpStore);
        assert_eq!(t.len, 3);
    }

    #[test]
    fn op_cap_bounds_trace_span() {
        let prog: Vec<Instruction> = (0..10).map(|i| li(Reg::R1, i)).collect();
        let FusedSlot::Trace(t) = build_trace(0, decoder(&prog)) else {
            panic!("expected a trace");
        };
        assert_eq!(t.ops.len(), MAX_FUSED_OPS);
        // Fall lands on the first unfused li (two words each).
        assert!(matches!(t.term, FusedTerm::Fall { to } if to == 2 * MAX_FUSED_OPS as Addr));
        assert!(2 * MAX_FUSED_OPS <= MAX_TRACE_WORDS);
    }
}
