//! The SNAP/LE processor: boot, event dispatch, sleep, and execution.
//!
//! The paper's execution model (§3.1): the core boots at address 0 and
//! runs until the first `done`. From then on it alternates between
//! *asleep* (no switching activity, waiting on the event queue) and
//! *awake* (running one handler to its `done`). Waking costs eighteen
//! gate delays. Handlers are atomic: nothing preempts them; new events
//! wait in the queue.
//!
//! Simulated time advances by the voltage-scaled latency of each
//! executed instruction; energy accumulates per instruction through
//! [`crate::EnergyAccountant`]. The environment (crate `snap-node`)
//! delivers radio words, sensor data and time passing; the core hands
//! back [`EnvAction`]s for its radio/sensor/port commands.

use crate::decode_cache::{DecodeCache, Predecoded};
use crate::energy_acct::EnergyAccountant;
use crate::event_queue::EventQueue;
use crate::fuse::{self, ExecCtx, FusedSlot};
use crate::memory::MemBank;
use crate::msg_cop::{EnvAction, MsgCoprocessor};
use crate::profile::HandlerProfile;
use crate::regfile::RegFile;
use crate::sampler::HandlerSampler;
use crate::timer_cop::TimerCoprocessor;
use crate::translate::{AotImage, AotRegion};
use dess::{Lfsr16, SimDuration, SimTime};
use snap_energy::model::BusModel;
use snap_energy::{Energy, OperatingPoint};
use snap_isa::{
    Addr, AluImmOp, AluOp, DecodeError, EventKind, EventToken, Instruction, Reg, Word,
    EVENT_TABLE_ENTRIES, MEM_WORDS,
};

/// Which translation tier [`Processor::run_burst`] executes with.
///
/// Every engine produces **bit-identical** results — registers,
/// memories, event order, traces and energy `f64` bits — the tiers only
/// change how fast the host simulates them (snap-smith's differential
/// driver holds them to that). [`Processor::step`] always interprets,
/// whatever the engine; engine selection only affects the batched
/// burst path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Pure interpreter: one decode/dispatch per dynamic instruction
    /// (the reference semantics).
    Interp,
    /// Tier 1: superinstruction fusion over the predecode cache — hot
    /// multi-word idioms replay as threaded micro-op traces.
    #[default]
    Fused,
    /// Tier 2: fusion plus AOT-compiled basic blocks for regions
    /// installed via [`Processor::install_aot`] (snap-lint-proven
    /// handlers); falls back to tier 1, then the interpreter.
    Aot,
}

/// Configuration of a [`Processor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Supply-voltage operating point (default: 1.8 V nominal).
    pub operating_point: OperatingPoint,
    /// Event-queue depth in tokens (default: 8).
    pub event_queue_capacity: usize,
    /// Timer-register decrement period (default: 1 µs).
    pub timer_tick: SimDuration,
    /// Power-on seed of the `rand` LFSR.
    pub lfsr_seed: u16,
    /// Bus organization (flat only for the `ablation_bus` bench).
    pub bus: BusModel,
    /// Cache decoded instructions and their model costs per IMEM
    /// address (default: on). Results are bit-identical either way;
    /// `false` forces the straight-line path (reference for tests) and
    /// disables translation (both tiers build on the predecode cache).
    pub predecode: bool,
    /// Translation tier for batched execution (default:
    /// [`Engine::Fused`]). Results are bit-identical across engines.
    pub engine: Engine,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            operating_point: OperatingPoint::V1_8,
            event_queue_capacity: crate::event_queue::DEFAULT_CAPACITY,
            timer_tick: SimDuration::from_us(1),
            lfsr_seed: 0xACE1,
            bus: BusModel::default(),
            predecode: true,
            engine: Engine::Fused,
        }
    }
}

impl CoreConfig {
    /// The default configuration at a specific operating point.
    pub fn at(point: OperatingPoint) -> CoreConfig {
        CoreConfig {
            operating_point: point,
            ..CoreConfig::default()
        }
    }
}

/// The core's activity state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Executing boot code or a handler.
    Running,
    /// All switching activity stopped; waiting on the event queue.
    Asleep,
    /// Stopped by the simulator-only `halt` instruction.
    Halted,
}

/// What one [`Processor::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction was executed; it may have produced an environment
    /// action.
    Executed {
        /// Action for the node environment, if the instruction touched
        /// the message coprocessor's command side.
        action: Option<EnvAction>,
        /// The executed instruction (debug/trace clients).
        ins: Instruction,
        /// The word address it was fetched from.
        at: Addr,
    },
    /// The core woke up and dispatched the handler for the head event
    /// token (no instruction executed yet).
    Woke {
        /// The event that woke the core.
        event: EventKind,
    },
    /// The core is asleep with an empty event queue; nothing happened.
    Asleep,
    /// The core has executed `halt`.
    Halted,
}

/// What one [`Processor::run_burst`] call did: how many instructions
/// executed and the environment action (if any) that ended the burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Burst {
    /// Dynamic instructions executed in this burst.
    pub steps: u64,
    /// The environment action that terminated the burst, if one was
    /// produced (the environment must apply it before execution
    /// resumes — e.g. a radio TX must hit the channel).
    pub action: Option<EnvAction>,
}

/// Execution errors. These indicate handler/program bugs (or a
/// malformed image), not recoverable conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepError {
    /// An instruction word failed to decode.
    Decode {
        /// The decode failure.
        error: DecodeError,
        /// The word address it was fetched from.
        at: Addr,
    },
    /// A timer instruction named a timer register other than 0–2.
    BadTimer {
        /// The register value used as the timer number.
        number: u16,
        /// The word address of the instruction.
        at: Addr,
    },
    /// A word written to `r15` was not a valid command (and the
    /// coprocessor was not expecting transmit payload).
    BadMsgCommand {
        /// The offending word.
        word: Word,
        /// The word address of the instruction.
        at: Addr,
    },
    /// An instruction read `r15` while the outgoing FIFO was empty. In
    /// hardware the core would stall; handler code driven by the event
    /// queue should never do this, so the simulator flags it.
    MsgPortEmpty {
        /// The word address of the instruction.
        at: Addr,
    },
    /// `run_to_halt`/`run_until_idle` exceeded its step budget.
    StepLimit {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// The core is asleep with no pending events and no active timers;
    /// it would sleep forever.
    Stuck {
        /// The simulated time at which progress stopped.
        at: SimTime,
    },
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::Decode { error, at } => write!(f, "at {at:#05x}: {error}"),
            StepError::BadTimer { number, at } => {
                write!(
                    f,
                    "at {at:#05x}: invalid timer register {number} (valid: 0-2)"
                )
            }
            StepError::BadMsgCommand { word, at } => {
                write!(f, "at {at:#05x}: invalid message command {word:#06x}")
            }
            StepError::MsgPortEmpty { at } => {
                write!(f, "at {at:#05x}: read of r15 with empty outgoing FIFO")
            }
            StepError::StepLimit { limit } => write!(f, "exceeded step budget of {limit}"),
            StepError::Stuck { at } => {
                write!(
                    f,
                    "asleep forever at {at}: no pending events or active timers"
                )
            }
        }
    }
}

impl std::error::Error for StepError {}

/// A snapshot of the core's cumulative statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreStats {
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Cycles: IMEM words fetched + data-memory accesses (see
    /// [`crate::EnergyAccountant::cycles`]).
    pub cycles: u64,
    /// Total instruction energy.
    pub energy: Energy,
    /// Time spent executing instructions (including wake-ups).
    pub busy_time: SimDuration,
    /// Time spent asleep.
    pub sleep_time: SimDuration,
    /// Idle→active transitions.
    pub wakeups: u64,
    /// Handlers dispatched from the event queue.
    pub handlers_dispatched: u64,
    /// Event tokens dropped at a full queue.
    pub events_dropped: u64,
    /// Event tokens successfully enqueued.
    pub events_inserted: u64,
    /// Current simulated time.
    pub now: SimTime,
}

impl CoreStats {
    /// Average energy per instruction (zero when nothing executed).
    pub fn energy_per_instruction(&self) -> Energy {
        if self.instructions == 0 {
            Energy::ZERO
        } else {
            self.energy / self.instructions as f64
        }
    }

    /// Throughput over busy time, in MIPS (zero when idle).
    pub fn mips(&self) -> f64 {
        if self.busy_time.is_zero() {
            0.0
        } else {
            self.instructions as f64 / self.busy_time.as_us()
        }
    }

    /// The change from an earlier snapshot — used to measure one handler.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually earlier (counter-wise).
    pub fn since(&self, earlier: &CoreStats) -> CoreStats {
        CoreStats {
            instructions: self.instructions - earlier.instructions,
            cycles: self.cycles - earlier.cycles,
            energy: self.energy - earlier.energy,
            busy_time: self.busy_time - earlier.busy_time,
            sleep_time: self.sleep_time - earlier.sleep_time,
            wakeups: self.wakeups - earlier.wakeups,
            handlers_dispatched: self.handlers_dispatched - earlier.handlers_dispatched,
            events_dropped: self.events_dropped - earlier.events_dropped,
            events_inserted: self.events_inserted - earlier.events_inserted,
            now: self.now,
        }
    }
}

/// The SNAP/LE processor simulator.
///
/// Fields are `pub(crate)` for one consumer only: `crate::snapshot`,
/// which exports and restores the full core state. Everything else goes
/// through the accessors.
#[derive(Debug, Clone)]
pub struct Processor {
    pub(crate) config: CoreConfig,
    pub(crate) regs: RegFile,
    pub(crate) imem: MemBank,
    pub(crate) decode: DecodeCache,
    /// Tier-2 compiled basic blocks (empty unless installed). Clones
    /// share the compiled image Arc-CoW style, like the decode cache.
    pub(crate) aot: AotImage,
    pub(crate) dmem: MemBank,
    pub(crate) event_queue: EventQueue,
    pub(crate) timer: TimerCoprocessor,
    pub(crate) msg: MsgCoprocessor,
    pub(crate) lfsr: Lfsr16,
    pub(crate) handler_table: [Addr; EVENT_TABLE_ENTRIES],
    pub(crate) pc: Addr,
    pub(crate) state: CoreState,
    pub(crate) now: SimTime,
    pub(crate) acct: EnergyAccountant,
    pub(crate) profile: HandlerProfile,
    /// Per-dispatch telemetry; `None` (the default) is the zero-cost
    /// path — execution is bit-identical either way.
    pub(crate) sampler: Option<HandlerSampler>,
    pub(crate) current_event: Option<EventKind>,
    pub(crate) sleep_time: SimDuration,
    pub(crate) wakeup_time: SimDuration,
    pub(crate) wakeups: u64,
    pub(crate) handlers_dispatched: u64,
    /// `swev` instructions executed (attempted software posts).
    pub(crate) sw_posted: u64,
    /// `swev` posts the event queue accepted (not dropped).
    pub(crate) sw_enqueued: u64,
}

impl Processor {
    /// A processor in its power-on state: PC 0, running boot code.
    pub fn new(config: CoreConfig) -> Processor {
        Processor {
            regs: RegFile::new(),
            imem: MemBank::new("imem"),
            decode: DecodeCache::new(),
            aot: AotImage::default(),
            dmem: MemBank::new("dmem"),
            event_queue: EventQueue::with_capacity(config.event_queue_capacity),
            timer: TimerCoprocessor::new(config.timer_tick),
            msg: MsgCoprocessor::new(),
            lfsr: Lfsr16::new(config.lfsr_seed),
            handler_table: [0; EVENT_TABLE_ENTRIES],
            pc: 0,
            state: CoreState::Running,
            now: SimTime::ZERO,
            acct: EnergyAccountant::with_bus(config.operating_point, config.bus),
            profile: HandlerProfile::new(),
            sampler: None,
            current_event: None,
            sleep_time: SimDuration::ZERO,
            wakeup_time: SimDuration::ZERO,
            wakeups: 0,
            handlers_dispatched: 0,
            sw_posted: 0,
            sw_enqueued: 0,
            config,
        }
    }

    // ---- image loading ----

    /// Encode `program` and load it into IMEM starting at address 0.
    ///
    /// # Errors
    ///
    /// Returns an error when the encoded program exceeds IMEM.
    pub fn load_program(
        &mut self,
        program: &[Instruction],
    ) -> Result<(), crate::memory::LoadError> {
        let words: Vec<Word> = program.iter().flat_map(|i| i.encode()).collect();
        self.imem.load(0, &words)?;
        self.decode.invalidate_all();
        self.aot = AotImage::default();
        Ok(())
    }

    /// Load a raw word image into IMEM at `base`.
    ///
    /// # Errors
    ///
    /// Returns an error when the image exceeds IMEM.
    pub fn load_image(
        &mut self,
        base: Addr,
        image: &[Word],
    ) -> Result<(), crate::memory::LoadError> {
        self.imem.load(base, image)?;
        self.decode.invalidate_all();
        self.aot = AotImage::default();
        Ok(())
    }

    /// Compile tier-2 AOT blocks for `regions` — handler CFGs a static
    /// analysis (snap-lint) has proven done-terminating — and install
    /// them. Replaces any previously installed image; loading a new
    /// program or image drops it (install after loading). Only
    /// consulted when the engine is [`Engine::Aot`].
    ///
    /// Execution remains bit-identical to the interpreter: blocks only
    /// cover closed instructions inside the given regions, and any
    /// unproven edge falls back to tier 1 / the interpreter. `isw`
    /// stores into a compiled region drop the affected blocks.
    pub fn install_aot(&mut self, regions: &[AotRegion]) {
        let image = AotImage::compile(regions, |a| {
            self.decode_at(a).ok().map(|p| (p.ins, p.costs))
        });
        self.aot = image;
    }

    /// Number of tier-2 compiled blocks currently installed.
    pub fn aot_block_count(&self) -> usize {
        self.aot.block_count()
    }

    /// Load a raw word image into DMEM at `base`.
    ///
    /// # Errors
    ///
    /// Returns an error when the image exceeds DMEM.
    pub fn load_data(
        &mut self,
        base: Addr,
        image: &[Word],
    ) -> Result<(), crate::memory::LoadError> {
        self.dmem.load(base, image)
    }

    // ---- accessors ----

    /// The register file.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Mutable register file (for test fixtures).
    pub fn regs_mut(&mut self) -> &mut RegFile {
        &mut self.regs
    }

    /// The data memory.
    pub fn dmem(&self) -> &MemBank {
        &self.dmem
    }

    /// The instruction memory.
    pub fn imem(&self) -> &MemBank {
        &self.imem
    }

    /// The current activity state.
    pub fn state(&self) -> CoreState {
        self.state
    }

    /// The current program counter (word address).
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// The energy accountant (per-class and per-component detail).
    pub fn acct(&self) -> &EnergyAccountant {
        &self.acct
    }

    /// The per-handler profile (instructions/energy per event kind).
    pub fn profile(&self) -> &HandlerProfile {
        &self.profile
    }

    /// Start per-dispatch sampling (telemetry), retaining up to `cap`
    /// handler samples and recording event-queue enqueue times so each
    /// sample carries its token's queue wait.
    ///
    /// Observation-only: execution, timing and energy are bit-identical
    /// with sampling on or off. Enable it before running — tokens
    /// already queued report a zero wait.
    pub fn enable_sampling(&mut self, cap: usize) {
        if self.sampler.is_none() {
            self.sampler = Some(HandlerSampler::new(cap));
            self.event_queue.enable_stamps();
        }
    }

    /// The per-dispatch samples, when sampling was enabled.
    pub fn sampler(&self) -> Option<&HandlerSampler> {
        self.sampler.as_ref()
    }

    /// The message coprocessor (observability).
    pub fn msg(&self) -> &MsgCoprocessor {
        &self.msg
    }

    /// The timer coprocessor (observability).
    pub fn timers(&self) -> &TimerCoprocessor {
        &self.timer
    }

    /// The event queue (observability).
    pub fn event_queue(&self) -> &EventQueue {
        &self.event_queue
    }

    /// The handler-table entry for an event.
    pub fn handler(&self, event: EventKind) -> Addr {
        self.handler_table[event.index()]
    }

    /// A snapshot of cumulative statistics.
    pub fn stats(&self) -> CoreStats {
        CoreStats {
            instructions: self.acct.instructions(),
            cycles: self.acct.cycles(),
            energy: self.acct.total_energy(),
            busy_time: self.acct.busy_time() + self.wakeup_time,
            sleep_time: self.sleep_time,
            wakeups: self.wakeups,
            handlers_dispatched: self.handlers_dispatched,
            events_dropped: self.event_queue.dropped(),
            events_inserted: self.event_queue.inserted(),
            now: self.now,
        }
    }

    // ---- environment-side event delivery ----

    /// Deliver a received radio word. Returns `true` when the word was
    /// accepted (receiver enabled and the event token enqueued).
    pub fn post_radio_rx(&mut self, word: Word) -> bool {
        match self.msg.radio_rx_word(word) {
            Some(ev) => self.post_event(ev),
            None => false,
        }
    }

    /// Signal that the radio finished serializing the last transmit word.
    /// Returns `true` when the token was enqueued.
    pub fn post_radio_tx_done(&mut self) -> bool {
        let ev = self.msg.radio_tx_done();
        self.post_event(ev)
    }

    /// Deliver a sensor reading in answer to a `Query`. Returns `true`
    /// when the token was enqueued.
    pub fn post_sensor_reply(&mut self, reading: Word) -> bool {
        let ev = self.msg.sensor_reply(reading);
        self.post_event(ev)
    }

    /// Assert the external sensor-interrupt pin. Returns `true` when the
    /// token was enqueued.
    pub fn post_sensor_irq(&mut self) -> bool {
        let ev = self.msg.sensor_irq();
        self.post_event(ev)
    }

    /// Enqueue an event token stamped with the current time.
    fn post_event(&mut self, ev: EventKind) -> bool {
        self.event_queue
            .push_at(EventToken::new(ev), self.now.as_ps())
    }

    // ---- time ----

    /// The earliest pending timer expiry, if any.
    pub fn next_timer_expiry(&self) -> Option<SimTime> {
        self.timer.next_expiry()
    }

    /// Let idle time pass while the core sleeps: advance to
    /// `min(to, next timer expiry)`, firing any timer that becomes due.
    /// Returns the new current time.
    ///
    /// Only meaningful while [`CoreState::Asleep`]; while running, time
    /// advances through instruction execution.
    pub fn advance_idle(&mut self, to: SimTime) -> SimTime {
        let target = match self.timer.next_expiry() {
            Some(exp) if exp < to => exp,
            _ => to,
        };
        if target > self.now {
            if self.state == CoreState::Asleep {
                self.sleep_time += target - self.now;
            }
            self.now = target;
        }
        self.fire_due_timers();
        self.now
    }

    fn fire_due_timers(&mut self) {
        // Cheap no-allocation check first: this runs after every
        // instruction and timers are almost never due.
        if !self.timer.any_due(self.now) {
            return;
        }
        for ev in self.timer.poll(self.now) {
            self.event_queue
                .push_at(EventToken::new(ev), self.now.as_ps());
        }
    }

    // ---- execution ----

    /// Advance the core by one unit of work: execute one instruction,
    /// or wake up, or report that it is asleep/halted.
    ///
    /// ```
    /// use snap_core::{CoreConfig, Processor, StepOutcome};
    /// use snap_isa::Instruction;
    ///
    /// let mut cpu = Processor::new(CoreConfig::default());
    /// cpu.load_program(&[Instruction::Nop, Instruction::Done])?;
    /// assert!(matches!(cpu.step()?, StepOutcome::Executed { .. })); // nop
    /// cpu.step()?; // done: queue empty, go to sleep
    /// assert!(matches!(cpu.step()?, StepOutcome::Asleep));
    /// cpu.post_sensor_irq();
    /// assert!(matches!(cpu.step()?, StepOutcome::Woke { .. }));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// See [`StepError`].
    pub fn step(&mut self) -> Result<StepOutcome, StepError> {
        match self.state {
            CoreState::Halted => Ok(StepOutcome::Halted),
            CoreState::Asleep => {
                self.fire_due_timers();
                match self.event_queue.pop_with_stamp() {
                    None => Ok(StepOutcome::Asleep),
                    Some((token, stamp)) => {
                        // Idle→active: eighteen gate delays (paper §4.3).
                        let wake = self.acct.timing_model().wakeup_latency();
                        self.now += wake;
                        self.wakeup_time += wake;
                        self.wakeups += 1;
                        self.dispatch(token, stamp);
                        Ok(StepOutcome::Woke {
                            event: token.kind(),
                        })
                    }
                }
            }
            CoreState::Running => self.exec_one(),
        }
    }

    /// Execute instructions in a tight loop while the core is
    /// [`CoreState::Running`], stopping at the first of:
    ///
    /// * the core's time reaching `limit` (checked at instruction
    ///   boundaries, exactly like a per-instruction [`Processor::step`]
    ///   loop would),
    /// * an [`EnvAction`] being produced (returned in the burst so the
    ///   environment can apply it before execution resumes),
    /// * `done`/`halt` leaving the running state, or
    /// * `budget` instructions having executed.
    ///
    /// This is the batched fast path for node simulation: it executes
    /// the same instruction sequence as repeated `step()` calls
    /// (bit-identical state, energy and timing) without constructing a
    /// [`StepOutcome`] round-trip per dynamic instruction. A call while
    /// asleep or halted executes nothing — waking still goes through
    /// [`Processor::step`].
    ///
    /// Which translation tier runs here is the configured
    /// [`Engine`]; all tiers honor the same boundary conditions (a
    /// fused trace or compiled block only replays when *all* of it fits
    /// the time limit and step budget, since its constituents cannot
    /// produce actions or leave the running state).
    ///
    /// # Errors
    ///
    /// See [`StepError`].
    pub fn run_burst(&mut self, limit: SimTime, budget: u64) -> Result<Burst, StepError> {
        // Both tiers build on predecoded entries; without the cache the
        // interpreter is the only path.
        match self.config.engine {
            _ if !self.config.predecode => self.run_burst_interp(limit, budget),
            Engine::Interp => self.run_burst_interp(limit, budget),
            Engine::Fused => self.run_burst_fast(limit, budget, false),
            Engine::Aot => self.run_burst_fast(limit, budget, true),
        }
    }

    /// The reference burst loop: one [`Processor::exec_one`] per
    /// dynamic instruction.
    fn run_burst_interp(&mut self, limit: SimTime, budget: u64) -> Result<Burst, StepError> {
        let mut steps = 0u64;
        while self.state == CoreState::Running && self.now < limit && steps < budget {
            let outcome = self.exec_one()?;
            steps += 1;
            if let StepOutcome::Executed {
                action: Some(action),
                ..
            } = outcome
            {
                return Ok(Burst {
                    steps,
                    action: Some(action),
                });
            }
        }
        Ok(Burst {
            steps,
            action: None,
        })
    }

    /// The translated burst loop: replay tier-2 compiled blocks (when
    /// `aot`) and tier-1 fused traces where available, interpreting
    /// single instructions everywhere else.
    fn run_burst_fast(
        &mut self,
        limit: SimTime,
        budget: u64,
        aot: bool,
    ) -> Result<Burst, StepError> {
        let mut steps = 0u64;
        // Replay `$trace` if the whole of it fits the budget and the
        // time limit; its intermediate states are then exactly the
        // interpreter's, and none of its per-instruction boundary
        // checks could have stopped the burst. Written as a macro so
        // the trace can stay borrowed from `self.decode`/`self.aot`
        // while the context borrows the sibling fields.
        macro_rules! try_trace {
            ($trace:expr, $at:expr) => {{
                let trace = $trace;
                if steps + trace.len <= budget && self.now + trace.prefix < limit {
                    let mut cx = ExecCtx {
                        regs: &mut self.regs,
                        dmem: &mut self.dmem,
                        acct: &mut self.acct,
                        bucket: self.profile.bucket_mut(self.current_event),
                        timer: &mut self.timer,
                        event_queue: &mut self.event_queue,
                        now: &mut self.now,
                        pc: &mut self.pc,
                    };
                    steps += fuse::exec_trace_burst(trace, $at, budget - steps, limit, &mut cx);
                    true
                } else {
                    false
                }
            }};
        }
        while self.state == CoreState::Running && self.now < limit && steps < budget {
            let at = self.pc;
            if aot {
                if let Some(block) = self.aot.block_at(at) {
                    if try_trace!(block, at) {
                        continue;
                    }
                }
            }
            match self.decode.fused_get(at) {
                FusedSlot::Trace(trace) => {
                    if try_trace!(&**trace, at) {
                        continue;
                    }
                }
                FusedSlot::NoFuse => {}
                FusedSlot::Unknown => {
                    let slot = fuse::build_trace(at, |a| {
                        self.decode
                            .get(a)
                            .map(|p| (p.ins, p.costs))
                            .or_else(|| self.decode_at(a).ok().map(|p| (p.ins, p.costs)))
                    });
                    self.decode.fused_set(at, slot);
                    continue;
                }
            }
            // No trace (or it doesn't fit the window): interpret one
            // instruction, exactly as the reference loop would.
            let outcome = self.exec_one()?;
            steps += 1;
            if let StepOutcome::Executed {
                action: Some(action),
                ..
            } = outcome
            {
                return Ok(Burst {
                    steps,
                    action: Some(action),
                });
            }
        }
        Ok(Burst {
            steps,
            action: None,
        })
    }

    /// Handlers dispatched from the event queue so far (cheap accessor
    /// for batch-loop callers that only need this one counter).
    pub fn handlers_dispatched(&self) -> u64 {
        self.handlers_dispatched
    }

    /// `swev` instructions executed so far (attempted software posts).
    pub fn sw_posted(&self) -> u64 {
        self.sw_posted
    }

    /// `swev` posts the event queue accepted so far.
    pub fn sw_enqueued(&self) -> u64 {
        self.sw_enqueued
    }

    /// The event queue's high-water mark: the most tokens ever pending
    /// at once (the dispatch-depth figure the static event-flow
    /// analysis bounds).
    pub fn queue_high_water(&self) -> usize {
        self.event_queue.max_len()
    }

    fn dispatch(&mut self, token: EventToken, stamp_ps: u64) {
        self.pc = self.handler_table[token.table_index()];
        self.state = CoreState::Running;
        self.handlers_dispatched += 1;
        self.current_event = Some(token.kind());
        self.profile.note_dispatch(token.kind());
        if let Some(sampler) = self.sampler.as_mut() {
            // `begin` closes any still-open sample first (chained
            // dispatch from `done`), then opens this one. The token's
            // wait includes the wake-up latency just charged. The
            // occupancy at this boundary counts the token just popped:
            // it is still in the system, about to run.
            let wait = SimDuration::from_ps(self.now.as_ps().saturating_sub(stamp_ps));
            let at = crate::sampler::DispatchCounters {
                instructions: self.acct.instructions(),
                energy: self.acct.total_energy(),
                sw_posted: self.sw_posted,
                sw_enqueued: self.sw_enqueued,
                inserted: self.event_queue.inserted(),
            };
            sampler.begin(token.kind(), self.now, at, wait, self.event_queue.len() + 1);
        }
    }

    /// Close the sampler's open handler sample (if any) at the current
    /// counters — the handler just ended via `done`-to-sleep or `halt`.
    fn close_sample(&mut self) {
        let at = crate::sampler::DispatchCounters {
            instructions: self.acct.instructions(),
            energy: self.acct.total_energy(),
            sw_posted: self.sw_posted,
            sw_enqueued: self.sw_enqueued,
            inserted: self.event_queue.inserted(),
        };
        let queue_len = self.event_queue.len();
        if let Some(sampler) = self.sampler.as_mut() {
            sampler.close(self.now, at, queue_len);
        }
    }

    /// Fetch, decode and derive model costs for the instruction at
    /// `at`, bypassing the predecode cache (the cache-fill and
    /// reference path).
    fn decode_at(&self, at: Addr) -> Result<Predecoded, StepError> {
        let first = self.imem.read(at);
        let second = if Instruction::first_word_is_two_word(first) {
            Some(self.imem.read(at.wrapping_add(1)))
        } else {
            None
        };
        let ins =
            Instruction::decode(first, second).map_err(|error| StepError::Decode { error, at })?;
        Ok(Predecoded {
            ins,
            costs: self.acct.cost_of(&ins),
        })
    }

    /// Predecode every decodable IMEM address into the cache.
    ///
    /// Entries are the same pure functions of the IMEM words and the
    /// operating point that lazy cache fills compute, so eager filling
    /// is observationally identical. Fleets predecode one template node
    /// and clone it: the copy-on-write cache is then shared read-only
    /// across every clone and never faults in a slot at run time.
    /// Addresses that don't hold a valid instruction (data, immediate
    /// words) are left empty, exactly as the lazy path would.
    pub fn predecode_all(&mut self) {
        if !self.config.predecode {
            return;
        }
        for at in 0..MEM_WORDS as Addr {
            if let Ok(entry) = self.decode_at(at) {
                self.decode.insert(at, entry);
            }
        }
        // Resolve every tier-1 fusion verdict too, so fleet clones
        // share one fully-built fused image and never copy-on-write the
        // verdict array just to fault in a trace lazily.
        for at in 0..MEM_WORDS as Addr {
            let slot = fuse::build_trace(at, |a| self.decode.get(a).map(|p| (p.ins, p.costs)));
            self.decode.fused_set(at, slot);
        }
    }

    /// Fetch, decode and execute the instruction at PC.
    fn exec_one(&mut self) -> Result<StepOutcome, StepError> {
        let at = self.pc;
        let fresh;
        // Borrow the entry out of the cache rather than copying it:
        // `self.decode` and `self.acct`/`self.profile` are disjoint
        // fields, so the borrows below coexist.
        let entry: &Predecoded = if self.config.predecode {
            if self.decode.get(at).is_none() {
                let entry = self.decode_at(at)?;
                self.decode.insert(at, entry);
            }
            self.decode.get(at).expect("just inserted")
        } else {
            fresh = self.decode_at(at)?;
            &fresh
        };
        let ins = entry.ins;

        // Charge energy and advance time before the semantic effects so
        // that timer expiries observed below see the post-instruction
        // time, as the hardware would.
        let energy_before = self.acct.total_energy();
        let latency = self.acct.record_costs(&entry.costs);
        self.now += latency;
        self.profile.note_instruction(
            self.current_event,
            self.acct.total_energy() - energy_before,
            latency,
        );

        let fallthrough = at.wrapping_add(ins.word_count() as Addr);
        let mut next_pc = fallthrough;
        let mut action = None;

        macro_rules! rd_op {
            ($r:expr) => {
                self.read_operand($r, at)?
            };
        }

        match ins {
            Instruction::AluReg { op, rd, rs } => {
                let b = rd_op!(rs);
                let result = match op {
                    AluOp::Mov => b,
                    AluOp::Not => !b,
                    AluOp::Neg => b.wrapping_neg(),
                    _ => {
                        let a = rd_op!(rd);
                        fuse::alu_binary(&mut self.regs, op, a, b)
                    }
                };
                action = self.write_operand(rd, result, at)?;
            }
            Instruction::AluImm { op, rd, imm } => {
                let result = match op {
                    AluImmOp::Li => imm,
                    _ => {
                        let a = rd_op!(rd);
                        match op {
                            AluImmOp::Addi => fuse::alu_binary(&mut self.regs, AluOp::Add, a, imm),
                            AluImmOp::Subi => fuse::alu_binary(&mut self.regs, AluOp::Sub, a, imm),
                            AluImmOp::Andi => a & imm,
                            AluImmOp::Ori => a | imm,
                            AluImmOp::Xori => a ^ imm,
                            AluImmOp::Slti => ((a as i16) < (imm as i16)) as Word,
                            AluImmOp::Sltiu => (a < imm) as Word,
                            AluImmOp::Li => unreachable!(),
                        }
                    }
                };
                action = self.write_operand(rd, result, at)?;
            }
            Instruction::ShiftReg { op, rd, rs } => {
                let amount = (rd_op!(rs) & 0xf) as u32;
                let a = rd_op!(rd);
                action = self.write_operand(rd, fuse::shift(op, a, amount), at)?;
            }
            Instruction::ShiftImm { op, rd, amount } => {
                let a = rd_op!(rd);
                action = self.write_operand(rd, fuse::shift(op, a, amount as u32), at)?;
            }
            Instruction::Load { rd, base, offset } => {
                let addr = rd_op!(base).wrapping_add(offset);
                let value = self.dmem.read(addr);
                action = self.write_operand(rd, value, at)?;
            }
            Instruction::Store { rs, base, offset } => {
                let addr = rd_op!(base).wrapping_add(offset);
                let value = rd_op!(rs);
                self.dmem.write(addr, value);
            }
            Instruction::ImemLoad { rd, base, offset } => {
                let addr = rd_op!(base).wrapping_add(offset);
                let value = self.imem.read(addr);
                action = self.write_operand(rd, value, at)?;
            }
            Instruction::ImemStore { rs, base, offset } => {
                let addr = rd_op!(base).wrapping_add(offset);
                let value = rd_op!(rs);
                self.imem.write(addr, value);
                self.decode.invalidate_write(addr);
                self.aot.invalidate_write(addr);
            }
            Instruction::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                let a = rd_op!(ra);
                let b = if cond.is_unary() { 0 } else { rd_op!(rb) };
                if cond.eval(a, b) {
                    next_pc = target;
                }
            }
            Instruction::Jmp { target } => next_pc = target,
            Instruction::Jal { rd, target } => {
                action = self.write_operand(rd, fallthrough, at)?;
                next_pc = target;
            }
            Instruction::Jr { rs } => next_pc = rd_op!(rs),
            Instruction::Jalr { rd, rs } => {
                let target = rd_op!(rs);
                action = self.write_operand(rd, fallthrough, at)?;
                next_pc = target;
            }
            Instruction::SchedHi { rt, rv } => {
                let n = rd_op!(rt);
                let v = rd_op!(rv);
                if !self.timer.sched_hi(n, v) {
                    return Err(StepError::BadTimer { number: n, at });
                }
            }
            Instruction::SchedLo { rt, rv } => {
                let n = rd_op!(rt);
                let v = rd_op!(rv);
                if !self.timer.sched_lo(n, v, self.now) {
                    return Err(StepError::BadTimer { number: n, at });
                }
            }
            Instruction::Cancel { rt } => {
                let n = rd_op!(rt);
                if n as usize >= crate::timer_cop::NUM_TIMERS {
                    return Err(StepError::BadTimer { number: n, at });
                }
                if let Some(ev) = self.timer.cancel(n) {
                    self.post_event(ev);
                }
            }
            Instruction::Bfs { rd, rs, mask } => {
                let field = rd_op!(rs);
                let a = rd_op!(rd);
                action = self.write_operand(rd, (a & !mask) | (field & mask), at)?;
            }
            Instruction::Rand { rd } => {
                let value = self.lfsr.next_word();
                action = self.write_operand(rd, value, at)?;
            }
            Instruction::Seed { rs } => {
                let seed = rd_op!(rs);
                self.lfsr.seed(seed);
            }
            Instruction::Done => {
                self.fire_due_timers();
                match self.event_queue.pop_with_stamp() {
                    Some((token, stamp)) => {
                        // Dispatch straight into the next handler: the
                        // fetch never returns to the word after `done`.
                        self.dispatch(token, stamp);
                        next_pc = self.pc;
                    }
                    None => {
                        self.state = CoreState::Asleep;
                        self.current_event = None;
                        self.close_sample();
                    }
                }
            }
            Instruction::SetAddr { rev, raddr } => {
                let ev = rd_op!(rev) as usize % EVENT_TABLE_ENTRIES;
                let addr = rd_op!(raddr);
                self.handler_table[ev] = addr;
            }
            Instruction::Nop => {}
            Instruction::Halt => {
                self.state = CoreState::Halted;
                // Record the partial handler so a halting run still
                // reports the work done up to the stop.
                self.close_sample();
            }
            Instruction::SwEvent { rn } => {
                let n = rd_op!(rn) as usize % EVENT_TABLE_ENTRIES;
                let kind = EventKind::from_index(n).expect("index < 8");
                self.sw_posted += 1;
                if self.post_event(kind) {
                    self.sw_enqueued += 1;
                }
            }
        }

        if self.state == CoreState::Running {
            self.pc = next_pc;
        }
        self.fire_due_timers();
        Ok(StepOutcome::Executed { action, ins, at })
    }

    /// Read an operand register; `r15` pops the message coprocessor.
    fn read_operand(&mut self, reg: Reg, at: Addr) -> Result<Word, StepError> {
        if reg.is_msg_port() {
            self.msg.core_read().ok_or(StepError::MsgPortEmpty { at })
        } else {
            Ok(self.regs.read(reg))
        }
    }

    /// Write an operand register; `r15` pushes to the message
    /// coprocessor and may produce an environment action.
    fn write_operand(
        &mut self,
        reg: Reg,
        value: Word,
        at: Addr,
    ) -> Result<Option<EnvAction>, StepError> {
        if reg.is_msg_port() {
            self.msg
                .core_write(value)
                .map_err(|e| StepError::BadMsgCommand { word: e.word, at })
        } else {
            self.regs.write(reg, value);
            Ok(None)
        }
    }

    // ---- standalone run helpers ----

    /// Run until the core goes to sleep (or halts), collecting the
    /// environment actions produced along the way.
    ///
    /// Pending timer expiries are fast-forwarded: if the core sleeps with
    /// an active timer, idle time passes instantly until it fires.
    ///
    /// Running stretches go through [`Processor::run_burst`] (so the
    /// configured [`Engine`] applies); the unit accounting is exactly
    /// the historical `step()` loop's — each executed instruction, each
    /// wake-up, and the final asleep/halted observation all consume one
    /// of `max_steps`.
    ///
    /// # Errors
    ///
    /// Any [`StepError`]; [`StepError::StepLimit`] after `max_steps`.
    pub fn run_until_idle(&mut self, max_steps: u64) -> Result<Vec<EnvAction>, StepError> {
        let no_limit = SimTime::from_ps(u64::MAX);
        let mut actions = Vec::new();
        let mut remaining = max_steps;
        loop {
            match self.state {
                CoreState::Running => {
                    if remaining == 0 {
                        return Err(StepError::StepLimit { limit: max_steps });
                    }
                    let burst = self.run_burst(no_limit, remaining)?;
                    remaining -= burst.steps;
                    if let Some(a) = burst.action {
                        actions.push(a);
                    }
                }
                CoreState::Asleep | CoreState::Halted => {
                    if remaining == 0 {
                        return Err(StepError::StepLimit { limit: max_steps });
                    }
                    remaining -= 1;
                    match self.step()? {
                        StepOutcome::Asleep | StepOutcome::Halted => return Ok(actions),
                        // Woke: a handler is running now.
                        _ => {}
                    }
                }
            }
        }
    }

    /// Run to `halt`, fast-forwarding through sleeps (timer expiries fire
    /// instantly; a sleep with no timer and no events is [`StepError::Stuck`]).
    ///
    /// Running stretches go through [`Processor::run_burst`]; unit
    /// accounting matches the historical `step()` loop, as in
    /// [`Processor::run_until_idle`].
    ///
    /// # Errors
    ///
    /// Any [`StepError`]; [`StepError::StepLimit`] after `max_steps`.
    pub fn run_to_halt(&mut self, max_steps: u64) -> Result<Vec<EnvAction>, StepError> {
        let no_limit = SimTime::from_ps(u64::MAX);
        let mut actions = Vec::new();
        let mut remaining = max_steps;
        loop {
            match self.state {
                CoreState::Running => {
                    if remaining == 0 {
                        return Err(StepError::StepLimit { limit: max_steps });
                    }
                    let burst = self.run_burst(no_limit, remaining)?;
                    remaining -= burst.steps;
                    if let Some(a) = burst.action {
                        actions.push(a);
                    }
                }
                CoreState::Asleep => {
                    if remaining == 0 {
                        return Err(StepError::StepLimit { limit: max_steps });
                    }
                    remaining -= 1;
                    if matches!(self.step()?, StepOutcome::Asleep) {
                        match self.next_timer_expiry() {
                            Some(at) => {
                                self.advance_idle(at);
                            }
                            None => return Err(StepError::Stuck { at: self.now }),
                        }
                    }
                }
                CoreState::Halted => {
                    if remaining == 0 {
                        return Err(StepError::StepLimit { limit: max_steps });
                    }
                    return Ok(actions);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::{BranchCond, MsgCommand};

    fn cpu_with(prog: &[Instruction]) -> Processor {
        let mut cpu = Processor::new(CoreConfig::default());
        cpu.load_program(prog).unwrap();
        cpu
    }

    fn li(rd: Reg, imm: Word) -> Instruction {
        Instruction::AluImm {
            op: AluImmOp::Li,
            rd,
            imm,
        }
    }

    #[test]
    fn boot_runs_until_halt() {
        let mut cpu = cpu_with(&[
            li(Reg::R1, 40),
            li(Reg::R2, 2),
            Instruction::AluReg {
                op: AluOp::Add,
                rd: Reg::R1,
                rs: Reg::R2,
            },
            Instruction::Halt,
        ]);
        cpu.run_to_halt(100).unwrap();
        assert_eq!(cpu.regs().read(Reg::R1), 42);
        assert_eq!(cpu.state(), CoreState::Halted);
        assert_eq!(cpu.stats().instructions, 4);
    }

    #[test]
    fn carry_chains_across_addc() {
        // 0xFFFF + 1 = 0x0000 carry 1; then 0 + 0 + carry = 1.
        let mut cpu = cpu_with(&[
            li(Reg::R1, 0xffff),
            li(Reg::R2, 1),
            li(Reg::R3, 0),
            li(Reg::R4, 0),
            Instruction::AluReg {
                op: AluOp::Add,
                rd: Reg::R1,
                rs: Reg::R2,
            },
            Instruction::AluReg {
                op: AluOp::Addc,
                rd: Reg::R3,
                rs: Reg::R4,
            },
            Instruction::Halt,
        ]);
        cpu.run_to_halt(100).unwrap();
        assert_eq!(cpu.regs().read(Reg::R1), 0);
        assert_eq!(cpu.regs().read(Reg::R3), 1);
    }

    #[test]
    fn subc_borrows() {
        // 0 - 1 = 0xFFFF borrow; then 5 - 0 - borrow = 4.
        let mut cpu = cpu_with(&[
            li(Reg::R1, 0),
            li(Reg::R2, 1),
            li(Reg::R3, 5),
            li(Reg::R4, 0),
            Instruction::AluReg {
                op: AluOp::Sub,
                rd: Reg::R1,
                rs: Reg::R2,
            },
            Instruction::AluReg {
                op: AluOp::Subc,
                rd: Reg::R3,
                rs: Reg::R4,
            },
            Instruction::Halt,
        ]);
        cpu.run_to_halt(100).unwrap();
        assert_eq!(cpu.regs().read(Reg::R1), 0xffff);
        assert_eq!(cpu.regs().read(Reg::R3), 4);
    }

    #[test]
    fn memory_round_trip_and_wrap() {
        let mut cpu = cpu_with(&[
            li(Reg::R1, 0x1234),
            li(Reg::R2, 100),
            Instruction::Store {
                rs: Reg::R1,
                base: Reg::R2,
                offset: 5,
            },
            Instruction::Load {
                rd: Reg::R3,
                base: Reg::R2,
                offset: 5,
            },
            Instruction::Halt,
        ]);
        cpu.run_to_halt(100).unwrap();
        assert_eq!(cpu.regs().read(Reg::R3), 0x1234);
        assert_eq!(cpu.dmem().read(105), 0x1234);
    }

    #[test]
    fn branch_and_jump_flow() {
        // r1 = 3; loop: r2 += r1; r1 -= 1; bnez r1, loop; halt
        // Result: r2 = 3+2+1 = 6.
        let prog = [
            li(Reg::R1, 3), // words 0..2
            li(Reg::R2, 0), // words 2..4
            Instruction::AluReg {
                op: AluOp::Add,
                rd: Reg::R2,
                rs: Reg::R1,
            }, // word 4
            Instruction::AluImm {
                op: AluImmOp::Subi,
                rd: Reg::R1,
                imm: 1,
            }, // words 5..7
            Instruction::Branch {
                cond: BranchCond::Nez,
                ra: Reg::R1,
                rb: Reg::R0,
                target: 4,
            },
            Instruction::Halt,
        ];
        let mut cpu = cpu_with(&prog);
        cpu.run_to_halt(100).unwrap();
        assert_eq!(cpu.regs().read(Reg::R2), 6);
    }

    #[test]
    fn jal_links_return_address() {
        // 0: jal r14, 4   (words 0..2)
        // 2: halt         (word 2)
        // 3: (pad)
        // 4: jr r14
        let prog = [
            Instruction::Jal {
                rd: Reg::R14,
                target: 4,
            },
            Instruction::Halt,
            Instruction::Nop,
            Instruction::Jr { rs: Reg::R14 },
        ];
        let mut cpu = cpu_with(&prog);
        cpu.run_to_halt(100).unwrap();
        assert_eq!(cpu.state(), CoreState::Halted);
        assert_eq!(cpu.regs().read(Reg::R14), 2);
    }

    #[test]
    fn done_with_empty_queue_sleeps() {
        let mut cpu = cpu_with(&[Instruction::Done]);
        let actions = cpu.run_until_idle(10).unwrap();
        assert!(actions.is_empty());
        assert_eq!(cpu.state(), CoreState::Asleep);
        assert_eq!(cpu.step().unwrap(), StepOutcome::Asleep);
    }

    #[test]
    fn event_wakes_core_and_dispatches_handler() {
        // Boot: setaddr(sensor-irq -> 20); done.
        // Handler at 20: r5 = 99; done.
        let boot = [
            li(Reg::R1, EventKind::SensorIrq.index() as Word),
            li(Reg::R2, 20),
            Instruction::SetAddr {
                rev: Reg::R1,
                raddr: Reg::R2,
            },
            Instruction::Done,
        ];
        let handler = [li(Reg::R5, 99), Instruction::Done];
        let mut cpu = cpu_with(&boot);
        let himg: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
        cpu.load_image(20, &himg).unwrap();

        cpu.run_until_idle(100).unwrap();
        assert_eq!(cpu.state(), CoreState::Asleep);
        let before = cpu.stats();

        assert!(cpu.post_sensor_irq());
        assert!(matches!(
            cpu.step().unwrap(),
            StepOutcome::Woke {
                event: EventKind::SensorIrq
            }
        ));
        cpu.run_until_idle(100).unwrap();
        assert_eq!(cpu.regs().read(Reg::R5), 99);
        let d = cpu.stats().since(&before);
        assert_eq!(d.wakeups, 1);
        assert_eq!(d.handlers_dispatched, 1);
        assert_eq!(d.instructions, 2); // li + done
    }

    #[test]
    fn wakeup_latency_matches_model() {
        let mut cpu = cpu_with(&[Instruction::Done]);
        cpu.run_until_idle(10).unwrap();
        let t0 = cpu.now();
        cpu.post_sensor_irq();
        cpu.step().unwrap();
        let wake = cpu.now() - t0;
        assert!((wake.as_ns() - 2.5).abs() < 0.1, "wake {wake}");
    }

    #[test]
    fn timer_schedule_fire() {
        // Boot: handler table timer0 -> 30; schedule timer 0 for 50 ticks; done.
        let boot = [
            li(Reg::R1, 0), // timer number and event index are both 0
            li(Reg::R2, 30),
            Instruction::SetAddr {
                rev: Reg::R1,
                raddr: Reg::R2,
            },
            li(Reg::R3, 0),
            Instruction::SchedHi {
                rt: Reg::R1,
                rv: Reg::R3,
            },
            li(Reg::R4, 50),
            Instruction::SchedLo {
                rt: Reg::R1,
                rv: Reg::R4,
            },
            Instruction::Done,
        ];
        let handler = [li(Reg::R6, 7), Instruction::Halt];
        let mut cpu = cpu_with(&boot);
        let himg: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
        cpu.load_image(30, &himg).unwrap();
        cpu.run_to_halt(1000).unwrap();
        assert_eq!(cpu.regs().read(Reg::R6), 7);
        // The timer fired ~50 us after scheduling.
        assert!(cpu.now().as_us() >= 50.0, "{}", cpu.now());
        assert!(cpu.stats().sleep_time.as_us() > 40.0);
    }

    #[test]
    fn cancel_active_timer_posts_token() {
        let boot = [
            li(Reg::R1, 1),
            li(Reg::R2, 40),
            Instruction::SetAddr {
                rev: Reg::R1,
                raddr: Reg::R2,
            },
            li(Reg::R4, 10_000),
            Instruction::SchedLo {
                rt: Reg::R1,
                rv: Reg::R4,
            },
            Instruction::Cancel { rt: Reg::R1 },
            Instruction::Done,
        ];
        let handler = [li(Reg::R6, 0xCC), Instruction::Halt];
        let mut cpu = cpu_with(&boot);
        let himg: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
        cpu.load_image(40, &himg).unwrap();
        cpu.run_to_halt(1000).unwrap();
        // Cancellation token dispatched the handler without the 10 ms wait.
        assert_eq!(cpu.regs().read(Reg::R6), 0xCC);
        assert!(cpu.now().as_ms() < 1.0, "{}", cpu.now());
    }

    #[test]
    fn msg_port_write_produces_action() {
        let mut cpu = cpu_with(&[
            li(Reg::R15, MsgCommand::PortWrite(0x2a).encode()),
            Instruction::Halt,
        ]);
        let actions = cpu.run_to_halt(100).unwrap();
        assert_eq!(actions, vec![EnvAction::PortWrite(0x2a)]);
        assert_eq!(cpu.msg().port(), 0x2a);
    }

    #[test]
    fn radio_tx_sequence() {
        let mut cpu = cpu_with(&[
            li(Reg::R15, MsgCommand::RadioTx.encode()),
            li(Reg::R15, 0xbeef),
            Instruction::Halt,
        ]);
        let actions = cpu.run_to_halt(100).unwrap();
        assert_eq!(actions, vec![EnvAction::TxWord(0xbeef)]);
    }

    #[test]
    fn radio_rx_word_read_via_r15() {
        // Boot: rx on; handler for radio-rx at 40 reads r15 into r3.
        let boot = [
            li(Reg::R1, EventKind::RadioRx.index() as Word),
            li(Reg::R2, 40),
            Instruction::SetAddr {
                rev: Reg::R1,
                raddr: Reg::R2,
            },
            li(Reg::R15, MsgCommand::RadioRxOn.encode()),
            Instruction::Done,
        ];
        let handler = [
            Instruction::AluReg {
                op: AluOp::Mov,
                rd: Reg::R3,
                rs: Reg::R15,
            },
            Instruction::Halt,
        ];
        let mut cpu = cpu_with(&boot);
        let himg: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
        cpu.load_image(40, &himg).unwrap();
        cpu.run_until_idle(100).unwrap();
        assert!(cpu.post_radio_rx(0x7777));
        cpu.run_to_halt(100).unwrap();
        assert_eq!(cpu.regs().read(Reg::R3), 0x7777);
    }

    #[test]
    fn reading_empty_msg_port_is_an_error() {
        let mut cpu = cpu_with(&[Instruction::AluReg {
            op: AluOp::Mov,
            rd: Reg::R1,
            rs: Reg::R15,
        }]);
        let err = cpu.run_to_halt(10).unwrap_err();
        assert_eq!(err, StepError::MsgPortEmpty { at: 0 });
    }

    #[test]
    fn bad_msg_command_is_an_error() {
        let mut cpu = cpu_with(&[li(Reg::R15, 0x0001)]);
        let err = cpu.run_to_halt(10).unwrap_err();
        assert!(matches!(err, StepError::BadMsgCommand { word: 0x0001, .. }));
    }

    #[test]
    fn bad_timer_number_is_an_error() {
        let mut cpu = cpu_with(&[
            li(Reg::R1, 5),
            li(Reg::R2, 0),
            Instruction::SchedLo {
                rt: Reg::R1,
                rv: Reg::R2,
            },
        ]);
        let err = cpu.run_to_halt(10).unwrap_err();
        assert!(matches!(err, StepError::BadTimer { number: 5, .. }));
    }

    #[test]
    fn stuck_detector() {
        let mut cpu = cpu_with(&[Instruction::Done]);
        let err = cpu.run_to_halt(10).unwrap_err();
        assert!(matches!(err, StepError::Stuck { .. }));
    }

    #[test]
    fn step_limit() {
        // Infinite loop.
        let mut cpu = cpu_with(&[Instruction::Jmp { target: 0 }]);
        let err = cpu.run_to_halt(50).unwrap_err();
        assert_eq!(err, StepError::StepLimit { limit: 50 });
    }

    #[test]
    fn rand_and_seed_are_deterministic() {
        let prog = [
            li(Reg::R1, 0x1234),
            Instruction::Seed { rs: Reg::R1 },
            Instruction::Rand { rd: Reg::R2 },
            Instruction::Rand { rd: Reg::R3 },
            Instruction::Halt,
        ];
        let mut a = cpu_with(&prog);
        let mut b = cpu_with(&prog);
        a.run_to_halt(100).unwrap();
        b.run_to_halt(100).unwrap();
        assert_eq!(a.regs().read(Reg::R2), b.regs().read(Reg::R2));
        assert_eq!(a.regs().read(Reg::R3), b.regs().read(Reg::R3));
        assert_ne!(a.regs().read(Reg::R2), a.regs().read(Reg::R3));
    }

    #[test]
    fn bfs_sets_selected_field() {
        let mut cpu = cpu_with(&[
            li(Reg::R1, 0xaaaa),
            li(Reg::R2, 0x00ff),
            Instruction::Bfs {
                rd: Reg::R1,
                rs: Reg::R2,
                mask: 0x0f0f,
            },
            Instruction::Halt,
        ]);
        cpu.run_to_halt(100).unwrap();
        assert_eq!(
            cpu.regs().read(Reg::R1),
            (0xaaaa & !0x0f0f) | (0x00ff & 0x0f0f)
        );
    }

    #[test]
    fn swevent_posts_soft_event() {
        let boot = [
            li(Reg::R1, EventKind::Soft.index() as Word),
            li(Reg::R2, 40),
            Instruction::SetAddr {
                rev: Reg::R1,
                raddr: Reg::R2,
            },
            Instruction::SwEvent { rn: Reg::R1 },
            Instruction::Done,
        ];
        let handler = [li(Reg::R9, 1), Instruction::Halt];
        let mut cpu = cpu_with(&boot);
        let himg: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
        cpu.load_image(40, &himg).unwrap();
        cpu.run_to_halt(100).unwrap();
        assert_eq!(cpu.regs().read(Reg::R9), 1);
        // done found the soft token: the core never slept.
        assert_eq!(cpu.stats().wakeups, 0);
        assert_eq!(cpu.stats().handlers_dispatched, 1);
    }

    #[test]
    fn self_modifying_code_via_imem_store() {
        // Overwrite the instruction at `patch:` (initially li r5, 1 -> halt
        // after it) with the encoding of li r5, 2 before reaching it.
        // `li r5, 1` and `li r5, 2` share their first word; the patch
        // overwrites the immediate word of the instruction at words 6..8.
        let prog = [
            li(Reg::R1, 2), // 0..2: new immediate
            li(Reg::R3, 7), // 2..4: patch address
            Instruction::ImemStore {
                rs: Reg::R1,
                base: Reg::R3,
                offset: 0,
            }, // 4..6
            // patch site: words 6..8
            li(Reg::R5, 1),
            Instruction::Halt,
        ];
        let mut cpu = cpu_with(&prog);
        cpu.run_to_halt(100).unwrap();
        assert_eq!(cpu.regs().read(Reg::R5), 2);
    }

    #[test]
    fn energy_and_time_accumulate_per_instruction() {
        let mut cpu = cpu_with(&[li(Reg::R1, 1), Instruction::Halt]);
        cpu.run_to_halt(10).unwrap();
        let s = cpu.stats();
        assert_eq!(s.instructions, 2);
        assert!(s.energy.as_pj() > 0.0);
        assert!(!s.busy_time.is_zero());
        assert!(s.mips() > 50.0);
        assert!(s.energy_per_instruction().as_pj() > 50.0);
    }

    #[test]
    fn done_with_queued_token_dispatches_directly() {
        // Regression: `done` with a non-empty queue must jump to the
        // next handler, not fall through to the word after `done`.
        // The handler lives far from the boot code and the words in
        // between are left zeroed, so a fallthrough would be visible.
        let boot = [
            li(Reg::R1, EventKind::SensorIrq.index() as Word),
            li(Reg::R2, 200),
            Instruction::SetAddr {
                rev: Reg::R1,
                raddr: Reg::R2,
            },
            Instruction::Done,
        ];
        let handler = [
            Instruction::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::R5,
                imm: 1,
            },
            Instruction::Done,
        ];
        let mut cpu = cpu_with(&boot);
        let himg: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
        cpu.load_image(200, &himg).unwrap();
        cpu.run_until_idle(100).unwrap();
        // Queue three events while asleep; the core must chain through
        // all three handlers without sleeping in between.
        for _ in 0..3 {
            cpu.post_sensor_irq();
        }
        let before = cpu.stats();
        cpu.run_until_idle(100).unwrap();
        let d = cpu.stats().since(&before);
        assert_eq!(cpu.regs().read(Reg::R5), 3);
        assert_eq!(d.handlers_dispatched, 3);
        assert_eq!(d.wakeups, 1, "only the first dispatch is a wake-up");
        assert_eq!(d.instructions, 6, "exactly 2 instructions per handler");
    }

    #[test]
    fn profile_attributes_instructions_per_handler() {
        // Boot (4 instructions) + two different handlers.
        let boot = [
            li(Reg::R1, EventKind::SensorIrq.index() as Word),
            li(Reg::R2, 100),
            Instruction::SetAddr {
                rev: Reg::R1,
                raddr: Reg::R2,
            },
            Instruction::Done,
        ];
        let irq_handler = [li(Reg::R5, 1), li(Reg::R6, 2), Instruction::Done]; // 3 ins
        let mut cpu = cpu_with(&boot);
        let img: Vec<Word> = irq_handler.iter().flat_map(|i| i.encode()).collect();
        cpu.load_image(100, &img).unwrap();
        cpu.run_until_idle(100).unwrap();

        cpu.post_sensor_irq();
        cpu.run_until_idle(100).unwrap();
        cpu.post_sensor_irq();
        cpu.run_until_idle(100).unwrap();

        let profile = cpu.profile();
        assert_eq!(profile.boot().instructions, 4);
        let irq = profile.event(EventKind::SensorIrq);
        assert_eq!(irq.dispatches, 2);
        assert_eq!(irq.instructions, 6);
        assert!((irq.instructions_per_dispatch() - 3.0).abs() < 1e-9);
        assert!(irq.energy.as_pj() > 0.0);
        assert_eq!(profile.event(EventKind::RadioRx).dispatches, 0);
        // Conservation: profile buckets sum to the core's total.
        assert_eq!(profile.total_instructions(), cpu.stats().instructions);
    }

    #[test]
    fn sampling_records_per_dispatch_and_changes_nothing() {
        // Two identical cores, one with sampling; execution must be
        // bit-identical, and the sampled core must record one sample
        // per dispatched handler with exact deltas.
        let boot = [
            li(Reg::R1, EventKind::SensorIrq.index() as Word),
            li(Reg::R2, 200),
            Instruction::SetAddr {
                rev: Reg::R1,
                raddr: Reg::R2,
            },
            Instruction::Done,
        ];
        let handler = [li(Reg::R5, 1), li(Reg::R6, 2), Instruction::Done]; // 3 ins
        let build = |sampling: bool| {
            let mut cpu = cpu_with(&boot);
            if sampling {
                cpu.enable_sampling(64);
            }
            let img: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
            cpu.load_image(200, &img).unwrap();
            cpu.run_until_idle(100).unwrap();
            // One wake-up dispatch, then two chained dispatches.
            cpu.post_sensor_irq();
            cpu.run_until_idle(100).unwrap();
            let t = cpu.now();
            cpu.advance_idle(t + SimDuration::from_us(3));
            cpu.post_sensor_irq();
            cpu.post_sensor_irq();
            cpu.run_until_idle(100).unwrap();
            cpu
        };
        let with = build(true);
        let without = build(false);
        assert_eq!(with.stats(), without.stats());
        assert_eq!(with.now(), without.now());

        let sampler = with.sampler().expect("sampling enabled");
        assert_eq!(sampler.samples().len(), 3);
        assert_eq!(sampler.truncated(), 0);
        let total: u64 = sampler.samples().iter().map(|s| s.instructions).sum();
        assert_eq!(
            total,
            with.profile().event(EventKind::SensorIrq).instructions
        );
        for s in sampler.samples() {
            assert_eq!(s.event, EventKind::SensorIrq);
            assert_eq!(s.instructions, 3);
            assert!(s.energy.as_pj() > 0.0);
            assert!(s.end > s.start);
        }
        // First dispatch came through a wake-up: its wait is exactly
        // the wake latency. The chained second and third dispatches
        // waited in the queue while the earlier handlers ran.
        let wake = with.acct().timing_model().wakeup_latency();
        assert_eq!(sampler.samples()[0].queue_wait, wake);
        assert!(sampler.samples()[2].queue_wait > sampler.samples()[1].queue_wait);
    }

    #[test]
    fn sampler_capacity_truncates() {
        let boot = [
            li(Reg::R1, EventKind::SensorIrq.index() as Word),
            li(Reg::R2, 200),
            Instruction::SetAddr {
                rev: Reg::R1,
                raddr: Reg::R2,
            },
            Instruction::Done,
        ];
        let handler = [Instruction::Done];
        let mut cpu = cpu_with(&boot);
        cpu.enable_sampling(2);
        let img: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
        cpu.load_image(200, &img).unwrap();
        cpu.run_until_idle(100).unwrap();
        for _ in 0..5 {
            cpu.post_sensor_irq();
            cpu.run_until_idle(100).unwrap();
        }
        let sampler = cpu.sampler().unwrap();
        assert_eq!(sampler.samples().len(), 2);
        assert_eq!(sampler.truncated(), 3);
    }

    #[test]
    fn event_queue_overflow_drops() {
        let cfg = CoreConfig {
            event_queue_capacity: 2,
            ..CoreConfig::default()
        };
        let mut cpu = Processor::new(cfg);
        cpu.load_program(&[Instruction::Done]).unwrap();
        cpu.run_until_idle(10).unwrap();
        assert!(cpu.post_sensor_irq());
        assert!(cpu.post_sensor_irq());
        assert!(!cpu.post_sensor_irq());
        assert_eq!(cpu.stats().events_dropped, 1);
        assert_eq!(cpu.stats().events_inserted, 2);
    }
}
