//! The on-chip memory banks.
//!
//! SNAP/LE has two 4 KB banks and no caches (paper §3.1): the IMEM holds
//! instructions and the DMEM holds data. Both are word-addressed (2048
//! 16-bit words). Like the hardware, the banks decode only the low
//! eleven address bits — higher bits are ignored, so addresses wrap
//! rather than fault.
//!
//! Banks are copy-on-write: cloning a bank shares the backing array
//! until the first write. Million-node fleets clone a loaded template
//! node, so identical IMEM/DMEM images cost one allocation total and a
//! node pays for its own 4 KB only once it diverges.

use snap_isa::{Addr, Word, MEM_WORDS};
use std::sync::Arc;

const ADDR_MASK: usize = MEM_WORDS - 1;

/// One 4 KB, word-addressed memory bank.
#[derive(Debug, Clone)]
pub struct MemBank {
    words: Arc<[Word; MEM_WORDS]>,
    name: &'static str,
}

impl MemBank {
    /// A zeroed bank with a name used in diagnostics (`"imem"`/`"dmem"`).
    pub fn new(name: &'static str) -> MemBank {
        MemBank {
            words: Arc::new([0; MEM_WORDS]),
            name,
        }
    }

    /// The bank's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Read the word at `addr` (the address wraps modulo 2048).
    #[inline]
    pub fn read(&self, addr: Addr) -> Word {
        self.words[addr as usize & ADDR_MASK]
    }

    /// Write the word at `addr` (the address wraps modulo 2048).
    #[inline]
    pub fn write(&mut self, addr: Addr, value: Word) {
        Arc::make_mut(&mut self.words)[addr as usize & ADDR_MASK] = value;
    }

    /// Copy `image` into the bank starting at word address `base`.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] if the image does not fit.
    pub fn load(&mut self, base: Addr, image: &[Word]) -> Result<(), LoadError> {
        let base = base as usize;
        if base + image.len() > MEM_WORDS {
            return Err(LoadError {
                bank: self.name,
                base,
                len: image.len(),
            });
        }
        Arc::make_mut(&mut self.words)[base..base + image.len()].copy_from_slice(image);
        Ok(())
    }

    /// Zero the whole bank.
    pub fn clear(&mut self) {
        Arc::make_mut(&mut self.words).fill(0);
    }

    /// View the whole bank as a word slice.
    pub fn as_words(&self) -> &[Word] {
        &self.words[..]
    }
}

/// Error returned when a program image does not fit in a bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadError {
    bank: &'static str,
    base: usize,
    len: usize,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "image of {} words at base {} does not fit in {} ({} words)",
            self.len, self.base, self.bank, MEM_WORDS
        )
    }
}

impl std::error::Error for LoadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = MemBank::new("dmem");
        m.write(0, 0xdead);
        m.write(2047, 0xbeef);
        assert_eq!(m.read(0), 0xdead);
        assert_eq!(m.read(2047), 0xbeef);
    }

    #[test]
    fn addresses_wrap_like_hardware() {
        let mut m = MemBank::new("dmem");
        m.write(2048, 0x1234); // wraps to 0
        assert_eq!(m.read(0), 0x1234);
        assert_eq!(m.read(0x8000 | 5), m.read(5));
    }

    #[test]
    fn load_image() {
        let mut m = MemBank::new("imem");
        m.load(10, &[1, 2, 3]).unwrap();
        assert_eq!(m.read(10), 1);
        assert_eq!(m.read(12), 3);
        assert_eq!(m.read(9), 0);
    }

    #[test]
    fn oversized_load_is_rejected() {
        let mut m = MemBank::new("imem");
        let image = vec![0u16; 100];
        let err = m.load(2000, &image).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut m = MemBank::new("dmem");
        m.write(7, 9);
        m.clear();
        assert!(m.as_words().iter().all(|&w| w == 0));
    }
}
