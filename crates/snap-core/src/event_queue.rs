//! The hardware event queue.
//!
//! The event queue is the centrepiece of SNAP's OS-free design (paper
//! §3.1): a FIFO of event tokens inserted by the timer and message
//! coprocessors and drained by instruction fetch at each `done`. Because
//! handlers run to completion, the queue also guarantees handler
//! atomicity — a new event can never preempt a running handler.
//!
//! The queue is finite; if a handler runs too long, pending events are
//! dropped (paper §4.2 raises exactly this concern when sizing
//! handlers). Drops are counted so benchmarks can report them.

use snap_isa::EventToken;
use std::collections::VecDeque;

/// Default queue capacity in tokens. The paper does not publish the
/// depth; eight matches the handler-table size and is configurable via
/// [`EventQueue::with_capacity`].
pub const DEFAULT_CAPACITY: usize = 8;

/// The hardware FIFO of pending event tokens.
#[derive(Debug, Clone)]
pub struct EventQueue {
    fifo: VecDeque<EventToken>,
    capacity: usize,
    dropped: u64,
    inserted: u64,
}

impl EventQueue {
    /// A queue with the default capacity.
    pub fn new() -> EventQueue {
        EventQueue::with_capacity(DEFAULT_CAPACITY)
    }

    /// A queue holding at most `capacity` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> EventQueue {
        assert!(capacity > 0, "event queue capacity must be positive");
        EventQueue {
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            inserted: 0,
        }
    }

    /// Insert a token at the tail. Returns `false` (and counts a drop)
    /// when the queue is full.
    pub fn push(&mut self, token: EventToken) -> bool {
        if self.fifo.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.inserted += 1;
        self.fifo.push_back(token);
        true
    }

    /// Remove the head token, if any.
    pub fn pop(&mut self) -> Option<EventToken> {
        self.fifo.pop_front()
    }

    /// The head token without removing it.
    pub fn peek(&self) -> Option<EventToken> {
        self.fifo.front().copied()
    }

    /// Number of pending tokens.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// `true` when no tokens are pending.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tokens dropped because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Tokens successfully inserted over the queue's lifetime.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }
}

impl Default for EventQueue {
    fn default() -> EventQueue {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::EventKind;

    #[test]
    fn fifo_order() {
        let mut q = EventQueue::new();
        q.push(EventKind::Timer0.into());
        q.push(EventKind::RadioRx.into());
        assert_eq!(q.pop().unwrap().kind(), EventKind::Timer0);
        assert_eq!(q.pop().unwrap().kind(), EventKind::RadioRx);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut q = EventQueue::with_capacity(2);
        assert!(q.push(EventKind::Timer0.into()));
        assert!(q.push(EventKind::Timer1.into()));
        assert!(!q.push(EventKind::Timer2.into()));
        assert_eq!(q.len(), 2);
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.inserted(), 2);
    }

    #[test]
    fn peek_is_nondestructive() {
        let mut q = EventQueue::new();
        q.push(EventKind::SensorIrq.into());
        assert_eq!(q.peek().unwrap().kind(), EventKind::SensorIrq);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = EventQueue::with_capacity(0);
    }

    #[test]
    fn drained_queue_accepts_again() {
        let mut q = EventQueue::with_capacity(1);
        assert!(q.push(EventKind::Timer0.into()));
        assert!(!q.push(EventKind::Timer1.into()));
        q.pop();
        assert!(q.push(EventKind::Timer2.into()));
        assert_eq!(q.dropped(), 1);
    }
}
