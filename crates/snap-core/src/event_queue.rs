//! The hardware event queue.
//!
//! The event queue is the centrepiece of SNAP's OS-free design (paper
//! §3.1): a FIFO of event tokens inserted by the timer and message
//! coprocessors and drained by instruction fetch at each `done`. Because
//! handlers run to completion, the queue also guarantees handler
//! atomicity — a new event can never preempt a running handler.
//!
//! The queue is finite; if a handler runs too long, pending events are
//! dropped (paper §4.2 raises exactly this concern when sizing
//! handlers). Drops are counted so benchmarks can report them.

use snap_isa::EventToken;
use std::collections::VecDeque;

/// Default queue capacity in tokens. The paper does not publish the
/// depth; eight matches the handler-table size and is configurable via
/// [`EventQueue::with_capacity`].
pub const DEFAULT_CAPACITY: usize = 8;

/// Stamp value for a token whose enqueue time is unknown (stamping was
/// off, or enabled after the token was queued). Waits computed against
/// it saturate to zero.
pub const UNKNOWN_STAMP: u64 = u64::MAX;

/// The hardware FIFO of pending event tokens.
///
/// When *stamping* is enabled (telemetry), a parallel queue records the
/// enqueue time of each token so the dispatch path can report how long
/// the token waited. Stamps are observation-only: they never affect
/// queue behaviour, ordering, capacity or drop accounting.
#[derive(Debug, Clone)]
pub struct EventQueue {
    fifo: VecDeque<EventToken>,
    capacity: usize,
    dropped: u64,
    inserted: u64,
    /// Highest occupancy ever reached (observation-only; not part of
    /// the snapshot wire format — restore resets it to the restored
    /// queue length).
    max_len: usize,
    /// Enqueue times (ps), parallel to `fifo`; `None` when stamping is
    /// off (the default — zero cost).
    stamps: Option<VecDeque<u64>>,
}

impl EventQueue {
    /// A queue with the default capacity.
    pub fn new() -> EventQueue {
        EventQueue::with_capacity(DEFAULT_CAPACITY)
    }

    /// A queue holding at most `capacity` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> EventQueue {
        assert!(capacity > 0, "event queue capacity must be positive");
        EventQueue {
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            inserted: 0,
            max_len: 0,
            stamps: None,
        }
    }

    /// Start recording enqueue times. Tokens already queued get
    /// [`UNKNOWN_STAMP`] (their waits will read as zero).
    pub fn enable_stamps(&mut self) {
        if self.stamps.is_none() {
            let mut stamps = VecDeque::with_capacity(self.capacity);
            stamps.extend(std::iter::repeat_n(UNKNOWN_STAMP, self.fifo.len()));
            self.stamps = Some(stamps);
        }
    }

    /// Whether enqueue times are being recorded.
    pub fn stamps_enabled(&self) -> bool {
        self.stamps.is_some()
    }

    /// Queue contents and counters for a snapshot: tokens front-first,
    /// their stamps (when stamping is on), and the lifetime counters.
    pub(crate) fn export(&self) -> (Vec<EventToken>, Option<Vec<u64>>, u64, u64) {
        (
            self.fifo.iter().copied().collect(),
            self.stamps.as_ref().map(|s| s.iter().copied().collect()),
            self.dropped,
            self.inserted,
        )
    }

    /// Rebuild queue contents and counters from a snapshot. `tokens`
    /// beyond `capacity` cannot occur in a well-formed snapshot (the
    /// queue never held more than its capacity); extras are dropped
    /// without counting, keeping restore fail-safe.
    pub(crate) fn restore(
        &mut self,
        tokens: &[EventToken],
        stamps: Option<&[u64]>,
        dropped: u64,
        inserted: u64,
    ) {
        self.fifo.clear();
        self.fifo.extend(tokens.iter().copied().take(self.capacity));
        self.stamps = stamps.map(|s| {
            let mut q: VecDeque<u64> = s.iter().copied().take(self.capacity).collect();
            q.resize(self.fifo.len(), UNKNOWN_STAMP);
            q
        });
        self.dropped = dropped;
        self.inserted = inserted;
        self.max_len = self.fifo.len();
    }

    /// Insert a token at the tail. Returns `false` (and counts a drop)
    /// when the queue is full.
    pub fn push(&mut self, token: EventToken) -> bool {
        self.push_at(token, UNKNOWN_STAMP)
    }

    /// Insert a token at the tail, recording `now_ps` as its enqueue
    /// time when stamping is enabled. Returns `false` (and counts a
    /// drop) when the queue is full.
    pub fn push_at(&mut self, token: EventToken, now_ps: u64) -> bool {
        if self.fifo.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.inserted += 1;
        self.fifo.push_back(token);
        self.max_len = self.max_len.max(self.fifo.len());
        if let Some(stamps) = self.stamps.as_mut() {
            stamps.push_back(now_ps);
        }
        true
    }

    /// Remove the head token, if any.
    pub fn pop(&mut self) -> Option<EventToken> {
        self.pop_with_stamp().map(|(token, _)| token)
    }

    /// Remove the head token together with its enqueue time.
    ///
    /// The stamp is [`UNKNOWN_STAMP`] when stamping is disabled or was
    /// enabled after the token was queued.
    pub fn pop_with_stamp(&mut self) -> Option<(EventToken, u64)> {
        let token = self.fifo.pop_front()?;
        let stamp = match self.stamps.as_mut() {
            Some(stamps) => stamps.pop_front().unwrap_or(UNKNOWN_STAMP),
            None => UNKNOWN_STAMP,
        };
        Some((token, stamp))
    }

    /// The head token without removing it.
    pub fn peek(&self) -> Option<EventToken> {
        self.fifo.front().copied()
    }

    /// Number of pending tokens.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// `true` when no tokens are pending.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tokens dropped because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Tokens successfully inserted over the queue's lifetime.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// The high-water mark: the largest number of tokens ever pending
    /// at once. Dropped insertions do not raise it (the queue clips at
    /// capacity), so pair it with [`EventQueue::dropped`] when arguing
    /// about demand rather than occupancy.
    pub fn max_len(&self) -> usize {
        self.max_len
    }
}

impl Default for EventQueue {
    fn default() -> EventQueue {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::EventKind;

    #[test]
    fn fifo_order() {
        let mut q = EventQueue::new();
        q.push(EventKind::Timer0.into());
        q.push(EventKind::RadioRx.into());
        assert_eq!(q.pop().unwrap().kind(), EventKind::Timer0);
        assert_eq!(q.pop().unwrap().kind(), EventKind::RadioRx);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut q = EventQueue::with_capacity(2);
        assert!(q.push(EventKind::Timer0.into()));
        assert!(q.push(EventKind::Timer1.into()));
        assert!(!q.push(EventKind::Timer2.into()));
        assert_eq!(q.len(), 2);
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.inserted(), 2);
    }

    #[test]
    fn peek_is_nondestructive() {
        let mut q = EventQueue::new();
        q.push(EventKind::SensorIrq.into());
        assert_eq!(q.peek().unwrap().kind(), EventKind::SensorIrq);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = EventQueue::with_capacity(0);
    }

    #[test]
    fn stamps_track_enqueue_times() {
        let mut q = EventQueue::with_capacity(4);
        q.push(EventKind::Timer0.into()); // queued before stamping
        q.enable_stamps();
        q.push_at(EventKind::Timer1.into(), 500);
        q.push_at(EventKind::Timer2.into(), 900);
        let (t, s) = q.pop_with_stamp().unwrap();
        assert_eq!(t.kind(), EventKind::Timer0);
        assert_eq!(s, UNKNOWN_STAMP);
        let (t, s) = q.pop_with_stamp().unwrap();
        assert_eq!(t.kind(), EventKind::Timer1);
        assert_eq!(s, 500);
        // Plain pop keeps the stamp queue aligned.
        assert_eq!(q.pop().unwrap().kind(), EventKind::Timer2);
        assert!(q.pop_with_stamp().is_none());
    }

    #[test]
    fn stamps_not_recorded_on_drop() {
        let mut q = EventQueue::with_capacity(1);
        q.enable_stamps();
        assert!(q.push_at(EventKind::Timer0.into(), 1));
        assert!(!q.push_at(EventKind::Timer1.into(), 2));
        assert_eq!(q.pop_with_stamp().unwrap().1, 1);
        assert!(q.pop_with_stamp().is_none());
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut q = EventQueue::with_capacity(2);
        assert_eq!(q.max_len(), 0);
        q.push(EventKind::Timer0.into());
        q.pop();
        q.push(EventKind::Timer1.into());
        assert_eq!(q.max_len(), 1, "draining does not lower the mark");
        q.push(EventKind::Timer2.into());
        assert!(!q.push(EventKind::Soft.into()), "third push drops");
        assert_eq!(q.max_len(), 2, "drops never raise the mark past capacity");
    }

    #[test]
    fn drained_queue_accepts_again() {
        let mut q = EventQueue::with_capacity(1);
        assert!(q.push(EventKind::Timer0.into()));
        assert!(!q.push(EventKind::Timer1.into()));
        q.pop();
        assert!(q.push(EventKind::Timer2.into()));
        assert_eq!(q.dropped(), 1);
    }
}
