//! The timer coprocessor.
//!
//! Three self-decrementing 24-bit timer registers (paper §3.2). The core
//! schedules a timeout with `schedhi` (top 8 bits) followed by `schedlo`
//! (low 16 bits — this write starts the countdown). When a register
//! reaches zero the coprocessor inserts an event token. Cancelling an
//! *active* register also inserts a token — the paper's rule for
//! avoiding the cancel/expiry race; software tracks which timers it has
//! cancelled. Cancelling an inactive register (one that already expired
//! and whose token is already in flight) inserts nothing, so software
//! always sees exactly one token per scheduled timeout.
//!
//! Idle timer registers have no switching activity; only the countdown
//! itself consumes energy, which the simulator folds into the idle
//! leakage placeholder.

use dess::{SimDuration, SimTime};
use snap_isa::EventKind;

/// Number of timer registers.
pub const NUM_TIMERS: usize = 3;

/// Maximum 24-bit countdown value.
pub const MAX_COUNT: u32 = 0x00ff_ffff;

#[derive(Debug, Clone, Copy, Default)]
struct TimerReg {
    /// Top 8 bits staged by `schedhi`, consumed by the next `schedlo`.
    staged_hi: u8,
    /// Absolute expiry time while the register is decrementing.
    expiry: Option<SimTime>,
}

/// The three-register timer coprocessor.
#[derive(Debug, Clone)]
pub struct TimerCoprocessor {
    tick: SimDuration,
    timers: [TimerReg; NUM_TIMERS],
    scheduled: u64,
    expired: u64,
    cancelled: u64,
}

impl TimerCoprocessor {
    /// A coprocessor whose registers decrement once per `tick`.
    ///
    /// The paper notes the decrement frequency "can be calibrated against
    /// a precise timing reference"; the node default is 1 µs per tick.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero.
    pub fn new(tick: SimDuration) -> TimerCoprocessor {
        assert!(!tick.is_zero(), "timer tick must be positive");
        TimerCoprocessor {
            tick,
            timers: [TimerReg::default(); NUM_TIMERS],
            scheduled: 0,
            expired: 0,
            cancelled: 0,
        }
    }

    /// The decrement period.
    pub fn tick(&self) -> SimDuration {
        self.tick
    }

    /// `schedhi`: stage the top 8 bits of timer `n`'s countdown.
    ///
    /// Returns `false` when `n` is not a valid timer number.
    pub fn sched_hi(&mut self, n: u16, value: u16) -> bool {
        let Some(t) = self.timers.get_mut(n as usize) else {
            return false;
        };
        t.staged_hi = (value & 0xff) as u8;
        true
    }

    /// `schedlo`: set the low 16 bits and start timer `n` counting down
    /// from `(staged_hi << 16) | value` at time `now`.
    ///
    /// A zero count expires on the next poll. Returns `false` when `n` is
    /// not a valid timer number.
    pub fn sched_lo(&mut self, n: u16, value: u16, now: SimTime) -> bool {
        let tick = self.tick;
        let Some(t) = self.timers.get_mut(n as usize) else {
            return false;
        };
        let count = ((t.staged_hi as u32) << 16) | value as u32;
        t.expiry = Some(now + tick * count as u64);
        self.scheduled += 1;
        true
    }

    /// `cancel`: stop timer `n`. Returns the cancellation token's event
    /// kind when the timer was active (the paper's always-token rule);
    /// `None` when it was inactive or `n` is invalid.
    pub fn cancel(&mut self, n: u16) -> Option<EventKind> {
        let t = self.timers.get_mut(n as usize)?;
        if t.expiry.take().is_some() {
            self.cancelled += 1;
            EventKind::timer(n as u8)
        } else {
            None
        }
    }

    /// Collect expiry tokens for every timer whose countdown has reached
    /// zero at `now`. Each expired register is deactivated.
    pub fn poll(&mut self, now: SimTime) -> Vec<EventKind> {
        let mut fired = Vec::new();
        for (n, t) in self.timers.iter_mut().enumerate() {
            if let Some(at) = t.expiry {
                if at <= now {
                    t.expiry = None;
                    self.expired += 1;
                    fired.push(EventKind::timer(n as u8).expect("n < 3"));
                }
            }
        }
        fired
    }

    /// The earliest pending expiry, if any register is active.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.timers.iter().filter_map(|t| t.expiry).min()
    }

    /// `true` when some active timer has expired at or before `now`
    /// (what [`TimerCoprocessor::poll`] would fire), without allocating.
    #[inline]
    pub fn any_due(&self, now: SimTime) -> bool {
        self.timers
            .iter()
            .any(|t| t.expiry.is_some_and(|at| at <= now))
    }

    /// `true` when timer `n` is actively counting down.
    pub fn is_active(&self, n: u16) -> bool {
        self.timers
            .get(n as usize)
            .is_some_and(|t| t.expiry.is_some())
    }

    /// Timeouts scheduled over the coprocessor's lifetime.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Timeouts that expired.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Timeouts that were cancelled while active.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Per-register `(staged_hi, expiry)` plus the lifetime counters,
    /// for a snapshot.
    pub(crate) fn export(&self) -> ([(u8, Option<SimTime>); NUM_TIMERS], u64, u64, u64) {
        let mut regs = [(0u8, None); NUM_TIMERS];
        for (r, t) in regs.iter_mut().zip(self.timers.iter()) {
            *r = (t.staged_hi, t.expiry);
        }
        (regs, self.scheduled, self.expired, self.cancelled)
    }

    /// Rebuild register and counter state from a snapshot.
    pub(crate) fn restore(
        &mut self,
        regs: [(u8, Option<SimTime>); NUM_TIMERS],
        scheduled: u64,
        expired: u64,
        cancelled: u64,
    ) {
        for (t, (staged_hi, expiry)) in self.timers.iter_mut().zip(regs) {
            t.staged_hi = staged_hi;
            t.expiry = expiry;
        }
        self.scheduled = scheduled;
        self.expired = expired;
        self.cancelled = cancelled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cop() -> TimerCoprocessor {
        TimerCoprocessor::new(SimDuration::from_us(1))
    }

    #[test]
    fn schedule_and_expire() {
        let mut c = cop();
        let t0 = SimTime::ZERO;
        assert!(c.sched_hi(0, 0));
        assert!(c.sched_lo(0, 100, t0)); // 100 us
        assert!(c.is_active(0));
        assert_eq!(c.next_expiry(), Some(t0 + SimDuration::from_us(100)));
        assert!(c.poll(t0 + SimDuration::from_us(99)).is_empty());
        let fired = c.poll(t0 + SimDuration::from_us(100));
        assert_eq!(fired, vec![EventKind::Timer0]);
        assert!(!c.is_active(0));
        assert_eq!(c.expired(), 1);
    }

    #[test]
    fn high_bits_extend_range() {
        let mut c = cop();
        c.sched_hi(1, 0x02); // 0x020000 ticks = 131072 us
        c.sched_lo(1, 0x0000, SimTime::ZERO);
        assert_eq!(
            c.next_expiry(),
            Some(SimTime::ZERO + SimDuration::from_us(0x0002_0000))
        );
    }

    #[test]
    fn staged_hi_survives_until_schedlo() {
        let mut c = cop();
        c.sched_hi(2, 0xff);
        // Unrelated activity on another timer must not disturb timer 2.
        c.sched_hi(0, 1);
        c.sched_lo(0, 0, SimTime::ZERO);
        c.sched_lo(2, 0xffff, SimTime::ZERO);
        // Timer 0 (0x010000 ticks) expires long before timer 2 (0xffffff).
        assert_eq!(
            c.next_expiry().unwrap(),
            SimTime::ZERO + SimDuration::from_us(0x0001_0000)
        );
        let fired = c.poll(SimTime::ZERO + SimDuration::from_us(0x0001_0000));
        assert_eq!(fired, vec![EventKind::Timer0]);
        assert!(c.is_active(2), "timer 2 keeps its staged high bits");
    }

    #[test]
    fn cancel_active_yields_token() {
        let mut c = cop();
        c.sched_lo(0, 500, SimTime::ZERO);
        assert_eq!(c.cancel(0), Some(EventKind::Timer0));
        assert!(!c.is_active(0));
        assert_eq!(c.cancelled(), 1);
        // Cancelled timers never expire.
        assert!(c.poll(SimTime::ZERO + SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn cancel_inactive_yields_nothing() {
        let mut c = cop();
        assert_eq!(c.cancel(1), None);
        c.sched_lo(1, 1, SimTime::ZERO);
        c.poll(SimTime::ZERO + SimDuration::from_us(1));
        // Already expired: the expiry token is in flight; no second token.
        assert_eq!(c.cancel(1), None);
    }

    #[test]
    fn invalid_timer_numbers_rejected() {
        let mut c = cop();
        assert!(!c.sched_hi(3, 0));
        assert!(!c.sched_lo(7, 1, SimTime::ZERO));
        assert_eq!(c.cancel(3), None);
        assert!(!c.is_active(3));
    }

    #[test]
    fn zero_count_fires_immediately() {
        let mut c = cop();
        c.sched_lo(0, 0, SimTime::from_ps(5));
        assert_eq!(c.poll(SimTime::from_ps(5)), vec![EventKind::Timer0]);
    }

    #[test]
    fn three_timers_are_independent() {
        let mut c = cop();
        c.sched_lo(0, 30, SimTime::ZERO);
        c.sched_lo(1, 10, SimTime::ZERO);
        c.sched_lo(2, 20, SimTime::ZERO);
        let fired = c.poll(SimTime::ZERO + SimDuration::from_us(20));
        assert_eq!(fired, vec![EventKind::Timer1, EventKind::Timer2]);
        assert!(c.is_active(0));
        assert_eq!(c.scheduled(), 3);
    }
}
