//! Diagnostic: print per-seed coverage statistics for the oracle run
//! of generated programs (instructions executed, handlers dispatched,
//! environment actions, queue drops). Useful when tuning the
//! generator's fragment weights.

use snap_smith::diff::{run_program, Runner};
use snap_smith::gen::generate;

fn main() {
    for seed in 0..100u64 {
        let case = generate(seed);
        let program = match snap_asm::assemble(&case.source) {
            Ok(p) => p,
            Err(e) => {
                println!("seed {seed}: ASSEMBLY FAILURE: {e}");
                continue;
            }
        };
        match run_program(&program, &case.script, Runner::Oracle) {
            Ok(out) => println!(
                "seed {seed}: instr={} handlers={} actions={} dropped={} wakeups={} state={}",
                out.observed.instructions,
                out.observed.handlers,
                out.observed.actions.len(),
                out.observed.events_dropped,
                out.observed.wakeups,
                out.observed.state,
            ),
            Err(e) => println!("seed {seed}: run error: {e}"),
        }
    }
}
