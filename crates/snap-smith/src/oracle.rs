//! A deliberately naive reference interpreter for SNAP programs.
//!
//! The oracle re-implements the architecture from the ISA documentation
//! alone: it decodes every instruction from IMEM on every fetch (no
//! predecode cache), keeps its own register file, memories, event
//! queue, timer and message-coprocessor state, and its own Galois LFSR.
//! It shares **no code** with `snap-core`'s `Processor`, decode cache
//! or burst loop — only `snap-isa` (the instruction definitions) and
//! `snap-energy` (the published cost model, which both sides must
//! consult to agree on energy to the bit).
//!
//! Divergence between this interpreter and `snap-core` under the
//! differential driver (`crate::diff`) indicates a bug in one of them.

use dess::{SimDuration, SimTime};
use snap_energy::model::{InstrShape, SnapEnergyModel, SnapTimingModel};
use snap_energy::{Energy, OperatingPoint};
use snap_isa::{AluImmOp, AluOp, BranchCond, EventKind, Instruction, MsgCommand, Reg, ShiftOp};
use std::collections::VecDeque;

/// Memory size in words (both banks; addresses wrap modulo this).
const MEM_WORDS: usize = 2048;
const ADDR_MASK: usize = MEM_WORDS - 1;
/// Event-queue depth in tokens.
const QUEUE_CAPACITY: usize = 8;
/// LFSR feedback polynomial (16-bit maximal-length Galois, taps
/// 16, 14, 13, 11).
const LFSR_TAPS: u16 = 0xB400;

/// The oracle's activity state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleState {
    /// Executing boot code or a handler.
    Running,
    /// Waiting on the event queue.
    Asleep,
    /// Stopped by `halt`.
    Halted,
}

/// An action the program asked the environment to take (mirrors
/// `snap_core::EnvAction` field for field so the driver can compare).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleAction {
    /// Transmit a radio word.
    TxWord(u16),
    /// Radio receiver enabled/disabled.
    RadioMode(bool),
    /// Poll sensor `id`.
    Query(u16),
    /// Drive a value onto the output port.
    PortWrite(u16),
}

/// What one [`Oracle::step`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleOutcome {
    /// An instruction was executed.
    Executed {
        /// Environment action produced, if any.
        action: Option<OracleAction>,
        /// The executed instruction.
        ins: Instruction,
        /// The word address it was fetched from.
        at: u16,
    },
    /// The oracle woke up and dispatched a handler.
    Woke {
        /// The event that woke it.
        event: EventKind,
    },
    /// Asleep with an empty queue.
    Asleep,
    /// Halted.
    Halted,
}

#[derive(Debug, Clone, Copy, Default)]
struct OracleTimer {
    staged_hi: u8,
    expiry: Option<SimTime>,
}

/// The naive interpreter. Observable state is public-by-accessor so the
/// differential driver can snapshot it.
#[derive(Debug, Clone)]
pub struct Oracle {
    regs: [u16; 15],
    carry: bool,
    pc: u16,
    state: OracleState,
    now: SimTime,
    imem: Vec<u16>,
    dmem: Vec<u16>,
    handler_table: [u16; 8],
    // event queue
    queue: VecDeque<EventKind>,
    inserted: u64,
    dropped: u64,
    // timers
    timers: [OracleTimer; 3],
    tick: SimDuration,
    timers_scheduled: u64,
    timers_expired: u64,
    timers_cancelled: u64,
    // message coprocessor
    fifo: VecDeque<u16>,
    awaiting_tx_payload: bool,
    rx_enabled: bool,
    port: u16,
    words_tx: u64,
    words_rx: u64,
    // pseudo-random unit
    lfsr: u16,
    // cost model + accounting
    energy_model: SnapEnergyModel,
    timing_model: SnapTimingModel,
    total_energy: Energy,
    busy: SimDuration,
    wake_time: SimDuration,
    sleep_time: SimDuration,
    instructions: u64,
    cycles: u64,
    wakeups: u64,
    handlers_dispatched: u64,
    dispatches: [u64; 8],
}

impl Oracle {
    /// A power-on oracle: PC 0, running, default operating point.
    pub fn new(lfsr_seed: u16) -> Oracle {
        Oracle {
            regs: [0; 15],
            carry: false,
            pc: 0,
            state: OracleState::Running,
            now: SimTime::ZERO,
            imem: vec![0; MEM_WORDS],
            dmem: vec![0; MEM_WORDS],
            handler_table: [0; 8],
            queue: VecDeque::new(),
            inserted: 0,
            dropped: 0,
            timers: [OracleTimer::default(); 3],
            tick: SimDuration::from_us(1),
            timers_scheduled: 0,
            timers_expired: 0,
            timers_cancelled: 0,
            fifo: VecDeque::new(),
            awaiting_tx_payload: false,
            rx_enabled: false,
            port: 0,
            words_tx: 0,
            words_rx: 0,
            lfsr: if lfsr_seed == 0 { 1 } else { lfsr_seed },
            energy_model: SnapEnergyModel::new(OperatingPoint::V1_8),
            timing_model: SnapTimingModel::new(OperatingPoint::V1_8),
            total_energy: Energy::ZERO,
            busy: SimDuration::ZERO,
            wake_time: SimDuration::ZERO,
            sleep_time: SimDuration::ZERO,
            instructions: 0,
            cycles: 0,
            wakeups: 0,
            handlers_dispatched: 0,
            dispatches: [0; 8],
        }
    }

    /// Load a word image into IMEM at `base`.
    pub fn load_image(&mut self, base: u16, image: &[u16]) {
        for (i, &w) in image.iter().enumerate() {
            self.imem[(base as usize + i) & ADDR_MASK] = w;
        }
    }

    /// Load a word image into DMEM at `base`.
    pub fn load_data(&mut self, base: u16, image: &[u16]) {
        for (i, &w) in image.iter().enumerate() {
            self.dmem[(base as usize + i) & ADDR_MASK] = w;
        }
    }

    // ---- observability ----

    /// Current activity state.
    pub fn state(&self) -> OracleState {
        self.state
    }
    /// Program counter.
    pub fn pc(&self) -> u16 {
        self.pc
    }
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }
    /// Register `r0`–`r14` contents.
    pub fn regs(&self) -> &[u16; 15] {
        &self.regs
    }
    /// Carry flag.
    pub fn carry(&self) -> bool {
        self.carry
    }
    /// Data memory.
    pub fn dmem(&self) -> &[u16] {
        &self.dmem
    }
    /// Instruction memory.
    pub fn imem(&self) -> &[u16] {
        &self.imem
    }
    /// Instructions executed.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }
    /// Occupancy cycles (IMEM words + memory accesses).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
    /// Total instruction energy.
    pub fn total_energy(&self) -> Energy {
        self.total_energy
    }
    /// Busy time including wake-ups.
    pub fn busy_time(&self) -> SimDuration {
        self.busy + self.wake_time
    }
    /// Time spent asleep.
    pub fn sleep_time(&self) -> SimDuration {
        self.sleep_time
    }
    /// Idle→active transitions.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }
    /// Handlers dispatched.
    pub fn handlers_dispatched(&self) -> u64 {
        self.handlers_dispatched
    }
    /// Dispatch count per event-table index.
    pub fn dispatches(&self) -> &[u64; 8] {
        &self.dispatches
    }
    /// Tokens enqueued / dropped.
    pub fn queue_counts(&self) -> (u64, u64) {
        (self.inserted, self.dropped)
    }
    /// Remaining queued event kinds, head first.
    pub fn queue_contents(&self) -> Vec<EventKind> {
        self.queue.iter().copied().collect()
    }
    /// Timer counters (scheduled, expired, cancelled).
    pub fn timer_counts(&self) -> (u64, u64, u64) {
        (
            self.timers_scheduled,
            self.timers_expired,
            self.timers_cancelled,
        )
    }
    /// Message counters (words transmitted, words received).
    pub fn msg_counts(&self) -> (u64, u64) {
        (self.words_tx, self.words_rx)
    }
    /// Outgoing-FIFO depth.
    pub fn fifo_len(&self) -> usize {
        self.fifo.len()
    }
    /// Last port value.
    pub fn port(&self) -> u16 {
        self.port
    }
    /// Earliest pending timer expiry.
    pub fn next_timer_expiry(&self) -> Option<SimTime> {
        self.timers.iter().filter_map(|t| t.expiry).min()
    }

    // ---- environment side ----

    /// Deliver a radio word (lost when the receiver is off).
    pub fn post_radio_rx(&mut self, word: u16) -> bool {
        if !self.rx_enabled {
            return false;
        }
        self.words_rx += 1;
        self.fifo.push_back(word);
        self.push_event(EventKind::RadioRx)
    }

    /// The radio finished serializing a transmitted word.
    pub fn post_radio_tx_done(&mut self) -> bool {
        self.push_event(EventKind::RadioTxDone)
    }

    /// Deliver a sensor reading in answer to a query.
    pub fn post_sensor_reply(&mut self, reading: u16) -> bool {
        self.fifo.push_back(reading);
        self.push_event(EventKind::SensorReply)
    }

    /// Assert the external sensor-interrupt pin.
    pub fn post_sensor_irq(&mut self) -> bool {
        self.push_event(EventKind::SensorIrq)
    }

    /// Let idle time pass while asleep: advance to `min(to, next timer
    /// expiry)` and fire any timer that becomes due.
    pub fn advance_idle(&mut self, to: SimTime) -> SimTime {
        let target = match self.next_timer_expiry() {
            Some(exp) if exp < to => exp,
            _ => to,
        };
        if target > self.now {
            if self.state == OracleState::Asleep {
                self.sleep_time += target - self.now;
            }
            self.now = target;
        }
        self.fire_due_timers();
        self.now
    }

    fn push_event(&mut self, ev: EventKind) -> bool {
        if self.queue.len() >= QUEUE_CAPACITY {
            self.dropped += 1;
            return false;
        }
        self.inserted += 1;
        self.queue.push_back(ev);
        true
    }

    fn fire_due_timers(&mut self) {
        for n in 0..3 {
            if let Some(at) = self.timers[n].expiry {
                if at <= self.now {
                    self.timers[n].expiry = None;
                    self.timers_expired += 1;
                    let ev = [EventKind::Timer0, EventKind::Timer1, EventKind::Timer2][n];
                    self.push_event(ev);
                }
            }
        }
    }

    fn dispatch(&mut self, ev: EventKind) {
        self.pc = self.handler_table[ev.index()];
        self.state = OracleState::Running;
        self.handlers_dispatched += 1;
        self.dispatches[ev.index()] += 1;
    }

    fn lfsr_next_word(&mut self) -> u16 {
        for _ in 0..16 {
            let lsb = self.lfsr & 1;
            self.lfsr >>= 1;
            if lsb == 1 {
                self.lfsr ^= LFSR_TAPS;
            }
        }
        self.lfsr
    }

    // ---- execution ----

    /// Advance by one unit of work (instruction, wake-up, or nothing).
    ///
    /// # Errors
    ///
    /// A human-readable error formatted exactly like
    /// `snap_core::StepError`'s `Display`, so the differential driver
    /// can compare failure modes across implementations.
    pub fn step(&mut self) -> Result<OracleOutcome, String> {
        match self.state {
            OracleState::Halted => Ok(OracleOutcome::Halted),
            OracleState::Asleep => {
                self.fire_due_timers();
                match self.queue.pop_front() {
                    None => Ok(OracleOutcome::Asleep),
                    Some(ev) => {
                        let wake = self.timing_model.wakeup_latency();
                        self.now += wake;
                        self.wake_time += wake;
                        self.wakeups += 1;
                        self.dispatch(ev);
                        Ok(OracleOutcome::Woke { event: ev })
                    }
                }
            }
            OracleState::Running => self.exec_one(),
        }
    }

    fn read_reg(&mut self, r: Reg, at: u16) -> Result<u16, String> {
        if r.is_msg_port() {
            self.fifo
                .pop_front()
                .ok_or_else(|| format!("at {at:#05x}: read of r15 with empty outgoing FIFO"))
        } else {
            Ok(self.regs[r.index() as usize])
        }
    }

    fn write_reg(&mut self, r: Reg, value: u16, at: u16) -> Result<Option<OracleAction>, String> {
        if r.is_msg_port() {
            self.msg_write(value)
                .map_err(|w| format!("at {at:#05x}: invalid message command {w:#06x}"))
        } else {
            self.regs[r.index() as usize] = value;
            Ok(None)
        }
    }

    fn msg_write(&mut self, word: u16) -> Result<Option<OracleAction>, u16> {
        if self.awaiting_tx_payload {
            self.awaiting_tx_payload = false;
            self.words_tx += 1;
            return Ok(Some(OracleAction::TxWord(word)));
        }
        match MsgCommand::decode(word) {
            Some(MsgCommand::RadioTx) => {
                self.awaiting_tx_payload = true;
                Ok(None)
            }
            Some(MsgCommand::RadioRxOn) => {
                self.rx_enabled = true;
                Ok(Some(OracleAction::RadioMode(true)))
            }
            Some(MsgCommand::RadioOff) => {
                self.rx_enabled = false;
                Ok(Some(OracleAction::RadioMode(false)))
            }
            Some(MsgCommand::QuerySensor(id)) => Ok(Some(OracleAction::Query(id))),
            Some(MsgCommand::PortWrite(v)) => {
                self.port = v;
                Ok(Some(OracleAction::PortWrite(v)))
            }
            None => Err(word),
        }
    }

    fn alu(&mut self, op: AluOp, a: u16, b: u16) -> u16 {
        match op {
            AluOp::Add => {
                let (r, c) = a.overflowing_add(b);
                self.carry = c;
                r
            }
            AluOp::Addc => {
                let sum = a as u32 + b as u32 + self.carry as u32;
                self.carry = sum > 0xffff;
                sum as u16
            }
            AluOp::Sub => {
                let (r, borrow) = a.overflowing_sub(b);
                self.carry = borrow;
                r
            }
            AluOp::Subc => {
                let diff = a as i32 - b as i32 - self.carry as i32;
                self.carry = diff < 0;
                diff as u16
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Slt => ((a as i16) < (b as i16)) as u16,
            AluOp::Sltu => (a < b) as u16,
            AluOp::Mov | AluOp::Not | AluOp::Neg => unreachable!("unary; handled at call site"),
        }
    }

    fn exec_one(&mut self) -> Result<OracleOutcome, String> {
        let at = self.pc;
        let first = self.imem[at as usize & ADDR_MASK];
        let second = if Instruction::first_word_is_two_word(first) {
            Some(self.imem[at.wrapping_add(1) as usize & ADDR_MASK])
        } else {
            None
        };
        let ins = Instruction::decode(first, second).map_err(|e| format!("at {at:#05x}: {e}"))?;

        // Cost model first: timer expiries below must observe the
        // post-instruction time, as on the asynchronous hardware.
        let shape = InstrShape {
            class: ins.class(),
            words: ins.word_count(),
            dmem: ins.accesses_dmem(),
            imem_data: ins.accesses_imem_data(),
        };
        let latency = self.timing_model.instruction_latency(shape);
        self.total_energy += self.energy_model.instruction_energy(shape);
        self.busy += latency;
        self.now += latency;
        self.instructions += 1;
        self.cycles += shape.words as u64 + shape.dmem as u64 + shape.imem_data as u64;

        let fallthrough = at.wrapping_add(ins.word_count() as u16);
        let mut next_pc = fallthrough;
        let mut action = None;

        match ins {
            Instruction::AluReg { op, rd, rs } => {
                let b = self.read_reg(rs, at)?;
                let result = match op {
                    AluOp::Mov => b,
                    AluOp::Not => !b,
                    AluOp::Neg => b.wrapping_neg(),
                    _ => {
                        let a = self.read_reg(rd, at)?;
                        self.alu(op, a, b)
                    }
                };
                action = self.write_reg(rd, result, at)?;
            }
            Instruction::AluImm { op, rd, imm } => {
                let result = match op {
                    AluImmOp::Li => imm,
                    _ => {
                        let a = self.read_reg(rd, at)?;
                        match op {
                            AluImmOp::Addi => self.alu(AluOp::Add, a, imm),
                            AluImmOp::Subi => self.alu(AluOp::Sub, a, imm),
                            AluImmOp::Andi => a & imm,
                            AluImmOp::Ori => a | imm,
                            AluImmOp::Xori => a ^ imm,
                            AluImmOp::Slti => ((a as i16) < (imm as i16)) as u16,
                            AluImmOp::Sltiu => (a < imm) as u16,
                            AluImmOp::Li => unreachable!(),
                        }
                    }
                };
                action = self.write_reg(rd, result, at)?;
            }
            Instruction::ShiftReg { op, rd, rs } => {
                let amount = (self.read_reg(rs, at)? & 0xf) as u32;
                let a = self.read_reg(rd, at)?;
                action = self.write_reg(rd, shift(op, a, amount), at)?;
            }
            Instruction::ShiftImm { op, rd, amount } => {
                let a = self.read_reg(rd, at)?;
                action = self.write_reg(rd, shift(op, a, amount as u32), at)?;
            }
            Instruction::Load { rd, base, offset } => {
                let addr = self.read_reg(base, at)?.wrapping_add(offset);
                let value = self.dmem[addr as usize & ADDR_MASK];
                action = self.write_reg(rd, value, at)?;
            }
            Instruction::Store { rs, base, offset } => {
                let addr = self.read_reg(base, at)?.wrapping_add(offset);
                let value = self.read_reg(rs, at)?;
                self.dmem[addr as usize & ADDR_MASK] = value;
            }
            Instruction::ImemLoad { rd, base, offset } => {
                let addr = self.read_reg(base, at)?.wrapping_add(offset);
                let value = self.imem[addr as usize & ADDR_MASK];
                action = self.write_reg(rd, value, at)?;
            }
            Instruction::ImemStore { rs, base, offset } => {
                let addr = self.read_reg(base, at)?.wrapping_add(offset);
                let value = self.read_reg(rs, at)?;
                self.imem[addr as usize & ADDR_MASK] = value;
            }
            Instruction::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                let a = self.read_reg(ra, at)?;
                let b = if cond.is_unary() {
                    0
                } else {
                    self.read_reg(rb, at)?
                };
                if branch_taken(cond, a, b) {
                    next_pc = target;
                }
            }
            Instruction::Jmp { target } => next_pc = target,
            Instruction::Jal { rd, target } => {
                action = self.write_reg(rd, fallthrough, at)?;
                next_pc = target;
            }
            Instruction::Jr { rs } => next_pc = self.read_reg(rs, at)?,
            Instruction::Jalr { rd, rs } => {
                let target = self.read_reg(rs, at)?;
                action = self.write_reg(rd, fallthrough, at)?;
                next_pc = target;
            }
            Instruction::SchedHi { rt, rv } => {
                let n = self.read_reg(rt, at)?;
                let v = self.read_reg(rv, at)?;
                if n >= 3 {
                    return Err(bad_timer(n, at));
                }
                self.timers[n as usize].staged_hi = (v & 0xff) as u8;
            }
            Instruction::SchedLo { rt, rv } => {
                let n = self.read_reg(rt, at)?;
                let v = self.read_reg(rv, at)?;
                if n >= 3 {
                    return Err(bad_timer(n, at));
                }
                let t = &mut self.timers[n as usize];
                let count = ((t.staged_hi as u32) << 16) | v as u32;
                t.expiry = Some(self.now + self.tick * count as u64);
                self.timers_scheduled += 1;
            }
            Instruction::Cancel { rt } => {
                let n = self.read_reg(rt, at)?;
                if n >= 3 {
                    return Err(bad_timer(n, at));
                }
                if self.timers[n as usize].expiry.take().is_some() {
                    self.timers_cancelled += 1;
                    let ev = [EventKind::Timer0, EventKind::Timer1, EventKind::Timer2][n as usize];
                    self.push_event(ev);
                }
            }
            Instruction::Bfs { rd, rs, mask } => {
                let field = self.read_reg(rs, at)?;
                let a = self.read_reg(rd, at)?;
                action = self.write_reg(rd, (a & !mask) | (field & mask), at)?;
            }
            Instruction::Rand { rd } => {
                let value = self.lfsr_next_word();
                action = self.write_reg(rd, value, at)?;
            }
            Instruction::Seed { rs } => {
                let seed = self.read_reg(rs, at)?;
                self.lfsr = if seed == 0 { 1 } else { seed };
            }
            Instruction::Done => {
                self.fire_due_timers();
                match self.queue.pop_front() {
                    Some(ev) => {
                        self.dispatch(ev);
                        next_pc = self.pc;
                    }
                    None => self.state = OracleState::Asleep,
                }
            }
            Instruction::SetAddr { rev, raddr } => {
                let ev = self.read_reg(rev, at)? as usize % 8;
                let addr = self.read_reg(raddr, at)?;
                self.handler_table[ev] = addr;
            }
            Instruction::Nop => {}
            Instruction::Halt => self.state = OracleState::Halted,
            Instruction::SwEvent { rn } => {
                let n = self.read_reg(rn, at)? as usize % 8;
                let ev = EventKind::from_index(n).expect("index < 8");
                self.push_event(ev);
            }
        }

        if self.state == OracleState::Running {
            self.pc = next_pc;
        }
        self.fire_due_timers();
        Ok(OracleOutcome::Executed { action, ins, at })
    }
}

fn bad_timer(n: u16, at: u16) -> String {
    format!("at {at:#05x}: invalid timer register {n} (valid: 0-2)")
}

fn shift(op: ShiftOp, a: u16, amount: u32) -> u16 {
    match op {
        ShiftOp::Sll => a << amount,
        ShiftOp::Srl => a >> amount,
        ShiftOp::Sra => ((a as i16) >> amount) as u16,
        ShiftOp::Rol => a.rotate_left(amount),
        ShiftOp::Ror => a.rotate_right(amount),
    }
}

fn branch_taken(cond: BranchCond, a: u16, b: u16) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => (a as i16) < (b as i16),
        BranchCond::Ge => (a as i16) >= (b as i16),
        BranchCond::Ltu => a < b,
        BranchCond::Geu => a >= b,
        BranchCond::Eqz => a == 0,
        BranchCond::Nez => a != 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_with(prog: &[Instruction]) -> Oracle {
        let mut o = Oracle::new(0xACE1);
        let words: Vec<u16> = prog.iter().flat_map(|i| i.encode()).collect();
        o.load_image(0, &words);
        o
    }

    fn li(rd: Reg, imm: u16) -> Instruction {
        Instruction::AluImm {
            op: AluImmOp::Li,
            rd,
            imm,
        }
    }

    #[test]
    fn boot_arithmetic() {
        let mut o = oracle_with(&[
            li(Reg::R1, 40),
            li(Reg::R2, 2),
            Instruction::AluReg {
                op: AluOp::Add,
                rd: Reg::R1,
                rs: Reg::R2,
            },
            Instruction::Halt,
        ]);
        for _ in 0..4 {
            o.step().unwrap();
        }
        assert_eq!(o.regs()[1], 42);
        assert_eq!(o.state(), OracleState::Halted);
        assert_eq!(o.instructions(), 4);
    }

    #[test]
    fn done_sleeps_and_event_wakes() {
        let mut o = oracle_with(&[Instruction::Done]);
        o.step().unwrap();
        assert_eq!(o.state(), OracleState::Asleep);
        assert_eq!(o.step().unwrap(), OracleOutcome::Asleep);
        o.post_sensor_irq();
        assert_eq!(
            o.step().unwrap(),
            OracleOutcome::Woke {
                event: EventKind::SensorIrq
            }
        );
        assert_eq!(o.wakeups(), 1);
    }

    #[test]
    fn empty_fifo_read_is_an_error() {
        let mut o = oracle_with(&[Instruction::AluReg {
            op: AluOp::Mov,
            rd: Reg::R1,
            rs: Reg::R15,
        }]);
        let err = o.step().unwrap_err();
        assert!(err.contains("empty outgoing FIFO"), "{err}");
    }
}
