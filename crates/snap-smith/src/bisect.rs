//! Time-travel bisection of differential failures via checkpoints.
//!
//! The fuzzer's end-of-run diff ([`crate::diff::compare`]) names the
//! first differing *field*, but for batched runners (no per-instruction
//! trace) it says nothing about *when* the two universes split. This
//! module localizes that instant:
//!
//! 1. **Checkpoint pass** — both legs run once under one driver,
//!    exporting a [`snap_snapshot::CoreSnapshot`] every `interval`
//!    executed instructions. The snapshot *is* the canonical
//!    architectural observation: two cores agree at a boundary iff
//!    their snapshots are equal modulo the config header (engine and
//!    predecode settings legitimately differ between legs; caches are
//!    never serialized, so warm-vs-cold state cannot leak in).
//! 2. **Binary search** — over the aligned checkpoint boundaries for
//!    the first one where the snapshots differ, giving a divergence
//!    window of at most `interval` instructions.
//! 3. **Replay** — both legs are rebuilt *from their snapshot at the
//!    last agreeing boundary* (not from t = 0) and re-driven one
//!    instruction at a time, comparing state after every executed
//!    instruction, down to the exact count where the universes split.
//!
//! The replay step is also an end-to-end exercise of the snapshot
//! layer: it only finds the same divergence the straight runs showed
//! if restore is bit-exact, AOT re-proof included.
//!
//! Bisection needs snapshot-capable targets, so both legs are core
//! configurations ([`Runner::Oracle`] is rejected). The usual pairing
//! is the stepped interpreter as reference against the diverging
//! batched configuration; [`mutate_script`] supports the other mode —
//! same configuration, deliberately perturbed environment — used to
//! validate the bisector itself against a divergence whose first
//! instant is known by construction.

use crate::diff::{sensor_reply_value, Runner};
use crate::gen::{Script, Stimulus, StimulusKind};
use dess::SimTime;
use snap_asm::Program;
use snap_core::{CoreConfig, CoreState, Engine, EnvAction, Processor, StepOutcome};
use snap_snapshot::CoreSnapshot;

/// Default checkpoint interval, in executed instructions.
pub const DEFAULT_INTERVAL: u64 = 256;

/// One leg of a bisection: a program and environment script run under
/// a snapshot-capable core configuration.
#[derive(Clone)]
pub struct LegSpec<'a> {
    /// The assembled program this leg executes.
    pub program: &'a Program,
    /// The environment script driving this leg.
    pub script: &'a Script,
    /// Core configuration (must not be [`Runner::Oracle`]).
    pub runner: Runner,
}

/// Where and how two legs first split.
#[derive(Debug, Clone)]
pub struct BisectReport {
    /// Checkpoints captured per leg during the first pass.
    pub checkpoints: usize,
    /// Checkpoint interval used, in executed instructions.
    pub interval: u64,
    /// `(last agreeing boundary, first differing boundary)` in executed
    /// instructions; the divergence lies inside this half-open window.
    pub window: (u64, u64),
    /// Executed-instruction count of the checkpoint the replay resumed
    /// from — equals `window.0`, recorded separately as proof the
    /// replay did not start over from zero.
    pub replayed_from: u64,
    /// Exact executed-instruction count at which the two states first
    /// differ (post-injection state, before the next instruction).
    pub first_divergence: u64,
    /// First differing field at that instant, with both values.
    pub detail: String,
}

/// Result of a bisection: either the legs never diverged, or a
/// localized report.
#[derive(Debug, Clone)]
pub enum BisectOutcome {
    /// Both legs ran to completion in bit-identical states.
    Agree,
    /// The legs split; here is where.
    Diverged(BisectReport),
}

/// Insert an extra sensor IRQ at executed-instruction count `at`: a
/// seeded, known-divergent mutation. Two otherwise identical legs
/// driven by `script` and `mutate_script(script, at)` are guaranteed to
/// first differ exactly at `at` (the injected event token lands in the
/// queue snapshot), which is what the bisector's own regression test
/// pins down.
pub fn mutate_script(script: &Script, at: u64) -> Script {
    let mut s = script.clone();
    s.stimuli.push(Stimulus {
        at,
        kind: StimulusKind::SensorIrq,
    });
    s.stimuli.sort_by_key(|s| s.at);
    s
}

/// A resumable, checkpointable core leg. Mirrors the chunked driver in
/// [`crate::diff`] (same injection points, same action responses, same
/// quiescence rules) but can stop at arbitrary executed counts and be
/// rebuilt from a snapshot. Chunk boundaries never change observable
/// state — every tier executes the identical instruction sequence — so
/// states here match the straight differential runs at equal counts.
struct Leg<'a> {
    cpu: Processor,
    burst: bool,
    script: &'a Script,
    executed: u64,
    idx: usize,
}

/// One checkpoint: the architectural state at a boundary plus the
/// driver cursor needed to resume the script there.
struct Checkpoint {
    executed: u64,
    idx: usize,
    snap: CoreSnapshot,
}

/// How a leg's first pass ended.
struct LegEnd {
    executed: u64,
    snap: CoreSnapshot,
    error: Option<String>,
}

fn runner_config(runner: Runner) -> Result<(bool, CoreConfig), String> {
    match runner {
        Runner::Oracle => {
            Err("bisection needs snapshot-capable legs; the oracle cannot checkpoint".into())
        }
        Runner::CoreStep { predecode } => Ok((
            false,
            CoreConfig {
                predecode,
                ..CoreConfig::default()
            },
        )),
        Runner::CoreBurst { predecode, engine } => Ok((
            true,
            CoreConfig {
                predecode,
                engine,
                ..CoreConfig::default()
            },
        )),
    }
}

/// Prove and install tier-2 regions for an AOT core — required after
/// restore too, since compiled blocks are never serialized.
fn install_aot(cpu: &mut Processor) {
    let analysis = snap_lint::analyze_image(cpu.imem().as_words(), cpu.config().operating_point);
    let regions: Vec<snap_core::AotRegion> = analysis
        .regions
        .iter()
        .map(|r| snap_core::AotRegion {
            entry: r.entry,
            addrs: r.addrs.clone(),
        })
        .collect();
    cpu.install_aot(&regions);
}

impl<'a> Leg<'a> {
    fn new(spec: &LegSpec<'a>) -> Result<Leg<'a>, String> {
        let (burst, config) = runner_config(spec.runner)?;
        let mut cpu = Processor::new(config);
        cpu.load_image(0, &spec.program.imem_image())
            .map_err(|e| e.to_string())?;
        cpu.load_data(0, &spec.program.dmem_image())
            .map_err(|e| e.to_string())?;
        if config.engine == Engine::Aot {
            install_aot(&mut cpu);
        }
        Ok(Leg {
            cpu,
            burst,
            script: spec.script,
            executed: 0,
            idx: 0,
        })
    }

    /// Rebuild a leg from a checkpoint — the time-travel entry point.
    fn resume(spec: &LegSpec<'a>, ck: &Checkpoint) -> Result<Leg<'a>, String> {
        let (burst, _) = runner_config(spec.runner)?;
        let mut cpu = Processor::from_snapshot(&ck.snap).map_err(|e| e.to_string())?;
        if cpu.config().engine == Engine::Aot {
            install_aot(&mut cpu);
        }
        Ok(Leg {
            cpu,
            burst,
            script: spec.script,
            executed: ck.executed,
            idx: ck.idx,
        })
    }

    fn inject(&mut self, kind: StimulusKind) {
        match kind {
            StimulusKind::SensorIrq => {
                self.cpu.post_sensor_irq();
            }
            StimulusKind::RadioRx(w) => {
                self.cpu.post_radio_rx(w);
            }
        }
    }

    fn run_chunk(&mut self, budget: u64) -> Result<(u64, Option<EnvAction>), String> {
        if self.burst {
            let b = self
                .cpu
                .run_burst(SimTime::from_ps(u64::MAX), budget)
                .map_err(|e| e.to_string())?;
            return Ok((b.steps, b.action));
        }
        let mut steps = 0;
        while steps < budget && self.cpu.state() == CoreState::Running {
            match self.cpu.step().map_err(|e| e.to_string())? {
                StepOutcome::Executed { action, .. } => {
                    steps += 1;
                    if action.is_some() {
                        return Ok((steps, action));
                    }
                }
                _ => break,
            }
        }
        Ok((steps, None))
    }

    /// Drive until the post-injection state at exactly `target`
    /// executed instructions. `Ok(true)` means the target was reached;
    /// `Ok(false)` means the run ended first (halt, instruction budget,
    /// or quiescent with the script drained).
    fn advance_to(&mut self, target: u64) -> Result<bool, String> {
        loop {
            while self.idx < self.script.stimuli.len()
                && self.script.stimuli[self.idx].at <= self.executed
            {
                let kind = self.script.stimuli[self.idx].kind;
                self.inject(kind);
                self.idx += 1;
            }
            if self.executed >= target {
                return Ok(true);
            }
            if self.executed >= self.script.max_instructions
                || self.cpu.state() == CoreState::Halted
            {
                return Ok(false);
            }
            if self.cpu.state() == CoreState::Asleep {
                let outcome = self.cpu.step().map_err(|e| e.to_string())?;
                if matches!(outcome, StepOutcome::Woke { .. }) {
                    continue;
                }
                if let Some(exp) = self.cpu.next_timer_expiry() {
                    self.cpu.advance_idle(exp);
                    continue;
                }
                if self.idx < self.script.stimuli.len() {
                    let kind = self.script.stimuli[self.idx].kind;
                    self.inject(kind);
                    self.idx += 1;
                    continue;
                }
                return Ok(false);
            }
            let next_at = self
                .script
                .stimuli
                .get(self.idx)
                .map_or(u64::MAX, |s| s.at)
                .min(self.script.max_instructions)
                .min(target);
            let budget = next_at - self.executed;
            let before = self.executed;
            let (steps, action) = self.run_chunk(budget)?;
            self.executed += steps;
            if let Some(a) = action {
                match a {
                    EnvAction::TxWord(_) => {
                        self.cpu.post_radio_tx_done();
                    }
                    EnvAction::Query(id) => {
                        self.cpu.post_sensor_reply(sensor_reply_value(id));
                    }
                    EnvAction::RadioMode(_) | EnvAction::PortWrite(_) => {}
                }
            } else if self.executed == before && self.cpu.state() == CoreState::Running {
                return Err("bisect driver stalled: running target made no progress".into());
            }
        }
    }

    fn snapshot(&self) -> CoreSnapshot {
        self.cpu.export_snapshot()
    }
}

/// First pass: run a leg to completion, checkpointing at every
/// multiple of `interval`. A leg that errors mid-run keeps its
/// checkpoints; the error becomes part of the end observation (errors
/// must be deterministic too).
fn run_with_checkpoints(
    spec: &LegSpec<'_>,
    interval: u64,
) -> Result<(Vec<Checkpoint>, LegEnd), String> {
    let mut leg = Leg::new(spec)?;
    let mut cks = Vec::new();
    let mut boundary = 0u64;
    loop {
        match leg.advance_to(boundary) {
            Ok(true) => {
                cks.push(Checkpoint {
                    executed: leg.executed,
                    idx: leg.idx,
                    snap: leg.snapshot(),
                });
                boundary += interval;
            }
            Ok(false) => {
                return Ok((
                    cks,
                    LegEnd {
                        executed: leg.executed,
                        snap: leg.snapshot(),
                        error: None,
                    },
                ));
            }
            Err(e) => {
                return Ok((
                    cks,
                    LegEnd {
                        executed: leg.executed,
                        snap: leg.snapshot(),
                        error: Some(e),
                    },
                ));
            }
        }
    }
}

/// Architectural equality: everything in the snapshot except the
/// config header, which legitimately differs between legs (engine,
/// predecode) without being observable state.
fn arch_eq(a: &CoreSnapshot, b: &CoreSnapshot) -> bool {
    let mut b = b.clone();
    b.config = a.config.clone();
    *a == b
}

/// First differing architectural field, with both values. `None` when
/// the states agree.
fn snapshot_diff(a: &CoreSnapshot, b: &CoreSnapshot) -> Option<String> {
    macro_rules! field {
        ($name:ident) => {
            if a.$name != b.$name {
                return Some(format!(
                    "{} mismatch:\n  reference: {:?}\n  suspect:   {:?}",
                    stringify!($name),
                    a.$name,
                    b.$name
                ));
            }
        };
    }
    field!(pc);
    field!(regs);
    field!(carry);
    field!(state);
    field!(now_ps);
    field!(queue);
    field!(current_event);
    field!(handler_table);
    field!(lfsr);
    field!(timers);
    field!(msg);
    field!(acct);
    field!(profile);
    field!(sleep_ps);
    field!(wakeup_ps);
    field!(wakeups);
    field!(handlers_dispatched);
    if let Some(i) = a.dmem.iter().zip(&b.dmem).position(|(x, y)| x != y) {
        return Some(format!(
            "dmem[{i:#05x}] mismatch: reference {:#06x}, suspect {:#06x}",
            a.dmem[i], b.dmem[i]
        ));
    }
    if let Some(i) = a.imem.iter().zip(&b.imem).position(|(x, y)| x != y) {
        return Some(format!(
            "imem[{i:#05x}] mismatch: reference {:#06x}, suspect {:#06x}",
            a.imem[i], b.imem[i]
        ));
    }
    None
}

/// Bisect two legs down to the first executed-instruction count where
/// their architectural states differ.
///
/// # Errors
///
/// Infrastructure failures only (un-snapshotable runner, corrupt
/// restore, image load): a divergence between the legs — including one
/// leg erroring while the other runs on — is a [`BisectOutcome`], not
/// an `Err`.
pub fn bisect(
    reference: &LegSpec<'_>,
    suspect: &LegSpec<'_>,
    interval: u64,
) -> Result<BisectOutcome, String> {
    let interval = interval.max(1);
    let (ref_cks, ref_end) = run_with_checkpoints(reference, interval)?;
    let (sus_cks, sus_end) = run_with_checkpoints(suspect, interval)?;
    let common = ref_cks.len().min(sus_cks.len());

    // Binary search the aligned boundaries for the first disagreement.
    // (Divergence is monotone here: once the states split, re-merging
    // would itself be a determinism bug.)
    let mut lo = 0usize; // boundaries [0, lo) agree
    let mut hi = common; // first disagreement is < hi, if any
    let mut found = None;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if arch_eq(&ref_cks[mid].snap, &sus_cks[mid].snap) {
            lo = mid + 1;
        } else {
            found = Some(mid);
            hi = mid;
        }
    }

    let (from_ck, window_hi) = match found {
        Some(0) => {
            // Split before the first boundary: nothing to resume from.
            let detail = snapshot_diff(&ref_cks[0].snap, &sus_cks[0].snap)
                .unwrap_or_else(|| "initial states differ".into());
            return Ok(BisectOutcome::Diverged(BisectReport {
                checkpoints: common,
                interval,
                window: (0, ref_cks[0].executed),
                replayed_from: 0,
                first_divergence: ref_cks[0].executed,
                detail,
            }));
        }
        Some(k) => (k - 1, ref_cks[k].executed),
        None => {
            // Every common boundary agrees. The runs can still differ
            // past the last one: in length, in final state, or in
            // error status.
            let ends_agree = ref_cks.len() == sus_cks.len()
                && ref_end.executed == sus_end.executed
                && ref_end.error == sus_end.error
                && arch_eq(&ref_end.snap, &sus_end.snap);
            if ends_agree {
                return Ok(BisectOutcome::Agree);
            }
            if common == 0 {
                return Ok(BisectOutcome::Diverged(BisectReport {
                    checkpoints: 0,
                    interval,
                    window: (0, ref_end.executed.max(sus_end.executed)),
                    replayed_from: 0,
                    first_divergence: ref_end.executed.min(sus_end.executed),
                    detail: end_detail(&ref_end, &sus_end),
                }));
            }
            (common - 1, ref_end.executed.max(sus_end.executed))
        }
    };

    // Replay from the last agreeing checkpoint, one instruction at a
    // time. Small slack past the window guards the boundary case where
    // the split lands exactly on `window_hi`.
    let start = ref_cks[from_ck].executed;
    let mut r = Leg::resume(reference, &ref_cks[from_ck])?;
    let mut s = Leg::resume(suspect, &sus_cks[from_ck])?;
    let cap = window_hi + interval;
    let mut e = start;
    let (first_divergence, detail) = loop {
        e += 1;
        if e > cap {
            break (
                window_hi,
                "divergence seen at the checkpoint boundary but not reproduced in replay \
                 (non-deterministic leg?)"
                    .into(),
            );
        }
        let ra = r.advance_to(e);
        let sa = s.advance_to(e);
        match (ra, sa) {
            (Err(re), Err(se)) if re == se => {
                break (e, format!("both legs failed identically: {re}"));
            }
            (Err(re), sb) => {
                break (
                    e,
                    format!("reference failed ({re}) but suspect {}", advance_desc(&sb)),
                );
            }
            (ra, Err(se)) => {
                break (
                    e,
                    format!("suspect failed ({se}) but reference {}", advance_desc(&ra)),
                );
            }
            (Ok(ca), Ok(cb)) => {
                if let Some(d) = snapshot_diff(&r.snapshot(), &s.snapshot()) {
                    break (r.executed.max(s.executed), d);
                }
                if ca != cb {
                    break (
                        e,
                        format!(
                            "run length mismatch: reference {} at {}, suspect {} at {}",
                            end_word(ca),
                            r.executed,
                            end_word(cb),
                            s.executed
                        ),
                    );
                }
                if !ca {
                    // Both ended, states equal: the boundary diff must
                    // have come from later end-of-run observations.
                    break (e, end_detail(&ref_end, &sus_end));
                }
            }
        }
    };

    Ok(BisectOutcome::Diverged(BisectReport {
        checkpoints: common,
        interval,
        window: (start, window_hi),
        replayed_from: start,
        first_divergence,
        detail,
    }))
}

fn advance_desc(r: &Result<bool, String>) -> String {
    match r {
        Ok(true) => "kept running".into(),
        Ok(false) => "ended".into(),
        Err(e) => format!("failed ({e})"),
    }
}

fn end_word(still_running: bool) -> &'static str {
    if still_running {
        "still running"
    } else {
        "ended"
    }
}

fn end_detail(a: &LegEnd, b: &LegEnd) -> String {
    if a.error != b.error {
        return format!(
            "end error mismatch:\n  reference: {:?}\n  suspect:   {:?}",
            a.error, b.error
        );
    }
    if a.executed != b.executed {
        return format!(
            "run length mismatch: reference ended at {}, suspect at {}",
            a.executed, b.executed
        );
    }
    snapshot_diff(&a.snap, &b.snap).unwrap_or_else(|| "final states differ".into())
}

/// Render a report the way the CLI prints it.
pub fn format_report(r: &BisectReport) -> String {
    format!(
        "bisect: {} checkpoints every {} instructions\n\
         bisect: divergence window ({}, {}] — replayed from the checkpoint at {}, not from 0\n\
         bisect: first divergent state at instruction {}\n\
         {}",
        r.checkpoints,
        r.interval,
        r.window.0,
        r.window.1,
        r.replayed_from,
        r.first_divergence,
        r.detail
    )
}
