//! The differential driver: one program, one deterministic environment
//! script, many implementations — all observations must be bit-equal.
//!
//! The same scripted environment drives the naive oracle and
//! `snap-core`'s `Processor` in every configuration pair (predecode
//! on/off × single-step vs `run_burst`). The environment is a pure
//! function of execution: stimuli fire at fixed executed-instruction
//! counts, transmitted words complete immediately, sensor queries are
//! answered with a hash of the sensor id. Because every implementation
//! executes the same instruction sequence, the script unfolds
//! identically — any observable difference (registers, memories, event
//! order, traces, energy *bits*) is a conformance bug.

use crate::gen::{Script, StimulusKind};
use crate::oracle::{Oracle, OracleAction, OracleOutcome, OracleState};
use dess::SimTime;
use snap_asm::Program;
use snap_core::{CoreConfig, CoreState, Engine, EnvAction, Processor, StepOutcome};
use snap_isa::{EventKind, Instruction, Reg};

/// Which implementation/configuration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Runner {
    /// The naive reference interpreter.
    Oracle,
    /// `snap_core::Processor` via `step()`, predecode on/off (`step`
    /// always interprets, whatever the engine).
    CoreStep {
        /// Decode-cache configuration under test.
        predecode: bool,
    },
    /// `snap_core::Processor` via `run_burst()`, predecode on/off ×
    /// translation tier. [`Engine::Aot`] additionally runs snap-lint
    /// over the program and installs every proved handler region, so
    /// generated `isw` self-modification and unproven fallback edges
    /// are exercised too.
    CoreBurst {
        /// Decode-cache configuration under test.
        predecode: bool,
        /// Translation tier under test.
        engine: Engine,
    },
}

impl Runner {
    /// All core configurations the oracle is diffed against: the
    /// stepped interpreter and every batched tier, each against both
    /// decode-cache settings where that changes the code path
    /// (`predecode: false` pins every tier to the interpreter, so the
    /// fused/AOT × no-predecode cells would duplicate the interp row).
    pub const CORE_CONFIGS: [Runner; 6] = [
        Runner::CoreStep { predecode: false },
        Runner::CoreStep { predecode: true },
        Runner::CoreBurst {
            predecode: false,
            engine: Engine::Interp,
        },
        Runner::CoreBurst {
            predecode: true,
            engine: Engine::Interp,
        },
        Runner::CoreBurst {
            predecode: true,
            engine: Engine::Fused,
        },
        Runner::CoreBurst {
            predecode: true,
            engine: Engine::Aot,
        },
    ];

    /// Short human-readable label.
    pub fn label(&self) -> String {
        match self {
            Runner::Oracle => "oracle".into(),
            Runner::CoreStep { predecode } => format!("core-step/predecode={predecode}"),
            Runner::CoreBurst { predecode, engine } => {
                let engine = match engine {
                    Engine::Interp => "interp",
                    Engine::Fused => "fused",
                    Engine::Aot => "aot",
                };
                format!("core-burst/predecode={predecode}/engine={engine}")
            }
        }
    }
}

/// Everything observable about a finished run, in bit-comparable form.
#[derive(Debug, Clone, PartialEq)]
pub struct Observed {
    /// Architectural registers `r0`–`r14`.
    pub regs: [u16; 15],
    /// Carry flag.
    pub carry: bool,
    /// Final program counter.
    pub pc: u16,
    /// Final activity state (0 running, 1 asleep, 2 halted).
    pub state: u8,
    /// Data memory contents.
    pub dmem: Vec<u16>,
    /// Instruction memory contents (after any self-modification).
    pub imem: Vec<u16>,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Occupancy cycles.
    pub cycles: u64,
    /// Total energy, as raw `f64` bits.
    pub energy_bits: u64,
    /// Busy time in picoseconds.
    pub busy_ps: u64,
    /// Sleep time in picoseconds.
    pub sleep_ps: u64,
    /// Final simulated time in picoseconds.
    pub now_ps: u64,
    /// Idle→active transitions.
    pub wakeups: u64,
    /// Handlers dispatched.
    pub handlers: u64,
    /// Dispatches per event-table index.
    pub dispatches: [u64; 8],
    /// Event tokens enqueued.
    pub events_inserted: u64,
    /// Event tokens dropped at a full queue.
    pub events_dropped: u64,
    /// Event kinds still queued at the end, head first.
    pub queue: Vec<EventKind>,
    /// Timer counters: scheduled, expired, cancelled.
    pub timers: (u64, u64, u64),
    /// Message counters: words transmitted, words received.
    pub msg_words: (u64, u64),
    /// Outgoing-FIFO depth at the end.
    pub fifo_len: usize,
    /// Last output-port value.
    pub port: u16,
    /// Every environment action, in order.
    pub actions: Vec<OracleAction>,
}

/// One finished run: the observation plus (for stepping runners) the
/// full executed-instruction trace.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The comparable observation.
    pub observed: Observed,
    /// `(address, instruction)` per executed instruction; `None` for
    /// burst runners (the batched path exposes no per-instruction
    /// outcome — that asymmetry is part of what the diff covers).
    pub trace: Option<Vec<(u16, Instruction)>>,
}

/// A run either finishes with an observation or fails with an error
/// string; errors must match across implementations too.
pub type RunResult = Result<RunOutput, String>;

/// Deterministic sensor reading for a query of `id`.
pub fn sensor_reply_value(id: u16) -> u16 {
    id.wrapping_mul(0x9E37) ^ 0x55AA
}

fn convert(action: EnvAction) -> OracleAction {
    match action {
        EnvAction::TxWord(w) => OracleAction::TxWord(w),
        EnvAction::RadioMode(b) => OracleAction::RadioMode(b),
        EnvAction::Query(id) => OracleAction::Query(id),
        EnvAction::PortWrite(v) => OracleAction::PortWrite(v),
    }
}

/// The driver's view of a machine under test.
trait Target {
    fn is_halted(&self) -> bool;
    fn is_asleep(&self) -> bool;
    /// While asleep: attempt to wake; `true` when a handler was
    /// dispatched.
    fn wake(&mut self) -> Result<bool, String>;
    fn next_timer_expiry(&self) -> Option<SimTime>;
    fn advance_idle(&mut self, to: SimTime);
    fn post_irq(&mut self);
    fn post_rx(&mut self, word: u16);
    fn post_tx_done(&mut self);
    fn post_sensor_reply(&mut self, word: u16);
    /// While running: execute up to `budget` instructions; stops early
    /// at an environment action or when leaving the running state.
    fn run_chunk(
        &mut self,
        budget: u64,
        trace: &mut Option<Vec<(u16, Instruction)>>,
    ) -> Result<(u64, Option<OracleAction>), String>;
}

impl Target for Oracle {
    fn is_halted(&self) -> bool {
        self.state() == OracleState::Halted
    }
    fn is_asleep(&self) -> bool {
        self.state() == OracleState::Asleep
    }
    fn wake(&mut self) -> Result<bool, String> {
        Ok(matches!(self.step()?, OracleOutcome::Woke { .. }))
    }
    fn next_timer_expiry(&self) -> Option<SimTime> {
        Oracle::next_timer_expiry(self)
    }
    fn advance_idle(&mut self, to: SimTime) {
        Oracle::advance_idle(self, to);
    }
    fn post_irq(&mut self) {
        self.post_sensor_irq();
    }
    fn post_rx(&mut self, word: u16) {
        self.post_radio_rx(word);
    }
    fn post_tx_done(&mut self) {
        self.post_radio_tx_done();
    }
    fn post_sensor_reply(&mut self, word: u16) {
        Oracle::post_sensor_reply(self, word);
    }
    fn run_chunk(
        &mut self,
        budget: u64,
        trace: &mut Option<Vec<(u16, Instruction)>>,
    ) -> Result<(u64, Option<OracleAction>), String> {
        let mut steps = 0;
        while steps < budget && self.state() == OracleState::Running {
            match self.step()? {
                OracleOutcome::Executed { action, ins, at } => {
                    steps += 1;
                    if let Some(t) = trace {
                        t.push((at, ins));
                    }
                    if let Some(a) = action {
                        return Ok((steps, Some(a)));
                    }
                }
                _ => break,
            }
        }
        Ok((steps, None))
    }
}

struct CoreTarget {
    cpu: Processor,
    burst: bool,
}

impl Target for CoreTarget {
    fn is_halted(&self) -> bool {
        self.cpu.state() == CoreState::Halted
    }
    fn is_asleep(&self) -> bool {
        self.cpu.state() == CoreState::Asleep
    }
    fn wake(&mut self) -> Result<bool, String> {
        let outcome = self.cpu.step().map_err(|e| e.to_string())?;
        Ok(matches!(outcome, StepOutcome::Woke { .. }))
    }
    fn next_timer_expiry(&self) -> Option<SimTime> {
        self.cpu.next_timer_expiry()
    }
    fn advance_idle(&mut self, to: SimTime) {
        self.cpu.advance_idle(to);
    }
    fn post_irq(&mut self) {
        self.cpu.post_sensor_irq();
    }
    fn post_rx(&mut self, word: u16) {
        self.cpu.post_radio_rx(word);
    }
    fn post_tx_done(&mut self) {
        self.cpu.post_radio_tx_done();
    }
    fn post_sensor_reply(&mut self, word: u16) {
        self.cpu.post_sensor_reply(word);
    }
    fn run_chunk(
        &mut self,
        budget: u64,
        trace: &mut Option<Vec<(u16, Instruction)>>,
    ) -> Result<(u64, Option<OracleAction>), String> {
        if self.burst {
            let burst = self
                .cpu
                .run_burst(SimTime::from_ps(u64::MAX), budget)
                .map_err(|e| e.to_string())?;
            return Ok((burst.steps, burst.action.map(convert)));
        }
        let mut steps = 0;
        while steps < budget && self.cpu.state() == CoreState::Running {
            match self.cpu.step().map_err(|e| e.to_string())? {
                StepOutcome::Executed { action, ins, at } => {
                    steps += 1;
                    if let Some(t) = trace {
                        t.push((at, ins));
                    }
                    if let Some(a) = action {
                        return Ok((steps, Some(convert(a))));
                    }
                }
                _ => break,
            }
        }
        Ok((steps, None))
    }
}

fn inject<T: Target>(t: &mut T, kind: StimulusKind) {
    match kind {
        StimulusKind::SensorIrq => t.post_irq(),
        StimulusKind::RadioRx(w) => t.post_rx(w),
    }
}

/// Assemble-and-run is split so callers with an existing [`Program`]
/// (e.g. golden-trace tests over `snap-apps`) can reuse the driver.
pub fn run_program(program: &Program, script: &Script, runner: Runner) -> RunResult {
    match runner {
        Runner::Oracle => {
            let mut o = Oracle::new(CoreConfig::default().lfsr_seed);
            o.load_image(0, &program.imem_image());
            o.load_data(0, &program.dmem_image());
            let mut trace = Some(Vec::new());
            let actions = drive_traced(&mut o, script, &mut trace)?;
            Ok(RunOutput {
                observed: observe_oracle(&o, actions),
                trace,
            })
        }
        Runner::CoreStep { predecode } | Runner::CoreBurst { predecode, .. } => {
            let burst = matches!(runner, Runner::CoreBurst { .. });
            let engine = match runner {
                Runner::CoreBurst { engine, .. } => engine,
                _ => Engine::default(),
            };
            let config = CoreConfig {
                predecode,
                engine,
                ..CoreConfig::default()
            };
            let mut cpu = Processor::new(config);
            cpu.load_image(0, &program.imem_image())
                .map_err(|e| e.to_string())?;
            cpu.load_data(0, &program.dmem_image())
                .map_err(|e| e.to_string())?;
            if engine == Engine::Aot {
                // Tier 2 under test: prove and compile whatever the
                // analyzer can; everything else falls back.
                let analysis = snap_lint::analyze_program(program, config.operating_point);
                let regions: Vec<snap_core::AotRegion> = analysis
                    .regions
                    .iter()
                    .map(|r| snap_core::AotRegion {
                        entry: r.entry,
                        addrs: r.addrs.clone(),
                    })
                    .collect();
                cpu.install_aot(&regions);
            }
            let mut target = CoreTarget { cpu, burst };
            let mut trace = if burst { None } else { Some(Vec::new()) };
            let actions = drive_traced(&mut target, script, &mut trace)?;
            Ok(RunOutput {
                observed: observe_core(&target.cpu, actions),
                trace,
            })
        }
    }
}

/// Run the program on a sampling stepped `Processor` through the
/// script, returning the finished cpu (for its per-dispatch handler
/// samples) and the executed-instruction trace. This is the dynamic
/// side of the `snap-lint` soundness cross-check (see
/// [`crate::soundness`]): the trace checks static reachability, the
/// samples check termination verdicts and worst-case bounds.
pub fn run_core_sampled(
    program: &Program,
    script: &Script,
    retain: usize,
) -> Result<(Processor, Vec<(u16, Instruction)>), String> {
    let mut cpu = Processor::new(CoreConfig::default());
    cpu.enable_sampling(retain);
    cpu.load_image(0, &program.imem_image())
        .map_err(|e| e.to_string())?;
    cpu.load_data(0, &program.dmem_image())
        .map_err(|e| e.to_string())?;
    let mut target = CoreTarget { cpu, burst: false };
    let mut trace = Some(Vec::new());
    drive_traced(&mut target, script, &mut trace)?;
    Ok((target.cpu, trace.unwrap_or_default()))
}

/// Drive a target through the script; returns the ordered action log.
/// The executed-instruction trace (when requested) is appended to
/// `trace` by `run_chunk`.
fn drive_traced<T: Target>(
    t: &mut T,
    script: &Script,
    trace: &mut Option<Vec<(u16, Instruction)>>,
) -> Result<Vec<OracleAction>, String> {
    let mut executed = 0u64;
    let mut idx = 0usize;
    let mut actions = Vec::new();
    loop {
        while idx < script.stimuli.len() && script.stimuli[idx].at <= executed {
            inject(t, script.stimuli[idx].kind);
            idx += 1;
        }
        if executed >= script.max_instructions || t.is_halted() {
            break;
        }
        if t.is_asleep() {
            if t.wake()? {
                continue;
            }
            if let Some(exp) = t.next_timer_expiry() {
                t.advance_idle(exp);
                continue;
            }
            if idx < script.stimuli.len() {
                inject(t, script.stimuli[idx].kind);
                idx += 1;
                continue;
            }
            break;
        }
        let next_at = script
            .stimuli
            .get(idx)
            .map_or(u64::MAX, |s| s.at)
            .min(script.max_instructions);
        let budget = next_at - executed;
        let before = executed;
        let (steps, action) = t.run_chunk(budget, trace)?;
        executed += steps;
        if let Some(a) = action {
            actions.push(a);
            match a {
                OracleAction::TxWord(_) => t.post_tx_done(),
                OracleAction::Query(id) => t.post_sensor_reply(sensor_reply_value(id)),
                OracleAction::RadioMode(_) | OracleAction::PortWrite(_) => {}
            }
        } else if executed == before && !t.is_asleep() && !t.is_halted() {
            return Err("driver stalled: running target made no progress".into());
        }
    }
    Ok(actions)
}

fn observe_oracle(o: &Oracle, actions: Vec<OracleAction>) -> Observed {
    let (inserted, dropped) = o.queue_counts();
    Observed {
        regs: *o.regs(),
        carry: o.carry(),
        pc: o.pc(),
        state: match o.state() {
            OracleState::Running => 0,
            OracleState::Asleep => 1,
            OracleState::Halted => 2,
        },
        dmem: o.dmem().to_vec(),
        imem: o.imem().to_vec(),
        instructions: o.instructions(),
        cycles: o.cycles(),
        energy_bits: o.total_energy().as_pj().to_bits(),
        busy_ps: o.busy_time().as_ps(),
        sleep_ps: o.sleep_time().as_ps(),
        now_ps: o.now().as_ps(),
        wakeups: o.wakeups(),
        handlers: o.handlers_dispatched(),
        dispatches: *o.dispatches(),
        events_inserted: inserted,
        events_dropped: dropped,
        queue: o.queue_contents(),
        timers: o.timer_counts(),
        msg_words: o.msg_counts(),
        fifo_len: o.fifo_len(),
        port: o.port(),
        actions,
    }
}

fn observe_core(cpu: &Processor, actions: Vec<OracleAction>) -> Observed {
    let stats = cpu.stats();
    let mut regs = [0u16; 15];
    for (i, slot) in regs.iter_mut().enumerate() {
        *slot = cpu.regs().read(Reg::ALL[i]);
    }
    let mut dispatches = [0u64; 8];
    for (i, slot) in dispatches.iter_mut().enumerate() {
        *slot = cpu.profile().event(EventKind::ALL[i]).dispatches;
    }
    let mut queue = Vec::new();
    let mut q = cpu.event_queue().clone();
    while let Some(token) = q.pop() {
        queue.push(token.kind());
    }
    Observed {
        regs,
        carry: cpu.regs().carry(),
        pc: cpu.pc(),
        state: match cpu.state() {
            CoreState::Running => 0,
            CoreState::Asleep => 1,
            CoreState::Halted => 2,
        },
        dmem: cpu.dmem().as_words().to_vec(),
        imem: cpu.imem().as_words().to_vec(),
        instructions: stats.instructions,
        cycles: stats.cycles,
        energy_bits: stats.energy.as_pj().to_bits(),
        busy_ps: stats.busy_time.as_ps(),
        sleep_ps: stats.sleep_time.as_ps(),
        now_ps: stats.now.as_ps(),
        wakeups: stats.wakeups,
        handlers: stats.handlers_dispatched,
        dispatches,
        events_inserted: stats.events_inserted,
        events_dropped: stats.events_dropped,
        queue,
        timers: (
            cpu.timers().scheduled(),
            cpu.timers().expired(),
            cpu.timers().cancelled(),
        ),
        msg_words: (cpu.msg().words_transmitted(), cpu.msg().words_received()),
        fifo_len: cpu.msg().outgoing_len(),
        port: cpu.msg().port(),
        actions,
    }
}

/// Compare two run results; `None` when they agree, else a description
/// of the first difference found.
pub fn compare(reference: &RunResult, got: &RunResult) -> Option<String> {
    match (reference, got) {
        (Err(a), Err(b)) => {
            if a == b {
                None
            } else {
                Some(format!(
                    "error mismatch:\n  reference: {a}\n  got:       {b}"
                ))
            }
        }
        (Err(a), Ok(_)) => Some(format!("reference failed ({a}) but run succeeded")),
        (Ok(_), Err(b)) => Some(format!("reference succeeded but run failed ({b})")),
        (Ok(a), Ok(b)) => compare_outputs(a, b),
    }
}

fn compare_outputs(a: &RunOutput, b: &RunOutput) -> Option<String> {
    macro_rules! field {
        ($name:ident) => {
            if a.observed.$name != b.observed.$name {
                return Some(format!(
                    "{} mismatch:\n  reference: {:?}\n  got:       {:?}",
                    stringify!($name),
                    a.observed.$name,
                    b.observed.$name
                ));
            }
        };
    }
    field!(instructions);
    field!(regs);
    field!(carry);
    field!(pc);
    field!(state);
    field!(cycles);
    field!(energy_bits);
    field!(busy_ps);
    field!(sleep_ps);
    field!(now_ps);
    field!(wakeups);
    field!(handlers);
    field!(dispatches);
    field!(events_inserted);
    field!(events_dropped);
    field!(queue);
    field!(timers);
    field!(msg_words);
    field!(fifo_len);
    field!(port);
    field!(actions);
    if let Some(i) = first_mem_diff(&a.observed.dmem, &b.observed.dmem) {
        return Some(format!(
            "dmem[{i:#05x}] mismatch: reference {:#06x}, got {:#06x}",
            a.observed.dmem[i], b.observed.dmem[i]
        ));
    }
    if let Some(i) = first_mem_diff(&a.observed.imem, &b.observed.imem) {
        return Some(format!(
            "imem[{i:#05x}] mismatch: reference {:#06x}, got {:#06x}",
            a.observed.imem[i], b.observed.imem[i]
        ));
    }
    if let (Some(ta), Some(tb)) = (&a.trace, &b.trace) {
        if ta != tb {
            let i = ta
                .iter()
                .zip(tb.iter())
                .position(|(x, y)| x != y)
                .unwrap_or(ta.len().min(tb.len()));
            return Some(format!(
                "trace mismatch at instruction {i}:\n  reference: {:?}\n  got:       {:?}",
                ta.get(i),
                tb.get(i)
            ));
        }
    }
    None
}

fn first_mem_diff(a: &[u16], b: &[u16]) -> Option<usize> {
    a.iter().zip(b.iter()).position(|(x, y)| x != y)
}

/// A divergence between the oracle and one core configuration.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Label of the diverging configuration.
    pub config: String,
    /// First differing field, with both values.
    pub detail: String,
}

/// Run `program` under the oracle and every core configuration in
/// [`Runner::CORE_CONFIGS`];
/// `None` when everything is bit-identical.
pub fn check_program(program: &Program, script: &Script) -> Option<Divergence> {
    let reference = run_program(program, script, Runner::Oracle);
    for runner in Runner::CORE_CONFIGS {
        let got = run_program(program, script, runner);
        if let Some(detail) = compare(&reference, &got) {
            return Some(Divergence {
                config: runner.label(),
                detail,
            });
        }
    }
    None
}

/// Assemble `source` and [`check_program`] it. Assembly failure is
/// reported as a divergence of the `assembler` stage.
pub fn check_source(source: &str, script: &Script) -> Option<Divergence> {
    match snap_asm::assemble(source) {
        Ok(program) => check_program(&program, script),
        Err(e) => Some(Divergence {
            config: "assembler".into(),
            detail: e.to_string(),
        }),
    }
}
