//! Dynamic soundness cross-check for `snap-lint`.
//!
//! The static analyzer makes three claims a real execution can refute:
//!
//! 1. **Reachability** — every executed instruction address must be in
//!    the analysis' reachable set (unless the analysis degraded and
//!    said so);
//! 2. **Termination** — a handler whose verdict is `Never` must never
//!    complete a dispatch;
//! 3. **Bounds** — no completed dispatch of a bounded handler may
//!    execute more dynamic instructions, or consume more energy, than
//!    its static worst-case bound.
//! 4. **Flow** — the whole-image event-flow chains bound what a *pure
//!    software burst* can do: starting from a single wake token, with
//!    every insertion during the burst a successful `swev`, the queue
//!    depth at each dispatch boundary, the number of dispatches until
//!    the queue drains, the energy of the whole burst and the `swev`
//!    posts of any single dispatch must all stay within the chain
//!    report for the wake event. Bursts with external interleavings
//!    (timer expiries, radio completions, scripted events) are exactly
//!    what the static chain model excludes, so they are filtered out
//!    by the purity test, not checked against it.
//!
//! Each seed generates a random program + environment script (the same
//! generator the differential fuzzer uses), runs it on a sampling
//! `Processor`, and checks every retained dispatch sample and every
//! traced pc against the static report. Any violation is a bug in the
//! analyzer — the fuzzer found programs the app suite never writes.

use crate::diff::run_core_sampled;
use crate::gen::generate;
use snap_energy::OperatingPoint;
use snap_isa::EventKind;
use snap_lint::Termination;

/// What one seed contributed to the cross-check.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeedStats {
    /// Executed pcs checked against the reachable set.
    pub pcs_checked: u64,
    /// Completed dispatch samples checked against verdicts/bounds.
    pub samples_checked: u64,
    /// Pure software bursts checked against the event-flow chains.
    pub bursts_checked: u64,
    /// Dispatch samples inside those bursts checked against the static
    /// queue-depth / post-count claims.
    pub flow_samples_checked: u64,
    /// The run's event-queue high-water mark.
    pub max_queue_depth: u64,
    /// True when the run ended in a fault/stall and only static
    /// analysis ran (nothing dynamic to compare).
    pub run_failed: bool,
    /// True when the analysis degraded (reachability and bounds make
    /// no whole-program claim, so only termination-`Never` is checked).
    pub degraded: bool,
}

/// Aggregate over a whole soundness run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoundnessReport {
    /// Seeds processed.
    pub seeds: u64,
    /// Seeds whose dynamic run faulted or stalled.
    pub run_failures: u64,
    /// Seeds whose analysis degraded.
    pub degraded: u64,
    /// Total executed pcs checked.
    pub pcs_checked: u64,
    /// Total dispatch samples checked.
    pub samples_checked: u64,
    /// Total pure software bursts checked against event-flow chains.
    pub bursts_checked: u64,
    /// Total in-burst samples checked against queue-depth claims.
    pub flow_samples_checked: u64,
    /// Highest event-queue occupancy seen across every seed.
    pub max_queue_depth: u64,
}

impl SoundnessReport {
    fn absorb(&mut self, s: SeedStats) {
        self.seeds += 1;
        self.run_failures += u64::from(s.run_failed);
        self.degraded += u64::from(s.degraded);
        self.pcs_checked += s.pcs_checked;
        self.samples_checked += s.samples_checked;
        self.bursts_checked += s.bursts_checked;
        self.flow_samples_checked += s.flow_samples_checked;
        self.max_queue_depth = self.max_queue_depth.max(s.max_queue_depth);
    }
}

/// Cross-check one seed. `Err` describes a soundness violation —
/// always an analyzer bug, never an acceptable outcome.
pub fn check_seed(seed: u64) -> Result<SeedStats, String> {
    let case = generate(seed);
    let program = snap_asm::assemble(&case.source)
        .map_err(|e| format!("seed {seed}: generated program does not assemble: {e}"))?;
    // The energy bound must be computed at the operating point the run
    // uses (`CoreConfig::default()` is the 1.8 V bring-up point).
    let analysis = snap_lint::analyze_program(&program, OperatingPoint::V1_8);

    let mut stats = SeedStats {
        degraded: analysis.degraded,
        ..SeedStats::default()
    };
    let (cpu, trace) = match run_core_sampled(&program, &case.script, 1 << 14) {
        Ok(out) => out,
        Err(_) => {
            // A faulting or stalled program still type-checked the
            // analyzer, but leaves nothing dynamic to compare.
            stats.run_failed = true;
            return Ok(stats);
        }
    };

    // Claim 1: reachability covers every executed pc.
    if !analysis.degraded {
        for &(pc, ins) in &trace {
            if !analysis.reachable.contains(&pc) {
                return Err(format!(
                    "seed {seed}: executed {ins} at {pc:#05x}, which the \
                     analysis called unreachable"
                ));
            }
            stats.pcs_checked += 1;
        }
    }

    // Claims 2 and 3: per-dispatch samples against verdicts and bounds.
    let samples = cpu.sampler().map(|s| s.samples()).unwrap_or_default();
    for sample in samples {
        let idx = EventKind::ALL
            .iter()
            .position(|&e| e == sample.event)
            .expect("sample event is in the table");
        let report = &analysis.handlers[idx];
        if report.entry.is_none() {
            // Dispatched through the power-on default entry; the static
            // report makes no claim about it.
            continue;
        }
        if report.terminates == Termination::Never {
            return Err(format!(
                "seed {seed}: {} handler completed a dispatch of {} \
                 instructions but the analysis proved it can never reach done",
                sample.event, sample.instructions
            ));
        }
        if analysis.degraded {
            continue;
        }
        if let Some(bound) = report.bound {
            if sample.instructions > bound.instructions {
                return Err(format!(
                    "seed {seed}: {} handler ran {} instructions, above the \
                     static worst-case bound of {}",
                    sample.event, sample.instructions, bound.instructions
                ));
            }
            let pj = sample.energy.as_pj();
            if pj > bound.energy_pj * (1.0 + 1e-9) + 1e-6 {
                return Err(format!(
                    "seed {seed}: {} handler consumed {pj:.3} pJ, above the \
                     static worst-case bound of {:.3} pJ",
                    sample.event, bound.energy_pj
                ));
            }
            stats.samples_checked += 1;
        }
    }

    // Claim 4: event-flow chains against pure software bursts.
    stats.max_queue_depth = cpu.queue_high_water() as u64;
    if !analysis.degraded {
        if stats.max_queue_depth > analysis.flow.queue_capacity {
            return Err(format!(
                "seed {seed}: event queue reached {} pending tokens but the \
                 analysis assumed a capacity of {}",
                stats.max_queue_depth, analysis.flow.queue_capacity
            ));
        }
        let truncated = cpu.sampler().map(|s| s.truncated()).unwrap_or(0);
        let mut i = 0;
        while i < samples.len() {
            // A burst is a maximal run of back-to-back chained
            // dispatches: each next handler starts the instant the
            // previous one ended.
            let mut j = i + 1;
            while j < samples.len() && samples[j].start == samples[j - 1].end {
                j += 1;
            }
            let burst = &samples[i..j];
            i = j;
            if j == samples.len() && truncated > 0 {
                continue; // the burst's tail was not retained
            }
            // Only complete bursts (queue drained at the end) compare
            // against a chain, and only *pure* ones: a single wake
            // token, every insertion a successful `swev`. Anything
            // else had environment interleavings the static chain
            // model deliberately excludes.
            let last = burst.last().expect("burst is non-empty");
            if last.queue_len != 0 {
                continue;
            }
            let enqueued: u64 = burst.iter().map(|s| s.enqueued).sum();
            let sw_enq: u64 = burst.iter().map(|s| s.sw_enqueued).sum();
            let sw_post: u64 = burst.iter().map(|s| s.sw_posted).sum();
            let first = burst[0];
            let start_tokens = (first.queue_len as i64) + 1 - (first.enqueued as i64);
            if enqueued != sw_enq || sw_post != sw_enq || start_tokens != 1 {
                continue;
            }
            let Some(chain) = analysis
                .flow
                .chains
                .iter()
                .find(|c| c.event == Some(first.event))
            else {
                continue;
            };
            if let Some(peak) = chain.peak_queue {
                for s in burst {
                    if s.queue_len as u64 > peak {
                        return Err(format!(
                            "seed {seed}: a pure {} burst reached queue depth {} \
                             at a dispatch boundary, above the static chain peak of {peak}",
                            first.event, s.queue_len
                        ));
                    }
                }
            }
            if let Some(max_posts) = chain.max_swev_posts {
                for s in burst {
                    if s.sw_posted > max_posts {
                        return Err(format!(
                            "seed {seed}: a {} handler posted {} swevs in one dispatch \
                             of a pure {} burst, above the static per-dispatch maximum of {max_posts}",
                            s.event, s.sw_posted, first.event
                        ));
                    }
                }
            }
            if let Some(dispatches) = chain.events_per_wake {
                if burst.len() as u64 > dispatches {
                    return Err(format!(
                        "seed {seed}: a pure {} burst ran {} dispatches before the \
                         queue drained, above the static events-per-wake bound of {dispatches}",
                        first.event,
                        burst.len()
                    ));
                }
            }
            if let Some(bound_pj) = chain.energy_pj_per_wake {
                let pj: f64 = burst.iter().map(|s| s.energy.as_pj()).sum();
                if pj > bound_pj * (1.0 + 1e-9) + 1e-6 {
                    return Err(format!(
                        "seed {seed}: a pure {} burst consumed {pj:.3} pJ, above the \
                         static energy-per-wake bound of {bound_pj:.3} pJ",
                        first.event
                    ));
                }
            }
            stats.bursts_checked += 1;
            stats.flow_samples_checked += burst.len() as u64;
        }
    }
    Ok(stats)
}

/// Cross-check `iters` consecutive seeds starting at `seed`. Returns
/// the aggregate report or the first violation.
pub fn run(seed: u64, iters: u64) -> Result<SoundnessReport, String> {
    let mut report = SoundnessReport::default();
    for i in 0..iters {
        report.absorb(check_seed(seed.wrapping_add(i))?);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soundness_sweep() {
        // CI runs the full >=500-seed sweep via the snap-smith binary;
        // this keeps a fast canary in `cargo test`.
        let report = run(1, 40).unwrap_or_else(|e| panic!("soundness violation: {e}"));
        assert_eq!(report.seeds, 40);
        assert!(
            report.pcs_checked > 0,
            "sweep never compared a trace: {report:?}"
        );
        assert!(
            report.bursts_checked > 0,
            "sweep never found a pure burst to check flow claims on: {report:?}"
        );
    }
}
