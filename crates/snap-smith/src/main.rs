//! Differential conformance fuzzer for the SNAP pipeline.
//!
//! ```text
//! snap-smith [--seed N] [--iters N] [--repro FILE] [--keep-going]
//!            [--soundness N]
//! ```
//!
//! Fuzz mode generates one program per iteration (iteration `i` uses
//! seed `seed + i`, so any failure names its exact seed), assembles it,
//! and diffs the oracle against every core configuration (stepped and
//! batched, across translation tiers). On a
//! divergence the case is shrunk and written to
//! `snap-smith-repro-<seed>.sasm`; the process exits nonzero.
//!
//! Repro mode re-runs a previously written `.sasm` file (the embedded
//! `; !snap-smith` header restores the environment script).
//!
//! `--soundness N` runs the `snap-lint` soundness cross-check instead:
//! N generated programs are statically analyzed and then executed, and
//! every executed pc, completed dispatch and measured cost is checked
//! against the static reachability/termination/bound claims.

use snap_smith::diff::check_source;
use snap_smith::gen::{generate, parse_script};
use snap_smith::shrink::shrink;

struct Options {
    seed: u64,
    iters: u64,
    repro: Option<String>,
    keep_going: bool,
    soundness: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: snap-smith [--seed N] [--iters N] [--repro FILE] [--keep-going] [--soundness N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: 1,
        iters: 100,
        repro: None,
        keep_going: false,
        soundness: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--iters" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.iters = v.parse().unwrap_or_else(|_| usage());
            }
            "--repro" => {
                opts.repro = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--keep-going" => opts.keep_going = true,
            "--soundness" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.soundness = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

fn run_repro(path: &str) -> i32 {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("snap-smith: cannot read {path}: {e}");
            return 2;
        }
    };
    let script = parse_script(&source);
    match check_source(&source, &script) {
        None => {
            println!("{path}: all configurations agree");
            0
        }
        Some(d) => {
            println!("{path}: DIVERGENCE in {}", d.config);
            println!("{}", d.detail);
            1
        }
    }
}

fn main() {
    let opts = parse_args();
    if let Some(path) = &opts.repro {
        std::process::exit(run_repro(path));
    }
    if let Some(iters) = opts.soundness {
        match snap_smith::soundness::run(opts.seed, iters) {
            Ok(r) => {
                println!(
                    "{} seeds: lint soundness holds ({} pcs, {} samples checked; \
                     {} run failures, {} degraded analyses)",
                    r.seeds, r.pcs_checked, r.samples_checked, r.run_failures, r.degraded
                );
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("LINT SOUNDNESS VIOLATION: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut divergences = 0u64;
    for i in 0..opts.iters {
        let seed = opts.seed.wrapping_add(i);
        let case = generate(seed);
        if let Some(d) = check_source(&case.source, &case.script) {
            divergences += 1;
            eprintln!("seed {seed}: DIVERGENCE in {}", d.config);
            eprintln!("{}", d.detail);
            eprintln!("shrinking...");
            let small = shrink(&case.source, &case.script);
            let out = format!("snap-smith-repro-{seed}.sasm");
            match std::fs::write(&out, &small) {
                Ok(()) => eprintln!("reproducer written to {out}"),
                Err(e) => eprintln!("could not write {out}: {e}"),
            }
            if !opts.keep_going {
                std::process::exit(1);
            }
        }
        if (i + 1) % 100 == 0 {
            println!(
                "{}/{} cases, {divergences} divergences (seeds {}..={seed})",
                i + 1,
                opts.iters,
                opts.seed
            );
        }
    }
    if divergences > 0 {
        eprintln!("{divergences} divergent cases");
        std::process::exit(1);
    }
    println!(
        "{} cases, 0 divergences across oracle + {} core configurations",
        opts.iters,
        snap_smith::diff::Runner::CORE_CONFIGS.len()
    );
}
