//! Differential conformance fuzzer for the SNAP pipeline.
//!
//! ```text
//! snap-smith [--seed N] [--iters N] [--repro FILE] [--keep-going]
//!            [--soundness N] [--bisect FILE] [--every N] [--mutate N]
//! ```
//!
//! Fuzz mode generates one program per iteration (iteration `i` uses
//! seed `seed + i`, so any failure names its exact seed), assembles it,
//! and diffs the oracle against every core configuration (stepped and
//! batched, across translation tiers). On a
//! divergence the case is shrunk and written to
//! `snap-smith-repro-<seed>.sasm`; the process exits nonzero.
//!
//! Repro mode re-runs a previously written `.sasm` file (the embedded
//! `; !snap-smith` header restores the environment script).
//!
//! `--soundness N` runs the `snap-lint` soundness cross-check instead:
//! N generated programs are statically analyzed and then executed, and
//! every executed pc, completed dispatch and measured cost is checked
//! against the static reachability/termination/bound claims.
//!
//! `--bisect FILE` localizes *when* a `.sasm` reproducer's universes
//! split: both legs run once with a core snapshot taken every `--every`
//! instructions (default 256), the checkpoints are binary-searched for
//! the first disagreeing boundary, and the window is replayed from the
//! last agreeing checkpoint — not from t = 0 — down to the exact
//! instruction. `--mutate N` injects an extra sensor IRQ at executed
//! count N into the suspect leg only: a known-divergent mutation for
//! validating the bisector against a split whose instant is known.

use snap_smith::bisect::{bisect, mutate_script, BisectOutcome, LegSpec, DEFAULT_INTERVAL};
use snap_smith::diff::{check_source, compare, run_program, Runner};
use snap_smith::gen::{generate, parse_script};
use snap_smith::shrink::shrink;

struct Options {
    seed: u64,
    iters: u64,
    repro: Option<String>,
    keep_going: bool,
    soundness: Option<u64>,
    bisect: Option<String>,
    every: u64,
    mutate: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: snap-smith [--seed N] [--iters N] [--repro FILE] [--keep-going] [--soundness N]\n\
         \x20                 [--bisect FILE] [--every N] [--mutate N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: 1,
        iters: 100,
        repro: None,
        keep_going: false,
        soundness: None,
        bisect: None,
        every: DEFAULT_INTERVAL,
        mutate: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--iters" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.iters = v.parse().unwrap_or_else(|_| usage());
            }
            "--repro" => {
                opts.repro = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--keep-going" => opts.keep_going = true,
            "--soundness" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.soundness = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--bisect" => {
                opts.bisect = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--every" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.every = v.parse().unwrap_or_else(|_| usage());
                if opts.every == 0 {
                    usage();
                }
            }
            "--mutate" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.mutate = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

/// The stepped interpreter: the trusted leg every bisection resumes
/// its reference side from.
const REFERENCE: Runner = Runner::CoreStep { predecode: false };

fn run_bisect(path: &str, every: u64, mutate: Option<u64>) -> i32 {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("snap-smith: cannot read {path}: {e}");
            return 2;
        }
    };
    let script = parse_script(&source);
    let program = match snap_asm::assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("snap-smith: {path} does not assemble: {e}");
            return 2;
        }
    };

    // A seeded mutation pits one configuration against itself under a
    // perturbed environment; the split instant is known by construction.
    if let Some(at) = mutate {
        let mutated = mutate_script(&script, at);
        let runner = Runner::CoreBurst {
            predecode: true,
            engine: snap_core::Engine::Fused,
        };
        let reference = LegSpec {
            program: &program,
            script: &script,
            runner,
        };
        let suspect = LegSpec {
            program: &program,
            script: &mutated,
            runner,
        };
        println!("bisecting {path} against itself with an extra IRQ at instruction {at}");
        return print_bisect(&reference, &suspect, every);
    }

    // Otherwise find which core configuration actually diverges.
    let reference_run = run_program(&program, &script, Runner::Oracle);
    let mut diverging = None;
    for runner in Runner::CORE_CONFIGS {
        let got = run_program(&program, &script, runner);
        if let Some(detail) = compare(&reference_run, &got) {
            diverging = Some((runner, detail));
            break;
        }
    }
    let Some((runner, detail)) = diverging else {
        println!("{path}: all configurations agree — nothing to bisect");
        return 0;
    };
    println!("{path}: DIVERGENCE in {}", runner.label());
    println!("{detail}");
    if runner == REFERENCE {
        println!(
            "the stepped interpreter itself diverges from the oracle; \
             its trace diff above already names the first instruction"
        );
        return 1;
    }
    let reference = LegSpec {
        program: &program,
        script: &script,
        runner: REFERENCE,
    };
    let suspect = LegSpec {
        program: &program,
        script: &script,
        runner,
    };
    print_bisect(&reference, &suspect, every)
}

fn print_bisect(reference: &LegSpec<'_>, suspect: &LegSpec<'_>, every: u64) -> i32 {
    match bisect(reference, suspect, every) {
        Ok(BisectOutcome::Agree) => {
            println!(
                "bisect: the legs agree at instruction granularity — the divergence \
                 is only visible against the oracle (core-family-wide)"
            );
            1
        }
        Ok(BisectOutcome::Diverged(r)) => {
            println!("{}", snap_smith::bisect::format_report(&r));
            1
        }
        Err(e) => {
            eprintln!("snap-smith: bisect failed: {e}");
            2
        }
    }
}

fn run_repro(path: &str) -> i32 {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("snap-smith: cannot read {path}: {e}");
            return 2;
        }
    };
    let script = parse_script(&source);
    match check_source(&source, &script) {
        None => {
            println!("{path}: all configurations agree");
            0
        }
        Some(d) => {
            println!("{path}: DIVERGENCE in {}", d.config);
            println!("{}", d.detail);
            1
        }
    }
}

fn main() {
    let opts = parse_args();
    if let Some(path) = &opts.bisect {
        std::process::exit(run_bisect(path, opts.every, opts.mutate));
    }
    if let Some(path) = &opts.repro {
        std::process::exit(run_repro(path));
    }
    if let Some(iters) = opts.soundness {
        match snap_smith::soundness::run(opts.seed, iters) {
            Ok(r) => {
                println!(
                    "{} seeds: lint soundness holds ({} pcs, {} samples, {} pure \
                     bursts / {} flow samples checked; max queue depth {}; \
                     {} run failures, {} degraded analyses)",
                    r.seeds,
                    r.pcs_checked,
                    r.samples_checked,
                    r.bursts_checked,
                    r.flow_samples_checked,
                    r.max_queue_depth,
                    r.run_failures,
                    r.degraded
                );
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("LINT SOUNDNESS VIOLATION: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut divergences = 0u64;
    for i in 0..opts.iters {
        let seed = opts.seed.wrapping_add(i);
        let case = generate(seed);
        if let Some(d) = check_source(&case.source, &case.script) {
            divergences += 1;
            eprintln!("seed {seed}: DIVERGENCE in {}", d.config);
            eprintln!("{}", d.detail);
            eprintln!("shrinking...");
            let small = shrink(&case.source, &case.script);
            let out = format!("snap-smith-repro-{seed}.sasm");
            match std::fs::write(&out, &small) {
                Ok(()) => eprintln!("reproducer written to {out}"),
                Err(e) => eprintln!("could not write {out}: {e}"),
            }
            if !opts.keep_going {
                std::process::exit(1);
            }
        }
        if (i + 1) % 100 == 0 {
            println!(
                "{}/{} cases, {divergences} divergences (seeds {}..={seed})",
                i + 1,
                opts.iters,
                opts.seed
            );
        }
    }
    if divergences > 0 {
        eprintln!("{divergences} divergent cases");
        std::process::exit(1);
    }
    println!(
        "{} cases, 0 divergences across oracle + {} core configurations",
        opts.iters,
        snap_smith::diff::Runner::CORE_CONFIGS.len()
    );
}
