//! Greedy counterexample shrinking.
//!
//! Given a diverging source program, repeatedly try deleting single
//! lines; a deletion is kept whenever the program still assembles and
//! still diverges (any divergence counts — the minimal reproducer may
//! surface a different first-differing field than the original). Runs
//! to a fixpoint under a bounded number of re-assembly attempts so a
//! pathological case cannot stall the fuzzer.

use crate::diff::check_source;
use crate::gen::Script;

/// Upper bound on assemble-and-diff attempts during one shrink.
const MAX_ATTEMPTS: usize = 600;

/// Lines that must survive shrinking: structure the assembler or the
/// script parser depends on, or that hold the control-flow skeleton
/// together.
fn is_structural(line: &str) -> bool {
    let t = line.trim();
    t.is_empty()
        || t.starts_with(';')
        || t.starts_with('.')
        || t.ends_with(':')
        || t == "done"
        || t == "halt"
        || t == "ret"
}

/// Shrink `source` while it keeps diverging; returns the smallest
/// still-diverging program found (possibly `source` itself).
pub fn shrink(source: &str, script: &Script) -> String {
    let mut lines: Vec<String> = source.lines().map(str::to_owned).collect();
    let mut attempts = 0usize;
    loop {
        let mut removed_any = false;
        // Backward so deleting a line does not shift pending indices.
        let mut i = lines.len();
        while i > 0 {
            i -= 1;
            if is_structural(&lines[i]) {
                continue;
            }
            if attempts >= MAX_ATTEMPTS {
                return lines.join("\n");
            }
            attempts += 1;
            let mut candidate = lines.clone();
            candidate.remove(i);
            let cand_src = candidate.join("\n");
            if check_source(&cand_src, script).is_some() {
                lines = candidate;
                removed_any = true;
            }
        }
        if !removed_any {
            return lines.join("\n");
        }
    }
}
