//! snap-smith: randomized program generation and an independent
//! oracle for differential conformance testing of the SNAP pipeline.
//!
//! The crate has three moving parts:
//!
//! * [`gen`] — a seeded random generator emitting well-formed SNAP
//!   handler programs as assembly text, plus a deterministic
//!   environment [`gen::Script`] (sensor IRQs and radio words pinned
//!   to executed-instruction counts) serialized into the program
//!   header so a `.sasm` file is a self-contained reproducer.
//! * [`oracle`] — a deliberately naive interpreter over `snap-isa`
//!   that shares no code with `snap-core`'s processor, decode cache,
//!   or burst loop. Simplicity over speed: it is the independent
//!   second opinion.
//! * [`diff`] — the differential driver: assemble with `snap-asm`,
//!   run the oracle and `snap_core::Processor` in every configuration
//!   pair (predecode on/off × single-step vs `run_burst`) under the
//!   identical script, and demand bit-identical registers, memories,
//!   event-queue order, executed-instruction traces, and energy bit
//!   patterns. [`shrink`] reduces any divergence to a minimal `.sasm`
//!   reproducer.
//!
//! The `snap-smith` binary wraps this into a fuzzing loop
//! (`--seed`, `--iters`), a reproducer runner (`--repro <file>`), and
//! a checkpoint-based divergence localizer (`--bisect <file>`, see
//! [`bisect`]).

pub mod bisect;
pub mod diff;
pub mod gen;
pub mod oracle;
pub mod shrink;
pub mod soundness;
