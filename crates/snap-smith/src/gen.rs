//! Seeded random generation of well-formed SNAP handler programs.
//!
//! Every generated program is a complete, assemblable event-driven
//! application: boot code that installs all eight handlers, seeds the
//! LFSR, arms a timer and enables the radio, followed by one handler
//! per event kind built from a pool of *safe* instruction fragments —
//! carry-chain arithmetic, shifts, `bfs`/`rand`, DMEM traffic, bounded
//! loops, forward branches, timer scheduling/cancellation, message
//! commands, `swev` storms and `isw` self-modification.
//!
//! "Safe" means: the program can never hit a `StepError` on a correct
//! implementation. `r15` is only read at the top of `RadioRx`/
//! `SensorReply` handlers (where the coprocessor guarantees a FIFO
//! word), timer numbers are always 0–2, `r15` writes are always valid
//! commands or TX payload, and `isw` only patches immediate words of
//! dedicated `li` patch sites. Everything else (address wrap-around,
//! queue overflow, carry traffic) is legal behaviour the differential
//! driver must reproduce exactly.

use dess::SplitMix64;

/// An externally injected stimulus, fired when the machine's executed
/// instruction count reaches `at` (or immediately when the machine goes
/// quiescent earlier — see `crate::diff`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StimulusKind {
    /// Assert the sensor-interrupt pin.
    SensorIrq,
    /// Deliver a radio word (lost when the receiver is off).
    RadioRx(u16),
}

/// A stimulus scheduled against the executed-instruction count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stimulus {
    /// Instruction count at which the stimulus fires.
    pub at: u64,
    /// What arrives.
    pub kind: StimulusKind,
}

/// The deterministic environment script for one test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Script {
    /// Stimuli sorted by `at` (stable order for equal counts).
    pub stimuli: Vec<Stimulus>,
    /// Hard cap on executed instructions (programs may loop forever).
    pub max_instructions: u64,
}

/// One generated conformance test case.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Assembly source, including the script header comments.
    pub source: String,
    /// The environment script (also serialized into `source`).
    pub script: Script,
}

/// Registers the generator may freely clobber (`r0` is kept zero for
/// absolute addressing, `r13` is the loop counter, `r14` the link
/// register).
const SCRATCH: [u8; 12] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];

struct Gen {
    rng: SplitMix64,
    out: String,
    labels: u32,
}

impl Gen {
    fn reg(&mut self) -> u8 {
        SCRATCH[self.rng.next_below(SCRATCH.len() as u64) as usize]
    }

    fn label(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!("{stem}_{}", self.labels)
    }

    fn line(&mut self, s: &str) {
        self.out.push_str("    ");
        self.out.push_str(s);
        self.out.push('\n');
    }

    /// One straight-line fragment from the safe pool. `depth` guards
    /// against nesting loops inside loops.
    fn fragment(&mut self, depth: u32, subroutines: usize) {
        let choice = self.rng.next_below(100);
        match choice {
            // ---- plain ALU traffic ----
            0..=17 => {
                let rd = self.reg();
                let imm = self.rng.next_u16();
                let op = ["li", "addi", "subi", "andi", "ori", "xori", "slti", "sltiu"]
                    [self.rng.next_below(8) as usize];
                self.line(&format!("{op} r{rd}, {imm:#x}"));
            }
            18..=32 => {
                let rd = self.reg();
                let rs = self.reg();
                let op = [
                    "add", "sub", "and", "or", "xor", "slt", "sltu", "mov", "not", "neg",
                ][self.rng.next_below(10) as usize];
                self.line(&format!("{op} r{rd}, r{rs}"));
            }
            // ---- carry chains ----
            33..=39 => {
                let (a, b, c, d) = (self.reg(), self.reg(), self.reg(), self.reg());
                if self.rng.next_below(2) == 0 {
                    self.line(&format!("add r{a}, r{b}"));
                    self.line(&format!("addc r{c}, r{d}"));
                } else {
                    self.line(&format!("sub r{a}, r{b}"));
                    self.line(&format!("subc r{c}, r{d}"));
                }
            }
            // ---- shifts ----
            40..=47 => {
                let rd = self.reg();
                let amt = self.rng.next_below(16);
                let op = ["slli", "srli", "srai", "roli", "rori"][self.rng.next_below(5) as usize];
                if self.rng.next_below(3) == 0 {
                    let rs = self.reg();
                    let reg_op =
                        ["sll", "srl", "sra", "rol", "ror"][self.rng.next_below(5) as usize];
                    self.line(&format!("li r{rs}, {amt}"));
                    self.line(&format!("{reg_op} r{rd}, r{rs}"));
                } else {
                    self.line(&format!("{op} r{rd}, {amt}"));
                }
            }
            // ---- bfs / rand / seed ----
            48..=53 => {
                let rd = self.reg();
                let rs = self.reg();
                let mask = self.rng.next_u16();
                self.line(&format!("bfs r{rd}, r{rs}, {mask:#x}"));
            }
            54..=59 => {
                let rd = self.reg();
                self.line(&format!("rand r{rd}"));
                if self.rng.next_below(4) == 0 {
                    let rs = self.reg();
                    self.line(&format!("seed r{rs}"));
                }
            }
            // ---- DMEM traffic (any address: the bank wraps) ----
            60..=69 => {
                let base = self.reg();
                let (rs, rd) = (self.reg(), self.reg());
                let addr = self.rng.next_u16();
                let offset = (self.rng.next_below(32)) as u16;
                self.line(&format!("li r{base}, {addr:#x}"));
                self.line(&format!("sw r{rs}, {offset}(r{base})"));
                if self.rng.next_below(2) == 0 {
                    self.line(&format!("lw r{rd}, {offset}(r{base})"));
                }
            }
            70..=73 => {
                let rd = self.reg();
                let var = self.rng.next_below(8);
                if self.rng.next_below(2) == 0 {
                    self.line(&format!("lw r{rd}, var_{var}(r0)"));
                } else {
                    self.line(&format!("sw r{rd}, var_{var}(r0)"));
                }
            }
            // ---- bounded loop on the dedicated counter ----
            74..=79 if depth == 0 => {
                let count = 1 + self.rng.next_below(6);
                let top = self.label("loop");
                self.line(&format!("li r13, {count}"));
                self.out.push_str(&format!("{top}:\n"));
                let body = 1 + self.rng.next_below(2);
                for _ in 0..body {
                    self.fragment(depth + 1, subroutines);
                }
                self.line("subi r13, 1");
                self.line(&format!("bnez r13, {top}"));
            }
            // ---- forward branch over a few fragments ----
            80..=84 if depth == 0 => {
                let skip = self.label("skip");
                let (ra, rb) = (self.reg(), self.reg());
                let cond =
                    ["beq", "bne", "blt", "bge", "bltu", "bgeu"][self.rng.next_below(6) as usize];
                self.line(&format!("{cond} r{ra}, r{rb}, {skip}"));
                let body = 1 + self.rng.next_below(2);
                for _ in 0..body {
                    self.fragment(depth + 1, subroutines);
                }
                self.out.push_str(&format!("{skip}:\n"));
            }
            // ---- timer coprocessor (always valid numbers) ----
            85..=88 => {
                // rt must differ from rv: `li rv, lo` would otherwise
                // clobber the timer number before schedlo reads it.
                let rt = self.reg();
                let mut rv = self.reg();
                if rv == rt {
                    rv = SCRATCH
                        [(SCRATCH.iter().position(|&r| r == rt).unwrap() + 1) % SCRATCH.len()];
                }
                let timer = self.rng.next_below(3);
                match self.rng.next_below(3) {
                    0 => {
                        // schedhi + schedlo: short countdowns keep the
                        // run inside the instruction budget.
                        let hi = self.rng.next_below(2);
                        let lo = 1 + self.rng.next_below(400);
                        self.line(&format!("li r{rt}, {timer}"));
                        self.line(&format!("li r{rv}, {hi}"));
                        self.line(&format!("schedhi r{rt}, r{rv}"));
                        self.line(&format!("li r{rv}, {lo}"));
                        self.line(&format!("schedlo r{rt}, r{rv}"));
                    }
                    1 => {
                        let lo = 1 + self.rng.next_below(400);
                        self.line(&format!("li r{rt}, {timer}"));
                        self.line(&format!("li r{rv}, {lo}"));
                        self.line(&format!("schedlo r{rt}, r{rv}"));
                    }
                    _ => {
                        self.line(&format!("li r{rt}, {timer}"));
                        self.line(&format!("cancel r{rt}"));
                    }
                }
            }
            // ---- message coprocessor commands ----
            89..=92 => {
                match self.rng.next_below(5) {
                    0 => {
                        let v = self.rng.next_below(0x1000);
                        self.line(&format!("li r15, 0x4000 | {v:#x}")); // port
                    }
                    1 => {
                        let id = self.rng.next_below(0x1000);
                        self.line(&format!("li r15, 0x3000 | {id:#x}")); // query
                    }
                    2 => {
                        let payload = self.rng.next_u16();
                        self.line("li r15, 0x2000"); // tx
                        let rp = self.reg();
                        self.line(&format!("li r{rp}, {payload:#x}"));
                        self.line(&format!("mov r15, r{rp}"));
                    }
                    3 => self.line("li r15, 0x1001"), // rx on
                    _ => self.line("li r15, 0x1000"), // radio off
                }
            }
            // ---- software events (may overflow the queue: legal) ----
            93..=94 => {
                // Never target RadioRx (3) or SensorReply (6): those
                // handlers pop r15, and a soft dispatch would find the
                // FIFO empty and kill the run early.
                const SAFE_EVENTS: [u16; 6] = [0, 1, 2, 4, 5, 7];
                let rn = self.reg();
                let ev = SAFE_EVENTS[self.rng.next_below(6) as usize];
                self.line(&format!("li r{rn}, {ev}"));
                // Occasionally storm the queue past its 8-token
                // capacity so overflow drops get differential coverage.
                let repeats = if self.rng.next_below(4) == 0 {
                    6 + self.rng.next_below(5)
                } else {
                    1
                };
                for _ in 0..repeats {
                    self.line(&format!("swev r{rn}"));
                }
            }
            // ---- isw self-modification of a dedicated li patch site ----
            95..=96 => {
                let site = self.label("patch");
                let new_imm = self.rng.next_u16();
                let orig_imm = self.rng.next_u16();
                let ra = self.reg();
                let mut rv = self.reg();
                if rv == ra {
                    // `li rv, imm` must not clobber the patch address.
                    rv = SCRATCH
                        [(SCRATCH.iter().position(|&r| r == ra).unwrap() + 1) % SCRATCH.len()];
                }
                let rd = self.reg();
                self.line(&format!("li r{ra}, {site}+1"));
                self.line(&format!("li r{rv}, {new_imm:#x}"));
                self.line(&format!("isw r{rv}, 0(r{ra})"));
                self.out.push_str(&format!("{site}:\n"));
                self.line(&format!("li r{rd}, {orig_imm:#x}"));
            }
            97 => {
                let (ra, rd) = (self.reg(), self.reg());
                self.line(&format!("li r{ra}, boot"));
                self.line(&format!("ilw r{rd}, 0(r{ra})"));
            }
            // ---- subroutine call ----
            98..=99 if subroutines > 0 && depth == 0 => {
                let s = self.rng.next_below(subroutines as u64);
                self.line(&format!("call sub_{s}"));
            }
            _ => {
                let rd = self.reg();
                self.line(&format!("addi r{rd}, 1"));
            }
        }
    }
}

/// Generate one seeded test case (program source + environment script).
pub fn generate(seed: u64) -> TestCase {
    let mut g = Gen {
        // Offset the stream so other SplitMix users of the same seed
        // (e.g. test scaffolding) see unrelated values.
        rng: SplitMix64::new(seed ^ 0x5EED_5A17),
        out: String::new(),
        labels: 0,
    };

    let subroutines = g.rng.next_below(3) as usize;

    // ---- script: stimuli against the executed-instruction count ----
    let mut stimuli = Vec::new();
    let n_stim = 2 + g.rng.next_below(6);
    let mut at = 40 + g.rng.next_below(120);
    for _ in 0..n_stim {
        let kind = if g.rng.next_below(2) == 0 {
            StimulusKind::SensorIrq
        } else {
            StimulusKind::RadioRx(g.rng.next_u16())
        };
        stimuli.push(Stimulus { at, kind });
        at += 30 + g.rng.next_below(250);
    }
    let max_instructions = 2_000 + g.rng.next_below(2_000);
    let script = Script {
        stimuli,
        max_instructions,
    };

    // ---- header: seed + serialized script ----
    g.out
        .push_str(&format!("; snap-smith generated program, seed {seed}\n"));
    g.out.push_str(&script_header(&script));
    g.out.push('\n');

    // ---- data segment ----
    g.out.push_str(".data\n");
    for i in 0..8 {
        let v = g.rng.next_u16();
        g.out.push_str(&format!("var_{i}: .word {v:#x}\n"));
    }
    g.out.push_str("\n.text\n");

    // ---- boot ----
    g.out.push_str("boot:\n");
    for ev in 0..8 {
        g.line(&format!("li r1, {ev}"));
        g.line(&format!("li r2, handler_{ev}"));
        g.line("setaddr r1, r2");
    }
    let lfsr_seed = g.rng.next_u16();
    g.line(&format!("li r3, {lfsr_seed:#x}"));
    g.line("seed r3");
    if g.rng.next_below(10) < 9 {
        g.line("li r15, 0x1001"); // radio rx on
    }
    // Arm timer 0 so the run always has an initial wake source.
    let first_timer = 10 + g.rng.next_below(200);
    g.line("li r4, 0");
    g.line("schedhi r4, r0");
    g.line(&format!("li r5, {first_timer}"));
    g.line("schedlo r4, r5");
    if g.rng.next_below(2) == 0 {
        g.line("li r6, 7");
        g.line("swev r6"); // boot-time soft event
    }
    let boot_frags = g.rng.next_below(3);
    for _ in 0..boot_frags {
        g.fragment(0, subroutines);
    }
    g.line("done");
    g.out.push('\n');

    // ---- handlers, one per event-table entry ----
    for ev in 0..8u64 {
        g.out.push_str(&format!("handler_{ev}:\n"));
        // RadioRx (3) and SensorReply (6) handlers start by consuming
        // the FIFO word their event guarantees.
        if ev == 3 || ev == 6 {
            let rd = g.reg();
            g.line(&format!("mov r{rd}, r15"));
        }
        let frags = 1 + g.rng.next_below(5);
        for _ in 0..frags {
            g.fragment(0, subroutines);
        }
        // Timer handlers re-arm their own timer half the time,
        // keeping periodic activity flowing until the budget cut.
        if ev < 3 && g.rng.next_below(2) == 0 {
            let period = 20 + g.rng.next_below(300);
            g.line(&format!("li r7, {ev}"));
            g.line(&format!("li r8, {period}"));
            g.line("schedlo r7, r8");
        }
        g.line("done");
        g.out.push('\n');
    }

    // ---- leaf subroutines ----
    for s in 0..subroutines {
        g.out.push_str(&format!("sub_{s}:\n"));
        let frags = 1 + g.rng.next_below(3);
        for _ in 0..frags {
            g.fragment(1, 0);
        }
        g.line("ret");
        g.out.push('\n');
    }

    TestCase {
        source: g.out,
        script,
    }
}

/// Serialize a script into `; !snap-smith` header comment lines.
pub fn script_header(script: &Script) -> String {
    let mut out = format!("; !snap-smith max={}\n", script.max_instructions);
    for s in &script.stimuli {
        match s.kind {
            StimulusKind::SensorIrq => out.push_str(&format!("; !snap-smith irq@{}\n", s.at)),
            StimulusKind::RadioRx(w) => {
                out.push_str(&format!("; !snap-smith rx@{}={w:#06x}\n", s.at));
            }
        }
    }
    out
}

/// Parse a script back out of a `.sasm` reproducer's header comments.
/// Lines that are not `; !snap-smith` directives are ignored, so the
/// whole source file can be passed in. Returns a default script (no
/// stimuli, 4000-instruction cap) when no directives are present.
pub fn parse_script(source: &str) -> Script {
    let mut script = Script {
        stimuli: Vec::new(),
        max_instructions: 4_000,
    };
    for line in source.lines() {
        let Some(rest) = line.trim().strip_prefix("; !snap-smith ") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(v) = rest.strip_prefix("max=") {
            if let Ok(v) = v.parse() {
                script.max_instructions = v;
            }
        } else if let Some(v) = rest.strip_prefix("irq@") {
            if let Ok(at) = v.parse() {
                script.stimuli.push(Stimulus {
                    at,
                    kind: StimulusKind::SensorIrq,
                });
            }
        } else if let Some(v) = rest.strip_prefix("rx@") {
            if let Some((at, word)) = v.split_once('=') {
                let word = word.trim_start_matches("0x");
                if let (Ok(at), Ok(w)) = (at.parse(), u16::from_str_radix(word, 16)) {
                    script.stimuli.push(Stimulus {
                        at,
                        kind: StimulusKind::RadioRx(w),
                    });
                }
            }
        }
    }
    script.stimuli.sort_by_key(|s| s.at);
    script
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_assemble() {
        for seed in 0..25 {
            let tc = generate(seed);
            let program = snap_asm::assemble(&tc.source)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", tc.source));
            assert!(program.imem_words_used() > 0);
        }
    }

    #[test]
    fn script_round_trips_through_header() {
        for seed in [1u64, 7, 99, 12345] {
            let tc = generate(seed);
            assert_eq!(parse_script(&tc.source), tc.script, "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42);
        let b = generate(42);
        assert_eq!(a.source, b.source);
        assert_eq!(a.script, b.script);
        let c = generate(43);
        assert_ne!(a.source, c.source);
    }
}
