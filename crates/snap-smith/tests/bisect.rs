//! The bisector, validated against a divergence whose first instant is
//! known by construction: two identical legs, one driven by a script
//! with an extra sensor IRQ seeded at a fixed executed-instruction
//! count. The bisector must (a) localize the split to exactly that
//! instruction, and (b) do it by replaying from a mid-run checkpoint,
//! not from t = 0.

use snap_core::Engine;
use snap_smith::bisect::{bisect, mutate_script, BisectOutcome, LegSpec};
use snap_smith::diff::Runner;
use snap_smith::gen::{generate, parse_script, script_header, Script};

/// A program that never quiesces: a self-re-arming timer handler plus
/// a sensor-IRQ handler, so any executed-instruction count inside the
/// script budget is reachable and an injected IRQ always lands in a
/// live run.
const METRONOME_S: &str = "\
boot:
    li r1, 0
    li r2, tick
    setaddr r1, r2
    li r1, 5
    li r2, sense
    setaddr r1, r2
    li r1, 0
    schedhi r1, r0
    li r2, 40
    schedlo r1, r2
    done
tick:
    lw r3, 0(r0)
    addi r3, 1
    sw r3, 0(r0)
    li r1, 0
    schedhi r1, r0
    li r2, 40
    schedlo r1, r2
    done
sense:
    lw r4, 1(r0)
    addi r4, 1
    sw r4, 1(r0)
    done
";

const MUTATION_AT: u64 = 1234;
const INTERVAL: u64 = 256;

fn metronome() -> (snap_asm::Program, Script) {
    let program = snap_asm::assemble(METRONOME_S).expect("metronome assembles");
    let script = Script {
        stimuli: Vec::new(),
        max_instructions: 2_000,
    };
    (program, script)
}

#[test]
fn seeded_mutation_is_localized_to_the_exact_instruction() {
    let (program, script) = metronome();
    let mutated = mutate_script(&script, MUTATION_AT);
    let runner = Runner::CoreBurst {
        predecode: true,
        engine: Engine::Fused,
    };
    let reference = LegSpec {
        program: &program,
        script: &script,
        runner,
    };
    let suspect = LegSpec {
        program: &program,
        script: &mutated,
        runner,
    };
    let report = match bisect(&reference, &suspect, INTERVAL).unwrap() {
        BisectOutcome::Diverged(r) => r,
        BisectOutcome::Agree => panic!("mutated legs must diverge"),
    };

    // The window brackets the seeded instant with one interval.
    assert!(
        report.window.0 < MUTATION_AT && MUTATION_AT <= report.window.1,
        "window {:?} does not bracket the mutation at {MUTATION_AT}",
        report.window
    );
    assert_eq!(report.window.1 - report.window.0, INTERVAL);
    // Time travel actually happened: the replay resumed from the
    // checkpoint at the window start, not from zero.
    assert_eq!(report.replayed_from, report.window.0);
    assert_eq!(report.replayed_from, (MUTATION_AT / INTERVAL) * INTERVAL);
    assert!(report.replayed_from > 0);
    // ... and it pinned the split to the exact instruction: the extra
    // IRQ is first visible in the post-injection state at MUTATION_AT.
    assert_eq!(report.first_divergence, MUTATION_AT);
    // The first differing field is the injected event token (queued,
    // or — if the core was mid-handler — already dispatched state).
    assert!(!report.detail.is_empty());
}

#[test]
fn bisect_is_insensitive_to_the_checkpoint_interval() {
    let (program, script) = metronome();
    let mutated = mutate_script(&script, MUTATION_AT);
    let runner = Runner::CoreBurst {
        predecode: true,
        engine: Engine::Fused,
    };
    for interval in [64u64, 100, 1000] {
        let report = match bisect(
            &LegSpec {
                program: &program,
                script: &script,
                runner,
            },
            &LegSpec {
                program: &program,
                script: &mutated,
                runner,
            },
            interval,
        )
        .unwrap()
        {
            BisectOutcome::Diverged(r) => r,
            BisectOutcome::Agree => panic!("interval {interval}: mutated legs must diverge"),
        };
        assert_eq!(
            report.first_divergence, MUTATION_AT,
            "interval {interval} mislocalized the split"
        );
    }
}

/// Cross-configuration agreement on generated programs: the stepped
/// interpreter checkpointed against every batched tier must come back
/// [`BisectOutcome::Agree`] — this exercises the config-blind state
/// comparison and the AOT re-proof on restore.
#[test]
fn generated_programs_agree_across_tiers_under_checkpointing() {
    for seed in [3u64, 11, 29] {
        let case = generate(seed);
        let program = snap_asm::assemble(&case.source).expect("generated program assembles");
        let reference = LegSpec {
            program: &program,
            script: &case.script,
            runner: Runner::CoreStep { predecode: false },
        };
        for engine in [Engine::Interp, Engine::Fused, Engine::Aot] {
            let suspect = LegSpec {
                program: &program,
                script: &case.script,
                runner: Runner::CoreBurst {
                    predecode: true,
                    engine,
                },
            };
            match bisect(&reference, &suspect, 128).unwrap() {
                BisectOutcome::Agree => {}
                BisectOutcome::Diverged(r) => panic!(
                    "seed {seed} {engine:?}: {}",
                    snap_smith::bisect::format_report(&r)
                ),
            }
        }
    }
}

#[test]
fn oracle_legs_are_rejected() {
    let (program, script) = metronome();
    let leg = LegSpec {
        program: &program,
        script: &script,
        runner: Runner::Oracle,
    };
    let err = bisect(&leg, &leg, INTERVAL).unwrap_err();
    assert!(err.contains("oracle"), "unexpected error: {err}");
}

/// The CLI surface: `--bisect` on a clean reproducer exits 0;
/// `--bisect --mutate N` prints a report naming the seeded instant and
/// exits 1.
#[test]
fn bisect_cli_reports_the_seeded_mutation() {
    let dir = std::env::temp_dir().join(format!("smith-bisect-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metronome.sasm");
    let script = Script {
        stimuli: Vec::new(),
        max_instructions: 2_000,
    };
    let source = format!("{}{METRONOME_S}", script_header(&script));
    assert_eq!(parse_script(&source), script, "header round trip");
    std::fs::write(&path, &source).unwrap();
    let path = path.to_str().unwrap();

    let clean = std::process::Command::new(env!("CARGO_BIN_EXE_snap-smith"))
        .args(["--bisect", path])
        .output()
        .expect("spawn snap-smith");
    assert!(
        clean.status.success(),
        "clean bisect failed: {}",
        String::from_utf8_lossy(&clean.stdout)
    );
    assert!(String::from_utf8_lossy(&clean.stdout).contains("agree"));

    let mutated = std::process::Command::new(env!("CARGO_BIN_EXE_snap-smith"))
        .args(["--bisect", path, "--mutate", "1234", "--every", "256"])
        .output()
        .expect("spawn snap-smith");
    assert_eq!(mutated.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&mutated.stdout);
    assert!(
        stdout.contains("first divergent state at instruction 1234"),
        "report did not localize the mutation:\n{stdout}"
    );
    assert!(stdout.contains("replayed from the checkpoint at 1024"));

    let _ = std::fs::remove_dir_all(&dir);
}
