//! Bounded differential conformance sweep — the in-tree smoke version
//! of the `snap-smith` fuzzing binary. Every generated program must
//! behave bit-identically under the naive oracle and all four
//! `snap-core` configurations (predecode on/off × step vs burst).

use snap_smith::diff::{check_source, run_program, Runner};
use snap_smith::gen::generate;

#[test]
fn generated_programs_agree_across_all_configurations() {
    for seed in 0..40u64 {
        let case = generate(seed);
        if let Some(d) = check_source(&case.source, &case.script) {
            panic!(
                "seed {seed} diverged in {}:\n{}\n--- program ---\n{}",
                d.config, d.detail, case.source
            );
        }
    }
}

#[test]
fn sweep_exercises_substantial_execution() {
    // Guard against the generator regressing into trivial programs
    // that agree vacuously: the sweep must execute real work.
    let mut instructions = 0u64;
    let mut handlers = 0u64;
    let mut actions = 0usize;
    for seed in 0..40u64 {
        let case = generate(seed);
        let program = snap_asm::assemble(&case.source).expect("generated programs assemble");
        if let Ok(out) = run_program(&program, &case.script, Runner::Oracle) {
            instructions += out.observed.instructions;
            handlers += out.observed.handlers;
            actions += out.observed.actions.len();
        }
    }
    assert!(
        instructions > 20_000,
        "sweep executed only {instructions} instructions"
    );
    assert!(
        handlers > 1_000,
        "sweep dispatched only {handlers} handlers"
    );
    assert!(actions > 50, "sweep performed only {actions} env actions");
}

#[test]
fn divergence_detection_is_live() {
    // End-to-end mutation check: a program whose behaviour is patched
    // to differ between runs must be reported. Here we instead check
    // the negative control's machinery by diffing a program against a
    // script long enough to execute it — and then asserting that a
    // *deliberately different* observation is flagged by `compare`.
    use snap_smith::diff::compare;
    let case = generate(7);
    let program = snap_asm::assemble(&case.source).unwrap();
    let a = run_program(&program, &case.script, Runner::Oracle);
    let b = run_program(&program, &case.script, Runner::CoreStep { predecode: true });
    assert!(compare(&a, &b).is_none(), "seed 7 should agree");
    // Tamper with one register and require detection.
    let mut tampered = b.unwrap();
    tampered.observed.regs[3] ^= 1;
    let detail = compare(&a, &Ok(tampered)).expect("tampered run must diverge");
    assert!(detail.contains("regs"), "unexpected detail: {detail}");
}
