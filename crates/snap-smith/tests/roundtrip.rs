//! Disassemble → reassemble round-trip over generated programs.
//!
//! The disassembler's listing, fed back through the assembler, must
//! reproduce the exact instruction-memory image: `Instruction`'s
//! `Display` output is required to be valid assembler input, and every
//! encode/decode pair must be mutually inverse on real programs.

use snap_asm::{assemble, disassemble};
use snap_smith::gen::generate;

#[test]
fn disassembly_reassembles_to_identical_images() {
    for seed in 0..25u64 {
        let case = generate(seed);
        let program = assemble(&case.source).expect("generated programs assemble");
        let image = program.imem_image();
        let listing = disassemble(0, &image);
        let mut src = String::from(".text\n");
        for line in &listing {
            match &line.instruction {
                Some(ins) => {
                    src.push_str(&ins.to_string());
                    src.push('\n');
                }
                None => {
                    src.push_str(&format!(".word {:#06x}\n", line.words[0]));
                }
            }
        }
        let re = assemble(&src).unwrap_or_else(|e| {
            panic!("seed {seed}: reassembly failed: {e}\n--- listing ---\n{src}")
        });
        assert_eq!(
            re.imem_image(),
            image,
            "seed {seed}: reassembled image differs"
        );
    }
}
