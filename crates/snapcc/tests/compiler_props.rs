//! Differential testing of snapcc: random C expressions are compiled,
//! executed on the simulated SNAP core, and compared against a Rust
//! reference evaluator with the machine's wrapping 16-bit semantics.

use proptest::prelude::*;
use snap_core::{CoreConfig, Processor};
use snap_isa::Reg;
use snapcc::compile_to_program;

/// A tiny expression AST mirrored in both directions: rendered to C
/// source, and evaluated in Rust.
#[derive(Debug, Clone)]
enum E {
    Const(i16),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Mod(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, u8),
    Shr(Box<E>, u8),
    Neg(Box<E>),
    Not(Box<E>),
    BitNot(Box<E>),
    Lt(Box<E>, Box<E>),
    Le(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    LAnd(Box<E>, Box<E>),
    LOr(Box<E>, Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::Const(v) => {
                if *v < 0 {
                    // Parenthesize negatives so they survive any context.
                    format!("(0 - {})", (*v as i32).unsigned_abs())
                } else {
                    format!("{v}")
                }
            }
            E::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            E::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            E::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            E::Div(a, b) => format!("({} / {})", a.render(), b.render()),
            E::Mod(a, b) => format!("({} % {})", a.render(), b.render()),
            E::And(a, b) => format!("({} & {})", a.render(), b.render()),
            E::Or(a, b) => format!("({} | {})", a.render(), b.render()),
            E::Xor(a, b) => format!("({} ^ {})", a.render(), b.render()),
            E::Shl(a, k) => format!("({} << {k})", a.render()),
            E::Shr(a, k) => format!("({} >> {k})", a.render()),
            E::Neg(a) => format!("(-{})", a.render()),
            E::Not(a) => format!("(!{})", a.render()),
            E::BitNot(a) => format!("(~{})", a.render()),
            E::Lt(a, b) => format!("({} < {})", a.render(), b.render()),
            E::Le(a, b) => format!("({} <= {})", a.render(), b.render()),
            E::Eq(a, b) => format!("({} == {})", a.render(), b.render()),
            E::LAnd(a, b) => format!("({} && {})", a.render(), b.render()),
            E::LOr(a, b) => format!("({} || {})", a.render(), b.render()),
        }
    }

    /// Reference semantics: 16-bit wrapping, C-style truncating division
    /// (division by zero follows the hardware's restoring divider:
    /// quotient all-ones, remainder the dividend — see snapcc's `__divu`).
    fn eval(&self) -> i16 {
        match self {
            E::Const(v) => *v,
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            E::Div(a, b) => {
                let (x, y) = (a.eval(), b.eval());
                machine_div(x, y)
            }
            E::Mod(a, b) => {
                let (x, y) = (a.eval(), b.eval());
                machine_mod(x, y)
            }
            E::And(a, b) => a.eval() & b.eval(),
            E::Or(a, b) => a.eval() | b.eval(),
            E::Xor(a, b) => a.eval() ^ b.eval(),
            E::Shl(a, k) => ((a.eval() as u16) << k) as i16,
            E::Shr(a, k) => a.eval() >> k,
            E::Neg(a) => a.eval().wrapping_neg(),
            E::Not(a) => (a.eval() == 0) as i16,
            E::BitNot(a) => !a.eval(),
            E::Lt(a, b) => (a.eval() < b.eval()) as i16,
            E::Le(a, b) => (a.eval() <= b.eval()) as i16,
            E::Eq(a, b) => (a.eval() == b.eval()) as i16,
            E::LAnd(a, b) => (a.eval() != 0 && b.eval() != 0) as i16,
            E::LOr(a, b) => (a.eval() != 0 || b.eval() != 0) as i16,
        }
    }
}

/// The machine's signed division: restoring unsigned divide on wrapped
/// magnitudes, sign fixed up afterwards.
fn machine_div(a: i16, b: i16) -> i16 {
    let sign = (a < 0) ^ (b < 0);
    let mag_a = if a < 0 {
        (a as u16).wrapping_neg()
    } else {
        a as u16
    };
    let mag_b = if b < 0 {
        (b as u16).wrapping_neg()
    } else {
        b as u16
    };
    let q = divu(mag_a, mag_b).0;
    if sign {
        (q as i16).wrapping_neg()
    } else {
        q as i16
    }
}

fn machine_mod(a: i16, b: i16) -> i16 {
    let neg = a < 0;
    let mag_a = if a < 0 {
        (a as u16).wrapping_neg()
    } else {
        a as u16
    };
    let mag_b = if b < 0 {
        (b as u16).wrapping_neg()
    } else {
        b as u16
    };
    let r = divu(mag_a, mag_b).1;
    if neg {
        (r as i16).wrapping_neg()
    } else {
        r as i16
    }
}

/// The `__divu` restoring divider, bit for bit.
fn divu(mut n: u16, d: u16) -> (u16, u16) {
    let mut r: u16 = 0;
    for _ in 0..16 {
        r = (r << 1) | (n >> 15);
        n <<= 1;
        // `bltu` skips the subtract when r < d; for d == 0 the compare
        // is never true, so the divider subtracts every round (the
        // hardware's division-by-zero behaviour).
        if r >= d {
            r = r.wrapping_sub(d);
            n |= 1;
        }
    }
    (n, r)
}

fn expr() -> impl Strategy<Value = E> {
    let leaf = any::<i16>().prop_map(E::Const);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mod(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..16).prop_map(|(a, k)| E::Shl(Box::new(a), k)),
            (inner.clone(), 0u8..16).prop_map(|(a, k)| E::Shr(Box::new(a), k)),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.clone().prop_map(|a| E::Not(Box::new(a))),
            inner.clone().prop_map(|a| E::BitNot(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Le(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Eq(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::LAnd(Box::new(a), Box::new(b))),
            (inner, inner_clone_hack()).prop_map(|(a, b)| E::LOr(Box::new(a), Box::new(b))),
        ]
    })
}

// prop_recursive closures take one `inner`; give LOr a fresh constant
// strategy for its right side to keep the macro tidy.
fn inner_clone_hack() -> impl Strategy<Value = E> {
    any::<i16>().prop_map(E::Const)
}

fn run_main(src: &str) -> i16 {
    let program = compile_to_program(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut cpu = Processor::new(CoreConfig::default());
    cpu.load_image(0, &program.imem_image()).unwrap();
    cpu.load_data(0, &program.dmem_image()).unwrap();
    cpu.run_to_halt(5_000_000)
        .unwrap_or_else(|e| panic!("{e}\n{src}"));
    cpu.regs().read(Reg::R1) as i16
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Compiled expressions compute exactly what the reference computes.
    #[test]
    fn expressions_match_reference(e in expr()) {
        let src = format!("int main() {{ return {}; }}", e.render());
        let got = run_main(&src);
        let expect = e.eval();
        prop_assert_eq!(got, expect, "\n{}", src);
    }

    /// The calling convention survives arbitrary argument counts and
    /// values: a function receives its arguments in declaration order.
    #[test]
    fn calling_convention_preserves_arguments(args in prop::collection::vec(any::<i16>(), 1..6)) {
        let params: Vec<String> = (0..args.len()).map(|i| format!("int p{i}")).collect();
        // Weighted sum distinguishes argument order.
        let body: Vec<String> =
            (0..args.len()).map(|i| format!("p{i} * {}", i + 1)).collect();
        let call_args: Vec<String> = args
            .iter()
            .map(|v| if *v < 0 { format!("(0 - {})", (*v as i32).unsigned_abs()) } else { v.to_string() })
            .collect();
        let src = format!(
            "int f({}) {{ return {}; }} int main() {{ return f({}); }}",
            params.join(", "),
            body.join(" + "),
            call_args.join(", "),
        );
        let expect = args
            .iter()
            .enumerate()
            .fold(0i16, |acc, (i, v)| {
                acc.wrapping_add(v.wrapping_mul((i + 1) as i16))
            });
        prop_assert_eq!(run_main(&src), expect, "\n{}", src);
    }

    /// Recursion depth: a recursive sum to n works for any small n
    /// (stack discipline, frame reuse).
    #[test]
    fn recursive_sum_matches(n in 0i16..200) {
        let src = format!(
            "int sum(int n) {{ if (n <= 0) return 0; return n + sum(n - 1); }}
             int main() {{ return sum({n}); }}"
        );
        let expect = (0..=n as i32).sum::<i32>() as i16;
        prop_assert_eq!(run_main(&src), expect);
    }

    /// Global array writes then reads are coherent under arbitrary
    /// index/value sequences.
    #[test]
    fn array_store_load_coherence(ops in prop::collection::vec((0usize..8, any::<i16>()), 1..12)) {
        let mut stmts = String::new();
        let mut model = [0i16; 8];
        for (i, v) in &ops {
            let rendered = if *v < 0 {
                format!("(0 - {})", (*v as i32).unsigned_abs())
            } else {
                v.to_string()
            };
            stmts.push_str(&format!("a[{i}] = {rendered}; "));
            model[*i] = *v;
        }
        let expect = model
            .iter()
            .enumerate()
            .fold(0i16, |acc, (i, v)| acc.wrapping_add(v.wrapping_mul((i + 1) as i16)));
        let sum: Vec<String> = (0..8).map(|i| format!("a[{i}] * {}", i + 1)).collect();
        let src = format!(
            "int a[8]; int main() {{ {stmts} return {}; }}",
            sum.join(" + ")
        );
        prop_assert_eq!(run_main(&src), expect, "\n{}", src);
    }
}
