//! The C lexer.

use std::fmt;

/// C token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CTok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal, hex `0x`, or character `'c'`).
    Int(i64),
    /// Punctuation / operator, e.g. `"+"`, `"<<"`, `"=="`.
    Punct(&'static str),
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: CTok,
    /// 1-based source line.
    pub line: usize,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CTokenError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for CTokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CTokenError {}

/// Multi-character punctuation, longest first.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "=", "!", "~",
    "(", ")", "{", "}", "[", "]", ";", ",",
];

/// Tokenize a C source string.
///
/// # Errors
///
/// Returns [`CTokenError`] on malformed literals or stray characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>, CTokenError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if source[i..].starts_with("//") {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if source[i..].starts_with("/*") {
            let end = source[i + 2..].find("*/").ok_or_else(|| CTokenError {
                line,
                message: "unterminated comment".into(),
            })?;
            line += source[i..i + 2 + end].matches('\n').count();
            i += end + 4;
            continue;
        }
        if c.is_ascii_digit() {
            let (v, n) = lex_number(&source[i..]).ok_or_else(|| CTokenError {
                line,
                message: "malformed number".into(),
            })?;
            out.push(Spanned {
                tok: CTok::Int(v),
                line,
            });
            i += n;
            continue;
        }
        if c == '\'' {
            let rest = &source[i + 1..];
            let mut chars = rest.chars();
            let ch = chars.next().ok_or_else(|| CTokenError {
                line,
                message: "unterminated character literal".into(),
            })?;
            let (value, consumed) = if ch == '\\' {
                let esc = chars.next().ok_or_else(|| CTokenError {
                    line,
                    message: "bad escape".into(),
                })?;
                let v = match esc {
                    'n' => '\n',
                    't' => '\t',
                    '0' => '\0',
                    other => other,
                };
                (v as i64, 2)
            } else {
                (ch as i64, 1)
            };
            if rest[consumed..].starts_with('\'') {
                out.push(Spanned {
                    tok: CTok::Int(value),
                    line,
                });
                i += consumed + 2;
                continue;
            }
            return Err(CTokenError {
                line,
                message: "unterminated character literal".into(),
            });
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_ascii_alphanumeric() || c == '_' {
                    i += 1;
                } else {
                    break;
                }
            }
            out.push(Spanned {
                tok: CTok::Ident(source[start..i].to_string()),
                line,
            });
            continue;
        }
        if let Some(p) = PUNCTS.iter().find(|p| source[i..].starts_with(**p)) {
            out.push(Spanned {
                tok: CTok::Punct(p),
                line,
            });
            i += p.len();
            continue;
        }
        return Err(CTokenError {
            line,
            message: format!("unexpected character `{c}`"),
        });
    }
    Ok(out)
}

fn lex_number(s: &str) -> Option<(i64, usize)> {
    let bytes = s.as_bytes();
    let (radix, skip) = if s.starts_with("0x") || s.starts_with("0X") {
        (16, 2)
    } else {
        (10, 0)
    };
    let mut end = skip;
    while end < bytes.len() && (bytes[end] as char).is_digit(radix) {
        end += 1;
    }
    if end == skip {
        return None;
    }
    Some((i64::from_str_radix(&s[skip..end], radix).ok()?, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<CTok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                CTok::Ident("int".into()),
                CTok::Ident("x".into()),
                CTok::Punct("="),
                CTok::Int(42),
                CTok::Punct(";"),
            ]
        );
    }

    #[test]
    fn multi_char_punct_wins() {
        assert_eq!(
            toks("a<<=b"),
            vec![
                CTok::Ident("a".into()),
                CTok::Punct("<<="),
                CTok::Ident("b".into()),
            ]
        );
        assert_eq!(
            toks("x+++y"),
            vec![
                CTok::Ident("x".into()),
                CTok::Punct("++"),
                CTok::Punct("+"),
                CTok::Ident("y".into()),
            ]
        );
        assert_eq!(
            toks("a<=b==c&&d"),
            vec![
                CTok::Ident("a".into()),
                CTok::Punct("<="),
                CTok::Ident("b".into()),
                CTok::Punct("=="),
                CTok::Ident("c".into()),
                CTok::Punct("&&"),
                CTok::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_chars() {
        assert_eq!(
            toks("0x1F 10 'A' '\\n'"),
            vec![CTok::Int(31), CTok::Int(10), CTok::Int(65), CTok::Int(10),]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line\n b /* block\n more */ c"),
            vec![
                CTok::Ident("a".into()),
                CTok::Ident("b".into()),
                CTok::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let spanned = lex("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = spanned.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn errors() {
        assert!(lex("@").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("'a").is_err());
    }
}
