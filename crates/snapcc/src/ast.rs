//! Abstract syntax for the C subset.

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    /// Global declarations in source order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `int name;` or `int name[len];`
    Global {
        /// Variable name.
        name: String,
        /// `Some(len)` for arrays.
        array: Option<usize>,
        /// Optional scalar initializer (constant).
        init: Option<i64>,
        /// Optional array initializer (`= {a, b, ...}`, zero-padded).
        array_init: Option<Vec<i64>>,
    },
    /// A function definition.
    Function(Function),
}

/// How a function returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnKind {
    /// `int f(...)` / `void f(...)` — returns with `ret`.
    Normal,
    /// `handler f()` — an event handler; ends with `done`.
    Handler,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name (also its assembly label).
    pub name: String,
    /// Parameter names (all `int`).
    pub params: Vec<String>,
    /// Normal or handler.
    pub kind: FnKind,
    /// The body block.
    pub body: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `int name;` / `int name[n];` / `int name = e;`
    Local {
        /// Variable name.
        name: String,
        /// `Some(len)` for a local array.
        array: Option<usize>,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// An expression evaluated for effect.
    Expr(Expr),
    /// `if (c) t else f`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (empty when absent).
        else_branch: Vec<Stmt>,
    },
    /// `while (c) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) body` (each part optional).
    For {
        /// Init expression.
        init: Option<Expr>,
        /// Condition (true when absent).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return;` / `return e;`
    Return(Option<Expr>),
    /// `break;` — exit the innermost loop.
    Break,
    /// `continue;` — next iteration of the innermost loop.
    Continue,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    LAnd,
    /// `||` (short-circuit)
    LOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Bitwise complement.
    BitNot,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Var(String),
    /// `a[i]`.
    Index {
        /// The array variable.
        base: String,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `*p`.
    Deref(Box<Expr>),
    /// `&lvalue` (variable or element).
    AddrOf(Box<Expr>),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Assignment `lvalue = e` (value of the expression is `e`).
    Assign {
        /// The target (Var / Index / Deref).
        target: Box<Expr>,
        /// The value.
        value: Box<Expr>,
    },
    /// Prefix or postfix `++`/`--` on an lvalue.
    IncDec {
        /// The lvalue.
        target: Box<Expr>,
        /// `true` for `++`.
        inc: bool,
        /// `true` for prefix form (value = updated); postfix yields the
        /// original value.
        prefix: bool,
    },
    /// Function or intrinsic call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}
