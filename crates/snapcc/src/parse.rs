//! Recursive-descent parser for the C subset.

use crate::ast::*;
use crate::lex::{CTok, Spanned};
use std::fmt;

/// A parse error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line (0 at end of input).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    tokens: &'a [Spanned],
    pos: usize,
}

/// Parse a token stream into a [`Unit`].
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse(tokens: &[Spanned]) -> Result<Unit, ParseError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at_end() {
        items.push(p.item()?);
    }
    Ok(Unit { items })
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or_else(|| self.tokens.last().map_or(0, |t| t.line), |t| t.line)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&CTok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<&CTok> {
        let t = self.tokens.get(self.pos).map(|t| &t.tok);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek() == Some(&CTok::Punct(leak(p))) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(CTok::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump().cloned() {
            Some(CTok::Ident(s)) => Ok(s),
            other => Err(ParseError {
                line: self
                    .tokens
                    .get(self.pos.saturating_sub(1))
                    .map_or(0, |t| t.line),
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    // ---- items ----

    fn item(&mut self) -> Result<Item, ParseError> {
        if self.eat_kw("handler") {
            let name = self.ident()?;
            self.expect_punct("(")?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Item::Function(Function {
                name,
                params: Vec::new(),
                kind: FnKind::Handler,
                body,
            }));
        }
        if !(self.eat_kw("int") || self.eat_kw("void")) {
            return Err(self.err("expected `int`, `void` or `handler`"));
        }
        let name = self.ident()?;
        if self.eat_punct("(") {
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    if self.eat_kw("void") && self.eat_punct(")") {
                        break;
                    }
                    if !self.eat_kw("int") {
                        return Err(self.err("expected `int` parameter"));
                    }
                    params.push(self.ident()?);
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            let body = self.block()?;
            return Ok(Item::Function(Function {
                name,
                params,
                kind: FnKind::Normal,
                body,
            }));
        }
        // Global variable.
        let array = if self.eat_punct("[") {
            let n = self.const_int()?;
            self.expect_punct("]")?;
            Some(n as usize)
        } else {
            None
        };
        let mut init = None;
        let mut array_init = None;
        if self.eat_punct("=") {
            if self.eat_punct("{") {
                if array.is_none() {
                    return Err(self.err("brace initializer on a scalar"));
                }
                let mut values = Vec::new();
                if !self.eat_punct("}") {
                    loop {
                        values.push(self.const_int()?);
                        if self.eat_punct("}") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                if values.len() > array.unwrap_or(0) {
                    return Err(self.err("too many initializers"));
                }
                array_init = Some(values);
            } else {
                init = Some(self.const_int()?);
            }
        }
        self.expect_punct(";")?;
        Ok(Item::Global {
            name,
            array,
            init,
            array_init,
        })
    }

    fn const_int(&mut self) -> Result<i64, ParseError> {
        let neg = self.eat_punct("-");
        match self.bump().cloned() {
            Some(CTok::Int(v)) => Ok(if neg { -v } else { v }),
            other => Err(self.err(format!("expected integer constant, found {other:?}"))),
        }
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_end() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("int") {
            let name = self.ident()?;
            let array = if self.eat_punct("[") {
                let n = self.const_int()?;
                self.expect_punct("]")?;
                Some(n as usize)
            } else {
                None
            };
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            if array.is_some() && init.is_some() {
                return Err(self.err("array initializers are not supported"));
            }
            return Ok(Stmt::Local { name, array, init });
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_branch = self.stmt_or_block()?;
            let else_branch = if self.eat_kw("else") {
                self.stmt_or_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.stmt_or_block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(e)
            };
            let cond = if self.eat_punct(";") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(e)
            };
            let step = if self.eat_punct(")") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Some(e)
            };
            let body = self.stmt_or_block()?;
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.eat_kw("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.peek() == Some(&CTok::Punct("{")) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.binary(0)?;
        if self.eat_punct("=") {
            let value = self.assignment()?;
            if !matches!(lhs, Expr::Var(_) | Expr::Index { .. } | Expr::Deref(_)) {
                return Err(self.err("invalid assignment target"));
            }
            return Ok(Expr::Assign {
                target: Box::new(lhs),
                value: Box::new(value),
            });
        }
        // Compound assignment: `a op= b` desugars to `a = a op b`.
        // (The lvalue expression is evaluated twice, like any naive
        // compiler would — fine for our side-effect-free lvalues.)
        const COMPOUND: [(&str, BinOp); 10] = [
            ("+=", BinOp::Add),
            ("-=", BinOp::Sub),
            ("*=", BinOp::Mul),
            ("/=", BinOp::Div),
            ("%=", BinOp::Mod),
            ("&=", BinOp::And),
            ("|=", BinOp::Or),
            ("^=", BinOp::Xor),
            ("<<=", BinOp::Shl),
            (">>=", BinOp::Shr),
        ];
        for (punct, op) in COMPOUND {
            if self.eat_punct(punct) {
                let rhs = self.assignment()?;
                if !matches!(lhs, Expr::Var(_) | Expr::Index { .. } | Expr::Deref(_)) {
                    return Err(self.err("invalid assignment target"));
                }
                let value = Expr::Binary {
                    op,
                    lhs: Box::new(lhs.clone()),
                    rhs: Box::new(rhs),
                };
                return Ok(Expr::Assign {
                    target: Box::new(lhs),
                    value: Box::new(value),
                });
            }
        }
        Ok(lhs)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(CTok::Punct(p)) = self.peek() {
            let Some((op, prec)) = bin_op(p) else { break };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("++") {
            let target = self.unary()?;
            if !matches!(target, Expr::Var(_) | Expr::Index { .. } | Expr::Deref(_)) {
                return Err(self.err("`++` requires an lvalue"));
            }
            return Ok(Expr::IncDec {
                target: Box::new(target),
                inc: true,
                prefix: true,
            });
        }
        if self.eat_punct("--") {
            let target = self.unary()?;
            if !matches!(target, Expr::Var(_) | Expr::Index { .. } | Expr::Deref(_)) {
                return Err(self.err("`--` requires an lvalue"));
            }
            return Ok(Expr::IncDec {
                target: Box::new(target),
                inc: false,
                prefix: true,
            });
        }
        if self.eat_punct("-") {
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(self.unary()?),
            });
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(self.unary()?),
            });
        }
        if self.eat_punct("~") {
            return Ok(Expr::Unary {
                op: UnOp::BitNot,
                operand: Box::new(self.unary()?),
            });
        }
        if self.eat_punct("*") {
            return Ok(Expr::Deref(Box::new(self.unary()?)));
        }
        if self.eat_punct("&") {
            let inner = self.unary()?;
            if !matches!(inner, Expr::Var(_) | Expr::Index { .. }) {
                return Err(self.err("`&` requires a variable or array element"));
            }
            return Ok(Expr::AddrOf(Box::new(inner)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.postfix_primary()?;
        loop {
            if self.eat_punct("++") {
                if !matches!(e, Expr::Var(_) | Expr::Index { .. } | Expr::Deref(_)) {
                    return Err(self.err("`++` requires an lvalue"));
                }
                e = Expr::IncDec {
                    target: Box::new(e),
                    inc: true,
                    prefix: false,
                };
            } else if self.eat_punct("--") {
                if !matches!(e, Expr::Var(_) | Expr::Index { .. } | Expr::Deref(_)) {
                    return Err(self.err("`--` requires an lvalue"));
                }
                e = Expr::IncDec {
                    target: Box::new(e),
                    inc: false,
                    prefix: false,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn postfix_primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump().cloned() {
            Some(CTok::Int(v)) => Ok(Expr::Int(v)),
            Some(CTok::Punct("(")) => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(CTok::Ident(name)) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    return Ok(Expr::Call { name, args });
                }
                if self.eat_punct("[") {
                    let index = self.expr()?;
                    self.expect_punct("]")?;
                    return Ok(Expr::Index {
                        base: name,
                        index: Box::new(index),
                    });
                }
                Ok(Expr::Var(name))
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

fn bin_op(p: &str) -> Option<(BinOp, u8)> {
    Some(match p {
        "||" => (BinOp::LOr, 1),
        "&&" => (BinOp::LAnd, 2),
        "|" => (BinOp::Or, 3),
        "^" => (BinOp::Xor, 4),
        "&" => (BinOp::And, 5),
        "==" => (BinOp::Eq, 6),
        "!=" => (BinOp::Ne, 6),
        "<" => (BinOp::Lt, 7),
        "<=" => (BinOp::Le, 7),
        ">" => (BinOp::Gt, 7),
        ">=" => (BinOp::Ge, 7),
        "<<" => (BinOp::Shl, 8),
        ">>" => (BinOp::Shr, 8),
        "+" => (BinOp::Add, 9),
        "-" => (BinOp::Sub, 9),
        "*" => (BinOp::Mul, 10),
        "/" => (BinOp::Div, 10),
        "%" => (BinOp::Mod, 10),
        _ => return None,
    })
}

/// `CTok::Punct` holds `&'static str`; map dynamic names onto the
/// static table to compare.
fn leak(p: &str) -> &'static str {
    const ALL: &[&str] = &[
        "<<=", ">>=", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "<=",
        ">=", "==", "!=", "&&", "||", "+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "=", "!",
        "~", "(", ")", "{", "}", "[", "]", ";", ",",
    ];
    ALL.iter().find(|s| **s == p).copied().unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse_src(src: &str) -> Unit {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn globals_and_functions() {
        let u = parse_src("int x; int buf[8]; int y = 5; int main() { return 0; }");
        assert_eq!(u.items.len(), 4);
        assert_eq!(
            u.items[0],
            Item::Global {
                name: "x".into(),
                array: None,
                init: None,
                array_init: None
            }
        );
        assert_eq!(
            u.items[1],
            Item::Global {
                name: "buf".into(),
                array: Some(8),
                init: None,
                array_init: None
            }
        );
        assert_eq!(
            u.items[2],
            Item::Global {
                name: "y".into(),
                array: None,
                init: Some(5),
                array_init: None
            }
        );
    }

    #[test]
    fn handler_functions() {
        let u = parse_src("handler tick() { __swev(7); }");
        let Item::Function(f) = &u.items[0] else {
            panic!()
        };
        assert_eq!(f.kind, FnKind::Handler);
        assert!(f.params.is_empty());
    }

    #[test]
    fn precedence() {
        let u = parse_src("int f() { return 1 + 2 * 3; }");
        let Item::Function(f) = &u.items[0] else {
            panic!()
        };
        let Stmt::Return(Some(Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        })) = &f.body[0]
        else {
            panic!("{:?}", f.body[0])
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn control_flow() {
        let u = parse_src(
            "int f(int n) { int s = 0; for (;;) { if (n <= 0) return s; s = s + n; n = n - 1; } }",
        );
        let Item::Function(f) = &u.items[0] else {
            panic!()
        };
        assert_eq!(f.params, vec!["n"]);
        assert!(matches!(
            f.body[1],
            Stmt::For {
                init: None,
                cond: None,
                step: None,
                ..
            }
        ));
    }

    #[test]
    fn pointers_and_arrays() {
        parse_src("int f(int p) { *p = 1; return p[2] + *(p + 1) + &p - 1; }");
    }

    #[test]
    fn assignment_chains_right() {
        let u = parse_src("int f() { int a; int b; a = b = 3; return a; }");
        let Item::Function(f) = &u.items[0] else {
            panic!()
        };
        let Stmt::Expr(Expr::Assign { value, .. }) = &f.body[2] else {
            panic!()
        };
        assert!(matches!(**value, Expr::Assign { .. }));
    }

    #[test]
    fn errors() {
        assert!(parse(&lex("int f() { return }").unwrap()).is_err());
        assert!(parse(&lex("float x;").unwrap()).is_err());
        assert!(parse(&lex("int f() { 1 = 2; }").unwrap()).is_err());
        assert!(parse(&lex("int f() {").unwrap()).is_err());
    }
}
