//! # snapcc — a small C compiler targeting the SNAP ISA
//!
//! The paper ported `lcc` to SNAP and notes (§4.2, §4.5) that it ran
//! *without optimizations*, generating "a lot of load/store operations
//! that were unnecessary" — making `Load` the second most frequent
//! instruction class in the handler benchmarks. `snapcc` reproduces
//! that compiler: a deliberately naive, stack-machine-style code
//! generator for a C subset, so compiled handlers exhibit the same
//! spill-heavy profile the paper measured.
//!
//! ## Language subset
//!
//! * `int` (16-bit) scalars, global/local variables, global and local
//!   `int` arrays, pointers (`&`, `*`, pointer arithmetic in words);
//! * functions with `int` parameters and `int`/`void` returns,
//!   including recursion (software stack in DMEM);
//! * `handler` functions — no parameters, terminated by `done` instead
//!   of `ret` — the paper's event-handler programming model;
//! * statements: blocks, `if`/`else`, `while`, `for`, `break`,
//!   `continue`, `return`, expression statements, local declarations
//!   with initializers; global arrays take `{…}` initializers;
//! * expressions: `= + - * / % & | ^ << >> < <= > >= == != && || ! ~`
//!   unary minus, compound assignment (`+=` …), prefix/postfix
//!   `++`/`--`, calls, array indexing, parentheses. `*` `/` `%`
//!   compile to runtime helpers (SNAP has no multiplier/divider).
//!
//! ## Intrinsics (the hardware/software interface of §3.4)
//!
//! | intrinsic | lowers to |
//! |---|---|
//! | `__msg_write(x)` | write `x` to `r15` (message coprocessor) |
//! | `__msg_read()` | read `r15` |
//! | `__sched(t, hi, lo)` | `schedhi`/`schedlo` |
//! | `__cancel(t)` | `cancel` |
//! | `__rand()` / `__seed(x)` | `rand` / `seed` |
//! | `__setaddr(ev, f)` | `setaddr` with `f`'s address |
//! | `__swev(n)` | `swev` (post a software event) |
//! | `__bfs(d, s, m)` | `bfs` (constant mask) |
//! | `__halt()` | `halt` |
//!
//! ## Example
//!
//! ```
//! use snapcc::compile_to_program;
//!
//! let program = compile_to_program(
//!     "int main() { int s; int i; s = 0; for (i = 1; i <= 10; i = i + 1) s = s + i; return s; }",
//! ).unwrap();
//! assert!(program.imem_image().len() > 0);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod lex;
pub mod parse;

pub use codegen::{compile, CompileError, CompileOptions};
pub use lex::CTokenError;
pub use parse::ParseError;

use snap_asm::Program;

/// Errors from the whole compile-to-binary pipeline.
#[derive(Debug)]
pub enum SnapccError {
    /// Lexical error.
    Lex(CTokenError),
    /// Parse error.
    Parse(ParseError),
    /// Code-generation error.
    Compile(CompileError),
    /// The generated assembly failed to assemble (compiler bug).
    Assemble(snap_asm::AsmError),
}

impl std::fmt::Display for SnapccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapccError::Lex(e) => write!(f, "lex error: {e}"),
            SnapccError::Parse(e) => write!(f, "parse error: {e}"),
            SnapccError::Compile(e) => write!(f, "compile error: {e}"),
            SnapccError::Assemble(e) => write!(f, "internal: generated assembly invalid: {e}"),
        }
    }
}

impl std::error::Error for SnapccError {}

/// Compile C source all the way to a loadable [`Program`] with the
/// default options (boot calls `main`, then `halt`).
///
/// # Errors
///
/// Returns [`SnapccError`] for invalid source (or an internal error if
/// the generated assembly is malformed).
pub fn compile_to_program(source: &str) -> Result<Program, SnapccError> {
    compile_to_program_with(source, CompileOptions::default())
}

/// Compile C source to a [`Program`] with explicit options.
///
/// # Errors
///
/// See [`compile_to_program`].
pub fn compile_to_program_with(
    source: &str,
    options: CompileOptions,
) -> Result<Program, SnapccError> {
    let tokens = lex::lex(source).map_err(SnapccError::Lex)?;
    let unit = parse::parse(&tokens).map_err(SnapccError::Parse)?;
    let asm = compile(&unit, options).map_err(SnapccError::Compile)?;
    snap_asm::assemble(&asm).map_err(SnapccError::Assemble)
}

/// Compile C source to SNAP assembly text (for inspection and the
/// compiler-quality ablation bench).
///
/// ```
/// use snapcc::{compile_to_asm, CompileOptions};
///
/// let asm = compile_to_asm("int main() { return 1 + 2; }", CompileOptions::default())?;
/// assert!(asm.contains("call    main"));
/// assert!(asm.contains("add     r1, r2"));
/// # Ok::<(), snapcc::SnapccError>(())
/// ```
///
/// # Errors
///
/// See [`compile_to_program`].
pub fn compile_to_asm(source: &str, options: CompileOptions) -> Result<String, SnapccError> {
    let tokens = lex::lex(source).map_err(SnapccError::Lex)?;
    let unit = parse::parse(&tokens).map_err(SnapccError::Parse)?;
    compile(&unit, options).map_err(SnapccError::Compile)
}
