//! `snapcc` — the C compiler driver.
//!
//! ```text
//! snapcc [-S] [--done] [--run [--max-steps N]] FILE.c
//! ```
//!
//! * default: compile and report code size;
//! * `-S`: print the generated SNAP assembly;
//! * `--done`: boot ends in `done` (event-driven program) instead of `halt`;
//! * `--run`: execute on the simulated core and print `main`'s return
//!   value plus energy statistics (standalone programs only).

use snapcc::codegen::{BootEnd, CompileOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut emit_asm = false;
    let mut run = false;
    let mut max_steps: u64 = 10_000_000;
    let mut end = BootEnd::Halt;
    let mut input: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-S" => emit_asm = true,
            "--run" => run = true,
            "--done" => end = BootEnd::Done,
            "--max-steps" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("snapcc: --max-steps requires a number");
                    return ExitCode::FAILURE;
                };
                max_steps = v;
            }
            "--help" | "-h" => {
                eprintln!("usage: snapcc [-S] [--done] [--run [--max-steps N]] FILE.c");
                return ExitCode::SUCCESS;
            }
            other => input = Some(other.to_string()),
        }
    }
    let Some(path) = input else {
        eprintln!("snapcc: no input file (try --help)");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("snapcc: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let options = CompileOptions {
        end,
        ..CompileOptions::default()
    };
    if emit_asm {
        match snapcc::compile_to_asm(&source, options) {
            Ok(asm) => {
                print!("{asm}");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("snapcc: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let program = match snapcc::compile_to_program_with(&source, options) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("snapcc: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{path}: {} bytes of code, {} data words",
        program.code_bytes(),
        program.dmem_image().len()
    );

    if run {
        use snap_core::{CoreConfig, Processor};
        let mut cpu = Processor::new(CoreConfig::default());
        cpu.load_image(0, &program.imem_image())
            .expect("image fits");
        cpu.load_data(0, &program.dmem_image()).expect("data fits");
        match cpu.run_to_halt(max_steps) {
            Ok(_) => {
                let stats = cpu.stats();
                println!(
                    "main returned: {}",
                    cpu.regs().read(snap_isa::Reg::R1) as i16
                );
                println!("instructions:  {}", stats.instructions);
                println!("energy:        {}", stats.energy);
                println!("busy time:     {}", stats.busy_time);
            }
            Err(e) => {
                eprintln!("snapcc: execution failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
