//! Naive stack-machine code generation.
//!
//! Register conventions (matching the hand-written assembly in
//! `snap-apps`): `r0` is kept zero, `r13` is the software stack pointer
//! (DMEM, growing down), `r12` the frame pointer, `r14` the link
//! register, `r1` the expression result / return value, `r2`–`r8`
//! scratch. Every binary operation spills its left operand to the
//! stack — exactly the unoptimized-`lcc` behaviour the paper observed
//! ("the compiler generated a lot of load/store operations that were
//! unnecessary").
//!
//! Frame layout (word stack, growing down):
//!
//! ```text
//! high | argN .. arg0 | saved ra | saved fp | local0 .. localM | low
//!                                  ^ fp                          ^ sp
//! ```
//!
//! so parameter `i` is at `fp + 2 + i` and local slot `j` at
//! `fp - 1 - j`. Handlers have no arguments and no saved `ra`; their
//! saved `fp` sits at `fp + 0` as well (the prologue differs only in
//! skipping the `ra` push) and their epilogue ends with `done`.

use crate::ast::*;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Default top-of-stack (grows down; DMEM is 0..0x7ff).
pub const DEFAULT_STACK_TOP: u16 = 0x07f0;

/// What boot code does after `main` returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootEnd {
    /// `halt` — standalone programs and tests.
    Halt,
    /// `done` — event-driven programs: `main` installs handlers and the
    /// node then sleeps on the event queue.
    Done,
}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Initial stack pointer.
    pub stack_top: u16,
    /// Behaviour after `main` returns.
    pub end: BootEnd,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            stack_top: DEFAULT_STACK_TOP,
            end: BootEnd::Halt,
        }
    }
}

/// Code-generation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Use of an undeclared variable.
    UndefinedVariable(String),
    /// Call of an unknown function.
    UndefinedFunction(String),
    /// Wrong number of arguments.
    ArityMismatch {
        /// Callee.
        name: String,
        /// Declared parameter count.
        expected: usize,
        /// Call-site argument count.
        got: usize,
    },
    /// A name defined twice.
    Duplicate(String),
    /// `main` is missing.
    NoMain,
    /// `break`/`continue` outside a loop.
    NotInLoop(&'static str),
    /// Bad intrinsic usage.
    BadIntrinsic {
        /// The intrinsic.
        name: String,
        /// What went wrong.
        reason: &'static str,
    },
    /// A compiler invariant was violated. Reported as a diagnostic
    /// instead of aborting the process, so a driver (srun, xtask) can
    /// attribute it to the input file and keep going.
    Internal {
        /// The invariant that did not hold.
        what: &'static str,
        /// The construct being compiled when it broke.
        context: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UndefinedVariable(n) => write!(f, "undefined variable `{n}`"),
            CompileError::UndefinedFunction(n) => write!(f, "undefined function `{n}`"),
            CompileError::ArityMismatch {
                name,
                expected,
                got,
            } => {
                write!(f, "`{name}` takes {expected} arguments, got {got}")
            }
            CompileError::Duplicate(n) => write!(f, "`{n}` defined twice"),
            CompileError::NoMain => write!(f, "no `main` function"),
            CompileError::NotInLoop(kw) => write!(f, "`{kw}` outside a loop"),
            CompileError::BadIntrinsic { name, reason } => write!(f, "`{name}`: {reason}"),
            CompileError::Internal { what, context } => {
                write!(
                    f,
                    "internal: {what} while compiling {context} (please report)"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

#[derive(Debug, Clone, Copy)]
enum Storage {
    GlobalScalar,
    GlobalArray,
    Param(usize),
    LocalScalar(usize),
    LocalArray {
        /// Slot of the array's highest-address element (+1 base).
        top_slot: usize,
    },
}

struct FnCtx {
    name: String,
    vars: Vec<BTreeMap<String, Storage>>,
    next_slot: usize,
    max_slots: usize,
    /// `(continue target, break target)` per enclosing loop.
    loops: Vec<(String, String)>,
}

impl FnCtx {
    fn lookup(&self, name: &str) -> Option<Storage> {
        self.vars
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }
}

/// `(name, array length, scalar init, array init)`.
type GlobalDef = (String, Option<usize>, Option<i64>, Option<Vec<i64>>);

struct Gen {
    out: String,
    globals: BTreeMap<String, Storage>,
    global_defs: Vec<GlobalDef>,
    functions: BTreeMap<String, usize>, // name -> arity
    handlers: BTreeSet<String>,
    labels: usize,
    need_mul: bool,
    need_div: bool,
    need_mod: bool,
}

/// Compile a parsed unit to SNAP assembly text.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile(unit: &Unit, options: CompileOptions) -> Result<String, CompileError> {
    let mut gen = Gen {
        out: String::new(),
        globals: BTreeMap::new(),
        global_defs: Vec::new(),
        functions: BTreeMap::new(),
        handlers: BTreeSet::new(),
        labels: 0,
        need_mul: false,
        need_div: false,
        need_mod: false,
    };

    // Collect signatures first so forward calls work.
    for item in &unit.items {
        match item {
            Item::Global {
                name,
                array,
                init,
                array_init,
            } => {
                let storage = if array.is_some() {
                    Storage::GlobalArray
                } else {
                    Storage::GlobalScalar
                };
                if gen.globals.insert(name.clone(), storage).is_some() {
                    return Err(CompileError::Duplicate(name.clone()));
                }
                gen.global_defs
                    .push((name.clone(), *array, *init, array_init.clone()));
            }
            Item::Function(f) => {
                if gen
                    .functions
                    .insert(f.name.clone(), f.params.len())
                    .is_some()
                {
                    return Err(CompileError::Duplicate(f.name.clone()));
                }
                if f.kind == FnKind::Handler {
                    gen.handlers.insert(f.name.clone());
                }
            }
        }
    }
    if !gen.functions.contains_key("main") {
        return Err(CompileError::NoMain);
    }

    // Boot glue.
    gen.emit("; generated by snapcc");
    gen.emit("__boot:");
    gen.emit(&format!("    li      r13, {:#x}", options.stack_top));
    gen.emit("    call    main");
    match options.end {
        BootEnd::Halt => gen.emit("    halt"),
        BootEnd::Done => gen.emit("    done"),
    }

    for item in &unit.items {
        if let Item::Function(f) = item {
            gen.function(f)?;
        }
    }

    gen.runtime();
    gen.data_section();
    Ok(std::mem::take(&mut gen.out))
}

impl Gen {
    fn emit(&mut self, line: &str) {
        self.out.push_str(line);
        self.out.push('\n');
    }

    fn label(&mut self) -> String {
        let l = format!("__L{}", self.labels);
        self.labels += 1;
        l
    }

    // ---- functions ----

    fn function(&mut self, f: &Function) -> Result<(), CompileError> {
        let mut ctx = FnCtx {
            name: f.name.clone(),
            vars: vec![BTreeMap::new()],
            next_slot: 0,
            max_slots: 0,
            loops: Vec::new(),
        };
        for (i, p) in f.params.iter().enumerate() {
            if ctx.vars[0].insert(p.clone(), Storage::Param(i)).is_some() {
                return Err(CompileError::Duplicate(p.clone()));
            }
        }

        // Two passes over the body: first to size the frame (slots),
        // then to emit. Sizing pass uses a throwaway emit buffer.
        let saved_out = std::mem::take(&mut self.out);
        let saved_labels = self.labels;
        self.stmts(&f.body, &mut ctx)?;
        let frame = ctx.max_slots;
        self.out = saved_out;
        self.labels = saved_labels;
        ctx.vars = vec![BTreeMap::new()];
        for (i, p) in f.params.iter().enumerate() {
            ctx.vars[0].insert(p.clone(), Storage::Param(i));
        }
        ctx.next_slot = 0;
        ctx.max_slots = 0;

        self.emit("");
        self.emit(&format!("{}:", f.name));
        if f.kind == FnKind::Normal {
            self.emit("    subi    r13, 1");
            self.emit("    sw      r14, 0(r13)");
        } else {
            // Handlers still reserve the ra slot so that frame offsets
            // match the Normal layout (fp+1 is simply unused).
            self.emit("    subi    r13, 1");
        }
        self.emit("    subi    r13, 1");
        self.emit("    sw      r12, 0(r13)");
        self.emit("    mov     r12, r13");
        if frame > 0 {
            self.emit(&format!("    subi    r13, {frame}"));
        }

        self.stmts(&f.body, &mut ctx)?;

        self.emit(&format!("{}__ret:", f.name));
        self.emit("    mov     r13, r12");
        self.emit("    lw      r12, 0(r13)");
        if f.kind == FnKind::Normal {
            self.emit("    lw      r14, 1(r13)");
            self.emit("    addi    r13, 2");
            self.emit("    jr      r14");
        } else {
            self.emit("    addi    r13, 2");
            self.emit("    done");
        }
        Ok(())
    }

    fn stmts(&mut self, stmts: &[Stmt], ctx: &mut FnCtx) -> Result<(), CompileError> {
        ctx.vars.push(BTreeMap::new());
        let scope_base = ctx.next_slot;
        for s in stmts {
            self.stmt(s, ctx)?;
        }
        ctx.vars.pop();
        ctx.next_slot = scope_base;
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt, ctx: &mut FnCtx) -> Result<(), CompileError> {
        match stmt {
            Stmt::Local { name, array, init } => {
                let storage = match array {
                    Some(len) => {
                        ctx.next_slot += (*len).max(1);
                        Storage::LocalArray {
                            top_slot: ctx.next_slot - 1,
                        }
                    }
                    None => {
                        ctx.next_slot += 1;
                        Storage::LocalScalar(ctx.next_slot - 1)
                    }
                };
                ctx.max_slots = ctx.max_slots.max(ctx.next_slot);
                let Some(scope) = ctx.vars.last_mut() else {
                    return Err(CompileError::Internal {
                        what: "local declared with no open scope",
                        context: format!("`{name}`"),
                    });
                };
                if scope.insert(name.clone(), storage).is_some() {
                    return Err(CompileError::Duplicate(name.clone()));
                }
                if let Some(e) = init {
                    let target = Expr::Var(name.clone());
                    self.expr(
                        &Expr::Assign {
                            target: Box::new(target),
                            value: Box::new(e.clone()),
                        },
                        ctx,
                    )?;
                }
                Ok(())
            }
            Stmt::Expr(e) => self.expr(e, ctx),
            Stmt::Break => {
                let Some((_, l_end)) = ctx.loops.last() else {
                    return Err(CompileError::NotInLoop("break"));
                };
                self.emit(&format!("    jmp     {l_end}"));
                Ok(())
            }
            Stmt::Continue => {
                let Some((l_cont, _)) = ctx.loops.last() else {
                    return Err(CompileError::NotInLoop("continue"));
                };
                self.emit(&format!("    jmp     {l_cont}"));
                Ok(())
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.expr(e, ctx)?;
                }
                self.emit(&format!("    jmp     {}__ret", ctx.name));
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let l_else = self.label();
                let l_end = self.label();
                self.expr(cond, ctx)?;
                self.emit(&format!("    beqz    r1, {l_else}"));
                self.stmts(then_branch, ctx)?;
                if else_branch.is_empty() {
                    self.emit(&format!("{l_else}:"));
                } else {
                    self.emit(&format!("    jmp     {l_end}"));
                    self.emit(&format!("{l_else}:"));
                    self.stmts(else_branch, ctx)?;
                    self.emit(&format!("{l_end}:"));
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let l_top = self.label();
                let l_end = self.label();
                self.emit(&format!("{l_top}:"));
                self.expr(cond, ctx)?;
                self.emit(&format!("    beqz    r1, {l_end}"));
                ctx.loops.push((l_top.clone(), l_end.clone()));
                self.stmts(body, ctx)?;
                ctx.loops.pop();
                self.emit(&format!("    jmp     {l_top}"));
                self.emit(&format!("{l_end}:"));
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(e) = init {
                    self.expr(e, ctx)?;
                }
                let l_top = self.label();
                let l_step = self.label();
                let l_end = self.label();
                self.emit(&format!("{l_top}:"));
                if let Some(c) = cond {
                    self.expr(c, ctx)?;
                    self.emit(&format!("    beqz    r1, {l_end}"));
                }
                ctx.loops.push((l_step.clone(), l_end.clone()));
                self.stmts(body, ctx)?;
                ctx.loops.pop();
                self.emit(&format!("{l_step}:"));
                if let Some(s) = step {
                    self.expr(s, ctx)?;
                }
                self.emit(&format!("    jmp     {l_top}"));
                self.emit(&format!("{l_end}:"));
                Ok(())
            }
        }
    }

    // ---- expressions (result in r1) ----

    fn push_r1(&mut self) {
        self.emit("    subi    r13, 1");
        self.emit("    sw      r1, 0(r13)");
    }

    fn pop_into(&mut self, reg: &str) {
        self.emit(&format!("    lw      {reg}, 0(r13)"));
        self.emit("    addi    r13, 1");
    }

    fn storage_of(&self, name: &str, ctx: &FnCtx) -> Result<Storage, CompileError> {
        ctx.lookup(name)
            .or_else(|| self.globals.get(name).copied())
            .ok_or_else(|| CompileError::UndefinedVariable(name.to_string()))
    }

    /// Emit code leaving the *address* of an lvalue in `r1`.
    fn addr(&mut self, e: &Expr, ctx: &mut FnCtx) -> Result<(), CompileError> {
        match e {
            Expr::Var(name) => {
                match self.storage_of(name, ctx)? {
                    Storage::GlobalScalar | Storage::GlobalArray => {
                        self.emit(&format!("    li      r1, {name}"));
                    }
                    Storage::Param(i) => {
                        self.emit("    mov     r1, r12");
                        self.emit(&format!("    addi    r1, {}", 2 + i));
                    }
                    Storage::LocalScalar(slot) => {
                        self.emit("    mov     r1, r12");
                        self.emit(&format!("    subi    r1, {}", slot + 1));
                    }
                    Storage::LocalArray { top_slot } => {
                        // Base (element 0) is the lowest address.
                        self.emit("    mov     r1, r12");
                        self.emit(&format!("    subi    r1, {}", top_slot + 1));
                    }
                }
                Ok(())
            }
            Expr::Index { base, index } => {
                self.expr(index, ctx)?;
                match self.storage_of(base, ctx)? {
                    Storage::GlobalArray => {
                        self.emit(&format!("    addi    r1, {base}"));
                    }
                    Storage::LocalArray { top_slot } => {
                        self.push_r1();
                        self.emit("    mov     r1, r12");
                        self.emit(&format!("    subi    r1, {}", top_slot + 1));
                        self.pop_into("r2");
                        self.emit("    add     r1, r2");
                    }
                    // Scalar holding a pointer: base value + index.
                    Storage::GlobalScalar => {
                        self.emit(&format!("    lw      r2, {base}(r0)"));
                        self.emit("    add     r1, r2");
                    }
                    Storage::Param(i) => {
                        self.emit(&format!("    lw      r2, {}(r12)", 2 + i));
                        self.emit("    add     r1, r2");
                    }
                    Storage::LocalScalar(slot) => {
                        self.emit(&format!("    lw      r2, -{}(r12)", slot + 1));
                        self.emit("    add     r1, r2");
                    }
                }
                Ok(())
            }
            Expr::Deref(inner) => self.expr(inner, ctx),
            other => Err(CompileError::BadIntrinsic {
                name: format!("{other:?}"),
                reason: "not an lvalue",
            }),
        }
    }

    fn expr(&mut self, e: &Expr, ctx: &mut FnCtx) -> Result<(), CompileError> {
        match e {
            Expr::Int(v) => {
                self.emit(&format!("    li      r1, {}", (*v as i32) & 0xffff));
                Ok(())
            }
            Expr::Var(name) => {
                match self.storage_of(name, ctx)? {
                    Storage::GlobalScalar => self.emit(&format!("    lw      r1, {name}(r0)")),
                    Storage::Param(i) => self.emit(&format!("    lw      r1, {}(r12)", 2 + i)),
                    Storage::LocalScalar(slot) => {
                        self.emit(&format!("    lw      r1, -{}(r12)", slot + 1))
                    }
                    // Arrays decay to their address.
                    Storage::GlobalArray | Storage::LocalArray { .. } => return self.addr(e, ctx),
                }
                Ok(())
            }
            Expr::Index { .. } | Expr::Deref(_) => {
                self.addr(e, ctx)?;
                self.emit("    lw      r1, 0(r1)");
                Ok(())
            }
            Expr::AddrOf(inner) => self.addr(inner, ctx),
            Expr::Unary { op, operand } => {
                self.expr(operand, ctx)?;
                match op {
                    UnOp::Neg => self.emit("    neg     r1, r1"),
                    UnOp::Not => self.emit("    sltiu   r1, 1"),
                    UnOp::BitNot => self.emit("    not     r1, r1"),
                }
                Ok(())
            }
            Expr::Assign { target, value } => {
                self.expr(value, ctx)?;
                // Fast path for scalar variables.
                if let Expr::Var(name) = target.as_ref() {
                    match self.storage_of(name, ctx)? {
                        Storage::GlobalScalar => {
                            self.emit(&format!("    sw      r1, {name}(r0)"));
                            return Ok(());
                        }
                        Storage::Param(i) => {
                            self.emit(&format!("    sw      r1, {}(r12)", 2 + i));
                            return Ok(());
                        }
                        Storage::LocalScalar(slot) => {
                            self.emit(&format!("    sw      r1, -{}(r12)", slot + 1));
                            return Ok(());
                        }
                        _ => {}
                    }
                }
                self.push_r1();
                self.addr(target, ctx)?;
                self.emit("    mov     r3, r1");
                self.pop_into("r1");
                self.emit("    sw      r1, 0(r3)");
                Ok(())
            }
            Expr::Binary {
                op: BinOp::LAnd,
                lhs,
                rhs,
            } => {
                let l_false = self.label();
                let l_end = self.label();
                self.expr(lhs, ctx)?;
                self.emit(&format!("    beqz    r1, {l_false}"));
                self.expr(rhs, ctx)?;
                self.emit(&format!("    beqz    r1, {l_false}"));
                self.emit("    li      r1, 1");
                self.emit(&format!("    jmp     {l_end}"));
                self.emit(&format!("{l_false}:"));
                self.emit("    li      r1, 0");
                self.emit(&format!("{l_end}:"));
                Ok(())
            }
            Expr::Binary {
                op: BinOp::LOr,
                lhs,
                rhs,
            } => {
                let l_true = self.label();
                let l_end = self.label();
                self.expr(lhs, ctx)?;
                self.emit(&format!("    bnez    r1, {l_true}"));
                self.expr(rhs, ctx)?;
                self.emit(&format!("    bnez    r1, {l_true}"));
                self.emit("    li      r1, 0");
                self.emit(&format!("    jmp     {l_end}"));
                self.emit(&format!("{l_true}:"));
                self.emit("    li      r1, 1");
                self.emit(&format!("{l_end}:"));
                Ok(())
            }
            Expr::Binary { op, lhs, rhs } => {
                self.expr(lhs, ctx)?;
                self.push_r1();
                self.expr(rhs, ctx)?;
                self.emit("    mov     r2, r1");
                self.pop_into("r1");
                match op {
                    BinOp::Add => self.emit("    add     r1, r2"),
                    BinOp::Sub => self.emit("    sub     r1, r2"),
                    BinOp::And => self.emit("    and     r1, r2"),
                    BinOp::Or => self.emit("    or      r1, r2"),
                    BinOp::Xor => self.emit("    xor     r1, r2"),
                    BinOp::Shl => self.emit("    sll     r1, r2"),
                    BinOp::Shr => self.emit("    sra     r1, r2"),
                    BinOp::Mul => {
                        self.need_mul = true;
                        self.emit("    call    __mul");
                    }
                    BinOp::Div => {
                        self.need_div = true;
                        self.emit("    call    __div");
                    }
                    BinOp::Mod => {
                        self.need_mod = true;
                        self.emit("    call    __mod");
                    }
                    BinOp::Lt => self.emit("    slt     r1, r2"),
                    BinOp::Ge => {
                        self.emit("    slt     r1, r2");
                        self.emit("    xori    r1, 1");
                    }
                    BinOp::Gt => {
                        self.emit("    slt     r2, r1");
                        self.emit("    mov     r1, r2");
                    }
                    BinOp::Le => {
                        self.emit("    slt     r2, r1");
                        self.emit("    mov     r1, r2");
                        self.emit("    xori    r1, 1");
                    }
                    BinOp::Eq => {
                        self.emit("    xor     r1, r2");
                        self.emit("    sltiu   r1, 1");
                    }
                    BinOp::Ne => {
                        self.emit("    xor     r1, r2");
                        self.emit("    sltiu   r1, 1");
                        self.emit("    xori    r1, 1");
                    }
                    // Short-circuit operators are lowered by the
                    // dedicated arms above; reaching here means the
                    // dispatch order broke.
                    BinOp::LAnd | BinOp::LOr => {
                        return Err(CompileError::Internal {
                            what: "short-circuit operator reached strict lowering",
                            context: format!("`{op:?}`"),
                        })
                    }
                }
                Ok(())
            }
            Expr::IncDec {
                target,
                inc,
                prefix,
            } => {
                let op = if *inc { "addi" } else { "subi" };
                // Fast path for scalar variables (no address math).
                if let Expr::Var(name) = target.as_ref() {
                    let slot = self.storage_of(name, ctx)?;
                    let (load, store): (String, String) = match slot {
                        Storage::GlobalScalar => (
                            format!("    lw      r1, {name}(r0)"),
                            format!("    sw      r1, {name}(r0)"),
                        ),
                        Storage::Param(i) => (
                            format!("    lw      r1, {}(r12)", 2 + i),
                            format!("    sw      r1, {}(r12)", 2 + i),
                        ),
                        Storage::LocalScalar(slot) => (
                            format!("    lw      r1, -{}(r12)", slot + 1),
                            format!("    sw      r1, -{}(r12)", slot + 1),
                        ),
                        _ => (String::new(), String::new()),
                    };
                    if !load.is_empty() {
                        self.emit(&load);
                        if *prefix {
                            self.emit(&format!("    {op}    r1, 1"));
                            self.emit(&store);
                        } else {
                            self.emit("    mov     r2, r1");
                            self.emit(&format!("    {op}    r2, 1"));
                            self.emit("    subi    r13, 1");
                            self.emit("    sw      r1, 0(r13)");
                            self.emit("    mov     r1, r2");
                            self.emit(&store);
                            self.pop_into("r1");
                        }
                        return Ok(());
                    }
                }
                // General lvalue path through the address.
                self.addr(target, ctx)?;
                self.emit("    mov     r3, r1");
                self.emit("    lw      r1, 0(r3)");
                if *prefix {
                    self.emit(&format!("    {op}    r1, 1"));
                    self.emit("    sw      r1, 0(r3)");
                } else {
                    self.emit("    mov     r2, r1");
                    self.emit(&format!("    {op}    r2, 1"));
                    self.emit("    sw      r2, 0(r3)");
                }
                Ok(())
            }
            Expr::Call { name, args } => self.call(name, args, ctx),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr], ctx: &mut FnCtx) -> Result<(), CompileError> {
        let arity = |n: usize| -> Result<(), CompileError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(CompileError::ArityMismatch {
                    name: name.to_string(),
                    expected: n,
                    got: args.len(),
                })
            }
        };
        match name {
            "__msg_write" => {
                arity(1)?;
                self.expr(&args[0], ctx)?;
                self.emit("    mov     r15, r1");
                Ok(())
            }
            "__msg_read" => {
                arity(0)?;
                self.emit("    mov     r1, r15");
                Ok(())
            }
            "__sched" => {
                arity(3)?;
                self.expr(&args[0], ctx)?;
                self.push_r1();
                self.expr(&args[1], ctx)?;
                self.push_r1();
                self.expr(&args[2], ctx)?;
                self.emit("    mov     r4, r1"); // lo
                self.pop_into("r5"); // hi
                self.pop_into("r1"); // timer
                self.emit("    schedhi r1, r5");
                self.emit("    schedlo r1, r4");
                Ok(())
            }
            "__cancel" => {
                arity(1)?;
                self.expr(&args[0], ctx)?;
                self.emit("    cancel  r1");
                Ok(())
            }
            "__rand" => {
                arity(0)?;
                self.emit("    rand    r1");
                Ok(())
            }
            "__seed" => {
                arity(1)?;
                self.expr(&args[0], ctx)?;
                self.emit("    seed    r1");
                Ok(())
            }
            "__swev" => {
                arity(1)?;
                self.expr(&args[0], ctx)?;
                self.emit("    swev    r1");
                Ok(())
            }
            "__halt" => {
                arity(0)?;
                self.emit("    halt");
                Ok(())
            }
            "__setaddr" => {
                arity(2)?;
                let Expr::Var(fname) = &args[1] else {
                    return Err(CompileError::BadIntrinsic {
                        name: name.to_string(),
                        reason: "second argument must be a function name",
                    });
                };
                if !self.functions.contains_key(fname) {
                    return Err(CompileError::UndefinedFunction(fname.clone()));
                }
                self.expr(&args[0], ctx)?;
                self.emit(&format!("    li      r2, {fname}"));
                self.emit("    setaddr r1, r2");
                Ok(())
            }
            "__bfs" => {
                arity(3)?;
                let Expr::Int(mask) = &args[2] else {
                    return Err(CompileError::BadIntrinsic {
                        name: name.to_string(),
                        reason: "mask must be an integer constant",
                    });
                };
                self.expr(&args[0], ctx)?;
                self.push_r1();
                self.expr(&args[1], ctx)?;
                self.emit("    mov     r2, r1");
                self.pop_into("r1");
                self.emit(&format!("    bfs     r1, r2, {}", (*mask as i32) & 0xffff));
                Ok(())
            }
            _ => {
                let Some(&n) = self.functions.get(name) else {
                    return Err(CompileError::UndefinedFunction(name.to_string()));
                };
                if self.handlers.contains(name) {
                    return Err(CompileError::BadIntrinsic {
                        name: name.to_string(),
                        reason: "handlers cannot be called directly",
                    });
                }
                arity(n)?;
                for arg in args.iter().rev() {
                    self.expr(arg, ctx)?;
                    self.push_r1();
                }
                self.emit(&format!("    call    {name}"));
                if !args.is_empty() {
                    self.emit(&format!("    addi    r13, {}", args.len()));
                }
                Ok(())
            }
        }
    }

    // ---- runtime helpers ----

    fn runtime(&mut self) {
        if self.need_mul || self.need_div || self.need_mod {
            self.emit("");
            self.emit("; ---- snapcc runtime ----");
        }
        if self.need_mul {
            self.emit(
                "__mul:                    ; r1 * r2 -> r1; clobbers r2-r4
    li      r3, 0
__mul_loop:
    beqz    r2, __mul_done
    mov     r4, r2
    andi    r4, 1
    beqz    r4, __mul_skip
    add     r3, r1
__mul_skip:
    slli    r1, 1
    srli    r2, 1
    jmp     __mul_loop
__mul_done:
    mov     r1, r3
    ret",
            );
        }
        if self.need_div || self.need_mod {
            self.emit(
                "__divu:                   ; r1 / r2 -> r1, remainder in r3
    li      r3, 0
    li      r4, 16
__divu_loop:
    slli    r3, 1
    mov     r5, r1
    srli    r5, 15
    or      r3, r5
    slli    r1, 1
    bltu    r3, r2, __divu_no
    sub     r3, r2
    ori     r1, 1
__divu_no:
    subi    r4, 1
    bnez    r4, __divu_loop
    ret",
            );
        }
        if self.need_div {
            self.emit(
                "__div:                    ; signed r1 / r2 -> r1
    mov     r6, r1
    srli    r6, 15
    mov     r7, r2
    srli    r7, 15
    mov     r8, r6
    xor     r8, r7
    beqz    r6, __div_a
    neg     r1, r1
__div_a:
    beqz    r7, __div_b
    neg     r2, r2
__div_b:
    subi    r13, 1
    sw      r14, 0(r13)
    call    __divu
    lw      r14, 0(r13)
    addi    r13, 1
    beqz    r8, __div_done
    neg     r1, r1
__div_done:
    ret",
            );
        }
        if self.need_mod {
            self.emit(
                "__mod:                    ; signed r1 % r2 -> r1 (sign of dividend)
    mov     r6, r1
    srli    r6, 15
    beqz    r6, __mod_a
    neg     r1, r1
__mod_a:
    mov     r7, r2
    srli    r7, 15
    beqz    r7, __mod_b
    neg     r2, r2
__mod_b:
    subi    r13, 1
    sw      r14, 0(r13)
    call    __divu
    lw      r14, 0(r13)
    addi    r13, 1
    mov     r1, r3
    beqz    r6, __mod_done
    neg     r1, r1
__mod_done:
    ret",
            );
        }
    }

    fn data_section(&mut self) {
        if self.global_defs.is_empty() {
            return;
        }
        self.emit("");
        self.emit(".data");
        let defs = std::mem::take(&mut self.global_defs);
        for (name, array, init, array_init) in &defs {
            match (array, array_init) {
                (Some(len), Some(values)) => {
                    let len = (*len).max(1);
                    let mut words: Vec<String> = values
                        .iter()
                        .map(|v| ((*v as i32) & 0xffff).to_string())
                        .collect();
                    words.resize(len, "0".to_string());
                    self.emit(&format!("{name}: .word {}", words.join(", ")));
                }
                (Some(len), None) => {
                    self.emit(&format!("{name}: .space {}", (*len).max(1)));
                }
                (None, _) => {
                    self.emit(&format!("{name}: .word {}", init.unwrap_or(0)));
                }
            }
        }
        self.global_defs = defs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_to_program;
    use snap_core::{CoreConfig, Processor};
    use snap_isa::Reg;

    /// Compile, run to halt, return `main`'s return value (r1).
    fn run_c(src: &str) -> u16 {
        let program = compile_to_program(src).unwrap_or_else(|e| panic!("{e}"));
        let mut cpu = Processor::new(CoreConfig::default());
        cpu.load_image(0, &program.imem_image()).unwrap();
        cpu.load_data(0, &program.dmem_image()).unwrap();
        cpu.run_to_halt(2_000_000).unwrap_or_else(|e| panic!("{e}"));
        cpu.regs().read(Reg::R1)
    }

    #[test]
    fn arithmetic_and_locals() {
        assert_eq!(
            run_c("int main() { int a = 6; int b = 7; return a * b; }"),
            42
        );
        assert_eq!(run_c("int main() { return (3 + 4) * 2 - 5; }"), 9);
        assert_eq!(run_c("int main() { return 100 / 7; }"), 14);
        assert_eq!(run_c("int main() { return 100 % 7; }"), 2);
        assert_eq!(run_c("int main() { return -9 / 2; }") as i16, -4);
        assert_eq!(run_c("int main() { return -9 % 2; }") as i16, -1);
    }

    #[test]
    fn comparisons() {
        assert_eq!(run_c("int main() { return 3 < 5; }"), 1);
        assert_eq!(run_c("int main() { return 5 < 3; }"), 0);
        assert_eq!(run_c("int main() { return -1 < 1; }"), 1);
        assert_eq!(run_c("int main() { return 3 <= 3; }"), 1);
        assert_eq!(run_c("int main() { return 4 > 3; }"), 1);
        assert_eq!(run_c("int main() { return 3 >= 4; }"), 0);
        assert_eq!(run_c("int main() { return 7 == 7; }"), 1);
        assert_eq!(run_c("int main() { return 7 != 7; }"), 0);
    }

    #[test]
    fn logic_and_shifts() {
        assert_eq!(run_c("int main() { return 1 && 2; }"), 1);
        assert_eq!(run_c("int main() { return 0 && 1; }"), 0);
        assert_eq!(run_c("int main() { return 0 || 3; }"), 1);
        assert_eq!(run_c("int main() { return 0 || 0; }"), 0);
        assert_eq!(run_c("int main() { return !5; }"), 0);
        assert_eq!(run_c("int main() { return !0; }"), 1);
        assert_eq!(run_c("int main() { return ~0; }"), 0xffff);
        assert_eq!(run_c("int main() { return 1 << 10; }"), 1024);
        assert_eq!(
            run_c("int main() { return 0x55 & 0x0f | 0x30 ^ 0x10; }"),
            0x25
        );
    }

    #[test]
    fn short_circuit_has_no_side_effect() {
        let src = "
            int hits;
            int bump() { hits = hits + 1; return 1; }
            int main() { 0 && bump(); 1 || bump(); return hits; }
        ";
        assert_eq!(run_c(src), 0);
    }

    #[test]
    fn control_flow() {
        let src = "
            int main() {
                int s = 0;
                int i;
                for (i = 1; i <= 10; i = i + 1) s = s + i;
                while (s > 50) s = s - 1;
                if (s == 50) return 1; else return 0;
            }
        ";
        assert_eq!(run_c(src), 1);
    }

    #[test]
    fn compound_assignment() {
        assert_eq!(
            run_c("int main() { int a = 10; a += 5; a -= 2; a *= 3; return a; }"),
            39
        );
        assert_eq!(
            run_c("int main() { int a = 100; a /= 7; a %= 4; return a; }"),
            2
        );
        assert_eq!(
            run_c("int main() { int a = 0xf0; a &= 0x3c; a |= 1; a ^= 0xff; a <<= 2; a >>= 1; return a; }"),
            ((((0xf0 & 0x3c) | 1) ^ 0xff) << 2) >> 1
        );
        let src = "
            int buf[4];
            int main() { int i = 2; buf[i] += 7; buf[i] += 1; return buf[2]; }
        ";
        assert_eq!(run_c(src), 8);
    }

    #[test]
    fn increment_decrement() {
        assert_eq!(run_c("int main() { int a = 5; return ++a; }"), 6);
        assert_eq!(run_c("int main() { int a = 5; return a++; }"), 5);
        assert_eq!(run_c("int main() { int a = 5; a++; ++a; return a; }"), 7);
        assert_eq!(run_c("int main() { int a = 5; return --a + a--; }"), 8); // 4 + 4
        assert_eq!(
            run_c("int main() { int s = 0; int i; for (i = 0; i < 5; i++) s += i; return s; }"),
            10
        );
        let src = "
            int buf[3];
            int main() { int i = 0; buf[i++] = 7; buf[i++] = 8; return buf[0] * 10 + buf[1] + i; }
        ";
        assert_eq!(run_c(src), 80);
    }

    #[test]
    fn global_array_initializers() {
        let src = "
            int table[5] = {10, 20, 30};
            int main() { return table[0] + table[1] + table[2] + table[3] + table[4]; }
        ";
        assert_eq!(run_c(src), 60);
        let neg = "int t[2] = {-1, -2}; int main() { return t[0] + t[1]; }";
        assert_eq!(run_c(neg) as i16, -3);
        use crate::SnapccError;
        let err =
            crate::compile_to_program("int x = 0; int y[1] = {1, 2}; int main() { return 0; }")
                .unwrap_err();
        assert!(
            matches!(err, SnapccError::Parse(_)),
            "too many initializers"
        );
    }

    #[test]
    fn break_and_continue() {
        // Sum odd numbers below 10, stopping at 20.
        let src = "
            int main() {
                int s = 0; int i;
                for (i = 0; i < 100; i = i + 1) {
                    if (i % 2 == 0) continue;
                    if (s > 20) break;
                    s = s + i;
                }
                return s;
            }
        ";
        // 1+3+5+7 = 16, +9 = 25 > 20? s>20 checked before adding: after
        // 1,3,5,7 s=16; i=9: 16<=20 so add -> 25; i=11: 25>20 -> break.
        assert_eq!(run_c(src), 25);
        let src2 = "
            int main() {
                int n = 0;
                while (1) { n = n + 1; if (n == 7) break; }
                return n;
            }
        ";
        assert_eq!(run_c(src2), 7);
    }

    #[test]
    fn break_outside_loop_is_an_error() {
        use crate::SnapccError;
        let err = compile_to_program("int main() { break; return 0; }").unwrap_err();
        assert!(matches!(
            err,
            SnapccError::Compile(CompileError::NotInLoop("break"))
        ));
        let err = compile_to_program("int main() { continue; return 0; }").unwrap_err();
        assert!(matches!(
            err,
            SnapccError::Compile(CompileError::NotInLoop("continue"))
        ));
    }

    #[test]
    fn recursion_fibonacci() {
        let src = "
            int fib(int n) {
                if (n < 2) return n;
                return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(12); }
        ";
        assert_eq!(run_c(src), 144);
    }

    #[test]
    fn globals_and_arrays() {
        let src = "
            int total = 5;
            int buf[8];
            int main() {
                int i;
                for (i = 0; i < 8; i = i + 1) buf[i] = i * i;
                for (i = 0; i < 8; i = i + 1) total = total + buf[i];
                return total;
            }
        ";
        assert_eq!(run_c(src), 5 + (0..8).map(|i| i * i).sum::<u16>());
    }

    #[test]
    fn local_arrays_and_bubble_sort() {
        let src = "
            int main() {
                int a[5];
                int i; int j; int t;
                a[0] = 9; a[1] = 1; a[2] = 8; a[3] = 3; a[4] = 5;
                for (i = 0; i < 5; i = i + 1)
                    for (j = 0; j + 1 < 5 - i; j = j + 1)
                        if (a[j] > a[j + 1]) { t = a[j]; a[j] = a[j + 1]; a[j + 1] = t; }
                return a[0] * 10000 + a[1] * 1000 + a[2] * 100 + a[3] * 10 + a[4];
            }
        ";
        assert_eq!(run_c(src), 13589);
    }

    #[test]
    fn pointers() {
        let src = "
            int g;
            int set(int p, int v) { *p = v; return 0; }
            int main() {
                int x = 1;
                set(&x, 41);
                set(&g, 1);
                return x + g;
            }
        ";
        assert_eq!(run_c(src), 42);
    }

    #[test]
    fn pointer_indexing() {
        let src = "
            int buf[4];
            int sum(int p, int n) {
                int s = 0; int i;
                for (i = 0; i < n; i = i + 1) s = s + p[i];
                return s;
            }
            int main() {
                buf[0] = 10; buf[1] = 20; buf[2] = 30; buf[3] = 40;
                return sum(buf, 4);
            }
        ";
        assert_eq!(run_c(src), 100);
    }

    #[test]
    fn intrinsics_rand_seed() {
        let src = "
            int main() {
                int a; int b;
                __seed(0x1234);
                a = __rand();
                __seed(0x1234);
                b = __rand();
                return a == b;
            }
        ";
        assert_eq!(run_c(src), 1);
    }

    #[test]
    fn nested_scopes_shadow() {
        let src = "
            int main() {
                int x = 1;
                if (1) { int x = 10; x = x + 1; }
                return x;
            }
        ";
        assert_eq!(run_c(src), 1);
    }

    #[test]
    fn compile_errors() {
        use crate::SnapccError;
        let undef = compile_to_program("int main() { return y; }").unwrap_err();
        assert!(matches!(
            undef,
            SnapccError::Compile(CompileError::UndefinedVariable(_))
        ));
        let nomain = compile_to_program("int f() { return 1; }").unwrap_err();
        assert!(matches!(nomain, SnapccError::Compile(CompileError::NoMain)));
        let arity = compile_to_program("int f(int a) { return a; } int main() { return f(); }")
            .unwrap_err();
        assert!(matches!(
            arity,
            SnapccError::Compile(CompileError::ArityMismatch { .. })
        ));
        let dup = compile_to_program("int x; int x; int main() { return 0; }").unwrap_err();
        assert!(matches!(
            dup,
            SnapccError::Compile(CompileError::Duplicate(_))
        ));
    }

    #[test]
    fn generated_code_is_load_store_heavy() {
        // The paper's §4.5 observation: unoptimized compilation makes
        // Load the second most frequent class. Check the profile.
        let src = "
            int main() {
                int s = 0; int i;
                for (i = 0; i < 20; i = i + 1) s = s + i * 3;
                return s;
            }
        ";
        let program = compile_to_program(src).unwrap();
        let mut cpu = Processor::new(CoreConfig::default());
        cpu.load_image(0, &program.imem_image()).unwrap();
        cpu.run_to_halt(1_000_000).unwrap();
        use snap_isa::InstructionClass as C;
        let loads = cpu.acct().class_stats(C::Load).count + cpu.acct().class_stats(C::Store).count;
        let total = cpu.acct().instructions();
        let frac = loads as f64 / total as f64;
        assert!(
            frac > 0.2,
            "load/store fraction {frac} should be large (naive codegen)"
        );
    }

    #[test]
    fn malformed_input_errors_instead_of_panicking() {
        // Regression: every error path in the pipeline must surface as
        // a diagnostic, never a process abort, so drivers (srun --lint,
        // xtask) can attribute the failure to the input file.
        let broken = [
            "int main() { return }",
            "int main() { { int x = 1; } return x; }",
            "int main() { int a = (1 ",
            "int main() { break; }",
            "int main() { int a; int a; return 0; }",
            "int main() { return g(); }",
            "}{",
            "int main() { 1 = 2; }",
        ];
        for src in broken {
            let err = compile_to_program(src)
                .expect_err("malformed input must fail")
                .to_string();
            assert!(!err.is_empty(), "{src:?} must carry a message");
        }
        // Parse errors carry the offending source line.
        let err = compile_to_program("int main()\n{\n  return\n}\n").unwrap_err();
        assert!(
            err.to_string().contains("line"),
            "parse diagnostics carry line info: {err}"
        );
    }

    #[test]
    fn short_circuit_operators_use_dedicated_lowering() {
        // Regression for the strict-lowering guard: `&&`/`||` must hit
        // the short-circuit arms in every expression position.
        assert_eq!(run_c("int main() { return 1 && 2; }"), 1);
        assert_eq!(run_c("int main() { return 0 || 3 && 1; }"), 1);
        assert_eq!(
            run_c("int main() { int x = (1 || 0) + (1 && 1); return x; }"),
            2
        );
        // Divide-by-zero on the right of && must never run.
        assert_eq!(run_c("int main() { int z = 0; return 0 && (1 / z); }"), 0);
    }
}
