//! AODV route discovery (extension).
//!
//! The paper's "simplified routing layer" answers route requests from a
//! *static* table (that is exactly what Table 1's Route Reply handler
//! measures). This module adds the part real AODV is known for —
//! on-demand discovery:
//!
//! * a **discovery request** (`PKT_DRREQ`) floods the network: each
//!   node that sees it for the first time learns the *reverse* route to
//!   the origin (via the previous hop in the rewritten `src` byte) and
//!   rebroadcasts; duplicates are suppressed by an `(origin, id)` key;
//! * the **target** answers with a **discovery reply** (`PKT_DRREP`)
//!   that travels hop-by-hop back along the learned reverse routes;
//!   every node on the way (and finally the origin) learns the
//!   *forward* route to the target.
//!
//! After a discovery completes, ordinary DATA forwarding (the paper's
//! handler) works over the learned entries.

use crate::aodv::{routing_table_module, AODV};
use crate::mac::{mac_boot_with_backoff, MAC};
use crate::prelude::PRELUDE;
use snap_asm::{assemble_modules, AsmError, Program};

/// Route-discovery handlers and the `aodv_discover` entry point.
pub const DISCOVERY: &str = r"
; ================= AODV route discovery =================
.data
disc_seen:  .word 0xffff   ; last (origin << 8 | id) observed
disc_id:    .word 0        ; our next discovery id
disc_done:  .word 0        ; discoveries completed at this origin
disc_ra:    .word 0        ; saved link register

.text
; Initiate discovery of the destination in r1. Callable from handlers
; (`call aodv_discover`); the caller issues `done` afterwards.
aodv_discover:
    sw      r14, disc_ra(r0)
    lw      r4, node_id(r0)
    lw      r5, disc_id(r0)
    addi    r5, 1
    sw      r5, disc_id(r0)
    ; mark our own flood as seen so the echo is suppressed
    mov     r6, r4
    slli    r6, 8
    mov     r7, r5
    andi    r7, 0xff
    or      r6, r7
    sw      r6, disc_seen(r0)
    ; DRREQ: dst = broadcast, src = me, payload [target, origin, id]
    li      r2, 0xff00
    bfs     r2, r4, 0xff
    sw      r2, mac_tx_buf+0(r0)
    li      r2, PKT_DRREQ << 8 | 3
    sw      r2, mac_tx_buf+1(r0)
    sw      r1, mac_tx_buf+2(r0)
    sw      r4, mac_tx_buf+3(r0)
    sw      r5, mac_tx_buf+4(r0)
    li      r1, 5
    call    mac_send
    lw      r14, disc_ra(r0)
    ret

; DRREQ arrives (dispatched with r2 = header, r4 = our id).
aodv_drreq:
    lw      r7, mac_rx_buf+3(r0)   ; origin
    mov     r8, r7
    slli    r8, 8
    lw      r9, mac_rx_buf+4(r0)   ; id
    andi    r9, 0xff
    or      r8, r9
    lw      r9, disc_seen(r0)
    beq     r8, r9, aodv_disc_out  ; duplicate: suppress
    sw      r8, disc_seen(r0)
    ; learn the reverse route: origin via the previous hop (src byte)
    mov     r10, r2
    andi    r10, 0xff
    mov     r9, r7
    call    rt_insert
    ; are we the target?
    lw      r7, mac_rx_buf+2(r0)
    beq     r7, r4, aodv_drreq_reply
    ; rebroadcast with src rewritten to us
    lw      r2, mac_rx_buf+0(r0)
    bfs     r2, r4, 0xff
    sw      r2, mac_tx_buf+0(r0)
    lw      r5, mac_rx_buf+1(r0)
    sw      r5, mac_tx_buf+1(r0)
    lw      r5, mac_rx_buf+2(r0)
    sw      r5, mac_tx_buf+2(r0)
    lw      r5, mac_rx_buf+3(r0)
    sw      r5, mac_tx_buf+3(r0)
    lw      r5, mac_rx_buf+4(r0)
    sw      r5, mac_tx_buf+4(r0)
    li      r1, 5
    call    mac_send
    done
aodv_drreq_reply:
    ; DRREP back to the previous hop: payload [target = us, origin]
    lw      r2, mac_rx_buf+0(r0)
    andi    r2, 0xff
    slli    r2, 8
    bfs     r2, r4, 0xff
    sw      r2, mac_tx_buf+0(r0)
    li      r5, PKT_DRREP << 8 | 2
    sw      r5, mac_tx_buf+1(r0)
    sw      r4, mac_tx_buf+2(r0)
    lw      r5, mac_rx_buf+3(r0)
    sw      r5, mac_tx_buf+3(r0)
    li      r1, 4
    call    mac_send
    done

; DRREP arrives (r3 = dst, r4 = our id).
aodv_drrep:
    bne     r3, r4, aodv_disc_out  ; overheard someone else's reply
    ; learn the forward route: target via the previous hop
    lw      r9, mac_rx_buf+2(r0)
    lw      r10, mac_rx_buf+0(r0)
    andi    r10, 0xff
    call    rt_insert
    ; did the reply reach its origin?
    lw      r7, mac_rx_buf+3(r0)
    beq     r7, r4, aodv_drrep_done
    ; relay toward the origin along the reverse route
    call    rt_lookup              ; r7 = origin -> r8 = next hop
    li      r9, 0xffff
    beq     r8, r9, aodv_disc_out  ; reverse route missing: drop
    mov     r2, r8
    slli    r2, 8
    bfs     r2, r4, 0xff
    sw      r2, mac_tx_buf+0(r0)
    li      r5, PKT_DRREP << 8 | 2
    sw      r5, mac_tx_buf+1(r0)
    lw      r5, mac_rx_buf+2(r0)
    sw      r5, mac_tx_buf+2(r0)
    lw      r5, mac_rx_buf+3(r0)
    sw      r5, mac_tx_buf+3(r0)
    li      r1, 4
    call    mac_send
    done
aodv_drrep_done:
    lw      r5, disc_done(r0)
    addi    r5, 1
    sw      r5, disc_done(r0)
    done
aodv_disc_out:
    done

; Insert or update a routing-table entry.
;   in: r9 = destination, r10 = next hop
;   clobbers r5, r11, r12
rt_insert:
    li      r11, 0
rt_ins_loop:
    lw      r12, rt_table(r11)
    beq     r12, r9, rt_ins_write  ; update existing entry
    li      r5, 0xffff
    beq     r12, r5, rt_ins_write  ; claim an empty slot
    addi    r11, 2
    li      r5, 16
    bltu    r11, r5, rt_ins_loop
    ret                            ; table full: drop the route
rt_ins_write:
    sw      r9, rt_table(r11)
    addi    r11, 1
    sw      r10, rt_table(r11)
    ret
";

/// Stub for programs that link AODV without discovery (the dispatch
/// references the handler labels).
pub const DISCOVERY_STUB: &str = "
aodv_drreq:
    done
aodv_drrep:
    done
";

/// Assemble a network node with MAC + AODV + route discovery. `routes`
/// pre-seeds the table (usually empty — discovery fills it); `app`
/// must provide `app_deliver`.
///
/// `backoff_mask` sets the CSMA contention window (see
/// [`mac_boot_with_backoff`]): floods make *simultaneous* responders
/// likely, and on this ALOHA-like MAC two transmissions that start
/// within one word time collide — dense topologies need a window of
/// several packet air-times (e.g. `0x3fff` ≈ 16 ms) to separate the
/// rebroadcast race, while sparse chains can keep the default `0x3f`.
pub fn aodv_discovery_program(
    node_id: u8,
    routes: &[(u8, u8)],
    extra_boot: &str,
    app: &str,
    backoff_mask: u16,
) -> Result<Program, AsmError> {
    assemble_modules(&[
        ("prelude.s", PRELUDE),
        (
            "boot.s",
            &mac_boot_with_backoff(node_id, extra_boot, backoff_mask),
        ),
        ("mac.s", MAC),
        ("aodv.s", AODV),
        ("disc.s", DISCOVERY),
        ("rt.s", &routing_table_module(routes)),
        ("app.s", app),
    ])
}
