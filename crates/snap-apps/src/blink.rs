//! The Blink benchmark (Fig. 5).
//!
//! The TinyOS `BlinkTask` example "sets up a periodic timer interrupt
//! that enqueues a function on the TinyOS task queue to blink an LED".
//! The SNAP port follows the same flow (paper §4.6): a periodic timer
//! event whose handler *enqueues* the blink task — here with the `swev`
//! soft-event instruction, the hardware-event-queue analogue of TinyOS
//! `post` — and the task handler toggles the LED through the port.
//!
//! On the mote, only 16 of 523 cycles per blink do the blinking; the
//! rest is timer-interrupt servicing and the TinyOS scheduler. On SNAP
//! the entire blink is a few tens of cycles because the event queue and
//! timer are hardware.

use crate::prelude::{install_handler, PRELUDE};
use snap_asm::{assemble_modules, AsmError, Program};

/// Blink period in timer ticks (µs at the default tick).
pub const BLINK_PERIOD_TICKS: u16 = 1000;

/// The Blink application.
pub const BLINK: &str = r"
; ================= Blink =================
.data
blink_state:  .word 0
blink_ticks:  .word 0

.text
; periodic timer handler: count the tick, re-arm, post the blink task
blink_timer:
    lw      r2, blink_ticks(r0)
    addi    r2, 1
    sw      r2, blink_ticks(r0)
    li      r1, 0
    schedhi r1, r0
    li      r2, 1000            ; BLINK_PERIOD_TICKS
    schedlo r1, r2
    li      r3, EV_SOFT
    swev    r3
    done

; the blink task: toggle the LED on the output port
blink_task:
    lw      r4, blink_state(r0)
    xori    r4, 1
    sw      r4, blink_state(r0)
    li      r5, CMD_PORT
    or      r5, r4
    mov     r15, r5
    done
";

/// Assemble the Blink program.
pub fn blink_program() -> Result<Program, AsmError> {
    let mut extra = String::new();
    extra.push_str(&install_handler("EV_TIMER0", "blink_timer"));
    extra.push_str(&install_handler("EV_SOFT", "blink_task"));
    extra
        .push_str("    li      r1, 0\n    schedhi r1, r0\n    li      r2, 1\n    schedlo r1, r2\n");
    let boot = format!("boot:\n{extra}    done\n");
    assemble_modules(&[
        ("prelude.s", PRELUDE),
        ("boot.s", &boot),
        ("blink.s", BLINK),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dess::SimDuration;
    use snap_node::{Node, NodeConfig};

    fn blinked_node(duration_ms: u64) -> (Node, Program) {
        let program = blink_program().unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.run_for(SimDuration::from_ms(duration_ms)).unwrap();
        (node, program)
    }

    #[test]
    fn led_toggles_periodically() {
        let (node, _) = blinked_node(10);
        // First blink at ~1us, then every 1ms: ~10 toggles in 10ms.
        let toggles = node.led().writes();
        assert!((8..=12).contains(&toggles), "toggles {toggles}");
        assert_eq!(node.led().changes(), toggles, "every write is a toggle");
    }

    #[test]
    fn per_blink_cost_matches_fig5_scale() {
        // Measure one whole blink (timer handler + task) between two
        // steady-state toggles.
        let program = blink_program().unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.run_for(SimDuration::from_ms(2)).unwrap(); // past boot + first blinks
        let before = node.cpu().stats();
        node.run_for(SimDuration::from_ms(1)).unwrap(); // exactly one period
        let d = node.cpu().stats().since(&before);
        // Fig. 5: SNAP blink is 41 cycles (vs 523 on the mote). Our port
        // lands in the same few-tens band.
        assert!((20..=60).contains(&d.cycles), "cycles {}", d.cycles);
        assert!(
            (10..=40).contains(&d.instructions),
            "instructions {}",
            d.instructions
        );
        assert_eq!(d.handlers_dispatched, 2, "timer handler + posted task");
    }

    #[test]
    fn blink_energy_band() {
        use snap_core::CoreConfig;
        use snap_energy::OperatingPoint;
        // Paper: 6.8nJ per blink at 1.8V, 0.5nJ at 0.6V (vs 1960nJ on
        // the mote). Check the order of magnitude at both points.
        for (point, max_nj) in [(OperatingPoint::V1_8, 12.0), (OperatingPoint::V0_6, 1.5)] {
            let program = blink_program().unwrap();
            let cfg = NodeConfig {
                core: CoreConfig::at(point),
                ..NodeConfig::default()
            };
            let mut node = Node::new(cfg);
            node.load(&program).unwrap();
            node.run_for(SimDuration::from_ms(2)).unwrap();
            let before = node.cpu().stats();
            node.run_for(SimDuration::from_ms(1)).unwrap();
            let d = node.cpu().stats().since(&before);
            assert!(
                d.energy.as_nj() < max_nj,
                "{point:?}: {} per blink",
                d.energy
            );
            assert!(
                d.energy.as_nj() > 0.1 * max_nj,
                "{point:?}: {} per blink",
                d.energy
            );
        }
    }

    #[test]
    fn code_size_is_small_like_the_paper() {
        // Paper: 184 bytes for the SNAP Blink vs 1.4KB on TinyOS.
        let program = blink_program().unwrap();
        let bytes = program.code_bytes();
        assert!(bytes < 200, "Blink is {bytes} bytes");
    }
}
