//! The Sense benchmark (§4.6).
//!
//! Port of the TinyOS "Sense" application: periodically sample the ADC,
//! keep the last sixteen readings in a circular buffer, average them,
//! and display the high-order bits on the LEDs. On the mote one
//! iteration takes 1118 cycles, 781 of which are interrupt service and
//! scheduler overhead (two interrupts per sample: timer and ADC). On
//! SNAP the timer and ADC completions are event tokens, so an iteration
//! is a few hundred cycles of pure application work.

use crate::prelude::{install_handler, PRELUDE};
use snap_asm::{assemble_modules, AsmError, Program};

/// Sample period in timer ticks (µs at the default tick).
pub const SENSE_PERIOD_TICKS: u16 = 1000;

/// Depth of the averaging buffer.
pub const SENSE_BUF: usize = 16;

/// The ADC sensor id sampled by the app.
pub const ADC_SENSOR: u16 = 1;

/// The Sense application.
pub const SENSE: &str = r"
; ================= Sense =================
.data
sense_buf:    .space 16
sense_pos:    .word 0
sense_n:      .word 0      ; samples taken (saturates display warm-up)
sense_iters:  .word 0

.text
; timer-0 handler: start an ADC sample, re-arm the period
sense_timer:
    li      r2, CMD_QUERY | 1   ; query the ADC (sensor 1)
    mov     r15, r2
    li      r1, 0
    schedhi r1, r0
    li      r2, 1000            ; SENSE_PERIOD_TICKS
    schedlo r1, r2
    done

; ADC completion: store the reading, post the averaging task
sense_adc:
    mov     r2, r15
    lw      r3, sense_pos(r0)
    sw      r2, sense_buf(r3)
    addi    r3, 1
    andi    r3, 15              ; SENSE_BUF - 1
    sw      r3, sense_pos(r0)
    lw      r4, sense_n(r0)
    addi    r4, 1
    sw      r4, sense_n(r0)
    li      r5, EV_SOFT
    swev    r5
    done

; averaging task: mean of the 16-entry buffer, display high bits
sense_task:
    li      r2, 0               ; index
    li      r3, 0               ; sum
    li      r5, 16
sense_sum:
    lw      r4, sense_buf(r2)
    add     r3, r4
    addi    r2, 1
    bltu    r2, r5, sense_sum
    srli    r3, 4               ; / 16
    srli    r3, 7               ; display the high-order bits (3 LEDs)
    andi    r3, 7
    li      r4, CMD_PORT
    or      r4, r3
    mov     r15, r4
    lw      r6, sense_iters(r0)
    addi    r6, 1
    sw      r6, sense_iters(r0)
    done
";

/// Assemble the Sense program.
pub fn sense_program() -> Result<Program, AsmError> {
    let mut extra = String::new();
    extra.push_str(&install_handler("EV_TIMER0", "sense_timer"));
    extra.push_str(&install_handler("EV_REPLY", "sense_adc"));
    extra.push_str(&install_handler("EV_SOFT", "sense_task"));
    extra
        .push_str("    li      r1, 0\n    schedhi r1, r0\n    li      r2, 1\n    schedlo r1, r2\n");
    let boot = format!("boot:\n{extra}    done\n");
    assemble_modules(&[
        ("prelude.s", PRELUDE),
        ("boot.s", &boot),
        ("sense.s", SENSE),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dess::SimDuration;
    use snap_node::{Node, NodeConfig};

    fn run_sense(reading: u16, ms: u64) -> (Node, Program) {
        let program = sense_program().unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.sensors_mut().set_reading(ADC_SENSOR, reading);
        node.run_for(SimDuration::from_ms(ms)).unwrap();
        (node, program)
    }

    #[test]
    fn averages_and_displays_high_bits() {
        // Constant reading 0x0400 (1024): mean 1024; >>7 & 7 = 0b000? 1024>>7=8 &7=0.
        // Use 0x03ff (1023): filled buffer mean 1023 -> 1023>>7 = 7.
        let (node, program) = run_sense(0x03ff, 25);
        let iters = node
            .cpu()
            .dmem()
            .read(program.symbol("sense_iters").unwrap());
        assert!(iters >= 16, "iterations {iters}");
        assert_eq!(node.led().value(), 7);
    }

    #[test]
    fn warm_up_shows_partial_average() {
        // After 4 of 16 samples of 1600, mean = 400 -> 400>>7 = 3.
        let (node, _) = run_sense(1600, 4); // samples at ~0,1,2,3 ms
        assert_eq!(node.led().value(), 3);
    }

    #[test]
    fn per_iteration_cycles_match_paper_scale() {
        let program = sense_program().unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.sensors_mut().set_reading(ADC_SENSOR, 512);
        node.run_for(SimDuration::from_ms(20)).unwrap();
        let before = node.cpu().stats();
        node.run_for(SimDuration::from_ms(1)).unwrap(); // one period
        let d = node.cpu().stats().since(&before);
        // Paper: 261 cycles per iteration on SNAP (vs 1118 on the mote).
        assert!((120..=350).contains(&d.cycles), "cycles {}", d.cycles);
        assert_eq!(d.handlers_dispatched, 3, "timer + adc + task");
    }
}
