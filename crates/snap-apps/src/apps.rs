//! The two Table 1 sensor applications.
//!
//! * **Temperature Sense** — "Simulates reading a sensor and computing a
//!   running average and logging the value." A periodic timer queries
//!   the temperature sensor; each reply updates an exponential running
//!   average (`avg += (x - avg) / 8`, shifts only — the core has no
//!   divider) and appends the raw reading to a circular DMEM log.
//! * **Range Comparison / Threshold** — "Simulates receiving a packet,
//!   comparing two fields, and logging the larger of the two." Runs on
//!   top of the MAC + AODV stack: its `app_deliver` hook compares the
//!   two payload words of a DATA packet and logs the larger.

use crate::aodv::aodv_node_program;
use crate::prelude::{install_handler, PRELUDE};
use snap_asm::{assemble_modules, AsmError, Program};

/// Temperature sensor id used by the app.
pub const TEMP_SENSOR: u16 = 0;

/// Sampling period in timer ticks (µs at the default tick).
pub const TEMP_PERIOD_TICKS: u16 = 500;

/// The Temperature Sense application (standalone; no MAC).
pub const TEMPERATURE: &str = r"
; ================= Temperature Sense =================
.data
temp_avg:     .word 0
temp_log:     .space 32
temp_log_pos: .word 0
temp_samples: .word 0

.text
; timer-0 handler: poll the temperature sensor, re-arm the timer
temp_timer:
    li      r2, CMD_QUERY | 0   ; query sensor 0
    mov     r15, r2
    li      r1, 0
    schedhi r1, r0
    li      r2, 500             ; TEMP_PERIOD_TICKS
    schedlo r1, r2
    done

; sensor-reply handler: running average + log
temp_reply:
    mov     r2, r15             ; the reading
    lw      r3, temp_avg(r0)
    mov     r4, r2
    sub     r4, r3              ; x - avg
    srai    r4, 3               ; (x - avg) / 8
    add     r3, r4
    sw      r3, temp_avg(r0)
    lw      r5, temp_log_pos(r0)
    sw      r2, temp_log(r5)
    addi    r5, 1
    andi    r5, 31              ; 32-entry circular log
    sw      r5, temp_log_pos(r0)
    lw      r6, temp_samples(r0)
    addi    r6, 1
    sw      r6, temp_samples(r0)
    done
";

/// Boot extra for the temperature app: install handlers, start timer 0.
pub fn temperature_boot_extra() -> String {
    let mut s = String::new();
    s.push_str(&install_handler("EV_TIMER0", "temp_timer"));
    s.push_str(&install_handler("EV_REPLY", "temp_reply"));
    // First sample after 100 ticks, leaving boot clearly separable
    // from steady-state sampling for the Table 1 measurements.
    s.push_str("    li      r1, 0\n    schedhi r1, r0\n    li      r2, 100\n    schedlo r1, r2\n");
    s
}

/// Assemble the standalone Temperature Sense program.
pub fn temperature_program() -> Result<Program, AsmError> {
    let boot = format!("boot:\n{}    done\n", temperature_boot_extra());
    assemble_modules(&[
        ("prelude.s", PRELUDE),
        ("boot.s", &boot),
        ("temp.s", TEMPERATURE),
    ])
}

/// The Threshold / Range Comparison application module (provides
/// `app_deliver` for the AODV stack).
pub const THRESHOLD: &str = r"
; ================= Range Comparison / Threshold =================
.data
thr_log:      .space 16
thr_log_pos:  .word 0
thr_count:    .word 0

.text
; app_deliver: DATA packet for us is in mac_rx_buf; payload words are
; at indices 2 and 3. Log the larger.
app_deliver:
    lw      r2, mac_rx_buf+2(r0)
    lw      r3, mac_rx_buf+3(r0)
    bgeu    r2, r3, thr_keep_a
    mov     r2, r3
thr_keep_a:
    lw      r4, thr_log_pos(r0)
    sw      r2, thr_log(r4)
    addi    r4, 1
    andi    r4, 15
    sw      r4, thr_log_pos(r0)
    lw      r5, thr_count(r0)
    addi    r5, 1
    sw      r5, thr_count(r0)
    done
";

/// Assemble the Threshold node: MAC + AODV + threshold app.
pub fn threshold_program(node_id: u8) -> Result<Program, AsmError> {
    aodv_node_program(node_id, &[], "", THRESHOLD)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use dess::SimDuration;
    use snap_node::{Node, NodeConfig};

    #[test]
    fn temperature_samples_and_averages() {
        let program = temperature_program().unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.sensors_mut().set_reading(TEMP_SENSOR, 80);
        // 5 samples: first at ~100us, then every 500us.
        node.run_for(SimDuration::from_us(2_400)).unwrap();
        let samples = program.symbol("temp_samples").unwrap();
        assert_eq!(node.cpu().dmem().read(samples), 5);
        // Average converges toward 80 from 0: after 5 EWMA steps,
        // avg = 80 * (1 - (7/8)^5) ~ 41.
        let avg = node.cpu().dmem().read(program.symbol("temp_avg").unwrap());
        assert!((35..=48).contains(&avg), "avg {avg}");
        // Log holds the raw readings.
        let log = program.symbol("temp_log").unwrap();
        assert_eq!(node.cpu().dmem().read(log), 80);
        assert_eq!(node.cpu().dmem().read(log + 4), 80);
    }

    #[test]
    fn temperature_tracks_changing_input() {
        let program = temperature_program().unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.sensors_mut().set_reading(TEMP_SENSOR, 100);
        node.run_for(SimDuration::from_ms(20)).unwrap();
        let avg_addr = program.symbol("temp_avg").unwrap();
        let avg_high = node.cpu().dmem().read(avg_addr);
        assert!((88..=100).contains(&avg_high), "converged avg {avg_high}");
        node.sensors_mut().set_reading(TEMP_SENSOR, 20);
        node.run_for(SimDuration::from_ms(20)).unwrap();
        let avg_low = node.cpu().dmem().read(avg_addr);
        assert!(avg_low < 40, "avg should fall, got {avg_low}");
    }

    #[test]
    fn threshold_logs_larger_field() {
        let program = threshold_program(4).unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.run_for(SimDuration::from_ms(1)).unwrap();
        for w in Packet::data(4, 1, vec![120, 340]).encode() {
            node.deliver_rx(w);
            node.run_for(SimDuration::from_us(900)).unwrap();
        }
        for w in Packet::data(4, 1, vec![900, 7]).encode() {
            node.deliver_rx(w);
            node.run_for(SimDuration::from_us(900)).unwrap();
        }
        let log = program.symbol("thr_log").unwrap();
        assert_eq!(node.cpu().dmem().read(log), 340);
        assert_eq!(node.cpu().dmem().read(log + 1), 900);
        assert_eq!(
            node.cpu().dmem().read(program.symbol("thr_count").unwrap()),
            2
        );
    }

    #[test]
    fn threshold_compare_is_unsigned() {
        let program = threshold_program(4).unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.run_for(SimDuration::from_ms(1)).unwrap();
        for w in Packet::data(4, 1, vec![0x8000, 5]).encode() {
            node.deliver_rx(w);
            node.run_for(SimDuration::from_us(900)).unwrap();
        }
        let log = program.symbol("thr_log").unwrap();
        assert_eq!(node.cpu().dmem().read(log), 0x8000);
    }
}
