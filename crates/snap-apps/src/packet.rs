//! Rust-side packet encode/decode matching the MAC layer's wire format.
//!
//! A packet is a sequence of 16-bit words:
//!
//! ```text
//! w0           w1            w2 .. w1+len   last
//! dst:8|src:8  type:8|len:8  payload        checksum (sum of all prior words)
//! ```
//!
//! Total length is `2 + len + 1` words. The checksum is the wrapping sum
//! of the header and payload words, verified by the MAC receive handler.

use snap_isa::Word;

/// Packet types understood by the routing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketType {
    /// Application data.
    Data,
    /// AODV route request.
    RouteRequest,
    /// AODV route reply.
    RouteReply,
    /// Route-discovery request (flooded; extension).
    DiscoveryRequest,
    /// Route-discovery reply (unicast back; extension).
    DiscoveryReply,
}

impl PacketType {
    /// Wire code (must match the `PKT_*` equates in the prelude).
    pub fn code(self) -> u8 {
        match self {
            PacketType::Data => 1,
            PacketType::RouteRequest => 2,
            PacketType::RouteReply => 3,
            PacketType::DiscoveryRequest => 4,
            PacketType::DiscoveryReply => 5,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: u8) -> Option<PacketType> {
        match code {
            1 => Some(PacketType::Data),
            2 => Some(PacketType::RouteRequest),
            3 => Some(PacketType::RouteReply),
            4 => Some(PacketType::DiscoveryRequest),
            5 => Some(PacketType::DiscoveryReply),
            _ => None,
        }
    }
}

/// A decoded MAC packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Destination node (8-bit address).
    pub dst: u8,
    /// Source node (8-bit address).
    pub src: u8,
    /// Packet type.
    pub ptype: PacketType,
    /// Payload words (max 255, though MAC buffers bound this lower).
    pub payload: Vec<Word>,
}

impl Packet {
    /// A data packet.
    pub fn data(dst: u8, src: u8, payload: Vec<Word>) -> Packet {
        Packet {
            dst,
            src,
            ptype: PacketType::Data,
            payload,
        }
    }

    /// An AODV route request for `target`.
    pub fn route_request(dst: u8, src: u8, target: u8) -> Packet {
        Packet {
            dst,
            src,
            ptype: PacketType::RouteRequest,
            payload: vec![target as Word],
        }
    }

    /// Encode to wire words, appending the checksum.
    pub fn encode(&self) -> Vec<Word> {
        let mut words = Vec::with_capacity(self.payload.len() + 3);
        words.push(((self.dst as Word) << 8) | self.src as Word);
        words.push(((self.ptype.code() as Word) << 8) | self.payload.len() as Word);
        words.extend_from_slice(&self.payload);
        let csum = words.iter().fold(0u16, |acc, &w| acc.wrapping_add(w));
        words.push(csum);
        words
    }

    /// Decode wire words (checksum verified).
    ///
    /// Returns `None` for short frames, bad checksums, length mismatches
    /// or unknown types.
    pub fn decode(words: &[Word]) -> Option<Packet> {
        if words.len() < 3 {
            return None;
        }
        let len = (words[1] & 0xff) as usize;
        if words.len() != len + 3 {
            return None;
        }
        let body = &words[..words.len() - 1];
        let csum = body.iter().fold(0u16, |acc, &w| acc.wrapping_add(w));
        if csum != words[words.len() - 1] {
            return None;
        }
        Some(Packet {
            dst: (words[0] >> 8) as u8,
            src: (words[0] & 0xff) as u8,
            ptype: PacketType::from_code((words[1] >> 8) as u8)?,
            payload: words[2..2 + len].to_vec(),
        })
    }

    /// Total words on the wire.
    pub fn wire_len(&self) -> usize {
        self.payload.len() + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let p = Packet::data(5, 2, vec![0x1111, 0x2222]);
        let words = p.encode();
        assert_eq!(words.len(), 5);
        assert_eq!(words[0], 0x0502);
        assert_eq!(words[1], 0x0102);
        assert_eq!(Packet::decode(&words), Some(p));
    }

    #[test]
    fn rreq_round_trip() {
        let p = Packet::route_request(9, 1, 7);
        let back = Packet::decode(&p.encode()).unwrap();
        assert_eq!(back.ptype, PacketType::RouteRequest);
        assert_eq!(back.payload, vec![7]);
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let mut words = Packet::data(1, 2, vec![3]).encode();
        words[2] ^= 1;
        assert_eq!(Packet::decode(&words), None);
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut words = Packet::data(1, 2, vec![3, 4]).encode();
        words.pop();
        assert_eq!(Packet::decode(&words), None);
        assert_eq!(Packet::decode(&[1, 2]), None);
    }

    #[test]
    fn checksum_wraps() {
        let p = Packet::data(0xff, 0xff, vec![0xffff, 0xffff]);
        let words = p.encode();
        assert_eq!(Packet::decode(&words), Some(p));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut words = Packet::data(1, 2, vec![]).encode();
        // Patch type to 9 and fix checksum.
        words[1] = 9 << 8;
        let csum = words[..2].iter().fold(0u16, |a, &w| a.wrapping_add(w));
        words[2] = csum;
        assert_eq!(Packet::decode(&words), None);
    }
}
