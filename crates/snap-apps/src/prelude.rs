//! Shared assembly definitions: event numbers, coprocessor commands and
//! software conventions.
//!
//! Every program in this crate links [`PRELUDE`] as its first module.
//!
//! Software conventions (documented here once, relied on everywhere):
//!
//! * `r0` is kept zero — the core has no hardware zero register, but all
//!   handlers in this suite treat `r0` as constant 0, giving absolute
//!   DMEM addressing via `lw rX, label(r0)`.
//! * `r14` (`ra`) is the link register used by `call`/`ret`.
//! * handler-persistent state lives in DMEM; registers are scratch.

/// Common `.equ` definitions, linked first into every program.
pub const PRELUDE: &str = r"
; ---- event-handler table indices (snap-isa::EventKind) ----
.equ EV_TIMER0,   0
.equ EV_TIMER1,   1
.equ EV_TIMER2,   2
.equ EV_RX,       3
.equ EV_TXDONE,   4
.equ EV_IRQ,      5
.equ EV_REPLY,    6
.equ EV_SOFT,     7

; ---- message-coprocessor command words (snap-isa::MsgCommand) ----
.equ CMD_RXON,    0x1001
.equ CMD_RADIOFF, 0x1000
.equ CMD_TX,      0x2000
.equ CMD_QUERY,   0x3000
.equ CMD_PORT,    0x4000

; ---- packet types ----
.equ PKT_DATA,    1
.equ PKT_RREQ,    2
.equ PKT_RREP,    3
.equ PKT_DRREQ,   4
.equ PKT_DRREP,   5
";

/// Emit a `setaddr` sequence installing `handler_label` for `event_equ`.
///
/// Boot-code building block used by the per-scenario boot modules.
pub fn install_handler(event_equ: &str, handler_label: &str) -> String {
    format!("    li      r1, {event_equ}\n    li      r2, {handler_label}\n    setaddr r1, r2\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_asm::assemble_modules;

    #[test]
    fn prelude_assembles() {
        let p = assemble_modules(&[("prelude.s", PRELUDE), ("main.s", "li r1, EV_SOFT\nhalt")])
            .unwrap();
        assert_eq!(p.imem_image()[1], 7);
    }

    #[test]
    fn prelude_matches_isa_constants() {
        use snap_isa::{EventKind, MsgCommand};
        let checks = [
            ("EV_RX", EventKind::RadioRx.index() as i64),
            ("EV_TXDONE", EventKind::RadioTxDone.index() as i64),
            ("EV_IRQ", EventKind::SensorIrq.index() as i64),
            ("EV_REPLY", EventKind::SensorReply.index() as i64),
            ("EV_SOFT", EventKind::Soft.index() as i64),
            ("CMD_RXON", MsgCommand::RadioRxOn.encode() as i64),
            ("CMD_TX", MsgCommand::RadioTx.encode() as i64),
        ];
        let p = assemble_modules(&[("prelude.s", PRELUDE), ("m.s", "halt")]).unwrap();
        for (name, expect) in checks {
            assert_eq!(p.symbols().get(name), Some(&expect), "{name}");
        }
    }

    #[test]
    fn install_handler_emits_setaddr() {
        let src = format!(
            "{}\nboot:\n{}    halt\nh: done",
            "",
            install_handler("EV_RX", "h")
        );
        let p = assemble_modules(&[("p.s", PRELUDE), ("b.s", &src)]).unwrap();
        assert!(p.symbol("h").is_some());
    }
}
