//! Over-the-radio bootstrapping (paper §3.1).
//!
//! "The core can write to either the IMEM or the DMEM, allowing it to
//! modify its own code (and also providing a way to bootstrap the
//! processor by sending it code over the radio link)." This module is
//! that bootloader: a tiny resident program whose radio handler
//! assembles a code image word-by-word, writes it into IMEM with `isw`,
//! verifies a checksum and jumps to the new program's entry point.
//!
//! ## Stream format (16-bit words)
//!
//! ```text
//! MAGIC(0xB007)  base  len  w0 .. w(len-1)  checksum
//! ```
//!
//! where `checksum` is the wrapping sum of `base`, `len` and all code
//! words. A bad checksum resets the state machine; the node stays in
//! the bootloader and can accept a retransmission.

use crate::prelude::{install_handler, PRELUDE};
use snap_asm::{assemble_modules, AsmError, Program};
use snap_isa::Word;

/// First word of a boot stream.
pub const MAGIC: Word = 0xB007;

/// The resident bootloader.
///
/// State machine states: 0 = waiting for magic, 1 = expecting base,
/// 2 = expecting length, 3 = receiving code, 4 — never stored — the
/// checksum word completes the transfer directly from state 3.
pub const BOOTLOADER: &str = r"
; ================= radio bootloader =================
.data
bl_state:   .word 0
bl_base:    .word 0
bl_len:     .word 0
bl_idx:     .word 0
bl_sum:     .word 0
bl_loads:   .word 0     ; successful boots
bl_errors:  .word 0     ; checksum failures

.text
bl_rx:
    mov     r2, r15            ; the arriving word
    lw      r3, bl_state(r0)
    beqz    r3, bl_wait_magic
    li      r4, 1
    beq     r3, r4, bl_take_base
    li      r4, 2
    beq     r3, r4, bl_take_len
    ; state 3: code word or final checksum
    lw      r5, bl_idx(r0)
    lw      r6, bl_len(r0)
    beq     r5, r6, bl_take_csum
    ; store the code word at base + idx
    lw      r7, bl_base(r0)
    add     r7, r5
    isw     r2, 0(r7)
    addi    r5, 1
    sw      r5, bl_idx(r0)
    lw      r8, bl_sum(r0)
    add     r8, r2
    sw      r8, bl_sum(r0)
    done

bl_wait_magic:
    li      r4, 0xB007
    bne     r2, r4, bl_out
    li      r3, 1
    sw      r3, bl_state(r0)
    sw      r0, bl_sum(r0)
    sw      r0, bl_idx(r0)
    done

bl_take_base:
    sw      r2, bl_base(r0)
    lw      r8, bl_sum(r0)
    add     r8, r2
    sw      r8, bl_sum(r0)
    li      r3, 2
    sw      r3, bl_state(r0)
    done

bl_take_len:
    sw      r2, bl_len(r0)
    lw      r8, bl_sum(r0)
    add     r8, r2
    sw      r8, bl_sum(r0)
    li      r3, 3
    sw      r3, bl_state(r0)
    done

bl_take_csum:
    sw      r0, bl_state(r0)   ; transfer over either way
    lw      r8, bl_sum(r0)
    bne     r8, r2, bl_bad
    lw      r3, bl_loads(r0)
    addi    r3, 1
    sw      r3, bl_loads(r0)
    ; jump into the freshly written program
    lw      r7, bl_base(r0)
    jr      r7
bl_bad:
    lw      r3, bl_errors(r0)
    addi    r3, 1
    sw      r3, bl_errors(r0)
    done

bl_out:
    done
";

/// Assemble the resident bootloader program.
pub fn bootloader_program() -> Result<Program, AsmError> {
    let mut extra = install_handler("EV_RX", "bl_rx");
    extra.push_str("    li      r15, CMD_RXON\n");
    let boot = format!("boot:\n{extra}    done\n");
    assemble_modules(&[
        ("prelude.s", PRELUDE),
        ("boot.s", &boot),
        ("bl.s", BOOTLOADER),
    ])
}

/// Encode a code image into a boot stream for transmission.
pub fn encode_bootstream(base: Word, image: &[Word]) -> Vec<Word> {
    let mut out = Vec::with_capacity(image.len() + 4);
    out.push(MAGIC);
    out.push(base);
    out.push(image.len() as Word);
    out.extend_from_slice(image);
    let sum = image
        .iter()
        .fold(base.wrapping_add(image.len() as Word), |acc, &w| {
            acc.wrapping_add(w)
        });
    out.push(sum);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dess::SimDuration;
    use snap_asm::assemble;
    use snap_node::{Node, NodeConfig};

    /// A stage-2 application, assembled to run at 0x200: its entry
    /// (re)arms a periodic timer whose handler toggles the LED.
    fn stage2() -> (Vec<Word>, u16) {
        let src = r"
            .org 0x200
        entry:
            li      r1, 0
            li      r2, s2_tick
            setaddr r1, r2
            li      r1, 0
            schedhi r1, r0
            li      r2, 100
            schedlo r1, r2
            done
        s2_tick:
            lw      r3, 0x300(r0)
            xori    r3, 1
            sw      r3, 0x300(r0)
            li      r4, 0x4000
            or      r4, r3
            mov     r15, r4
            li      r1, 0
            schedhi r1, r0
            li      r2, 100
            schedlo r1, r2
            done
        ";
        let program = assemble(src).unwrap();
        let image = program.imem_image()[0x200..].to_vec();
        (image, 0x200)
    }

    fn fresh_bootloader_node() -> (Node, Program) {
        let program = bootloader_program().unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.run_for(SimDuration::from_ms(1)).unwrap();
        (node, program)
    }

    fn stream(node: &mut Node, words: &[Word]) {
        for &w in words {
            assert!(node.deliver_rx(w), "boot word lost");
            node.run_for(SimDuration::from_us(900)).unwrap();
        }
    }

    #[test]
    fn boots_a_streamed_program() {
        let (mut node, program) = fresh_bootloader_node();
        let (image, base) = stage2();
        stream(&mut node, &encode_bootstream(base, &image));
        // The streamed blinker is now running: LED toggles every 100 us.
        node.run_for(SimDuration::from_ms(2)).unwrap();
        assert!(
            node.led().writes() >= 15,
            "stage 2 must blink, got {}",
            node.led().writes()
        );
        let loads = program.symbol("bl_loads").unwrap();
        assert_eq!(node.cpu().dmem().read(loads), 1);
    }

    #[test]
    fn corrupted_stream_is_rejected_and_retry_succeeds() {
        let (mut node, program) = fresh_bootloader_node();
        let (image, base) = stage2();
        let mut bad = encode_bootstream(base, &image);
        let last = bad.len() - 1;
        bad[last] ^= 1; // corrupt the checksum
        stream(&mut node, &bad);
        let errors = program.symbol("bl_errors").unwrap();
        assert_eq!(node.cpu().dmem().read(errors), 1);
        assert_eq!(node.led().writes(), 0, "must not jump into a bad image");
        // Retransmission succeeds: the state machine reset cleanly.
        stream(&mut node, &encode_bootstream(base, &image));
        node.run_for(SimDuration::from_ms(1)).unwrap();
        assert!(node.led().writes() > 0);
        let loads = program.symbol("bl_loads").unwrap();
        assert_eq!(node.cpu().dmem().read(loads), 1);
    }

    #[test]
    fn noise_before_magic_is_ignored() {
        let (mut node, program) = fresh_bootloader_node();
        stream(&mut node, &[0x1234, 0xffff, 0x0000]);
        let (image, base) = stage2();
        stream(&mut node, &encode_bootstream(base, &image));
        node.run_for(SimDuration::from_ms(1)).unwrap();
        let loads = program.symbol("bl_loads").unwrap();
        assert_eq!(node.cpu().dmem().read(loads), 1);
    }
}
