//! The measurement harness behind Table 1, Fig. 5 and §4.6.
//!
//! Each measurement boots a program on a simulated node, lets it reach
//! its idle steady state, snapshots the core statistics, triggers the
//! workload (an IRQ, an arriving packet, a timer period...), runs to
//! completion and reports the delta: dynamic instructions, cycles,
//! total energy and energy per instruction — exactly the columns of
//! Table 1.

use crate::aodv::relay_program;
use crate::apps::{temperature_program, threshold_program, TEMP_SENSOR};
use crate::blink::blink_program;
use crate::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use crate::packet::Packet;
use crate::prelude::install_handler;
use crate::radiostack::radiostack_program;
use crate::sense::{sense_program, ADC_SENSOR};
use dess::SimDuration;
use snap_asm::Program;
use snap_core::{CoreConfig, CoreStats};
use snap_energy::{Energy, OperatingPoint};
use snap_node::{Node, NodeConfig};

/// One measured workload (a row of Table 1 or a §4.6 comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct HandlerMeasurement {
    /// Workload name as the paper prints it.
    pub name: &'static str,
    /// Operating point measured at.
    pub point: OperatingPoint,
    /// Dynamic instruction count (Table 1 "Dynamic Insts.").
    pub instructions: u64,
    /// Cycles (IMEM words + memory accesses; the §4.6 unit).
    pub cycles: u64,
    /// Total energy (Table 1 "E (nJ)").
    pub energy: Energy,
    /// Handlers dispatched during the workload.
    pub handlers: u64,
    /// Program code size in bytes.
    pub code_bytes: usize,
    /// Execution (busy) time of the workload.
    pub busy_time: dess::SimDuration,
}

impl HandlerMeasurement {
    /// Energy per instruction (Table 1 "E/Ins (pJ)").
    pub fn energy_per_instruction(&self) -> Energy {
        if self.instructions == 0 {
            Energy::ZERO
        } else {
            self.energy / self.instructions as f64
        }
    }
}

fn node_at(point: OperatingPoint, program: &Program) -> Node {
    let cfg = NodeConfig {
        core: CoreConfig::at(point),
        ..NodeConfig::default()
    };
    let mut node = Node::new(cfg);
    node.load(program).expect("program fits the 4KB banks");
    node
}

fn finish(
    name: &'static str,
    point: OperatingPoint,
    program: &Program,
    node: &Node,
    before: &CoreStats,
) -> HandlerMeasurement {
    let d = node.cpu().stats().since(before);
    HandlerMeasurement {
        name,
        point,
        instructions: d.instructions,
        cycles: d.cycles,
        energy: d.energy,
        handlers: d.handlers_dispatched,
        code_bytes: program.code_bytes(),
        busy_time: d.busy_time,
    }
}

fn settle(node: &mut Node) -> CoreStats {
    node.run_for(SimDuration::from_ms(1))
        .expect("boot runs clean");
    node.cpu().stats()
}

fn deliver_words(node: &mut Node, words: &[u16]) {
    for &w in words {
        assert!(node.deliver_rx(w), "radio word {w:#06x} lost");
        // One radio word time between arrivals (19.2 kbps).
        node.run_for(SimDuration::from_us(834))
            .expect("rx handler runs clean");
    }
}

/// Table 1 row: *Packet Transmission* — the application hands the MAC a
/// message; the MAC checksums it and clocks it out word-by-word.
pub fn measure_packet_transmission(point: OperatingPoint) -> HandlerMeasurement {
    let extra = install_handler("EV_IRQ", "app_send_irq");
    let app = format!("{}{}", send_on_irq_app(5), RX_DISPATCH_STUB);
    let program = mac_program(2, &extra, &app).expect("assembles");
    let mut node = node_at(point, &program);
    let before = settle(&mut node);
    node.trigger_sensor_irq();
    node.run_for(SimDuration::from_ms(10))
        .expect("tx completes");
    finish("Packet Transmission", point, &program, &node, &before)
}

/// Table 1 row: *Packet Reception* — word-arrival handlers assemble and
/// verify a complete message.
pub fn measure_packet_reception(point: OperatingPoint) -> HandlerMeasurement {
    let program = mac_program(5, "", RX_DISPATCH_STUB).expect("assembles");
    let mut node = node_at(point, &program);
    let before = settle(&mut node);
    deliver_words(
        &mut node,
        &Packet::data(5, 2, vec![0x1111, 0x2222]).encode(),
    );
    finish("Packet Reception", point, &program, &node, &before)
}

/// Table 1 row: *AODV Route Reply* — receive an RREQ, look up the
/// route, build and transmit the RREP.
pub fn measure_aodv_route_reply(point: OperatingPoint) -> HandlerMeasurement {
    let program = relay_program(3, &[(7, 4), (9, 2)]).expect("assembles");
    let mut node = node_at(point, &program);
    let before = settle(&mut node);
    deliver_words(&mut node, &Packet::route_request(3, 1, 9).encode());
    node.run_for(SimDuration::from_ms(10))
        .expect("rrep transmits");
    finish("AODV Route Reply", point, &program, &node, &before)
}

/// Table 1 row: *AODV Forward* — receive a DATA packet for another
/// node, look up the next hop, rewrite and retransmit.
pub fn measure_aodv_forward(point: OperatingPoint) -> HandlerMeasurement {
    let program = relay_program(3, &[(9, 2)]).expect("assembles");
    let mut node = node_at(point, &program);
    let before = settle(&mut node);
    deliver_words(
        &mut node,
        &Packet::data(9, 1, vec![0xcafe, 0xf00d]).encode(),
    );
    node.run_for(SimDuration::from_ms(10))
        .expect("forward transmits");
    finish("AODV Forward", point, &program, &node, &before)
}

/// Table 1 row: *Temperature App* — five sample/average/log iterations.
pub fn measure_temperature(point: OperatingPoint) -> HandlerMeasurement {
    let program = temperature_program().expect("assembles");
    let mut node = node_at(point, &program);
    node.sensors_mut().set_reading(TEMP_SENSOR, 73);
    // Boot only (first sample is at 100 µs); snapshot at 50 µs.
    node.run_for(SimDuration::from_us(50))
        .expect("boot runs clean");
    let before = node.cpu().stats();
    // Five samples: 100 µs + 4 × 500 µs, plus margin.
    node.run_for(SimDuration::from_us(2_350))
        .expect("samples run clean");
    finish("Temperature App", point, &program, &node, &before)
}

/// Table 1 row: *Threshold App* — receive a packet, compare two fields,
/// log the larger.
pub fn measure_threshold(point: OperatingPoint) -> HandlerMeasurement {
    let program = threshold_program(4).expect("assembles");
    let mut node = node_at(point, &program);
    let before = settle(&mut node);
    deliver_words(&mut node, &Packet::data(4, 1, vec![120, 340]).encode());
    finish("Threshold App", point, &program, &node, &before)
}

/// All six Table 1 rows at one operating point, in the paper's order.
pub fn measure_table1(point: OperatingPoint) -> Vec<HandlerMeasurement> {
    vec![
        measure_packet_transmission(point),
        measure_packet_reception(point),
        measure_aodv_route_reply(point),
        measure_aodv_forward(point),
        measure_temperature(point),
        measure_threshold(point),
    ]
}

/// All Table 1 rows at all three paper operating points.
pub fn measure_all_handlers() -> Vec<HandlerMeasurement> {
    OperatingPoint::PAPER_POINTS
        .into_iter()
        .flat_map(measure_table1)
        .collect()
}

/// Per-component energy attribution over a representative handler
/// workload (the AODV forward scenario) — the data behind §4.4.
pub fn measure_components(point: OperatingPoint) -> snap_energy::ComponentEnergy {
    let program = relay_program(3, &[(9, 2)]).expect("assembles");
    let mut node = node_at(point, &program);
    node.run_for(SimDuration::from_ms(1))
        .expect("boot runs clean");
    deliver_words(
        &mut node,
        &Packet::data(9, 1, vec![0xcafe, 0xf00d]).encode(),
    );
    node.run_for(SimDuration::from_ms(10))
        .expect("forward completes");
    *node.cpu().acct().components()
}

/// §4.6 / Fig. 5: one steady-state Blink iteration (timer handler plus
/// posted task).
pub fn measure_blink(point: OperatingPoint) -> HandlerMeasurement {
    let program = blink_program().expect("assembles");
    let mut node = node_at(point, &program);
    node.run_for(SimDuration::from_ms(2))
        .expect("boot runs clean");
    let before = node.cpu().stats();
    node.run_for(SimDuration::from_ms(1))
        .expect("one blink period");
    finish("Blink", point, &program, &node, &before)
}

/// §4.6: one steady-state Sense iteration (timer, ADC reply, averaging
/// task).
pub fn measure_sense(point: OperatingPoint) -> HandlerMeasurement {
    let program = sense_program().expect("assembles");
    let mut node = node_at(point, &program);
    node.sensors_mut().set_reading(ADC_SENSOR, 512);
    node.run_for(SimDuration::from_ms(20)).expect("warm-up");
    let before = node.cpu().stats();
    node.run_for(SimDuration::from_ms(1))
        .expect("one sense period");
    finish("Sense", point, &program, &node, &before)
}

/// §4.6: radio-stack send of one data byte (SEC-DED + CRC + transmit).
pub fn measure_radiostack_byte(point: OperatingPoint) -> HandlerMeasurement {
    let program = radiostack_program().expect("assembles");
    let mut node = node_at(point, &program);
    node.run_for(SimDuration::from_ms(1)).expect("boot");
    node.trigger_sensor_irq();
    node.run_for(SimDuration::from_ms(2)).expect("warm-up byte");
    let before = node.cpu().stats();
    node.trigger_sensor_irq();
    node.run_for(SimDuration::from_ms(2))
        .expect("measured byte");
    finish("Radio stack byte", point, &program, &node, &before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_instruction_counts_are_in_paper_bands() {
        // Paper Table 1: 70 / 103 / 224 / 245 / 140 / 155 dynamic
        // instructions. The receive-side handlers land within ~15% of
        // the paper; transmission is our known outlier (checksum at TX
        // time + CSMA dispatch). Bands are regression guards around the
        // current calibration.
        let rows = measure_table1(OperatingPoint::V1_8);
        let expected: [(u64, u64); 6] = [
            (70, 140),
            (85, 125),
            (180, 260),
            (210, 290),
            (90, 170),
            (105, 185),
        ];
        for (row, (lo, hi)) in rows.iter().zip(expected) {
            assert!(
                (lo..=hi).contains(&row.instructions),
                "{}: {} instructions not in {lo}..{hi}",
                row.name,
                row.instructions
            );
        }
    }

    #[test]
    fn table1_ordering_matches_paper() {
        // Paper: Forward(245) > RREP(224) > the apps (155/140) > the
        // plain MAC paths (103/70). The AODV handlers dominating the
        // plain MAC paths is the load-bearing shape; within the MAC
        // pair our transmission is slightly *above* reception (we
        // checksum at transmit time and pay a CSMA backoff timer),
        // a documented deviation from the paper's 70-vs-103.
        let rows = measure_table1(OperatingPoint::V1_8);
        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.name.contains(n))
                .unwrap()
                .instructions
        };
        assert!(by_name("Forward") > by_name("Route Reply"));
        assert!(by_name("Route Reply") > by_name("Transmission"));
        assert!(by_name("Route Reply") > by_name("Reception"));
        assert!(by_name("Forward") > by_name("Threshold"));
        assert!(by_name("Threshold") > by_name("Temperature") / 2);
    }

    #[test]
    fn energy_per_instruction_matches_paper_bands() {
        // Paper: ~215-219 pJ/ins at 1.8V, ~54-56 at 0.9V, ~23-24 at 0.6V.
        for (point, lo, hi) in [
            (OperatingPoint::V1_8, 150.0, 280.0),
            (OperatingPoint::V0_9, 38.0, 70.0),
            (OperatingPoint::V0_6, 17.0, 31.0),
        ] {
            for row in measure_table1(point) {
                let e = row.energy_per_instruction().as_pj();
                assert!(
                    (lo..=hi).contains(&e),
                    "{} at {point}: {e} pJ/ins outside {lo}..{hi}",
                    row.name
                );
            }
        }
    }

    #[test]
    fn handler_energy_is_tens_of_nanojoules_at_1v8() {
        // Paper: 15-55 nJ per handler at 1.8 V.
        for row in measure_table1(OperatingPoint::V1_8) {
            let nj = row.energy.as_nj();
            assert!((5.0..=120.0).contains(&nj), "{}: {nj} nJ", row.name);
        }
    }

    #[test]
    fn instruction_counts_are_voltage_independent() {
        let at_18 = measure_table1(OperatingPoint::V1_8);
        let at_06 = measure_table1(OperatingPoint::V0_6);
        for (a, b) in at_18.iter().zip(&at_06) {
            assert_eq!(a.instructions, b.instructions, "{}", a.name);
            assert_eq!(a.cycles, b.cycles, "{}", a.name);
        }
    }

    #[test]
    fn total_code_size_matches_paper_scale() {
        // Paper: "total code size for the application examples in
        // Table 1 is 2.8KB". Our three distinct programs together land
        // in the same low-kilobyte band.
        let rows = measure_table1(OperatingPoint::V1_8);
        let tx = rows[0].code_bytes; // MAC program
        let rrep = rows[2].code_bytes; // MAC + AODV
        let temp = rows[4].code_bytes;
        let thr = rows[5].code_bytes;
        let total = tx + rrep + temp + thr;
        assert!((800..6000).contains(&total), "total {total} bytes");
    }

    #[test]
    fn blink_sense_radiostack_measurements() {
        let blink = measure_blink(OperatingPoint::V1_8);
        assert!(
            (20..=60).contains(&blink.cycles),
            "blink {} cycles",
            blink.cycles
        );
        let sense = measure_sense(OperatingPoint::V1_8);
        assert!(
            (120..=350).contains(&sense.cycles),
            "sense {} cycles",
            sense.cycles
        );
        let rs = measure_radiostack_byte(OperatingPoint::V1_8);
        assert!(
            (200..=450).contains(&rs.cycles),
            "radio stack {} cycles",
            rs.cycles
        );
        // Relative order: blink < sense < radio stack (paper: 41 < 261 < 331).
        assert!(blink.cycles < sense.cycles && sense.cycles < rs.cycles);
    }
}
