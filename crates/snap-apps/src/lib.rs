//! # snap-apps — the paper's sensor-network software, in SNAP assembly
//!
//! The benchmark suite of §4.2, written as event handlers for the SNAP
//! ISA and assembled with `snap-asm`:
//!
//! * [`mac`] — an 802.11-flavoured MAC layer: CSMA random backoff (using
//!   the `rand` instruction), word-by-word transmission driven by
//!   `RadioTxDone` events, packet assembly from `RadioRx` events, and a
//!   checksum. Provides the *Packet Transmission* and *Packet Reception*
//!   rows of Table 1.
//! * [`aodv`] — a simplified AODV routing layer: routing table in DMEM,
//!   route-reply (RREP) generation and data-packet forwarding. Provides
//!   the *AODV Route Reply* and *AODV Forward* rows.
//! * [`apps`] — the two sensor applications: *Temperature Sense*
//!   (periodic sampling, running average, log) and *Range Comparison /
//!   Threshold* (compare two packet fields, log the larger).
//! * [`blink`] / [`sense`] — ports of the TinyOS example applications
//!   used in §4.6 and Fig. 5.
//! * [`radiostack`] — a port of the MICA high-speed radio stack's
//!   per-byte processing: SEC-DED encoding plus CRC-16, ending in a
//!   radio transmit.
//! * [`discovery`] — AODV route *discovery* (extension): DRREQ
//!   flooding with duplicate suppression and reverse-path learning,
//!   DRREP unicast back to the origin.
//! * [`bootloader`] — over-the-radio bootstrapping: a resident loader
//!   that writes a streamed code image into IMEM (`isw`) and jumps to
//!   it (paper §3.1).
//! * [`packet`] — Rust-side packet encode/decode shared by scenarios and
//!   the network simulator.
//! * [`measure`] — the measurement harness behind Table 1: runs each
//!   handler on a simulated node and reports dynamic instructions,
//!   cycles and energy.

#![warn(missing_docs)]

pub mod aodv;
pub mod apps;
pub mod blink;
pub mod bootloader;
pub mod discovery;
pub mod mac;
pub mod measure;
pub mod packet;
pub mod prelude;
pub mod radiostack;
pub mod sense;

pub use measure::{measure_all_handlers, measure_table1, HandlerMeasurement};
pub use packet::{Packet, PacketType};
