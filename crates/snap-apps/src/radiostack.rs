//! Port of the MICA high-speed radio stack's per-byte processing
//! (§4.6).
//!
//! The TinyOS MICA stack provides "SEC-DED error coding and packet CRC,
//! as well as a byte-level interface to the radio". Sending one data
//! byte costs ≈780 Atmel cycles (≈30 % of them in the interrupt service
//! routine); the SNAP port needs 331 cycles. This module ports the
//! per-byte path: update a CRC-16/CCITT over the byte, expand it to a
//! SEC-DED codeword (Hamming parity bits plus an overall parity bit, so
//! single-bit errors are correctable and double-bit errors detectable),
//! and hand the codeword to the radio.
//!
//! The Rust functions [`secded_encode`] and [`crc16_step`] are the
//! reference implementations the assembly is tested against.

use crate::prelude::{install_handler, PRELUDE};
use snap_asm::{assemble_modules, AsmError, Program};
use snap_isa::Word;

/// Hamming parity masks over the 8 data bits.
pub const PARITY_MASKS: [u8; 4] = [0x5b, 0x6d, 0x8e, 0xf0];

/// Reference SEC-DED encoder: 8 data bits → 13-bit codeword
/// (data | p0..p3 << 8 | overall << 12).
pub fn secded_encode(byte: u8) -> Word {
    let mut cw = byte as Word;
    for (i, mask) in PARITY_MASKS.iter().enumerate() {
        let p = ((byte & mask).count_ones() & 1) as Word;
        cw |= p << (8 + i);
    }
    let overall = ((cw & 0x0fff).count_ones() & 1) as Word;
    cw | (overall << 12)
}

/// Reference CRC-16/CCITT (poly `0x1021`) update for one byte.
pub fn crc16_step(crc: u16, byte: u8) -> u16 {
    let mut crc = crc ^ ((byte as u16) << 8);
    for _ in 0..8 {
        crc = if crc & 0x8000 != 0 {
            (crc << 1) ^ 0x1021
        } else {
            crc << 1
        };
    }
    crc
}

/// The radio-stack module: each sensor IRQ sends the next message byte.
pub const RADIOSTACK: &str = r"
; ================= MICA high-speed stack port =================
.data
rs_msg:       .word 0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0
rs_msg_pos:   .word 0
rs_crc:       .word 0
rs_bytes:     .word 0

.text
; sensor-IRQ handler: encode and transmit the next message byte
rs_irq:
    lw      r1, rs_msg_pos(r0)
    lw      r11, rs_msg(r1)
    addi    r1, 1
    andi    r1, 7
    sw      r1, rs_msg_pos(r0)
    ; ---- CRC-16/CCITT over the byte ----
    lw      r2, rs_crc(r0)
    mov     r3, r11
    slli    r3, 8
    xor     r2, r3
    li      r4, 8
rs_crc_loop:
    mov     r5, r2
    andi    r5, 0x8000
    slli    r2, 1
    beqz    r5, rs_crc_next
    xori    r2, 0x1021
rs_crc_next:
    subi    r4, 1
    bnez    r4, rs_crc_loop
    sw      r2, rs_crc(r0)
    ; ---- SEC-DED encode: Hamming parity bits 8..11, overall bit 12 ----
    mov     r12, r11
    mov     r5, r11
    andi    r5, 0x5b
    call    rs_parity
    slli    r7, 8
    or      r12, r7
    mov     r5, r11
    andi    r5, 0x6d
    call    rs_parity
    slli    r7, 9
    or      r12, r7
    mov     r5, r11
    andi    r5, 0x8e
    call    rs_parity
    slli    r7, 10
    or      r12, r7
    mov     r5, r11
    andi    r5, 0xf0
    call    rs_parity
    slli    r7, 11
    or      r12, r7
    mov     r5, r12
    andi    r5, 0x0fff
    call    rs_parity
    slli    r7, 12
    or      r12, r7
    ; ---- hand the codeword to the radio ----
    li      r15, CMD_TX
    mov     r15, r12
    lw      r2, rs_bytes(r0)
    addi    r2, 1
    sw      r2, rs_bytes(r0)
    done

rs_txdone:
    done

; parity of r5 -> r7 (logarithmic xor-fold)
rs_parity:
    mov     r7, r5
    mov     r9, r7
    srli    r9, 8
    xor     r7, r9
    mov     r9, r7
    srli    r9, 4
    xor     r7, r9
    mov     r9, r7
    srli    r9, 2
    xor     r7, r9
    mov     r9, r7
    srli    r9, 1
    xor     r7, r9
    andi    r7, 1
    ret
";

/// Assemble the radio-stack benchmark program.
pub fn radiostack_program() -> Result<Program, AsmError> {
    let mut extra = String::new();
    extra.push_str(&install_handler("EV_IRQ", "rs_irq"));
    extra.push_str(&install_handler("EV_TXDONE", "rs_txdone"));
    let boot = format!("boot:\n{extra}    done\n");
    assemble_modules(&[
        ("prelude.s", PRELUDE),
        ("boot.s", &boot),
        ("rs.s", RADIOSTACK),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dess::SimDuration;
    use snap_node::{Node, NodeConfig, NodeOutput};

    #[test]
    fn reference_secded_properties() {
        // Any single-bit flip in the 13-bit codeword changes the
        // syndrome: all codewords differ pairwise in >= 3 bits for
        // distinct data (SEC property spot check).
        for a in 0..=255u16 {
            let ca = secded_encode(a as u8);
            for b in (a + 1)..=255 {
                let cb = secded_encode(b as u8);
                let dist = (ca ^ cb).count_ones();
                assert!(dist >= 3, "d({a:02x},{b:02x}) = {dist}");
            }
        }
    }

    #[test]
    fn reference_crc_known_vector() {
        // CRC-16/CCITT-FALSE of "123456789" with init 0xFFFF is 0x29B1.
        let crc = b"123456789"
            .iter()
            .fold(0xffffu16, |c, &b| crc16_step(c, b));
        assert_eq!(crc, 0x29b1);
    }

    fn run_bytes(n: usize) -> (Node, Program, Vec<u16>) {
        let program = radiostack_program().unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.run_for(SimDuration::from_ms(1)).unwrap();
        let mut words = Vec::new();
        for _ in 0..n {
            node.trigger_sensor_irq();
            let out = node.run_for(SimDuration::from_ms(2)).unwrap();
            words.extend(out.iter().filter_map(|o| match o {
                NodeOutput::Transmitted { word, .. } => Some(*word),
                _ => None,
            }));
        }
        (node, program, words)
    }

    #[test]
    fn asm_matches_reference_encoder() {
        let msg = [0x12u8, 0x34, 0x56, 0x78];
        let (_, _, words) = run_bytes(4);
        let expect: Vec<u16> = msg.iter().map(|&b| secded_encode(b)).collect();
        assert_eq!(words, expect);
    }

    #[test]
    fn asm_crc_matches_reference() {
        let (node, program, _) = run_bytes(3);
        let expect = [0x12u8, 0x34, 0x56]
            .iter()
            .fold(0u16, |c, &b| crc16_step(c, b));
        let crc = node.cpu().dmem().read(program.symbol("rs_crc").unwrap());
        assert_eq!(crc, expect);
    }

    #[test]
    fn per_byte_cycles_match_paper_scale() {
        let program = radiostack_program().unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.run_for(SimDuration::from_ms(1)).unwrap();
        // Warm-up byte, then measure one steady-state byte.
        node.trigger_sensor_irq();
        node.run_for(SimDuration::from_ms(2)).unwrap();
        let before = node.cpu().stats();
        node.trigger_sensor_irq();
        node.run_for(SimDuration::from_ms(2)).unwrap();
        let d = node.cpu().stats().since(&before);
        // Paper: 331 cycles per byte on SNAP (vs ~780 on the mote).
        assert!((200..=450).contains(&d.cycles), "cycles {}", d.cycles);
    }
}
