//! The MAC layer (SNAP assembly).
//!
//! An 802.11-flavoured medium-access layer sized for SNAP nodes
//! (paper §4.2 wrote an "IEEE 802.11-based MAC scheme"):
//!
//! * **Transmit** — `mac_send` checksums the packet in `mac_tx_buf`,
//!   then performs CSMA-style random backoff: a `rand`-derived delay on
//!   timer 2, after which words go to the radio one at a time, each next
//!   word sent from the `RadioTxDone` handler (the core sleeps during
//!   the ≈833 µs a word spends on the air).
//! * **Receive** — the `RadioRx` handler assembles arriving words into
//!   `mac_rx_buf`, parses the header for the expected length, verifies
//!   the checksum, and jumps to the routing layer's `rx_dispatch`.
//!
//! The module expects the linking program to provide `rx_dispatch` (the
//! AODV layer, or [`RX_DISPATCH_STUB`] for MAC-only programs).
//!
//! **Timer budget:** the MAC owns timer 2 (CSMA backoff) and timer 1
//! (the receive frame timeout that resynchronizes the word-serial
//! state machine after a lost word); applications keep timer 0.

use crate::prelude::{install_handler, PRELUDE};
use snap_asm::{assemble_modules, AsmError, Program};

/// DMEM capacity of the TX/RX packet buffers, in words.
pub const BUF_WORDS: usize = 20;

/// The MAC layer assembly module.
pub const MAC: &str = r"
; ================= MAC layer =================
.data
mac_tx_buf:   .space 20
mac_tx_len:   .word 0      ; total words (incl. checksum) of in-flight TX
mac_tx_pos:   .word 0
mac_tx_count: .word 0      ; completed packet transmissions
mac_rx_buf:   .space 20
mac_rx_pos:   .word 0
mac_rx_exp:   .word 0      ; expected total words; 0 until header parsed
mac_rx_drops: .word 0      ; checksum failures
mac_rx_tmo:   .word 0      ; frame timeouts (lost-word resynchronization)
node_id:      .word 0

.text
; mac_send: transmit the packet staged in mac_tx_buf.
;   in:  r1 = header+payload word count (checksum appended here)
;   clobbers r1-r4. Caller issues `done` after return.
mac_send:
    li      r2, 0              ; index
    li      r3, 0              ; running checksum
mac_send_csum:
    lw      r4, mac_tx_buf(r2)
    add     r3, r4
    addi    r2, 1
    bltu    r2, r1, mac_send_csum
    sw      r3, mac_tx_buf(r2) ; checksum word at index r1
    addi    r1, 1
    sw      r1, mac_tx_len(r0)
    sw      r0, mac_tx_pos(r0)
    ; CSMA: random backoff on timer 2 (window set by BACKOFF_MASK)
    rand    r2
    andi    r2, BACKOFF_MASK
    addi    r2, 1
    li      r4, 2
    schedhi r4, r0
    schedlo r4, r2
    ret

; timer-2 handler: backoff elapsed, medium assumed clear -> first word
mac_backoff_timer:
    call    mac_tx_word
    done

; transmit the word at mac_tx_pos (leaf helper)
mac_tx_word:
    lw      r2, mac_tx_pos(r0)
    lw      r3, mac_tx_buf(r2)
    addi    r2, 1
    sw      r2, mac_tx_pos(r0)
    li      r15, CMD_TX
    mov     r15, r3
    ret

; RadioTxDone handler: next word, or account a completed packet
mac_txdone:
    lw      r2, mac_tx_pos(r0)
    lw      r3, mac_tx_len(r0)
    bltu    r2, r3, mac_txdone_more
    lw      r2, mac_tx_count(r0)
    addi    r2, 1
    sw      r2, mac_tx_count(r0)
    done
mac_txdone_more:
    call    mac_tx_word
    done

; RadioRx handler: assemble one arriving word
mac_rx:
    mov     r2, r15            ; pop the word
    ; (re)arm the frame timeout: if the rest of the frame never arrives
    ; (a word faded away), timer 1 resynchronizes the state machine.
    li      r6, 1
    schedhi r6, r0
    li      r7, 2500           ; ~3 word-times
    schedlo r6, r7
    lw      r3, mac_rx_pos(r0)
    sw      r2, mac_rx_buf(r3)
    addi    r3, 1
    sw      r3, mac_rx_pos(r0)
    li      r4, 2
    bne     r3, r4, mac_rx_chk
    ; header now complete: expected = (len byte) + 3
    andi    r2, 0xff
    addi    r2, 3
    sw      r2, mac_rx_exp(r0)
mac_rx_chk:
    lw      r4, mac_rx_exp(r0)
    beqz    r4, mac_rx_out     ; still waiting for the header
    bltu    r3, r4, mac_rx_out ; more words to come
    ; packet complete: reset state, verify checksum
    sw      r0, mac_rx_pos(r0)
    sw      r0, mac_rx_exp(r0)
    subi    r4, 1              ; words covered by the checksum
    li      r2, 0
    li      r3, 0
mac_rx_csum:
    lw      r5, mac_rx_buf(r2)
    add     r3, r5
    addi    r2, 1
    bltu    r2, r4, mac_rx_csum
    lw      r5, mac_rx_buf(r2) ; received checksum
    beq     r3, r5, mac_rx_ok
    lw      r2, mac_rx_drops(r0)
    addi    r2, 1
    sw      r2, mac_rx_drops(r0)
    done
mac_rx_ok:
    jmp     rx_dispatch        ; routing layer consumes mac_rx_buf
mac_rx_out:
    done

; timer-1 handler: frame timeout. Stale firings (the frame completed,
; resetting mac_rx_pos) are ignored; an interrupted frame is abandoned
; so the next packet starts clean.
mac_rx_timeout:
    lw      r2, mac_rx_pos(r0)
    beqz    r2, mac_rx_tmo_out
    sw      r0, mac_rx_pos(r0)
    sw      r0, mac_rx_exp(r0)
    lw      r2, mac_rx_tmo(r0)
    addi    r2, 1
    sw      r2, mac_rx_tmo(r0)
mac_rx_tmo_out:
    done
";

/// `rx_dispatch` stub for programs that do not link a routing layer.
pub const RX_DISPATCH_STUB: &str = "
rx_dispatch:
    done
";

/// Standard boot code installing the MAC handlers, storing the node id
/// and enabling the receiver. `extra` is app-specific boot code (e.g.
/// more `setaddr`s or an initial timer) spliced in before the final
/// `done`.
pub fn mac_boot(node_id: u8, extra: &str) -> String {
    mac_boot_with_backoff(node_id, extra, 0x3f)
}

/// [`mac_boot`] with an explicit CSMA backoff window: the backoff is
/// `1 + (rand & backoff_mask)` timer ticks. The default 0x3f (64 us)
/// keeps handler latency small; contention studies use windows longer
/// than a whole packet's air time.
pub fn mac_boot_with_backoff(node_id: u8, extra: &str, backoff_mask: u16) -> String {
    let mut boot = format!(".equ BACKOFF_MASK, {backoff_mask:#x}\nboot:\n");
    boot.push_str(&install_handler("EV_RX", "mac_rx"));
    boot.push_str(&install_handler("EV_TXDONE", "mac_txdone"));
    boot.push_str(&install_handler("EV_TIMER2", "mac_backoff_timer"));
    boot.push_str(&install_handler("EV_TIMER1", "mac_rx_timeout"));
    boot.push_str(&format!(
        "    li      r1, {node_id}\n    sw      r1, node_id(r0)\n"
    ));
    // Decorrelate the backoff draws of different nodes (the paper's
    // `seed` instruction exists for exactly this).
    boot.push_str(&format!(
        "    li      r1, {}\n    seed    r1\n",
        0xACE1u16 ^ (node_id as u16).wrapping_mul(0x9e37)
    ));
    boot.push_str("    li      r15, CMD_RXON\n");
    boot.push_str(extra);
    boot.push_str("    done\n");
    boot
}

/// Assemble a MAC-only program (stub dispatch) — used by the MAC tests
/// and the Packet Transmission / Reception measurements. `app` supplies
/// additional handlers and `extra_boot` their installation.
pub fn mac_program(node_id: u8, extra_boot: &str, app: &str) -> Result<Program, AsmError> {
    assemble_modules(&[
        ("prelude.s", PRELUDE),
        ("boot.s", &mac_boot(node_id, extra_boot)),
        ("mac.s", MAC),
        ("app.s", app),
    ])
}

/// An app module whose sensor-IRQ handler stages and sends a canned
/// 2-payload-word DATA packet to `dst` — the *Packet Transmission*
/// workload ("takes a message from the application layer, and transmits
/// it ... across the radio interface").
///
/// Provides only the handler: append [`RX_DISPATCH_STUB`] for MAC-only
/// programs, or link it into an AODV program (which has its own
/// dispatch).
pub fn send_on_irq_app(dst: u8) -> String {
    format!(
        r"
app_send_irq:
    li      r2, {dst} << 8
    lw      r4, node_id(r0)
    bfs     r2, r4, 0xff       ; header: dst | our id
    sw      r2, mac_tx_buf+0(r0)
    li      r2, PKT_DATA << 8 | 2
    sw      r2, mac_tx_buf+1(r0)
    li      r2, 0x1111
    sw      r2, mac_tx_buf+2(r0)
    li      r2, 0x2222
    sw      r2, mac_tx_buf+3(r0)
    li      r1, 4
    call    mac_send
    done
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use dess::SimDuration;
    use snap_node::{Node, NodeConfig, NodeOutput};

    fn tx_test_node() -> Node {
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(5), RX_DISPATCH_STUB);
        let program = mac_program(2, &extra, &app).unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node
    }

    #[test]
    fn transmits_a_well_formed_packet() {
        let mut node = tx_test_node();
        node.run_for(SimDuration::from_ms(1)).unwrap();
        node.trigger_sensor_irq();
        // 5 words x 833us + backoff (<= 64us): 10 ms is plenty.
        let out = node.run_for(SimDuration::from_ms(10)).unwrap();
        let words: Vec<u16> = out
            .iter()
            .filter_map(|o| match o {
                NodeOutput::Transmitted { word, .. } => Some(*word),
                _ => None,
            })
            .collect();
        assert_eq!(words.len(), 5, "{out:?}");
        let packet = Packet::decode(&words).expect("valid packet on air");
        assert_eq!(packet.dst, 5);
        assert_eq!(packet.src, 2);
        assert_eq!(packet.payload, vec![0x1111, 0x2222]);
        // MAC counted the completed transmission.
        let count_addr = node_symbol(&node, "mac_tx_count");
        assert_eq!(node.cpu().dmem().read(count_addr), 1);
    }

    fn node_symbol(_node: &Node, name: &str) -> u16 {
        // Symbols are assembly-time; re-derive from a fresh assembly.
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(5), RX_DISPATCH_STUB);
        mac_program(2, &extra, &app).unwrap().symbol(name).unwrap()
    }

    #[test]
    fn backoff_is_randomized_but_bounded() {
        let mut node = tx_test_node();
        node.run_for(SimDuration::from_ms(1)).unwrap();
        let before = node.now();
        node.trigger_sensor_irq();
        let out = node.run_for(SimDuration::from_ms(10)).unwrap();
        let start = out
            .iter()
            .find_map(|o| match o {
                NodeOutput::Transmitted { start, .. } => Some(*start),
                _ => None,
            })
            .unwrap();
        let backoff = (start - before).as_us();
        assert!((1.0..=70.0).contains(&backoff), "backoff {backoff}us");
    }

    #[test]
    fn receives_and_verifies_checksum() {
        let program = mac_program(5, "", RX_DISPATCH_STUB).unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.run_for(SimDuration::from_ms(1)).unwrap();

        let words = Packet::data(5, 2, vec![0xaaaa, 0xbbbb]).encode();
        for w in &words {
            assert!(node.deliver_rx(*w));
            node.run_for(SimDuration::from_us(900)).unwrap();
        }
        let drops_addr = program.symbol("mac_rx_drops").unwrap();
        let pos_addr = program.symbol("mac_rx_pos").unwrap();
        assert_eq!(node.cpu().dmem().read(drops_addr), 0);
        assert_eq!(node.cpu().dmem().read(pos_addr), 0, "rx state reset");
        // The payload landed in the rx buffer.
        let buf = program.symbol("mac_rx_buf").unwrap();
        assert_eq!(node.cpu().dmem().read(buf + 2), 0xaaaa);
    }

    #[test]
    fn corrupted_packet_is_dropped() {
        let program = mac_program(5, "", RX_DISPATCH_STUB).unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.run_for(SimDuration::from_ms(1)).unwrap();

        let mut words = Packet::data(5, 2, vec![0xaaaa]).encode();
        words[2] ^= 0x0004; // flip a payload bit; checksum now wrong
        for w in &words {
            node.deliver_rx(*w);
            node.run_for(SimDuration::from_us(900)).unwrap();
        }
        let drops = program.symbol("mac_rx_drops").unwrap();
        assert_eq!(node.cpu().dmem().read(drops), 1);
    }

    #[test]
    fn node_sleeps_between_tx_words() {
        let mut node = tx_test_node();
        node.run_for(SimDuration::from_ms(1)).unwrap();
        let before = node.cpu().stats();
        node.trigger_sensor_irq();
        node.run_for(SimDuration::from_ms(10)).unwrap();
        let d = node.cpu().stats().since(&before);
        // 5 words x 833us on air, handler work is microseconds: the node
        // slept through almost all of it.
        assert!(d.sleep_time.as_ms() > 3.5, "slept {}", d.sleep_time);
        assert!(d.busy_time.as_us() < 50.0, "busy {}", d.busy_time);
        // Wakeups: the IRQ + backoff timer + 5 tx-done events.
        assert_eq!(d.wakeups, 7);
    }
}
