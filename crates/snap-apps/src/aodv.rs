//! The simplified AODV routing layer (SNAP assembly).
//!
//! The paper evaluates "a simplified routing layer based on AODV"
//! (§4.2). This module implements the two handlers Table 1 measures:
//!
//! * **Route Reply** — a neighbour broadcasts a route-lookup request
//!   (RREQ); we look the target up in our DMEM routing table and answer
//!   with a route-reply (RREP) packet through the MAC layer.
//! * **Packet Forward** — a DATA packet destined for another node
//!   arrives; we look up the next hop, rewrite the source byte of the
//!   header (exercising `bfs`, which the ISA added exactly for such
//!   field updates), copy the packet to the TX buffer and retransmit.
//!
//! The routing table is eight `(dest, next_hop)` word pairs in DMEM,
//! initialized per scenario through [`routing_table_module`].

use crate::mac::{mac_boot, MAC};
use crate::prelude::PRELUDE;
use snap_asm::{assemble_modules, AsmError, Program};

/// Maximum routing-table entries.
pub const RT_ENTRIES: usize = 8;

/// The AODV routing module. Expects `rt_table` (from
/// [`routing_table_module`]) and the MAC layer; provides `rx_dispatch`
/// and expects the application to provide `app_deliver` (or link
/// [`APP_DELIVER_STUB`]).
pub const AODV: &str = r"
; ================= AODV routing layer =================
.data
aodv_rreps:   .word 0      ; route replies generated
aodv_fwds:    .word 0      ; packets forwarded
aodv_local:   .word 0      ; packets delivered to this node
aodv_drops:   .word 0      ; forwards suppressed (no route / split horizon)

.text
; Routing-layer dispatch; entered by jmp from the MAC with a verified
; packet in mac_rx_buf.
;   r2 = header word, r3 = dst, r4 = our id, r5 = type|len word, r6 = type
rx_dispatch:
    lw      r2, mac_rx_buf+0(r0)
    mov     r3, r2
    srli    r3, 8
    lw      r4, node_id(r0)
    lw      r5, mac_rx_buf+1(r0)
    mov     r6, r5
    srli    r6, 8
    li      r7, PKT_RREQ
    beq     r6, r7, aodv_rreq
    li      r7, PKT_DATA
    beq     r6, r7, aodv_data
    li      r7, PKT_DRREQ
    beq     r6, r7, aodv_drreq
    li      r7, PKT_DRREP
    beq     r6, r7, aodv_drrep
    done                       ; RREP and unknown types terminate here

aodv_data:
    beq     r3, r4, aodv_deliver
    jmp     aodv_forward

aodv_deliver:
    lw      r6, aodv_local(r0)
    addi    r6, 1
    sw      r6, aodv_local(r0)
    jmp     app_deliver        ; application consumes mac_rx_buf payload

; ---- Route Reply: answer an RREQ with our routing-table entry ----
aodv_rreq:
    lw      r7, mac_rx_buf+2(r0)   ; requested destination
    call    rt_lookup              ; -> r8 = next hop (0xffff if none)
    ; RREP header: dst = requester (src byte of the RREQ), src = us
    andi    r2, 0xff
    slli    r2, 8
    bfs     r2, r4, 0xff
    sw      r2, mac_tx_buf+0(r0)
    li      r5, PKT_RREP << 8 | 2
    sw      r5, mac_tx_buf+1(r0)
    sw      r7, mac_tx_buf+2(r0)   ; payload: [dest, next_hop]
    sw      r8, mac_tx_buf+3(r0)
    lw      r5, aodv_rreps(r0)
    addi    r5, 1
    sw      r5, aodv_rreps(r0)
    li      r1, 4
    call    mac_send
    done

; ---- Forward: relay a DATA packet toward its destination ----
aodv_forward:
    mov     r7, r3
    call    rt_lookup              ; r8 = next hop (advisory on broadcast radio)
    ; no route: drop
    li      r9, 0xffff
    beq     r8, r9, aodv_fwd_drop
    ; split horizon: the src byte is the previous hop (each forwarder
    ; rewrites it); if our next hop IS the previous hop, forwarding
    ; would bounce the packet backwards forever on a broadcast channel.
    lw      r2, mac_rx_buf+0(r0)
    mov     r9, r2
    andi    r9, 0xff
    beq     r9, r8, aodv_fwd_drop
    bfs     r2, r4, 0xff           ; rewrite src byte to our id
    sw      r2, mac_tx_buf+0(r0)
    lw      r5, mac_rx_buf+1(r0)
    sw      r5, mac_tx_buf+1(r0)
    andi    r5, 0xff
    addi    r5, 2                  ; header + payload word count
    li      r6, 2
aodv_fwd_copy:
    bgeu    r6, r5, aodv_fwd_go
    lw      r9, mac_rx_buf(r6)
    sw      r9, mac_tx_buf(r6)
    addi    r6, 1
    jmp     aodv_fwd_copy
aodv_fwd_go:
    lw      r2, aodv_fwds(r0)
    addi    r2, 1
    sw      r2, aodv_fwds(r0)
    mov     r1, r5
    call    mac_send
    done

aodv_fwd_drop:
    lw      r2, aodv_drops(r0)
    addi    r2, 1
    sw      r2, aodv_drops(r0)
    done

; ---- routing-table lookup ----
;   in:  r7 = destination
;   out: r8 = next hop, 0xffff when no route
;   clobbers r9, r10
rt_lookup:
    li      r8, 0xffff
    li      r9, 0
rt_lookup_loop:
    lw      r10, rt_table(r9)
    bne     r10, r7, rt_lookup_next
    addi    r9, 1
    lw      r8, rt_table(r9)
    ret
rt_lookup_next:
    addi    r9, 2
    li      r10, 16
    bltu    r9, r10, rt_lookup_loop
    ret
";

/// `app_deliver` stub for nodes without an application layer.
pub const APP_DELIVER_STUB: &str = "
app_deliver:
    done
";

/// Generate the `rt_table` data module from `(dest, next_hop)` routes.
///
/// # Panics
///
/// Panics when more than [`RT_ENTRIES`] routes are given.
pub fn routing_table_module(routes: &[(u8, u8)]) -> String {
    assert!(routes.len() <= RT_ENTRIES, "at most {RT_ENTRIES} routes");
    let mut out = String::from(".data\nrt_table:\n");
    for &(dest, hop) in routes {
        out.push_str(&format!("    .word {dest}, {hop}\n"));
    }
    // Unused entries hold dest 0xffff, which never matches an 8-bit dst.
    for _ in routes.len()..RT_ENTRIES {
        out.push_str("    .word 0xffff, 0xffff\n");
    }
    out.push_str(".text\n");
    out
}

/// Assemble a full network-node program: MAC + AODV + routing table +
/// an application module providing `app_deliver` (and any extra
/// handlers installed by `extra_boot`).
pub fn aodv_node_program(
    node_id: u8,
    routes: &[(u8, u8)],
    extra_boot: &str,
    app: &str,
) -> Result<Program, AsmError> {
    assemble_modules(&[
        ("prelude.s", PRELUDE),
        ("boot.s", &mac_boot(node_id, extra_boot)),
        ("mac.s", MAC),
        ("aodv.s", AODV),
        ("disc.s", crate::discovery::DISCOVERY_STUB),
        ("rt.s", &routing_table_module(routes)),
        ("app.s", app),
    ])
}

/// Convenience: a relay node (stub application).
pub fn relay_program(node_id: u8, routes: &[(u8, u8)]) -> Result<Program, AsmError> {
    aodv_node_program(node_id, routes, "", APP_DELIVER_STUB)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketType};
    use dess::SimDuration;
    use snap_node::{Node, NodeConfig, NodeOutput};

    fn relay_node(id: u8, routes: &[(u8, u8)]) -> (Node, Program) {
        let program = relay_program(id, routes).unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node.run_for(SimDuration::from_ms(1)).unwrap();
        (node, program)
    }

    fn deliver_packet(node: &mut Node, packet: &Packet) -> Vec<NodeOutput> {
        let mut out = Vec::new();
        for w in packet.encode() {
            assert!(node.deliver_rx(w), "word {w:#06x} not heard");
            out.extend(node.run_for(SimDuration::from_us(900)).unwrap());
        }
        out
    }

    fn transmitted_words(out: &[NodeOutput]) -> Vec<u16> {
        out.iter()
            .filter_map(|o| match o {
                NodeOutput::Transmitted { word, .. } => Some(*word),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn route_reply_answers_rreq() {
        let (mut node, program) = relay_node(3, &[(7, 4), (9, 2)]);
        // Node 1 asks node 3: how do I reach 9?
        let mut out = deliver_packet(&mut node, &Packet::route_request(3, 1, 9));
        out.extend(node.run_for(SimDuration::from_ms(10)).unwrap());
        let words = transmitted_words(&out);
        let reply = Packet::decode(&words).expect("valid RREP");
        assert_eq!(reply.ptype, PacketType::RouteReply);
        assert_eq!(reply.dst, 1);
        assert_eq!(reply.src, 3);
        assert_eq!(reply.payload, vec![9, 2]); // dest 9 via next hop 2
        let rreps = program.symbol("aodv_rreps").unwrap();
        assert_eq!(node.cpu().dmem().read(rreps), 1);
    }

    #[test]
    fn rreq_for_unknown_dest_replies_no_route() {
        let (mut node, _) = relay_node(3, &[(7, 4)]);
        let mut out = deliver_packet(&mut node, &Packet::route_request(3, 1, 200));
        out.extend(node.run_for(SimDuration::from_ms(10)).unwrap());
        let reply = Packet::decode(&transmitted_words(&out)).unwrap();
        assert_eq!(reply.payload, vec![200, 0xffff]);
    }

    #[test]
    fn forwards_data_for_another_node() {
        let (mut node, program) = relay_node(3, &[(9, 2)]);
        let data = Packet::data(9, 1, vec![0xcafe, 0xf00d]);
        let mut out = deliver_packet(&mut node, &data);
        out.extend(node.run_for(SimDuration::from_ms(10)).unwrap());
        let fwd = Packet::decode(&transmitted_words(&out)).expect("forwarded packet");
        assert_eq!(fwd.dst, 9);
        assert_eq!(fwd.src, 3, "source rewritten to the relay");
        assert_eq!(fwd.payload, vec![0xcafe, 0xf00d]);
        let fwds = program.symbol("aodv_fwds").unwrap();
        assert_eq!(node.cpu().dmem().read(fwds), 1);
    }

    #[test]
    fn delivers_data_addressed_to_self() {
        let (mut node, program) = relay_node(3, &[]);
        let mut out = deliver_packet(&mut node, &Packet::data(3, 1, vec![42]));
        out.extend(node.run_for(SimDuration::from_ms(5)).unwrap());
        assert!(transmitted_words(&out).is_empty(), "no retransmission");
        let local = program.symbol("aodv_local").unwrap();
        assert_eq!(node.cpu().dmem().read(local), 1);
    }

    #[test]
    fn rrep_packets_are_not_reforwarded() {
        let (mut node, _) = relay_node(3, &[(1, 1)]);
        // An RREP addressed elsewhere floats by; we must stay silent.
        let rrep = Packet {
            dst: 1,
            src: 2,
            ptype: PacketType::RouteReply,
            payload: vec![9, 2],
        };
        let mut out = deliver_packet(&mut node, &rrep);
        out.extend(node.run_for(SimDuration::from_ms(5)).unwrap());
        assert!(transmitted_words(&out).is_empty());
    }

    #[test]
    fn table_1_scale_dynamic_instruction_counts() {
        // Sanity-check that handler work is in the paper's range
        // (tens to a few hundred instructions), not thousands.
        let (mut node, _) = relay_node(3, &[(9, 2)]);
        let before = node.cpu().stats();
        deliver_packet(&mut node, &Packet::data(9, 1, vec![1, 2]));
        node.run_for(SimDuration::from_ms(10)).unwrap();
        let d = node.cpu().stats().since(&before);
        assert!(
            (100..400).contains(&d.instructions),
            "AODV forward took {} instructions",
            d.instructions
        );
    }
}
