//! Golden-trace regression tests for the paper benchmarks.
//!
//! Each app runs under the `snap-smith` differential driver with a
//! fixed environment script; the full executed-instruction trace plus
//! the final architectural state is rendered to text and compared
//! against a checked-in golden file. Any change to decode, timing,
//! energy accounting, the event queue, or the apps themselves shows up
//! as a readable diff of *which instruction* first went differently —
//! not just a changed aggregate.
//!
//! Regenerating after an intentional behaviour change:
//!
//! ```text
//! SNAP_BLESS=1 cargo test -p snap-apps --test golden_traces
//! ```
//!
//! then review the golden-file diff like any other code change.

use snap_apps::blink::blink_program;
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_apps::sense::sense_program;
use snap_asm::Program;
use snap_smith::diff::{run_program, RunOutput, Runner};
use snap_smith::gen::{Script, Stimulus, StimulusKind};

fn script(stimuli: Vec<Stimulus>, max_instructions: u64) -> Script {
    Script {
        stimuli,
        max_instructions,
    }
}

fn render(out: &RunOutput) -> String {
    let mut s = String::new();
    for (addr, ins) in out.trace.as_ref().expect("step runner records a trace") {
        s.push_str(&format!("{addr:#05x}: {ins}\n"));
    }
    let o = &out.observed;
    s.push_str(&format!(
        "-- instructions {} cycles {} energy_bits {:#018x}\n",
        o.instructions, o.cycles, o.energy_bits
    ));
    s.push_str(&format!(
        "-- busy_ps {} sleep_ps {} now_ps {} wakeups {} handlers {}\n",
        o.busy_ps, o.sleep_ps, o.now_ps, o.wakeups, o.handlers
    ));
    s.push_str(&format!(
        "-- regs {:?} carry {} pc {:#05x} state {}\n",
        o.regs, o.carry, o.pc, o.state
    ));
    s.push_str(&format!(
        "-- port {:#06x} timers {:?} msg_words {:?} actions {}\n",
        o.port,
        o.timers,
        o.msg_words,
        o.actions.len()
    ));
    s
}

fn check(name: &str, program: &Program, sc: &Script) {
    // The trace is recorded from the real core in step mode; the
    // predecode-off configuration must render identically (the
    // differential fuzzer covers this broadly, the goldens pin it for
    // the benchmark apps specifically).
    let on = run_program(program, sc, Runner::CoreStep { predecode: true })
        .unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
    let off = run_program(program, sc, Runner::CoreStep { predecode: false })
        .unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
    let text = render(&on);
    assert_eq!(text, render(&off), "{name}: predecode changed the trace");

    // The batched translation tiers expose no per-instruction trace,
    // but their final observation — registers, memories, event
    // counters, energy *bits* — must match the stepped run that the
    // golden file pins, for each benchmark app specifically.
    for runner in Runner::CORE_CONFIGS {
        if matches!(runner, Runner::CoreStep { .. }) {
            continue;
        }
        let burst = run_program(program, sc, runner)
            .unwrap_or_else(|e| panic!("{name}: {} run failed: {e}", runner.label()));
        assert_eq!(
            on.observed,
            burst.observed,
            "{name}: {} diverged from the golden stepped run",
            runner.label()
        );
    }

    let path = format!("{}/tests/golden/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("SNAP_BLESS").is_some() {
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("cannot bless {path}: {e}"));
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("{name}: cannot read golden file {path}: {e}\n(run with SNAP_BLESS=1 to create it)")
    });
    if text != golden {
        let mismatch = text
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .map_or("length".to_string(), |i| format!("line {}", i + 1));
        panic!(
            "{name}: trace differs from golden file at {mismatch}.\n\
             If the change is intentional, regenerate with:\n\
             SNAP_BLESS=1 cargo test -p snap-apps --test golden_traces\n\
             and review the diff of {path}."
        );
    }
}

#[test]
fn blink_golden_trace() {
    let program = blink_program().unwrap();
    check("blink", &program, &script(vec![], 300));
}

#[test]
fn sense_golden_trace() {
    let program = sense_program().unwrap();
    check("sense", &program, &script(vec![], 600));
}

#[test]
fn mac_golden_trace() {
    let extra = install_handler("EV_IRQ", "app_send_irq");
    let app = format!("{}{}", send_on_irq_app(2), RX_DISPATCH_STUB);
    let program = mac_program(1, &extra, &app).unwrap();
    let stimuli = vec![
        Stimulus {
            at: 40,
            kind: StimulusKind::SensorIrq,
        },
        Stimulus {
            at: 220,
            kind: StimulusKind::RadioRx(0x2107),
        },
        Stimulus {
            at: 380,
            kind: StimulusKind::SensorIrq,
        },
    ];
    check("mac", &program, &script(stimuli, 700));
}
