//! Golden metrics snapshots for the paper benchmarks.
//!
//! Each app runs on a full `snap-node` with per-dispatch sampling
//! enabled; the resulting `snap-metrics-v1` report (counters, energy
//! attribution, handler distributions) is compared bit-for-bit against
//! a checked-in golden file. Where `golden_traces.rs` pins *which
//! instructions* execute, these pin what the observability layer
//! *reports* about them — any drift in the energy model, the counters,
//! the histogram code or the JSON renderer shows up as a diff.
//!
//! Regenerating after an intentional change:
//!
//! ```text
//! SNAP_BLESS=1 cargo test -p snap-apps --test golden_metrics
//! ```
//!
//! then review the golden-file diff like any other code change.

use dess::{SimDuration, SimTime};
use snap_apps::blink::blink_program;
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_apps::sense::sense_program;
use snap_asm::Program;
use snap_core::CoreConfig;
use snap_energy::OperatingPoint;
use snap_node::{Node, NodeConfig};

/// A sampled node at the paper's 0.6 V deployment point.
fn sampled_node(program: &Program) -> Node {
    let cfg = NodeConfig {
        core: CoreConfig::at(OperatingPoint::V0_6),
        ..NodeConfig::default()
    };
    let mut node = Node::new(cfg);
    node.cpu_mut()
        .enable_sampling(snap_telemetry::DEFAULT_RETAIN);
    node.load(program).expect("program fits memory");
    node
}

fn render(node: &Node) -> String {
    snap_telemetry::report(
        "golden",
        0.6,
        node.now().as_ps(),
        vec![snap_telemetry::node_metrics(0, node.cpu())],
        None,
    )
    .to_pretty()
}

fn check(name: &str, text: &str) {
    // A golden that the schema validator rejects is useless as
    // documentation backing — refuse to bless or accept one.
    snap_telemetry::validate_metrics(text)
        .unwrap_or_else(|e| panic!("{name}: report violates snap-metrics-v1: {e}"));

    let path = format!(
        "{}/tests/golden/{name}.metrics.json",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("SNAP_BLESS").is_some() {
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot bless {path}: {e}"));
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("{name}: cannot read golden file {path}: {e}\n(run with SNAP_BLESS=1 to create it)")
    });
    if text != golden {
        let mismatch = text
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .map_or("length".to_string(), |i| format!("line {}", i + 1));
        panic!(
            "{name}: metrics differ from golden file at {mismatch}.\n\
             If the change is intentional, regenerate with:\n\
             SNAP_BLESS=1 cargo test -p snap-apps --test golden_metrics\n\
             and review the diff of {path}."
        );
    }
}

#[test]
fn blink_golden_metrics() {
    let program = blink_program().unwrap();
    let mut node = sampled_node(&program);
    node.run_for(SimDuration::from_ms(10)).unwrap();
    check("blink", &render(&node));
}

#[test]
fn sense_golden_metrics() {
    let program = sense_program().unwrap();
    let mut node = sampled_node(&program);
    node.run_for(SimDuration::from_ms(20)).unwrap();
    check("sense", &render(&node));
}

/// The mac sender node used by the network tests: three sensor
/// interrupts, each of which kicks off a full CSMA send task.
fn run_mac_sender() -> Node {
    let extra = install_handler("EV_IRQ", "app_send_irq");
    let app = format!("{}{}", send_on_irq_app(2), RX_DISPATCH_STUB);
    let program = mac_program(1, &extra, &app).unwrap();
    let mut node = sampled_node(&program);
    for irq_ms in [2u64, 12, 22] {
        node.run_until(SimTime::ZERO + SimDuration::from_ms(irq_ms))
            .unwrap();
        node.trigger_sensor_irq();
    }
    node.run_until(SimTime::ZERO + SimDuration::from_ms(50))
        .unwrap();
    node
}

#[test]
fn mac_golden_metrics() {
    let node = run_mac_sender();
    check("mac", &render(&node));
}

/// The paper's Table 1 ballpark: event-handling tasks of 70–245
/// dynamic instructions costing about 1.6–5.8 nJ each at 0.6 V. One
/// *task* here is everything one sensor interrupt causes (the IRQ
/// handler, the CSMA backoff timers, and the per-word tx-done chain),
/// so we compare against post-boot totals divided by the three tasks.
#[test]
fn mac_tasks_in_paper_band_at_0v6() {
    let node = run_mac_sender();
    let cpu = node.cpu();
    let stats = cpu.stats();
    let boot = cpu.profile().boot();

    let tasks = 3.0;
    let task_instructions = (stats.instructions - boot.instructions) as f64 / tasks;
    assert!(
        (70.0..=245.0).contains(&task_instructions),
        "instructions per send task: {task_instructions}"
    );

    let task_nj = (stats.energy.as_pj() - boot.energy.as_pj()) / 1000.0 / tasks;
    assert!(
        (1.6..=5.8).contains(&task_nj),
        "nJ per send task: {task_nj}"
    );

    // And the per-instruction average must sit at the paper's 0.6 V
    // figure of ~24 pJ.
    let pj_per_ins = stats.energy_per_instruction().as_pj();
    assert!(
        (20.0..=28.0).contains(&pj_per_ins),
        "pJ/instruction at 0.6 V: {pj_per_ins}"
    );
}

/// The Chrome export of a real run must be well-formed `trace_event`
/// JSON with monotonically non-decreasing timestamps — exactly what
/// `validate_chrome_trace` (and Perfetto) require.
#[test]
fn mac_chrome_trace_is_well_formed_and_monotonic() {
    let node = run_mac_sender();
    let mut chrome = snap_telemetry::ChromeTrace::new();
    chrome.process_name("golden");
    chrome.thread_name(0, "node0");
    let sampler = node.cpu().sampler().expect("sampling enabled");
    assert!(sampler.samples().len() > 1, "expected several dispatches");
    chrome.add_handler_samples(0, sampler.samples());
    let json = chrome.to_json();
    snap_telemetry::validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("chrome trace invalid: {e}"));

    // Belt and braces: re-parse and walk the ts values ourselves.
    let parsed = snap_telemetry::parse(&json).unwrap();
    let events = match &parsed {
        snap_telemetry::Value::Arr(events) => events,
        other => panic!("expected top-level array, got {other:?}"),
    };
    let mut last = f64::NEG_INFINITY;
    let mut timed = 0;
    for ev in events {
        if ev.get("ph").and_then(|p| p.as_str()) == Some("M") {
            continue;
        }
        let ts = ev.get("ts").and_then(|t| t.as_f64()).expect("ts present");
        assert!(ts >= last, "timestamps went backwards: {last} -> {ts}");
        last = ts;
        timed += 1;
    }
    assert!(timed > 1, "expected timed events, got {timed}");
}
