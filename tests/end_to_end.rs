//! Cross-crate integration: the whole stack working together —
//! compiler → assembler → core → node → network.

use dess::{SimDuration, SimTime};
use snap_apps::aodv::relay_program;
use snap_apps::packet::Packet;
use snap_net::{NetworkSim, Position, Stimulus};
use snap_node::{Node, NodeConfig};
use snapcc::codegen::{BootEnd, CompileOptions};

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_ms(n)
}

/// A node whose handlers were written in C (snapcc) exchanges packets
/// with nodes running hand-written assembly — the toolchains must be
/// ABI-compatible on the wire.
#[test]
fn c_compiled_node_talks_to_asm_nodes() {
    // A C node that, on sensor IRQ, sends a DATA packet to node 2 by
    // driving the radio directly (TX command + payload per word,
    // sequenced by tx-done events).
    let c_source = r"
        int msg[5];
        int pos;
        int total;

        handler irq() {
            // Packet: dst=2,src=1 | DATA,len=1 | payload | checksum
            msg[0] = 2 * 256 + 1;
            msg[1] = 1 * 256 + 1;
            msg[2] = 777;
            msg[3] = msg[0] + msg[1] + msg[2];
            total = 4;
            pos = 1;
            __msg_write(0x2000);
            __msg_write(msg[0]);
        }

        handler txdone() {
            if (pos < total) {
                __msg_write(0x2000);
                __msg_write(msg[pos]);
                pos = pos + 1;
            }
        }

        int main() {
            __setaddr(5, irq);
            __setaddr(4, txdone);
            __msg_write(0x1001);   // radio on
            return 0;
        }
    ";
    let options = CompileOptions {
        end: BootEnd::Done,
        ..CompileOptions::default()
    };
    let c_program = snapcc::compile_to_program_with(c_source, options).expect("compiles");

    let mut sim = NetworkSim::new(10.0);
    let sender = sim.add_node(&c_program, Position::new(0.0, 0.0));
    let receiver = sim.add_node(&relay_program(2, &[]).unwrap(), Position::new(3.0, 0.0));

    sim.schedule(sender, ms(1), Stimulus::SensorIrq);
    sim.run_until(ms(20)).unwrap();

    // The assembly receiver's AODV layer delivered the C node's packet.
    let prog = relay_program(2, &[]).unwrap();
    let local = prog.symbol("aodv_local").unwrap();
    assert_eq!(sim.node(receiver).cpu().dmem().read(local), 1);
    let buf = prog.symbol("mac_rx_buf").unwrap();
    assert_eq!(sim.node(receiver).cpu().dmem().read(buf + 2), 777);
}

/// The same handler workload measured at all three voltages executes
/// identical instructions, scaled energy (V²), scaled time.
#[test]
fn voltage_scaling_is_exact_across_the_stack() {
    use snap_apps::measure::measure_aodv_forward;
    use snap_energy::OperatingPoint;

    let at18 = measure_aodv_forward(OperatingPoint::V1_8);
    let at09 = measure_aodv_forward(OperatingPoint::V0_9);
    let at06 = measure_aodv_forward(OperatingPoint::V0_6);

    assert_eq!(at18.instructions, at09.instructions);
    assert_eq!(at18.instructions, at06.instructions);
    assert!((at09.energy.as_pj() / at18.energy.as_pj() - 0.25).abs() < 1e-9);
    assert!((at06.energy.as_pj() / at18.energy.as_pj() - 1.0 / 9.0).abs() < 1e-9);
    let t_ratio = at06.busy_time.as_ps() as f64 / at18.busy_time.as_ps() as f64;
    assert!((t_ratio - 8.57).abs() < 0.05, "delay ratio {t_ratio}");
}

/// A ten-node network runs without deadlock or node faults, exercising
/// the parallel advancement path (>= 8 nodes).
#[test]
fn ten_node_network_is_stable() {
    let mut sim = NetworkSim::new(4.0);
    // A line of relays, each with a route to its right neighbour.
    for i in 1..=10u8 {
        let routes: Vec<(u8, u8)> = if i < 10 { vec![(10, i + 1)] } else { vec![] };
        sim.add_node(
            &relay_program(i, &routes).unwrap(),
            Position::new(3.0 * i as f64, 0.0),
        );
    }
    // Kick a packet from node 1 toward node 10 by injecting it as if
    // node 0 (outside) had sent it to node 1's radio.
    let words = Packet::data(10, 0, vec![0xfeed]).encode();
    sim.run_until(ms(1)).unwrap();
    for w in words {
        sim.node_mut(snap_node::NodeId(1)).deliver_rx(w);
        sim.run_for(SimDuration::from_us(900)).unwrap();
    }
    sim.run_until(ms(400)).unwrap();

    // The packet walked the whole line: node 10 delivered it locally.
    let prog = relay_program(10, &[]).unwrap();
    let local = prog.symbol("aodv_local").unwrap();
    assert_eq!(
        sim.node(snap_node::NodeId(10)).cpu().dmem().read(local),
        1,
        "packet must traverse nine hops"
    );
    // Every intermediate node forwarded exactly once.
    let fwds = prog.symbol("aodv_fwds").unwrap();
    for i in 1..=9u32 {
        assert_eq!(
            sim.node(snap_node::NodeId(i)).cpu().dmem().read(fwds),
            1,
            "node {i} must forward exactly once"
        );
    }
}

/// Self-modifying code over the "radio": bootstrap a node by writing
/// its IMEM through `isw`, then jump into the new code (paper §3.1's
/// over-the-radio bootstrapping story, condensed).
#[test]
fn imem_bootstrap_path_works() {
    use snap_asm::assemble;

    // Stage-1 loader: copies a 3-word stage-2 image from DMEM into
    // IMEM at 0x100, then jumps to it. Stage-2 sets r5 and halts.
    let src = r"
        .equ STAGE2, 0x100
    boot:
        li      r1, 0          ; index
    copy:
        lw      r2, image(r1)
        mov     r3, r1
        addi    r3, STAGE2
        isw     r2, 0(r3)
        addi    r1, 1
        li      r4, 3
        bltu    r1, r4, copy
        jmp     STAGE2

        .data
    image:
        .word 0x2508, 0x00aa, 0xa003   ; li r5, 0xaa ; halt
    ";
    let program = assemble(src).unwrap();
    let mut node = Node::new(NodeConfig::default());
    node.load(&program).unwrap();
    node.run_for(SimDuration::from_ms(1)).unwrap();
    assert_eq!(node.cpu().regs().read(snap_isa::Reg::R5), 0xaa);
}

/// Event-queue overflow under a flood: deliveries beyond the queue
/// depth are dropped and counted, and the node keeps working after.
#[test]
fn event_flood_drops_gracefully() {
    use snap_asm::assemble;
    // A deliberately slow handler (long loop) so events pile up.
    let src = r"
        .equ EV_IRQ, 5
    boot:
        li      r1, EV_IRQ
        li      r2, slow
        setaddr r1, r2
        done
    slow:
        li      r3, 2000
    spin:
        subi    r3, 1
        bnez    r3, spin
        lw      r4, count(r0)
        addi    r4, 1
        sw      r4, count(r0)
        done
        .data
    count: .word 0
    ";
    let program = assemble(src).unwrap();
    let mut node = Node::new(NodeConfig::default());
    node.load(&program).unwrap();
    node.run_for(SimDuration::from_us(10)).unwrap();
    // Flood 50 IRQs while the first handler runs.
    for _ in 0..50 {
        node.trigger_sensor_irq();
    }
    node.run_for(SimDuration::from_ms(5)).unwrap();
    let stats = node.cpu().stats();
    assert!(stats.events_dropped > 0, "flood must overflow the queue");
    assert_eq!(stats.events_dropped + stats.events_inserted, 50);
    // The handler ran once per *inserted* event.
    let count = program.symbol("count").unwrap();
    assert_eq!(node.cpu().dmem().read(count) as u64, stats.events_inserted);
    // The node still responds afterwards.
    node.trigger_sensor_irq();
    node.run_for(SimDuration::from_ms(1)).unwrap();
    assert_eq!(
        node.cpu().dmem().read(count) as u64,
        stats.events_inserted + 1
    );
}

/// Over-the-radio bootstrapping across the simulated network: a
/// flasher node streams a code image; the target's bootloader writes
/// it into IMEM (`isw`), verifies the checksum and jumps into it
/// (paper §3.1's "bootstrap the processor by sending it code over the
/// radio link").
#[test]
fn bootstream_over_the_air_from_another_node() {
    use snap_apps::bootloader::{bootloader_program, encode_bootstream};
    use snap_apps::prelude::{install_handler, PRELUDE};
    use snap_asm::{assemble, assemble_modules};

    // Stage 2: a blinker assembled to run at 0x200.
    let stage2_src = r"
        .org 0x200
    entry:
        li      r1, 0
        li      r2, s2_tick
        setaddr r1, r2
        li      r1, 0
        schedhi r1, r0
        li      r2, 100
        schedlo r1, r2
        done
    s2_tick:
        lw      r3, 0x300(r0)
        xori    r3, 1
        sw      r3, 0x300(r0)
        li      r4, 0x4000
        or      r4, r3
        mov     r15, r4
        li      r1, 0
        schedhi r1, r0
        li      r2, 100
        schedlo r1, r2
        done
    ";
    let image = assemble(stage2_src).unwrap().imem_image()[0x200..].to_vec();
    let words = encode_bootstream(0x200, &image);

    // The flasher transmits the stream from a DMEM table, one word per
    // tx-done event.
    let table: Vec<String> = words.iter().map(|w| format!("    .word {w}")).collect();
    let flasher_src = format!(
        r"
fl_irq:
    sw      r0, 0x380(r0)
    call    fl_next
    done
fl_txdone:
    lw      r2, 0x380(r0)
    li      r3, {len}
    bgeu    r2, r3, fl_done
    call    fl_next
fl_done:
    done
fl_next:
    lw      r2, 0x380(r0)
    lw      r3, fl_table(r2)
    addi    r2, 1
    sw      r2, 0x380(r0)
    li      r15, 0x2000
    mov     r15, r3
    ret

.data
fl_table:
{table}
",
        len = words.len(),
        table = table.join("\n"),
    );
    let mut boot = install_handler("EV_IRQ", "fl_irq");
    boot.push_str(&install_handler("EV_TXDONE", "fl_txdone"));
    let flasher = assemble_modules(&[
        ("prelude.s", PRELUDE),
        ("boot.s", &format!("boot:\n{boot}    done\n")),
        ("fl.s", &flasher_src),
    ])
    .unwrap();

    let mut sim = NetworkSim::new(10.0);
    let fl = sim.add_node(&flasher, Position::new(0.0, 0.0));
    let target = sim.add_node(&bootloader_program().unwrap(), Position::new(5.0, 0.0));
    sim.schedule(fl, ms(1), Stimulus::SensorIrq);
    sim.run_until(ms(60)).unwrap();

    let bl = bootloader_program().unwrap();
    assert_eq!(
        sim.node(target)
            .cpu()
            .dmem()
            .read(bl.symbol("bl_loads").unwrap()),
        1
    );
    assert!(
        sim.node(target).led().writes() > 10,
        "flashed blinker must run"
    );
}

/// Twenty sampling nodes reporting to a sink keep the parallel network
/// simulator stable and deterministic at scale.
#[test]
fn twenty_node_sampling_field() {
    use snap_apps::aodv::aodv_node_program;
    use snap_apps::prelude::install_handler;

    // Every node samples its sensor on IRQ and reports to the sink
    // (node 1) — all within one hop in a dense grid.
    const FIELD_APP: &str = r"
app_irq:
    li      r15, 0x3000        ; query sensor 0
    done
app_reading:
    mov     r5, r15
    li      r2, 1 << 8
    lw      r4, node_id(r0)
    bfs     r2, r4, 0xff
    sw      r2, mac_tx_buf+0(r0)
    li      r2, PKT_DATA << 8 | 1
    sw      r2, mac_tx_buf+1(r0)
    sw      r5, mac_tx_buf+2(r0)
    li      r1, 3
    call    mac_send
    done
app_deliver:
    done
";
    let mut sim = NetworkSim::new(100.0);
    let mut boot = install_handler("EV_IRQ", "app_irq");
    boot.push_str(&install_handler("EV_REPLY", "app_reading"));
    let sink_prog = aodv_node_program(1, &[], "", "app_deliver:\n    done\n").unwrap();
    let sink = sim.add_node(&sink_prog, Position::new(0.0, 0.0));
    for i in 2..=20u8 {
        let program = aodv_node_program(i, &[], &boot, FIELD_APP).unwrap();
        let id = sim.add_node(&program, Position::new(f64::from(i), 1.0));
        sim.node_mut(id).sensors_mut().set_reading(0, 40 + i as u16);
    }
    // Stagger the sampling so the shared channel is not saturated.
    for i in 2..=20u64 {
        sim.schedule(snap_node::NodeId(i as u32), ms(10 * i), Stimulus::SensorIrq);
    }
    sim.run_until(ms(400)).unwrap();

    let local = sink_prog.symbol("aodv_local").unwrap();
    let delivered = sim.node(sink).cpu().dmem().read(local);
    assert!(
        (15..=19).contains(&delivered),
        "most reports must arrive (collisions may eat a few): {delivered}"
    );
    // No node faulted, every sampler transmitted.
    for i in 2..=20u32 {
        assert!(sim.node(snap_node::NodeId(i)).radio().words_sent() >= 4);
    }
}
