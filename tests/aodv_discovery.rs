//! End-to-end AODV route discovery over the simulated radio: a flood
//! teaches every node on the path, the reply installs forward routes,
//! and a subsequent DATA packet rides the learned entries.

use dess::{SimDuration, SimTime};
use snap_apps::discovery::aodv_discovery_program;
use snap_apps::prelude::install_handler;
use snap_asm::Program;
use snap_net::{NetworkSim, Position, Stimulus};
use snap_node::NodeId;

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_ms(n)
}

/// Origin app: first IRQ starts a discovery for node 3; once the reply
/// has come back (disc_done > 0), the next IRQ sends data to node 3.
const ORIGIN_APP: &str = r"
app_irq:
    lw      r5, disc_done(r0)
    bnez    r5, app_send_data
    li      r1, 3
    call    aodv_discover
    done
app_send_data:
    li      r2, 3 << 8
    lw      r4, node_id(r0)
    bfs     r2, r4, 0xff
    sw      r2, mac_tx_buf+0(r0)
    li      r2, PKT_DATA << 8 | 1
    sw      r2, mac_tx_buf+1(r0)
    li      r2, 0xd15c
    sw      r2, mac_tx_buf+2(r0)
    li      r1, 3
    call    mac_send
    done

app_deliver:
    done
";

const RELAY_APP: &str = "
app_deliver:
    done
";

fn programs(backoff_mask: u16) -> (Program, Program, Program) {
    let boot = install_handler("EV_IRQ", "app_irq");
    let origin =
        aodv_discovery_program(1, &[], &boot, ORIGIN_APP, backoff_mask).expect("origin assembles");
    let relay =
        aodv_discovery_program(2, &[], "", RELAY_APP, backoff_mask).expect("relay assembles");
    let target =
        aodv_discovery_program(3, &[], "", RELAY_APP, backoff_mask).expect("target assembles");
    (origin, relay, target)
}

fn route_of(sim: &NetworkSim, program: &Program, node: NodeId, dest: u16) -> Option<u16> {
    let table = program.symbol("rt_table").unwrap();
    for slot in 0..8 {
        let d = sim.node(node).cpu().dmem().read(table + slot * 2);
        if d == dest {
            return Some(sim.node(node).cpu().dmem().read(table + slot * 2 + 1));
        }
    }
    None
}

#[test]
fn discovery_learns_routes_and_data_follows() {
    let (origin_prog, relay_prog, target_prog) = programs(0x3f);
    let mut sim = NetworkSim::new(6.0);
    // 1 -- 2 -- 3 in a line; 1 cannot hear 3.
    let origin = sim.add_node(&origin_prog, Position::new(0.0, 0.0));
    let relay = sim.add_node(&relay_prog, Position::new(5.0, 0.0));
    let target = sim.add_node(&target_prog, Position::new(10.0, 0.0));
    assert!(!sim.topology().in_range(origin, target));

    // Discovery round.
    sim.schedule(origin, ms(2), Stimulus::SensorIrq);
    sim.run_until(ms(80)).unwrap();

    // The origin completed a discovery and learned 3-via-2.
    let done = origin_prog.symbol("disc_done").unwrap();
    assert_eq!(
        sim.node(origin).cpu().dmem().read(done),
        1,
        "discovery must complete"
    );
    assert_eq!(route_of(&sim, &origin_prog, origin, 3), Some(2));
    // The relay learned both directions.
    assert_eq!(route_of(&sim, &relay_prog, relay, 1), Some(1));
    assert_eq!(route_of(&sim, &relay_prog, relay, 3), Some(3));
    // The target learned the reverse route to the origin.
    assert_eq!(route_of(&sim, &target_prog, target, 1), Some(2));

    // Data round over the learned routes.
    sim.schedule(origin, ms(90), Stimulus::SensorIrq);
    sim.run_until(ms(160)).unwrap();

    let local = target_prog.symbol("aodv_local").unwrap();
    assert_eq!(
        sim.node(target).cpu().dmem().read(local),
        1,
        "payload must reach the target"
    );
    let buf = target_prog.symbol("mac_rx_buf").unwrap();
    assert_eq!(sim.node(target).cpu().dmem().read(buf + 2), 0xd15c);
    let fwds = relay_prog.symbol("aodv_fwds").unwrap();
    assert_eq!(sim.node(relay).cpu().dmem().read(fwds), 1);
}

#[test]
fn duplicate_suppression_bounds_the_flood() {
    // Fully connected: the worst flood case, and also a collision trap —
    // the relay's rebroadcast and the target's reply race within one
    // word time (the MAC is ALOHA-like), so a single round may lose the
    // DRREP. Discovery succeeds under *retries* (each round uses fresh
    // ids and fresh backoff draws), while duplicate suppression keeps
    // every round's traffic bounded.
    // A wide contention window (16 ms) lets the rebroadcast/reply race
    // resolve; see aodv_discovery_program's backoff discussion.
    let (origin_prog, relay_prog, target_prog) = programs(0x3fff);
    let mut sim = NetworkSim::new(25.0);
    let origin = sim.add_node(&origin_prog, Position::new(0.0, 0.0));
    let relay = sim.add_node(&relay_prog, Position::new(5.0, 0.0));
    let target = sim.add_node(&target_prog, Position::new(10.0, 0.0));

    let done = origin_prog.symbol("disc_done").unwrap();
    let mut rounds = 0;
    for round in 0..5 {
        rounds = round + 1;
        let at = ms(2 + 80 * round);
        sim.schedule(origin, at, Stimulus::SensorIrq);
        sim.run_until(at + SimDuration::from_ms(78)).unwrap();
        if sim.node(origin).cpu().dmem().read(done) > 0 {
            break;
        }
    }
    assert!(
        sim.node(origin).cpu().dmem().read(done) >= 1,
        "discovery must succeed within 5 rounds"
    );
    // The very first flood was heard by everyone (single transmitter):
    // both peers learned the reverse route to the origin.
    assert_eq!(route_of(&sim, &relay_prog, relay, 1), Some(1));
    assert_eq!(route_of(&sim, &target_prog, target, 1), Some(1));
    // Bounded traffic: per round at most 1 DRREQ + 2 rebroadcast/reply
    // transmissions of <= 5 words, plus the final DRREP legs.
    let tx_events = sim
        .trace()
        .count(|e| matches!(e.kind, snap_net::TraceKind::Transmit { .. }));
    let per_round_cap = 5 + 2 * 5 + 2 * 4;
    assert!(
        tx_events <= per_round_cap * rounds as usize,
        "flood not bounded: {tx_events} words over {rounds} rounds"
    );
}

#[test]
fn discovery_for_unreachable_target_learns_nothing_at_origin() {
    let (origin_prog, relay_prog, _) = programs(0x3f);
    let mut sim = NetworkSim::new(6.0);
    let origin = sim.add_node(&origin_prog, Position::new(0.0, 0.0));
    let _relay = sim.add_node(&relay_prog, Position::new(5.0, 0.0));
    // Node 3 does not exist.

    sim.schedule(origin, ms(2), Stimulus::SensorIrq);
    sim.run_until(ms(120)).unwrap();

    let done = origin_prog.symbol("disc_done").unwrap();
    assert_eq!(
        sim.node(origin).cpu().dmem().read(done),
        0,
        "no reply can arrive"
    );
    assert_eq!(route_of(&sim, &origin_prog, origin, 3), None);
}
