//! Property-based tests on the core data structures and toolchain
//! invariants.

use proptest::prelude::*;
use snap_asm::{assemble, disassemble};
use snap_core::{CoreConfig, Processor};
use snap_isa::{AluImmOp, AluOp, BranchCond, Instruction, Reg, ShiftOp, Word};

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (alu_op(), reg(), reg()).prop_map(|(op, rd, rs)| Instruction::AluReg { op, rd, rs }),
        (
            prop::sample::select(AluImmOp::ALL.to_vec()),
            reg(),
            any::<u16>()
        )
            .prop_map(|(op, rd, imm)| Instruction::AluImm { op, rd, imm }),
        (prop::sample::select(ShiftOp::ALL.to_vec()), reg(), reg())
            .prop_map(|(op, rd, rs)| Instruction::ShiftReg { op, rd, rs }),
        (prop::sample::select(ShiftOp::ALL.to_vec()), reg(), 0u8..16)
            .prop_map(|(op, rd, amount)| Instruction::ShiftImm { op, rd, amount }),
        (reg(), reg(), any::<u16>()).prop_map(|(rd, base, offset)| Instruction::Load {
            rd,
            base,
            offset
        }),
        (reg(), reg(), any::<u16>()).prop_map(|(rs, base, offset)| Instruction::Store {
            rs,
            base,
            offset
        }),
        (reg(), reg(), any::<u16>()).prop_map(|(rd, base, offset)| Instruction::ImemLoad {
            rd,
            base,
            offset
        }),
        (reg(), reg(), any::<u16>()).prop_map(|(rs, base, offset)| Instruction::ImemStore {
            rs,
            base,
            offset
        }),
        (
            prop::sample::select(BranchCond::ALL.to_vec()),
            reg(),
            reg(),
            any::<u16>()
        )
            .prop_map(|(cond, ra, rb, target)| {
                let rb = if cond.is_unary() { Reg::R0 } else { rb };
                Instruction::Branch {
                    cond,
                    ra,
                    rb,
                    target,
                }
            }),
        any::<u16>().prop_map(|target| Instruction::Jmp { target }),
        (reg(), any::<u16>()).prop_map(|(rd, target)| Instruction::Jal { rd, target }),
        reg().prop_map(|rs| Instruction::Jr { rs }),
        (reg(), reg()).prop_map(|(rd, rs)| Instruction::Jalr { rd, rs }),
        (reg(), reg()).prop_map(|(rt, rv)| Instruction::SchedHi { rt, rv }),
        (reg(), reg()).prop_map(|(rt, rv)| Instruction::SchedLo { rt, rv }),
        reg().prop_map(|rt| Instruction::Cancel { rt }),
        (reg(), reg(), any::<u16>()).prop_map(|(rd, rs, mask)| Instruction::Bfs { rd, rs, mask }),
        reg().prop_map(|rd| Instruction::Rand { rd }),
        reg().prop_map(|rs| Instruction::Seed { rs }),
        Just(Instruction::Done),
        (reg(), reg()).prop_map(|(rev, raddr)| Instruction::SetAddr { rev, raddr }),
        Just(Instruction::Nop),
        Just(Instruction::Halt),
        reg().prop_map(|rn| Instruction::SwEvent { rn }),
    ]
}

proptest! {
    /// Binary encode → decode is the identity on every instruction.
    #[test]
    fn encode_decode_round_trip(ins in instruction()) {
        let words = ins.encode();
        let back = Instruction::decode(words.first(), words.second()).unwrap();
        prop_assert_eq!(back, ins);
    }

    /// The fetch unit's two-word predicate agrees with the decoder.
    #[test]
    fn two_word_predicate_agrees(ins in instruction()) {
        let words = ins.encode();
        prop_assert_eq!(
            Instruction::first_word_is_two_word(words.first()),
            ins.is_two_word()
        );
        prop_assert_eq!(words.len(), ins.word_count());
    }

    /// Display output is valid assembly that assembles back to the
    /// identical binary encoding (Display ↔ assembler ↔ encoder
    /// coherence across three crates).
    #[test]
    fn display_assembles_to_same_encoding(ins in instruction()) {
        let text = ins.to_string();
        let program = assemble(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
        let expect: Vec<Word> = ins.encode().into_iter().collect();
        prop_assert_eq!(program.imem_image(), expect, "{}", text);
    }

    /// Disassembling any encoded instruction stream never panics, and
    /// decoding recovers every instruction in order.
    #[test]
    fn disassemble_round_trip(instructions in prop::collection::vec(instruction(), 1..40)) {
        let words: Vec<Word> = instructions.iter().flat_map(|i| i.encode()).collect();
        let lines = disassemble(0, &words);
        let decoded: Vec<Instruction> =
            lines.iter().filter_map(|l| l.instruction).collect();
        prop_assert_eq!(decoded, instructions);
    }

    /// Arbitrary word soup never panics the disassembler.
    #[test]
    fn disassembler_handles_garbage(words in prop::collection::vec(any::<u16>(), 0..64)) {
        let _ = disassemble(0, &words);
    }

    /// ALU semantics match a Rust reference model (runs on the core).
    #[test]
    fn alu_matches_reference(a in any::<u16>(), b in any::<u16>(), op in alu_op()) {
        let prog = [
            Instruction::AluImm { op: AluImmOp::Li, rd: Reg::R1, imm: a },
            Instruction::AluImm { op: AluImmOp::Li, rd: Reg::R2, imm: b },
            Instruction::AluReg { op, rd: Reg::R1, rs: Reg::R2 },
            Instruction::Halt,
        ];
        let mut cpu = Processor::new(CoreConfig::default());
        cpu.load_program(&prog).unwrap();
        cpu.run_to_halt(100).unwrap();
        let got = cpu.regs().read(Reg::R1);
        let expect = match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Addc => a.wrapping_add(b), // carry starts clear
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Subc => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Not => !b,
            AluOp::Mov => b,
            AluOp::Neg => b.wrapping_neg(),
            AluOp::Slt => ((a as i16) < (b as i16)) as u16,
            AluOp::Sltu => (a < b) as u16,
        };
        prop_assert_eq!(got, expect, "{} a={:#x} b={:#x}", op.mnemonic(), a, b);
    }

    /// 32-bit addition via add/addc matches u32 arithmetic (the ISA's
    /// multi-precision story, paper §3.4).
    #[test]
    fn carry_chain_matches_u32(x in any::<u32>(), y in any::<u32>()) {
        let prog = [
            Instruction::AluImm { op: AluImmOp::Li, rd: Reg::R1, imm: x as u16 },
            Instruction::AluImm { op: AluImmOp::Li, rd: Reg::R2, imm: (x >> 16) as u16 },
            Instruction::AluImm { op: AluImmOp::Li, rd: Reg::R3, imm: y as u16 },
            Instruction::AluImm { op: AluImmOp::Li, rd: Reg::R4, imm: (y >> 16) as u16 },
            Instruction::AluReg { op: AluOp::Add, rd: Reg::R1, rs: Reg::R3 },
            Instruction::AluReg { op: AluOp::Addc, rd: Reg::R2, rs: Reg::R4 },
            Instruction::Halt,
        ];
        let mut cpu = Processor::new(CoreConfig::default());
        cpu.load_program(&prog).unwrap();
        cpu.run_to_halt(100).unwrap();
        let got = (cpu.regs().read(Reg::R2) as u32) << 16 | cpu.regs().read(Reg::R1) as u32;
        prop_assert_eq!(got, x.wrapping_add(y));
    }

    /// Packet encode/decode round trip for arbitrary payloads.
    #[test]
    fn packet_round_trip(
        dst in any::<u8>(),
        src in any::<u8>(),
        payload in prop::collection::vec(any::<u16>(), 0..12),
    ) {
        use snap_apps::packet::Packet;
        let p = Packet::data(dst, src, payload);
        prop_assert_eq!(Packet::decode(&p.encode()), Some(p));
    }

    /// Arbitrary word soup never decodes as a valid packet unless the
    /// checksum happens to hold — and never panics.
    #[test]
    fn packet_decode_never_panics(words in prop::collection::vec(any::<u16>(), 0..20)) {
        let _ = snap_apps::packet::Packet::decode(&words);
    }

    /// DMEM addresses wrap modulo the bank size, like the hardware's
    /// 11-bit address decoder.
    #[test]
    fn membank_wraps(addr in any::<u16>(), value in any::<u16>()) {
        let mut m = snap_core::MemBank::new("dmem");
        m.write(addr, value);
        prop_assert_eq!(m.read(addr & 0x7ff), value);
        prop_assert_eq!(m.read(addr | 0x0800), m.read(addr & 0x7ff));
    }

    /// The LFSR never reaches the all-zero lock state from any seed.
    #[test]
    fn lfsr_never_locks(seed in any::<u16>(), steps in 1usize..2000) {
        let mut l = dess::Lfsr16::new(seed);
        for _ in 0..steps {
            prop_assert_ne!(l.step(), 0);
        }
    }

    /// Energy accounting is additive: running A then B on one core
    /// equals the sum of running them separately.
    #[test]
    fn energy_is_additive(n_a in 1usize..40, n_b in 1usize..40) {
        fn arith_prog(n: usize) -> Vec<Instruction> {
            let mut v = vec![
                Instruction::AluReg { op: AluOp::Add, rd: Reg::R1, rs: Reg::R2 };
                n
            ];
            v.push(Instruction::Halt);
            v
        }
        let run = |n: usize| {
            let mut cpu = Processor::new(CoreConfig::default());
            cpu.load_program(&arith_prog(n)).unwrap();
            cpu.run_to_halt(10_000).unwrap();
            cpu.stats().energy.as_pj()
        };
        let halt_cost = run(0); // a lone halt — subtract it once
        let sum = run(n_a) + run(n_b) - halt_cost;
        let together = run(n_a + n_b);
        prop_assert!((sum - together).abs() < 1e-6);
    }
}

proptest! {
    /// The decoder never panics on arbitrary word pairs, and decoding
    /// is stable under canonical re-encoding (re-encoding may zero
    /// don't-care fields, e.g. the unused rs field of `cancel`, but
    /// never changes the decoded meaning).
    #[test]
    fn decode_never_panics_and_is_stable(first in any::<u16>(), second in any::<u16>()) {
        if let Ok(ins) = Instruction::decode(first, Some(second)) {
            let enc = ins.encode();
            let again = Instruction::decode(enc.first(), enc.second()).expect("canonical form");
            prop_assert_eq!(again, ins);
            if ins.is_two_word() {
                prop_assert_eq!(enc.second(), Some(second), "immediates are never don't-care");
            }
        }
        let _ = Instruction::decode(first, None);
    }

    /// Simulated-time arithmetic obeys the obvious laws.
    #[test]
    fn time_arithmetic_laws(a in 0u64..1_000_000, b in 0u64..1_000_000, k in 1u64..50) {
        use dess::{SimDuration, SimTime};
        let da = SimDuration::from_ps(a);
        let db = SimDuration::from_ps(b);
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db) - db, da);
        prop_assert_eq!(da * k, SimDuration::from_ps(a * k));
        prop_assert_eq!((da * k) / k, SimDuration::from_ps(a * k / k));
        let t = SimTime::ZERO + da;
        prop_assert_eq!((t + db) - t, db);
        prop_assert_eq!(t.saturating_since(t + db), SimDuration::ZERO);
    }

    /// Energy accounting is linear in instruction count for a fixed
    /// instruction, at every operating point.
    #[test]
    fn energy_linear_in_count(k in 1u64..20) {
        use snap_energy::model::{InstrShape, SnapEnergyModel};
        use snap_energy::OperatingPoint;
        for point in OperatingPoint::PAPER_POINTS {
            let m = SnapEnergyModel::new(point);
            let one = m.instruction_energy(InstrShape::simple(snap_isa::InstructionClass::ArithReg));
            let many = one * k;
            prop_assert!((many.as_pj() - one.as_pj() * k as f64).abs() < 1e-9);
        }
    }
}

// ---- decode-cache coherence under self-modifying code ----

/// A 1-word instruction safe to patch into the execution zone: it
/// touches only r1–r3 (never the message port, never control flow), so
/// a patched zone always runs through to its terminating `jr`.
fn patch_instruction() -> impl Strategy<Value = Instruction> {
    fn r(i: u8) -> Reg {
        Reg::from_index(i).unwrap()
    }
    prop_oneof![
        (alu_op(), 1u8..4, 1u8..4).prop_map(|(op, rd, rs)| Instruction::AluReg {
            op,
            rd: r(rd),
            rs: r(rs)
        }),
        (prop::sample::select(ShiftOp::ALL.to_vec()), 1u8..4, 0u8..16).prop_map(
            |(op, rd, amount)| Instruction::ShiftImm {
                op,
                rd: r(rd),
                amount
            }
        ),
        Just(Instruction::Nop),
    ]
}

/// Run `program` on a predecoding core and an uncached reference core
/// in lockstep, asserting identical architectural state and
/// bit-identical energy after every step.
fn assert_lockstep(program: &[Instruction], max_steps: usize) {
    use snap_core::StepOutcome;
    let mut fast = Processor::new(CoreConfig::default());
    let mut reference = Processor::new(CoreConfig {
        predecode: false,
        ..CoreConfig::default()
    });
    assert!(fast.config().predecode, "cache on by default");
    fast.load_program(program).unwrap();
    reference.load_program(program).unwrap();
    let mut halted = false;
    for step in 0..max_steps {
        let a = fast.step();
        let b = reference.step();
        assert_eq!(a, b, "outcome diverged at step {step}");
        assert_eq!(fast.pc(), reference.pc(), "pc diverged at step {step}");
        assert_eq!(fast.now(), reference.now(), "time diverged at step {step}");
        assert_eq!(
            fast.regs(),
            reference.regs(),
            "registers diverged at step {step}"
        );
        assert_eq!(
            fast.acct().total_energy().as_pj().to_bits(),
            reference.acct().total_energy().as_pj().to_bits(),
            "energy not bit-identical at step {step}"
        );
        match a {
            Ok(StepOutcome::Halted) => {
                halted = true;
                break;
            }
            Err(e) => panic!("generated program must not fault: {e:?} at step {step}"),
            _ => {}
        }
    }
    assert!(
        halted,
        "generated program must halt within {max_steps} steps"
    );
    assert_eq!(fast.imem().as_words(), reference.imem().as_words());
    assert_eq!(fast.acct().instructions(), reference.acct().instructions());
    assert_eq!(fast.acct().busy_time(), reference.acct().busy_time());
    assert_eq!(fast.acct().components(), reference.acct().components());
    let per_class_fast: Vec<_> = fast.acct().per_class().collect();
    let per_class_ref: Vec<_> = reference.acct().per_class().collect();
    assert_eq!(per_class_fast, per_class_ref);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The predecode cache stays coherent under random write/execute
    /// interleavings of `isw` self-modifying code: each round patches a
    /// random zone slot with a random 1-word instruction, then executes
    /// the zone. The cached core must match the uncached reference
    /// exactly — state, trace of outcomes, and bit-identical energy.
    #[test]
    fn decode_cache_coherent_under_isw(
        patches in prop::collection::vec((0u16..12, patch_instruction()), 1..8),
        zone_len in 12u16..16,
    ) {
        // Layout: [per-patch: li r4,word; li r5,addr; isw; jal r6,zone]
        // (8 words each), halt (1 word), then the zone: `zone_len` nops
        // and a `jr r6` back.
        let zone = patches.len() as u16 * 8 + 1;
        let mut prog = Vec::new();
        for &(slot, ins) in &patches {
            let word = ins.encode().first();
            prog.push(Instruction::AluImm { op: AluImmOp::Li, rd: Reg::R4, imm: word });
            prog.push(Instruction::AluImm { op: AluImmOp::Li, rd: Reg::R5, imm: zone + slot });
            prog.push(Instruction::ImemStore { rs: Reg::R4, base: Reg::R5, offset: 0 });
            prog.push(Instruction::Jal { rd: Reg::R6, target: zone });
        }
        prog.push(Instruction::Halt);
        for _ in 0..zone_len {
            prog.push(Instruction::Nop);
        }
        prog.push(Instruction::Jr { rs: Reg::R6 });
        assert_lockstep(&prog, 4_000);
    }

    /// Patching the *immediate* word of a cached two-word instruction
    /// must also invalidate it (the write lands at `addr`, the cached
    /// entry starts at `addr - 1`). The zone is six `li r2, 0`
    /// instructions; patches overwrite only their immediate words, so
    /// every zone pass is valid code with different constants.
    #[test]
    fn decode_cache_invalidates_immediate_words(
        patches in prop::collection::vec((0u16..6, any::<u16>()), 1..8),
    ) {
        let zone = patches.len() as u16 * 8 + 1;
        let mut prog = Vec::new();
        for &(slot, imm) in &patches {
            prog.push(Instruction::AluImm { op: AluImmOp::Li, rd: Reg::R4, imm });
            // Immediate word of the slot-th `li r2, _`: zone + 2*slot + 1.
            prog.push(Instruction::AluImm {
                op: AluImmOp::Li,
                rd: Reg::R5,
                imm: zone + 2 * slot + 1,
            });
            prog.push(Instruction::ImemStore { rs: Reg::R4, base: Reg::R5, offset: 0 });
            prog.push(Instruction::Jal { rd: Reg::R6, target: zone });
        }
        prog.push(Instruction::Halt);
        for _ in 0..6 {
            prog.push(Instruction::AluImm { op: AluImmOp::Li, rd: Reg::R2, imm: 0 });
        }
        prog.push(Instruction::Jr { rs: Reg::R6 });
        assert_lockstep(&prog, 4_000);
    }
}
