//! Workspace helper tasks.
//!
//! ```text
//! cargo xtask loc                         # lines of code per tree
//! cargo xtask validate-metrics FILE...    # check snap-metrics-v1 reports
//! cargo xtask validate-trace FILE...      # check Chrome trace_event files
//! cargo xtask lint-asm [--strict] [FILE...]  # snap-lint over assembly
//! cargo xtask check-links [FILE...]       # markdown link checker
//! ```
//!
//! `lint-asm` without files runs the built-in applications plus every
//! checked-in `.s`/`.sasm` source under `examples/` and `crates/`
//! (excluding the intentionally-bad lint corpus) through `snap-lint`
//! and fails on error-severity findings (`--strict`: warnings too).
//!
//! The validators enforce the schema documented in
//! `docs/OBSERVABILITY.md` (via `snap_telemetry::schema`); CI runs them
//! over freshly produced `srun --metrics` / `--trace-out` files so the
//! emitters and the docs cannot drift apart.

use std::{fs, path::Path, process::ExitCode};

fn count_dir(p: &Path) -> usize {
    let mut n = 0;
    if let Ok(rd) = fs::read_dir(p) {
        for e in rd.flatten() {
            let path = e.path();
            if path.is_dir() {
                n += count_dir(&path);
            } else if path.extension().is_some_and(|x| x == "rs") {
                n += fs::read_to_string(&path)
                    .map(|s| s.lines().count())
                    .unwrap_or(0);
            }
        }
    }
    n
}

fn loc() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .to_path_buf();
    let mut total = 0;
    for sub in ["crates", "tests", "examples"] {
        let p = root.join(sub);
        let n = count_dir(&p);
        println!("{sub:10} {n:>7}");
        total += n;
    }
    println!("{:10} {total:>7}", "total");
}

/// Run `validate` over each file, reporting per-file pass/fail.
fn validate_files(
    kind: &str,
    files: &[String],
    validate: fn(&str) -> Result<(), String>,
) -> ExitCode {
    if files.is_empty() {
        eprintln!("xtask: no files given to validate-{kind}");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for file in files {
        let text = match fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: {e}");
                failed = true;
                continue;
            }
        };
        match validate(&text) {
            Ok(()) => println!("{file}: ok ({kind})"),
            Err(e) => {
                eprintln!("{file}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Collect every checked-in assembly source under `dir`, skipping the
/// intentionally-bad lint corpus (`crates/snap-lint/tests/bad/`).
fn asm_sources(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    for e in rd.flatten() {
        let path = e.path();
        if path.is_dir() {
            if path.ends_with("tests/bad") {
                continue;
            }
            asm_sources(&path, out);
        } else if path.extension().is_some_and(|x| x == "s" || x == "sasm") {
            out.push(path);
        }
    }
}

/// GitHub-style slug for a markdown heading: lowercase, punctuation
/// dropped, spaces to hyphens.
fn heading_slug(heading: &str) -> String {
    let mut slug = String::new();
    for c in heading.trim().chars() {
        match c {
            'A'..='Z' => slug.push(c.to_ascii_lowercase()),
            'a'..='z' | '0'..='9' | '-' | '_' => slug.push(c),
            ' ' => slug.push('-'),
            _ => {}
        }
    }
    slug
}

/// Collect the anchor slugs a markdown file defines (its headings).
fn anchors_of(path: &Path) -> Vec<String> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut in_code = false;
    let mut out = Vec::new();
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_code = !in_code;
            continue;
        }
        if !in_code && line.starts_with('#') {
            out.push(heading_slug(line.trim_start_matches('#')));
        }
    }
    out
}

/// Extract `[text](target)` link targets from one markdown line,
/// ignoring image links' leading `!` (the syntax is the same).
fn link_targets(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while let Some(open) = line[i..].find("](") {
        let start = i + open + 2;
        let mut depth = 1;
        let mut end = start;
        while end < bytes.len() && depth > 0 {
            match bytes[end] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                _ => {}
            }
            end += 1;
        }
        if depth == 0 {
            out.push(&line[start..end - 1]);
        }
        i = end;
    }
    out
}

/// Check every relative markdown link in the given files (default: the
/// top-level docs plus `docs/*.md`): the target file must exist, and a
/// `#fragment` must name a heading in it. External links
/// (`http(s)://`, `mailto:`) are not fetched.
fn check_links(args: &[String]) -> ExitCode {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .to_path_buf();
    let mut files: Vec<std::path::PathBuf> = args.iter().map(Into::into).collect();
    if files.is_empty() {
        for name in ["README.md", "DESIGN.md", "ROADMAP.md"] {
            files.push(root.join(name));
        }
        if let Ok(rd) = fs::read_dir(root.join("docs")) {
            let mut docs: Vec<_> = rd
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "md"))
                .collect();
            docs.sort();
            files.extend(docs);
        }
    }
    let mut checked = 0usize;
    let mut failed = false;
    for file in &files {
        let text = match fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: {e}", file.display());
                failed = true;
                continue;
            }
        };
        let dir = file.parent().unwrap_or(Path::new("."));
        let mut in_code = false;
        let mut bad = 0usize;
        for (ln, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_code = !in_code;
                continue;
            }
            if in_code {
                continue;
            }
            for target in link_targets(line) {
                if target.starts_with("http://")
                    || target.starts_with("https://")
                    || target.starts_with("mailto:")
                {
                    continue;
                }
                checked += 1;
                let (rel, frag) = match target.split_once('#') {
                    Some((r, f)) => (r, Some(f)),
                    None => (target, None),
                };
                let dest = if rel.is_empty() {
                    file.clone()
                } else {
                    dir.join(rel)
                };
                if !dest.exists() {
                    eprintln!(
                        "{}:{}: broken link `{target}` (no such file)",
                        file.display(),
                        ln + 1
                    );
                    bad += 1;
                    continue;
                }
                if let Some(frag) = frag {
                    if dest.extension().is_some_and(|x| x == "md")
                        && !anchors_of(&dest).iter().any(|a| a == frag)
                    {
                        eprintln!(
                            "{}:{}: broken link `{target}` (no heading `#{frag}`)",
                            file.display(),
                            ln + 1
                        );
                        bad += 1;
                    }
                }
            }
        }
        if bad > 0 {
            eprintln!("{}: FAILED ({bad} broken links)", file.display());
            failed = true;
        } else {
            println!("{}: ok (links)", file.display());
        }
    }
    println!("{checked} relative links checked in {} files", files.len());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn lint_asm(args: &[String]) -> ExitCode {
    let mut strict = false;
    let mut files: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--strict" => strict = true,
            f => files.push(f.to_string()),
        }
    }
    let gate = if strict {
        snap_lint::Severity::Warning
    } else {
        snap_lint::Severity::Error
    };
    let mut failed = false;
    // Returns true when the program passes the gate.
    let check = |name: &str, analysis: &snap_lint::Analysis| -> bool {
        let mut gating = 0;
        for d in &analysis.diagnostics {
            if d.severity < snap_lint::Severity::Warning {
                continue;
            }
            let loc = match (&d.line, d.pc) {
                (Some((module, line)), _) => format!("{module}:{line}"),
                (None, Some(pc)) => format!("pc {pc:#05x}"),
                (None, None) => String::from("program"),
            };
            eprintln!(
                "{name}: {}: {} at {loc}: {}",
                d.severity.label(),
                d.lint,
                d.message
            );
            if d.severity >= gate {
                gating += 1;
            }
        }
        if gating > 0 {
            eprintln!("{name}: FAILED ({gating} gating findings)");
            false
        } else {
            println!("{name}: ok (lint)");
            true
        }
    };

    let point = snap_energy::OperatingPoint::V0_6;
    if files.is_empty() {
        // The built-in applications (assembled from Rust string
        // constants, so no on-disk .s file covers them).
        let mac = {
            let extra = snap_apps::prelude::install_handler("EV_IRQ", "app_send_irq");
            let app = format!(
                "{}{}",
                snap_apps::mac::send_on_irq_app(5),
                snap_apps::mac::RX_DISPATCH_STUB
            );
            snap_apps::mac::mac_program(2, &extra, &app)
        };
        let builtins = [
            ("builtin:blink", snap_apps::blink::blink_program()),
            ("builtin:sense", snap_apps::sense::sense_program()),
            ("builtin:mac-send", mac),
            (
                "builtin:temperature",
                snap_apps::apps::temperature_program(),
            ),
            ("builtin:threshold", snap_apps::apps::threshold_program(1)),
        ];
        for (name, program) in builtins {
            match program {
                Ok(p) => {
                    if !check(name, &snap_lint::analyze_program(&p, point)) {
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("{name}: does not assemble: {e}");
                    failed = true;
                }
            }
        }
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
        let mut sources = Vec::new();
        for sub in ["examples", "crates"] {
            asm_sources(&root.join(sub), &mut sources);
        }
        sources.sort();
        for path in sources {
            files.push(path.to_string_lossy().into_owned());
        }
    }
    for file in &files {
        match fs::read_to_string(file) {
            Ok(src) => match snap_asm::assemble(&src) {
                Ok(p) => {
                    if !check(file, &snap_lint::analyze_program(&p, point)) {
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("{file}: does not assemble: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("{file}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("loc") => {
            loc();
            ExitCode::SUCCESS
        }
        Some("validate-metrics") => {
            validate_files("metrics", &args[1..], snap_telemetry::validate_metrics)
        }
        Some("validate-trace") => {
            validate_files("trace", &args[1..], snap_telemetry::validate_chrome_trace)
        }
        Some("lint-asm") => lint_asm(&args[1..]),
        Some("check-links") => check_links(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            eprintln!(
                "tasks: loc, validate-metrics FILE..., validate-trace FILE..., \
                 lint-asm [--strict] [FILE...], check-links [FILE...]"
            );
            ExitCode::FAILURE
        }
    }
}
