//! Workspace helper: counts lines of code per crate.
use std::{fs, path::Path};

fn count_dir(p: &Path) -> usize {
    let mut n = 0;
    if let Ok(rd) = fs::read_dir(p) {
        for e in rd.flatten() {
            let path = e.path();
            if path.is_dir() {
                n += count_dir(&path);
            } else if path.extension().is_some_and(|x| x == "rs") {
                n += fs::read_to_string(&path)
                    .map(|s| s.lines().count())
                    .unwrap_or(0);
            }
        }
    }
    n
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .to_path_buf();
    let mut total = 0;
    for sub in ["crates", "tests", "examples"] {
        let p = root.join(sub);
        let n = count_dir(&p);
        println!("{sub:10} {n:>7}");
        total += n;
    }
    println!("{:10} {total:>7}", "total");
}
