//! Workspace helper tasks.
//!
//! ```text
//! cargo xtask loc                         # lines of code per tree
//! cargo xtask validate-metrics FILE...    # check snap-metrics-v1 reports
//! cargo xtask validate-trace FILE...      # check Chrome trace_event files
//! ```
//!
//! The validators enforce the schema documented in
//! `docs/OBSERVABILITY.md` (via `snap_telemetry::schema`); CI runs them
//! over freshly produced `srun --metrics` / `--trace-out` files so the
//! emitters and the docs cannot drift apart.

use std::{fs, path::Path, process::ExitCode};

fn count_dir(p: &Path) -> usize {
    let mut n = 0;
    if let Ok(rd) = fs::read_dir(p) {
        for e in rd.flatten() {
            let path = e.path();
            if path.is_dir() {
                n += count_dir(&path);
            } else if path.extension().is_some_and(|x| x == "rs") {
                n += fs::read_to_string(&path)
                    .map(|s| s.lines().count())
                    .unwrap_or(0);
            }
        }
    }
    n
}

fn loc() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .to_path_buf();
    let mut total = 0;
    for sub in ["crates", "tests", "examples"] {
        let p = root.join(sub);
        let n = count_dir(&p);
        println!("{sub:10} {n:>7}");
        total += n;
    }
    println!("{:10} {total:>7}", "total");
}

/// Run `validate` over each file, reporting per-file pass/fail.
fn validate_files(
    kind: &str,
    files: &[String],
    validate: fn(&str) -> Result<(), String>,
) -> ExitCode {
    if files.is_empty() {
        eprintln!("xtask: no files given to validate-{kind}");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for file in files {
        let text = match fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: {e}");
                failed = true;
                continue;
            }
        };
        match validate(&text) {
            Ok(()) => println!("{file}: ok ({kind})"),
            Err(e) => {
                eprintln!("{file}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("loc") => {
            loc();
            ExitCode::SUCCESS
        }
        Some("validate-metrics") => {
            validate_files("metrics", &args[1..], snap_telemetry::validate_metrics)
        }
        Some("validate-trace") => {
            validate_files("trace", &args[1..], snap_telemetry::validate_chrome_trace)
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            eprintln!("tasks: loc, validate-metrics FILE..., validate-trace FILE...");
            ExitCode::FAILURE
        }
    }
}
