//! # snaple — umbrella crate for the SNAP/LE reproduction
//!
//! Re-exports every crate in the workspace so examples and integration
//! tests can reach the whole system through one dependency. See the
//! repository `README.md` for an architecture overview and `DESIGN.md`
//! for the paper-to-module map.

pub use atmega;
pub use dess;
pub use snap_apps;
pub use snap_asm;
pub use snap_core;
pub use snap_energy;
pub use snap_isa;
pub use snap_net;
pub use snap_node;
pub use snapcc;
