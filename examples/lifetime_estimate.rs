//! Node-lifetime projection: the paper's bottom line, measured by
//! running the fleet rather than by analytic extrapolation.
//!
//! A heterogeneous fleet — a SNAP/LE MAC ring bursting every 20 ms, a
//! row of ATmega128L-class beacon motes on the same air, and a
//! mains-powered gateway overhearing the ring — runs for a simulated
//! 200 ms on identical 620 mAh coin cells. Each node's battery budget
//! meters what its core actually did (active energy + sleep-floor
//! leakage + radio words), and `BatteryConfig::projected_lifetime_s`
//! extrapolates that duty cycle to the cell's capacity. The SNAP nodes
//! come out around a century; the motes, ~100 days — the paper's
//! Table 2 direction, reproduced from simulation. The math behind the
//! projection is worked through in docs/FLEETS.md.
//!
//! ```sh
//! cargo run --example lifetime_estimate
//! ```

use dess::{SimDuration, SimTime};
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_net::{NetworkSim, Position, Stimulus, TraceMode};
use snap_node::atmega::tinyos::beacon_system;
use snap_node::{BatteryConfig, NodeId, NodeKind};

/// SNAP MAC ring members (ids 1..=4), bursting a send every 20 ms.
const SNAP_NODES: u8 = 4;
/// ATmega beacon motes (ids 5..=8), beaconing every ~20 ms.
const AVR_NODES: u8 = 4;
/// Simulated span the projection extrapolates from.
const SIM_MS: u64 = 200;

fn years(seconds: f64) -> f64 {
    seconds / (365.25 * 24.0 * 3600.0)
}

fn days(seconds: f64) -> f64 {
    seconds / (24.0 * 3600.0)
}

fn build() -> NetworkSim {
    let mut sim = NetworkSim::new(12.0);
    sim.set_trace_mode(TraceMode::CountOnly);
    for i in 0..SNAP_NODES {
        let dst = if i + 1 == SNAP_NODES { 1 } else { i + 2 };
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let program = mac_program(i + 1, &extra, &app).expect("assembles");
        let id = sim.add_node(&program, Position::new(f64::from(i) * 8.0, 0.0));
        sim.set_battery(id, Some(BatteryConfig::coin_cell_snap()));
        // A send burst every 20 ms; the 900 µs member stagger clears
        // each ~833 µs word time so the ring actually delivers.
        for burst in 0..SIM_MS / 20 {
            let at = 1_000 + burst * 20_000 + 900 * u64::from(i);
            sim.schedule(
                id,
                SimTime::ZERO + SimDuration::from_us(at),
                Stimulus::SensorIrq,
            );
        }
    }
    for i in 0..AVR_NODES {
        // Staggered periods so the motes do not beacon in lockstep.
        let (avr, _) = beacon_system(i + 1, 20 + u16::from(i)).expect("beacon assembles");
        let id = sim.add_avr_node(avr, Position::new(f64::from(i) * 8.0, -8.0));
        sim.set_battery(id, Some(BatteryConfig::coin_cell_avr()));
    }
    // A mains-powered gateway overhearing the ring: it carries no
    // budget, so it projects no lifetime — it outlives the fleet.
    let done = snap_asm::assemble("done").expect("assembles");
    sim.add_gateway(&done, Position::new(4.0, 4.0));
    sim
}

fn main() {
    let mut sim = build();
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(SIM_MS))
        .expect("fleet runs");
    assert!(sim.channel().deliveries() > 0, "fleet must carry traffic");
    let elapsed = SimDuration::from_ms(SIM_MS);

    println!(
        "mixed fleet: {SNAP_NODES} SNAP + {AVR_NODES} ATmega + 1 gateway, \
         {SIM_MS} ms simulated, identical 620 mAh coin cells\n"
    );
    println!(
        "{:>4} {:>8} | {:>14} {:>12} | {:>14}",
        "node", "kind", "consumed pJ", "% of cell", "projected life"
    );
    let (mut snap_sum, mut snap_n) = (0.0f64, 0u32);
    let (mut avr_sum, mut avr_n) = (0.0f64, 0u32);
    for n in 1..=sim.node_count() as u32 {
        let node = sim.node(NodeId(n));
        let kind = match node.kind() {
            NodeKind::Snap => "snap",
            NodeKind::Avr => "avr",
            NodeKind::Gateway => "gateway",
        };
        let (Some(battery), Some(consumed)) = (node.battery(), node.battery_consumed()) else {
            println!(
                "{n:>4} {kind:>8} | {:>14} {:>12} | {:>14}",
                "-", "-", "mains"
            );
            continue;
        };
        let life = battery
            .projected_lifetime_s(consumed, elapsed)
            .expect("nonzero consumption over a nonzero span");
        let shown = match node.kind() {
            NodeKind::Avr => {
                avr_sum += life;
                avr_n += 1;
                format!("{:.1} days", days(life))
            }
            _ => {
                snap_sum += life;
                snap_n += 1;
                format!("{:.1} years", years(life))
            }
        };
        println!(
            "{n:>4} {kind:>8} | {:>14.1} {:>11.1e}% | {shown:>14}",
            consumed.as_pj(),
            100.0 * consumed.as_pj() / battery.capacity().as_pj(),
        );
    }

    let snap_life = snap_sum / f64::from(snap_n);
    let avr_life = avr_sum / f64::from(avr_n);
    let ratio = snap_life / avr_life;
    println!(
        "\nmean projection: SNAP {:.1} years vs ATmega {:.1} days — {ratio:.0}x",
        years(snap_life),
        days(avr_life),
    );
    println!(
        "\nCaveats: SNAP idle leakage is the paper's open question — the \
         budget meters the 10 nW placeholder from snap-energy; the mote's \
         ~75 uW sleep floor dominates its projection, which is exactly the \
         paper's architectural point. Both platforms here run comparable \
         ~20 ms duty cycles; heavier event rates narrow the gap."
    );

    // The paper's Table 2 direction must come out of the simulation,
    // not be asserted into it.
    assert!(
        ratio > 10.0,
        "SNAP must outlive the ATmega mote decisively; \
         got snap {snap_life:.0} s vs avr {avr_life:.0} s"
    );
    assert!(
        years(snap_life) > 50.0,
        "SNAP duty-cycle projection should be leakage-bound, effectively decades"
    );
}
