//! Node-lifetime projection: the paper's bottom line. Given a battery
//! and an event rate, how long does a data-monitoring node last on
//! SNAP/LE vs on an ATmega128L-class mote?
//!
//! Uses *measured* per-handler energy from the simulator (Table 1's
//! AODV Forward row — a relay node's workload) plus each platform's
//! idle story: SNAP sleeps at its (placeholder) leakage; the mote pays
//! its active power for the handler time plus TinyOS overhead cycles.
//!
//! ```sh
//! cargo run --example lifetime_estimate
//! ```

use snap_apps::measure::measure_aodv_forward;
use snap_energy::model::SnapEnergyModel;
use snap_energy::{AvrEnergyModel, Energy, OperatingPoint};

/// A CR2450 coin cell: ~620 mAh at 3 V ≈ 6.7 kJ. Use 2/3 usable.
const BATTERY_J: f64 = 4_500.0;

fn years(seconds: f64) -> f64 {
    seconds / (365.25 * 24.0 * 3600.0)
}

fn project_snap(point: OperatingPoint, events_per_s: f64) -> (f64, Energy) {
    let handler = measure_aodv_forward(point);
    let model = SnapEnergyModel::new(point);
    // Average power = handler energy x rate + idle leakage.
    let active_w = handler.energy.as_pj() * 1e-12 * events_per_s;
    let total_w = active_w + model.idle_leakage().as_watts();
    (years(BATTERY_J / total_w), handler.energy)
}

fn project_avr(events_per_s: f64) -> f64 {
    let model = AvrEnergyModel::atmega128l();
    // The same relay handler on the mote: the paper's handlers are
    // 70-245 instructions of *application* work, but the mote also pays
    // TinyOS overhead. Scale from the measured Fig. 5 shape: ~5x
    // overhead on top of useful cycles. Assume 245 useful instructions
    // x ~1.5 cycles + 5x overhead ~ 2200 cycles per event.
    let cycles_per_event = 2_200u64;
    let event_energy = model.task_energy(cycles_per_event);
    let active_w = event_energy.as_pj() * 1e-12 * events_per_s;
    // Idle: even the ATmega's best sleep mode draws ~25 uA at 3 V with
    // the watchdog on (datasheet); that is 75 uW — the dominant term.
    let idle_w = 75e-6;
    years(BATTERY_J / (active_w + idle_w))
}

fn main() {
    println!("battery: {BATTERY_J:.0} J usable (CR2450-class coin cell)\n");
    println!(
        "{:>10} | {:>14} {:>14} | {:>14} | {:>8}",
        "events/s", "SNAP@0.6V yrs", "SNAP@1.8V yrs", "ATmega yrs", "gain"
    );
    for events_per_s in [0.1, 1.0, 10.0, 100.0] {
        let (snap06, e06) = project_snap(OperatingPoint::V0_6, events_per_s);
        let (snap18, _) = project_snap(OperatingPoint::V1_8, events_per_s);
        let avr = project_avr(events_per_s);
        println!(
            "{:>10} | {:>14.1} {:>14.1} | {:>14.2} | {:>7.0}x",
            events_per_s,
            snap06,
            snap18,
            avr,
            snap06 / avr
        );
        if events_per_s == 10.0 {
            println!(
                "{:>10}   (per event at 0.6V: {}; paper band 1.6-5.9 nJ)",
                "", e06
            );
        }
    }
    println!(
        "\nCaveats: SNAP idle leakage is the paper's open question — we use the \
         10 nW placeholder from snap-energy; the mote's 75 uW sleep floor \
         dominates its lifetime, which is exactly the paper's architectural point."
    );

    let (snap06, _) = project_snap(OperatingPoint::V0_6, 10.0);
    assert!(
        snap06 > 100.0,
        "SNAP at 0.6 V should be leakage-bound, effectively decades"
    );
}
