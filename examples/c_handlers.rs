//! Event-driven handlers written in C, compiled by `snapcc` — the
//! paper's programming-model claim: sensor-network protocols "by simply
//! writing C code that implements the handlers".
//!
//! ```sh
//! cargo run --example c_handlers
//! ```

use dess::SimDuration;
use snap_node::{Node, NodeConfig};
use snapcc::codegen::{BootEnd, CompileOptions};
use snapcc::compile_to_program_with;

const APP: &str = r"
// A periodic sampler with an exponentially weighted moving average,
// written exactly like the paper's Temperature Sense benchmark — but
// in C. main() is the boot code: it installs handlers, arms timer 0
// and returns; the node then sleeps on the event queue.

int avg;
int samples;
int log_buf[16];
int log_pos;

handler tick() {
    __msg_write(0x3000);        // query sensor 0
    __sched(0, 0, 500);         // re-arm: 500 ticks = 500 us
}

handler reading() {
    int x = __msg_read();
    avg = avg + (x - avg) / 8;
    log_buf[log_pos] = x;
    log_pos = (log_pos + 1) & 15;
    samples = samples + 1;
    // show the average's high bits on the LEDs
    __msg_write(0x4000 | (avg >> 5 & 7));
}

int main() {
    __setaddr(0, tick);         // timer 0
    __setaddr(6, reading);      // sensor reply
    __sched(0, 0, 50);          // first sample after 50 us
    return 0;
}
";

fn main() {
    let options = CompileOptions {
        end: BootEnd::Done,
        ..CompileOptions::default()
    };
    let program = compile_to_program_with(APP, options).expect("compiles");
    println!(
        "compiled C handlers: {} bytes of SNAP code",
        program.code_bytes()
    );

    let mut node = Node::new(NodeConfig::default());
    node.load(&program).expect("loads");
    node.sensors_mut().set_reading(0, 200);
    node.run_for(SimDuration::from_ms(20)).expect("runs");

    let avg = node.cpu().dmem().read(program.symbol("avg").unwrap());
    let samples = node.cpu().dmem().read(program.symbol("samples").unwrap());
    let stats = node.cpu().stats();

    println!("samples taken:      {samples}");
    println!("running average:    {avg} (input 200)");
    println!("LED value:          {} (avg high bits)", node.led().value());
    println!("instructions:       {}", stats.instructions);
    println!("energy:             {}", stats.energy);
    println!(
        "per sample:         {:.0} instructions, {:.2} nJ",
        stats.instructions as f64 / samples as f64,
        stats.energy.as_nj() / samples as f64
    );
    println!(
        "(compiled C costs ~3-8x a hand-written handler — the paper's \
         unoptimized-lcc observation; see `cargo run -p bench --bin ablation_compiler`)"
    );

    assert!(samples >= 35, "20 ms at 500 us per sample");
    assert!((170..=200).contains(&avg), "EWMA must converge toward 200");
}
