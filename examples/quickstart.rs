//! Quickstart: assemble an event-driven SNAP program, run it on a
//! simulated node, and read back energy statistics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dess::SimDuration;
use snap_asm::assemble;
use snap_node::{Node, NodeConfig};

fn main() {
    // An event-driven blinker in SNAP assembly: timer 0 fires every
    // millisecond; its handler toggles the LED port and re-arms the
    // timer; between events the core is asleep (zero switching
    // activity).
    let source = r"
        .equ EV_TIMER0, 0
        .equ CMD_PORT,  0x4000

    boot:
        li      r1, 0           ; event number
        li      r2, tick        ; handler address
        setaddr r1, r2
        call    arm
        done                    ; boot ends: sleep until the event

    arm:                        ; (re)arm timer 0 for 1000 ticks = 1 ms
        li      r1, 0
        schedhi r1, r0
        li      r2, 1000
        schedlo r1, r2
        ret

    tick:
        lw      r3, state(r0)
        xori    r3, 1
        sw      r3, state(r0)
        li      r4, CMD_PORT
        or      r4, r3
        mov     r15, r4         ; write the message coprocessor port
        call    arm
        done

        .data
    state:  .word 0
    ";

    let program = assemble(source).expect("assembles");
    println!("code size: {} bytes", program.code_bytes());

    let mut node = Node::new(NodeConfig::default());
    node.load(&program).expect("loads");

    // Run one simulated second.
    node.run_for(SimDuration::from_secs(1)).expect("runs");

    let stats = node.cpu().stats();
    println!("simulated time:     {}", node.now());
    println!("LED toggles:        {}", node.led().writes());
    println!("handlers run:       {}", stats.handlers_dispatched);
    println!("instructions:       {}", stats.instructions);
    println!("busy time:          {}", stats.busy_time);
    println!("sleep time:         {}", stats.sleep_time);
    println!("energy used:        {}", stats.energy);
    println!("energy/instruction: {}", stats.energy_per_instruction());
    println!(
        "duty cycle:         {:.4}%",
        stats.busy_time.as_ns() / (stats.busy_time.as_ns() + stats.sleep_time.as_ns()) * 100.0
    );

    assert!(node.led().writes() >= 990, "the blinker must blink");
}
