//! Habitat monitoring (the paper's motivating deployment, citing the
//! Great Duck Island-style experiments): a temperature-sensing node
//! periodically samples its sensor and reports over a multi-hop route
//! through a relay to a sink node, all running real SNAP handler
//! binaries over the simulated radio channel.
//!
//! ```sh
//! cargo run --example habitat_monitoring
//! ```

use dess::{SimDuration, SimTime};
use snap_apps::aodv::{aodv_node_program, relay_program};
use snap_apps::prelude::install_handler;
use snap_net::{NetworkSim, Position, Stimulus, TraceKind};

/// A sensing application for the source node: every sensor IRQ (our
/// stand-in for "the monitoring interval elapsed"), query the
/// temperature sensor, and on the reply send the reading to the sink
/// (node 3) through the MAC/AODV stack.
const SENSE_AND_SEND: &str = r"
app_sample_irq:
    li      r15, CMD_QUERY | 0    ; poll the temperature sensor
    done

app_reading:
    mov     r5, r15               ; the reading
    ; DATA packet to node 3: header, type|len=1, payload [reading]
    li      r2, 3 << 8
    lw      r4, node_id(r0)
    bfs     r2, r4, 0xff
    sw      r2, mac_tx_buf+0(r0)
    li      r2, PKT_DATA << 8 | 1
    sw      r2, mac_tx_buf+1(r0)
    sw      r5, mac_tx_buf+2(r0)
    li      r1, 3
    call    mac_send
    done

app_deliver:
    done
";

/// The sink logs each delivered reading into a DMEM ring.
const SINK_APP: &str = r"
.data
log_buf:   .space 16
log_pos:   .word 0

.text
app_deliver:
    lw      r2, mac_rx_buf+2(r0)  ; the reading
    lw      r3, log_pos(r0)
    sw      r2, log_buf(r3)
    addi    r3, 1
    andi    r3, 15
    sw      r3, log_pos(r0)
    done
";

fn main() {
    let mut sim = NetworkSim::new(6.0);

    // Source (1) -- relay (2) -- sink (3), 5 units apart: the source
    // cannot reach the sink directly.
    let mut boot = install_handler("EV_IRQ", "app_sample_irq");
    boot.push_str(&install_handler("EV_REPLY", "app_reading"));
    let source = sim.add_node(
        &aodv_node_program(1, &[(3, 2)], &boot, SENSE_AND_SEND).expect("source assembles"),
        Position::new(0.0, 0.0),
    );
    let relay = sim.add_node(
        &relay_program(2, &[(3, 3), (1, 1)]).expect("relay assembles"),
        Position::new(5.0, 0.0),
    );
    let sink = sim.add_node(
        &aodv_node_program(3, &[], "", SINK_APP).expect("sink assembles"),
        Position::new(10.0, 0.0),
    );
    assert!(
        !sim.topology().in_range(source, sink),
        "the relay is load-bearing"
    );

    // Environment: the temperature drifts; sample every 200 ms.
    for (i, temp) in [71u16, 72, 74, 73, 70].iter().enumerate() {
        let at = SimTime::ZERO + SimDuration::from_ms(50 + 200 * i as u64);
        sim.schedule(
            source,
            at,
            Stimulus::SensorReading {
                id: 0,
                value: *temp,
            },
        );
        sim.schedule(source, at + SimDuration::from_ms(1), Stimulus::SensorIrq);
    }

    sim.run_until(SimTime::ZERO + SimDuration::from_secs(2))
        .expect("network runs");

    // Read the sink's log.
    let sink_prog = aodv_node_program(3, &[], "", SINK_APP).unwrap();
    let log = sink_prog.symbol("log_buf").unwrap();
    let pos = sink_prog.symbol("log_pos").unwrap();
    let n = sim.node(sink).cpu().dmem().read(pos) as usize;
    let readings: Vec<u16> = (0..n)
        .map(|i| sim.node(sink).cpu().dmem().read(log + i as u16))
        .collect();

    println!("sink received {n} readings: {readings:?}");
    println!(
        "channel: {} clean deliveries, {} collisions",
        sim.channel().deliveries(),
        sim.channel().collisions()
    );
    let fwd_prog = relay_program(2, &[]).unwrap();
    println!(
        "relay forwarded {} packets using {} instructions total",
        sim.node(relay)
            .cpu()
            .dmem()
            .read(fwd_prog.symbol("aodv_fwds").unwrap()),
        sim.node(relay).cpu().stats().instructions,
    );
    for id in [source, relay, sink] {
        let s = sim.node(id).cpu().stats();
        println!(
            "{id}: {} handlers, {} instructions, {} energy, asleep {:.2}% of the time",
            s.handlers_dispatched,
            s.instructions,
            s.energy,
            s.sleep_time.as_ns() / (s.sleep_time.as_ns() + s.busy_time.as_ns()) * 100.0
        );
    }
    let delivered = sim
        .trace()
        .count(|e| matches!(e.kind, TraceKind::Deliver { .. }));
    println!("trace recorded {delivered} word deliveries");

    assert_eq!(
        readings,
        vec![71, 72, 74, 73, 70],
        "all five readings must arrive in order"
    );
}
