//! AODV route discovery, live: watch a flood teach a 5-node network
//! its routes, then send data over the discovered path.
//!
//! ```sh
//! cargo run --example route_discovery
//! ```

use dess::{SimDuration, SimTime};
use snap_apps::discovery::aodv_discovery_program;
use snap_apps::prelude::install_handler;
use snap_net::{NetworkSim, Position, Stimulus, TraceKind};
use snap_node::NodeId;

const ORIGIN_APP: &str = r"
app_irq:
    lw      r5, disc_done(r0)
    bnez    r5, app_send_data
    li      r1, 5              ; discover node 5
    call    aodv_discover
    done
app_send_data:
    li      r2, 5 << 8
    lw      r4, node_id(r0)
    bfs     r2, r4, 0xff
    sw      r2, mac_tx_buf+0(r0)
    li      r2, PKT_DATA << 8 | 1
    sw      r2, mac_tx_buf+1(r0)
    li      r2, 0xcafe
    sw      r2, mac_tx_buf+2(r0)
    li      r1, 3
    call    mac_send
    done

app_deliver:
    done
";

const RELAY_APP: &str = "
app_deliver:
    done
";

fn main() {
    let mut sim = NetworkSim::new(6.0);
    // A line of five nodes, 5 apart: 1-2-3-4-5; only neighbours hear
    // each other, so reaching node 5 needs three relays.
    let boot = install_handler("EV_IRQ", "app_irq");
    let mut programs = Vec::new();
    for id in 1..=5u8 {
        let (extra, app) = if id == 1 {
            (boot.as_str(), ORIGIN_APP)
        } else {
            ("", RELAY_APP)
        };
        let program = aodv_discovery_program(id, &[], extra, app, 0x3f).expect("assembles");
        sim.add_node(&program, Position::new(5.0 * id as f64, 0.0));
        programs.push(program);
    }
    let origin = NodeId(1);
    let sink = NodeId(5);
    assert!(!sim.topology().in_range(origin, sink));

    println!("flooding a route request from node 1 for node 5...");
    sim.schedule(
        origin,
        SimTime::ZERO + SimDuration::from_ms(2),
        Stimulus::SensorIrq,
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(200))
        .expect("network runs");

    // Show every node's learned routing table.
    for (i, program) in programs.iter().enumerate() {
        let node = NodeId(i as u32 + 1);
        let table = program.symbol("rt_table").unwrap();
        let mut routes = Vec::new();
        for slot in 0..8 {
            let dest = sim.node(node).cpu().dmem().read(table + slot * 2);
            if dest != 0xffff {
                let hop = sim.node(node).cpu().dmem().read(table + slot * 2 + 1);
                routes.push(format!("{dest} via {hop}"));
            }
        }
        println!("{node}: routes [{}]", routes.join(", "));
    }
    let done = programs[0].symbol("disc_done").unwrap();
    println!(
        "discovery complete at the origin: {}",
        sim.node(origin).cpu().dmem().read(done)
    );

    println!("\nsending data 1 -> 5 over the discovered path...");
    sim.schedule(
        origin,
        SimTime::ZERO + SimDuration::from_ms(210),
        Stimulus::SensorIrq,
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(400))
        .expect("network runs");

    let local = programs[4].symbol("aodv_local").unwrap();
    let buf = programs[4].symbol("mac_rx_buf").unwrap();
    println!(
        "node 5 delivered {} packet(s); payload {:#06x}",
        sim.node(sink).cpu().dmem().read(local),
        sim.node(sink).cpu().dmem().read(buf + 2)
    );
    let tx = sim
        .trace()
        .count(|e| matches!(e.kind, TraceKind::Transmit { .. }));
    println!(
        "channel totals: {} words on the air, {} clean deliveries, {} collisions",
        tx,
        sim.channel().deliveries(),
        sim.channel().collisions()
    );

    assert_eq!(sim.node(sink).cpu().dmem().read(local), 1);
    assert_eq!(sim.node(sink).cpu().dmem().read(buf + 2), 0xcafe);
}
