; Blink — the TinyOS example ported to SNAP, self-contained for `srun`.
;
;   cargo run -p snap-node --bin srun -- --ms 10 examples/asm/blink.s
;   cargo run -p snap-node --bin srun -- --vdd 0.6 --metrics blink.json \
;       --trace-out blink.trace.json examples/asm/blink.s
;
; A periodic timer handler re-arms timer 0 and posts the blink task as
; a soft event (the hardware-event-queue analogue of TinyOS `post`);
; the task handler toggles the LED through the output port. Between
; handlers the core sleeps — with telemetry enabled the gaps show up as
; empty track space in the Perfetto trace.

.equ EV_TIMER0, 0
.equ EV_SOFT,   7
.equ CMD_PORT,  0x4000

.data
blink_state:  .word 0
blink_ticks:  .word 0

.text
boot:
    li      r1, EV_TIMER0
    li      r2, blink_timer
    setaddr r1, r2
    li      r1, EV_SOFT
    li      r2, blink_task
    setaddr r1, r2
    li      r1, 0               ; arm timer 0: first tick after 1 tick
    schedhi r1, r0
    li      r2, 1
    schedlo r1, r2
    done

; periodic timer handler: count the tick, re-arm, post the blink task
blink_timer:
    lw      r2, blink_ticks(r0)
    addi    r2, 1
    sw      r2, blink_ticks(r0)
    li      r1, 0
    schedhi r1, r0
    li      r2, 1000            ; blink period in ticks
    schedlo r1, r2
    li      r3, EV_SOFT
    swev    r3
    done

; the blink task: toggle the LED on the output port
blink_task:
    lw      r4, blink_state(r0)
    xori    r4, 1
    sw      r4, blink_state(r0)
    li      r5, CMD_PORT
    or      r5, r4
    mov     r15, r5
    done
